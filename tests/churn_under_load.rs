//! Churn under load: the abcast stream must stay live and agreement must
//! hold while one process joins and another is removed mid-stream — the
//! scenario-engine counterpart of the paper's §4.4 claim that membership
//! changes never block the ordinary message flow.

use gcs::core::StackConfig;
use gcs::kernel::{ProcessId, Time, TimeDelta};
use gcs::sim::{check_agreement, check_no_duplicates, check_total_order, Schedule};
use gcs::{Group, GroupTransport};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

/// A 60-message stream from the three surviving senders; p4 joins at 100 ms
/// and p3 is removed at 200 ms, both while the stream is running.
#[test]
fn abcast_stream_stays_live_through_join_and_removal() {
    for seed in [1u64, 5, 9] {
        let mut cfg = StackConfig::default();
        cfg.monitoring_timeout = TimeDelta::from_secs(3600); // churn is scripted
        let mut g = Group::builder()
            .members(4)
            .joiners(1)
            .stack_config(cfg)
            .schedule(
                Schedule::new()
                    .join(Time::from_millis(100), p(4), p(1))
                    .remove(Time::from_millis(200), p(0), p(3)),
            )
            .seed(seed)
            .build();
        let msgs = 60u32;
        for i in 0..msgs {
            // Senders p0..p2 only: the removal victim must not be relied on.
            g.abcast_at(Time::from_millis(2 + 5 * i as u64), p(i % 3), vec![i as u8]);
        }
        g.run_until(Time::from_secs(4));

        let seqs = g.adelivered_payloads();
        // Liveness: the stream outlives both membership changes (the last
        // message is injected at ~300 ms, well after the removal).
        for i in [0usize, 1, 2] {
            assert_eq!(
                seqs[i].len(),
                msgs as usize,
                "seed {seed}: p{i} delivered {} of {msgs}",
                seqs[i].len()
            );
        }
        // The joiner took part in the post-join suffix of the stream.
        assert!(!seqs[4].is_empty(), "seed {seed}: joiner delivered nothing");
        // The removed member stopped receiving once its removal was ordered.
        assert!(
            seqs[3].len() < msgs as usize,
            "seed {seed}: removed member kept delivering"
        );

        // Agreement + order across everyone who is still a member.
        let member_seqs: Vec<Vec<Vec<u8>>> =
            [0usize, 1, 2, 4].iter().map(|&i| seqs[i].clone()).collect();
        check_total_order(&member_seqs)
            .unwrap_or_else(|e| panic!("seed {seed}: order violation {e}"));
        check_no_duplicates(&seqs)
            .unwrap_or_else(|(i, m)| panic!("seed {seed}: duplicate {m:?} at p{i}"));
        check_agreement(&member_seqs[..3], &[true, true, true])
            .unwrap_or_else(|(a, b, _)| panic!("seed {seed}: agreement violation p{a}/p{b}"));
        // The joiner's deliveries are a contiguous suffix of the agreed
        // total order (same view delivery: it missed only the pre-join
        // prefix covered by its state-transfer snapshot).
        assert!(
            seqs[0].ends_with(&seqs[4]),
            "seed {seed}: joiner sequence is not a suffix of the total order"
        );

        // Views converged on {p0, p1, p2, p4} at every surviving member.
        for i in [0usize, 1, 2, 4] {
            let v = g.views()[i]
                .last()
                .unwrap_or_else(|| panic!("seed {seed}: p{i} installed no view"))
                .clone();
            assert!(
                v.contains(p(4)),
                "seed {seed}: p{i} final view lacks joiner"
            );
            assert!(
                !v.contains(p(3)),
                "seed {seed}: p{i} still lists the removed"
            );
            assert_eq!(v.members.len(), 4, "seed {seed}: p{i} view size");
        }
    }
}

/// The same churn timeline expressed through the scenario engine's
/// `ChurnWorkload` keeps its liveness guarantee on a WAN topology.
#[test]
fn churn_on_wan_topology_stays_live() {
    use gcs::sim::Topology;
    let mut cfg = StackConfig::default();
    cfg.monitoring_timeout = TimeDelta::from_secs(3600);
    // WAN delays need wider timeouts (as in the adverse-network tests).
    cfg.consensus_timeout = TimeDelta::from_millis(500);
    cfg.heartbeat_interval = TimeDelta::from_millis(50);
    cfg.rc.retransmit_after = TimeDelta::from_millis(200);
    let mut g = Group::builder()
        .members(4)
        .joiners(1)
        .topology(Topology::wan_2dc())
        .stack_config(cfg)
        .schedule(
            Schedule::new()
                .join(Time::from_millis(150), p(4), p(1))
                .remove(Time::from_millis(400), p(0), p(3)),
        )
        .seed(21)
        .build();
    for i in 0..30u32 {
        g.abcast_at(
            Time::from_millis(2 + 20 * i as u64),
            p(i % 3),
            vec![i as u8],
        );
    }
    g.run_until(Time::from_secs(20));
    let seqs = g.adelivered_payloads();
    for i in [0usize, 1, 2] {
        assert_eq!(seqs[i].len(), 30, "p{i} delivered {} of 30", seqs[i].len());
    }
    assert!(!seqs[4].is_empty(), "joiner participated across the WAN");
    let v = g.views()[0].last().expect("view installed").clone();
    assert!(v.contains(p(4)) && !v.contains(p(3)));
}
