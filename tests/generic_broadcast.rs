//! Property-based whole-system tests of generic broadcast (the paper's key
//! new abstraction): for random workloads, conflict relations and fault
//! schedules, conflicting messages are delivered in a consistent order at
//! all correct members, with no duplication and no loss.

use gcs::core::{ConflictRelation, MessageClass, StackConfig};
use gcs::kernel::{ProcessId, Time, TimeDelta};
use gcs::sim::check_no_duplicates;
use gcs::{Group, GroupTransport};
use proptest::prelude::*;

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

/// Message identity in the neutral transport vocabulary: `(sender, seq)`.
type Id = (ProcessId, u64);

/// Checks pairwise order consistency **restricted to conflicting pairs**
/// (non-conflicting messages may legally be delivered in different orders —
/// that is the whole point of generic broadcast).
fn check_conflict_order(
    seqs: &[Vec<(Id, MessageClass)>],
    relation: &ConflictRelation,
) -> Result<(), String> {
    for a in 0..seqs.len() {
        for b in (a + 1)..seqs.len() {
            for (i1, (m1, c1)) in seqs[a].iter().enumerate() {
                for (m2, c2) in seqs[a][i1 + 1..].iter() {
                    if !relation.conflicts(*c1, *c2) {
                        continue;
                    }
                    // m1 before m2 at a; check b agrees where both present.
                    let pos1 = seqs[b].iter().position(|(m, _)| m == m1);
                    let pos2 = seqs[b].iter().position(|(m, _)| m == m2);
                    if let (Some(p1), Some(p2)) = (pos1, pos2) {
                        if p2 < p1 {
                            return Err(format!(
                                "conflicting {m1:?} and {m2:?} ordered differently at {a} and {b}"
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random class assignment over a random conflict relation, random
    /// senders and send times; all four members must agree on the relative
    /// order of every conflicting pair.
    #[test]
    fn conflict_order_holds_for_random_workloads(
        seed in 0u64..5000,
        conflict_pairs in proptest::collection::vec((0u16..3, 0u16..3), 0..5),
        ops in proptest::collection::vec((0u32..4, 0u16..3, 0u64..60), 1..25),
    ) {
        let mut relation = ConflictRelation::none(3);
        for (a, b) in conflict_pairs {
            relation.set_conflict(MessageClass(a), MessageClass(b));
        }
        let mut cfg = StackConfig::default();
        cfg.conflict = relation.clone();
        let mut g = Group::builder().members(4).stack_config(cfg).seed(seed).build();
        for (sender, class, at_ms) in &ops {
            g.gbcast_at(
                Time::from_millis(1 + at_ms),
                p(*sender),
                MessageClass(*class),
                vec![*class as u8],
            );
        }
        g.run_until(Time::from_secs(8));

        let seqs: Vec<Vec<(Id, MessageClass)>> = g
            .delivered()
            .iter()
            .map(|seq| seq.iter().map(|d| ((d.sender, d.seq), d.class)).collect())
            .collect();

        // Validity/termination: every member delivered every message.
        for (i, s) in seqs.iter().enumerate() {
            prop_assert_eq!(s.len(), ops.len(), "p{} delivered {} of {}", i, s.len(), ops.len());
        }
        let ids: Vec<Vec<Id>> =
            seqs.iter().map(|s| s.iter().map(|(m, _)| *m).collect()).collect();
        prop_assert!(check_no_duplicates(&ids).is_ok());
        if let Err(e) = check_conflict_order(&seqs, &relation) {
            return Err(TestCaseError::fail(e));
        }
    }

    /// With one crashed member (f = 1 < n/3 for n = 4), the survivors still
    /// agree on conflicting pairs and still terminate.
    #[test]
    fn conflict_order_survives_a_crash(
        seed in 0u64..5000,
        victim in 0u32..4,
        ops in proptest::collection::vec((0u32..4, 0u16..2, 0u64..40), 1..15),
    ) {
        let mut relation = ConflictRelation::none(2);
        relation.set_conflict(MessageClass(1), MessageClass(1));
        relation.set_conflict(MessageClass(0), MessageClass(1));
        let mut cfg = StackConfig::default();
        cfg.conflict = relation.clone();
        cfg.monitoring_timeout = TimeDelta::from_secs(3600);
        let mut g = Group::builder().members(4).stack_config(cfg).seed(seed).build();
        g.crash_at(Time::from_millis(15), p(victim));
        let mut expected = 0usize;
        for (sender, class, at_ms) in &ops {
            // Senders that crash may or may not get their message out;
            // count only live senders for the termination check.
            if *sender != victim {
                expected += 1;
            }
            g.gbcast_at(
                Time::from_millis(20 + at_ms),
                p(*sender),
                MessageClass(*class),
                vec![*class as u8],
            );
        }
        g.run_until(Time::from_secs(8));
        let delivered = g.delivered();
        let seqs: Vec<Vec<(Id, MessageClass)>> = (0..4)
            .filter(|&i| i != victim)
            .map(|i| {
                delivered[i as usize]
                    .iter()
                    .map(|d| ((d.sender, d.seq), d.class))
                    .collect()
            })
            .collect();
        for s in &seqs {
            prop_assert!(s.len() >= expected, "live messages all delivered");
        }
        if let Err(e) = check_conflict_order(&seqs, &relation) {
            return Err(TestCaseError::fail(e));
        }
    }
}
