//! The new architecture under adverse network conditions: the reliable
//! channel must mask loss and duplication, and consensus must absorb the
//! resulting delays, without any ordering violation.

use gcs::core::StackConfig;
use gcs::kernel::{ProcessId, Time, TimeDelta};
use gcs::sim::{check_no_duplicates, check_prefix_consistency, LinkModel, Topology};
use gcs::{Group, GroupTransport};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

#[test]
fn total_order_over_lossy_duplicating_links() {
    for seed in 0..5u64 {
        let mut cfg = StackConfig::default();
        cfg.monitoring_timeout = TimeDelta::from_secs(3600);
        // 10% loss + 5% duplication on every link.
        let mut g = Group::builder()
            .members(3)
            .topology(Topology::uniform(
                "uniform",
                LinkModel {
                    drop_prob: 0.10,
                    dup_prob: 0.05,
                    ..LinkModel::lan()
                },
            ))
            .stack_config(cfg)
            .seed(seed)
            .build();
        for i in 0..12u32 {
            g.abcast_at(Time::from_millis(1 + 4 * i as u64), p(i % 3), vec![i as u8]);
        }
        g.run_until(Time::from_secs(10));
        let seqs = g.adelivered_payloads();
        for (i, s) in seqs.iter().enumerate() {
            assert_eq!(s.len(), 12, "seed {seed}: p{i} delivered {} of 12", s.len());
        }
        check_prefix_consistency(&seqs).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
        check_no_duplicates(&seqs).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
    }
}

#[test]
fn total_order_on_wan_latencies() {
    let mut cfg = StackConfig::default();
    // WAN delays need wider FD timeouts or everything is suspected.
    cfg.consensus_timeout = TimeDelta::from_millis(500);
    cfg.monitoring_timeout = TimeDelta::from_secs(3600);
    cfg.heartbeat_interval = TimeDelta::from_millis(50);
    cfg.rc.retransmit_after = TimeDelta::from_millis(200);
    let mut g = Group::builder()
        .members(3)
        .topology(Topology::uniform("uniform", LinkModel::wan()))
        .stack_config(cfg)
        .seed(3)
        .build();
    for i in 0..6u32 {
        g.abcast_at(
            Time::from_millis(1 + 30 * i as u64),
            p(i % 3),
            vec![i as u8],
        );
    }
    g.run_until(Time::from_secs(30));
    let seqs = g.adelivered_payloads();
    for s in &seqs {
        assert_eq!(s.len(), 6);
    }
    check_prefix_consistency(&seqs).expect("order on WAN");
}

#[test]
fn transient_partition_heals_without_membership_change() {
    let mut cfg = StackConfig::default();
    cfg.monitoring_timeout = TimeDelta::from_secs(3600);
    let mut g = Group::builder()
        .members(3)
        .stack_config(cfg)
        .seed(11)
        .build();
    g.partition_at(Time::from_millis(20), vec![vec![p(0), p(1)], vec![p(2)]]);
    g.heal_at(Time::from_millis(300));
    for i in 0..10u32 {
        g.abcast_at(
            Time::from_millis(25 + 10 * i as u64),
            p(i % 2),
            vec![i as u8],
        );
    }
    g.run_until(Time::from_secs(5));
    let seqs = g.adelivered_payloads();
    // The majority side kept working during the partition; p2 caught up
    // after the heal (reliable channel retransmissions + consensus decide
    // replies) — all without a view change.
    for (i, s) in seqs.iter().enumerate() {
        assert_eq!(s.len(), 10, "p{i} delivered {} of 10", s.len());
    }
    check_prefix_consistency(&seqs).expect("consistent across the heal");
    assert!(
        g.views().iter().all(|v| v.is_empty()),
        "no exclusion for a transient outage"
    );
}
