//! Property-based whole-system tests of gossip failure detection at scale:
//! for random group sizes, seeds and crash times, a crash is suspected by
//! **every** correct process within the topology-derived bound, and a quiet
//! group never suspects anyone (◇S completeness and — on a loss-free LAN —
//! eventual accuracy, paper §3.3).

use gcs::core::{FdMode, StackConfig, SCALE_THRESHOLD};
use gcs::kernel::{ProcessId, Time, TimeDelta};
use gcs::{Group, GroupTransport};
use proptest::prelude::*;

/// The crash-to-"suspected by all correct" latency bound for a gossip
/// detector over a loss-free LAN, derived from the stack configuration:
///
/// * an observer's freshest evidence of the victim can be up to one
///   rotation cycle old at the crash instant (direct probes hit each peer
///   once per cycle),
/// * the suspicion deadline then needs the *effective* timeout (registered
///   timeout + one rotation cycle of slack) to pass,
/// * and the sweep that surfaces it runs on the next tick,
///
/// plus one interval of margin for the LAN's sub-millisecond delivery
/// delay. Measured detection sits well under this (digests refresh
/// last-heard times between direct probes).
fn detection_bound(cfg: &StackConfig, n: usize) -> TimeDelta {
    let mode = cfg.resolved_fd_mode(n);
    let cycle = cfg
        .heartbeat_interval
        .saturating_mul(mode.cycle_ticks(n - 1));
    cfg.consensus_timeout + cycle + cycle + cfg.heartbeat_interval + cfg.heartbeat_interval
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Strong completeness at scale: a crashed member is suspected by every
    /// correct member within the derived bound, for random group sizes
    /// above the gossip threshold, random victims and random crash times.
    #[test]
    fn crash_is_suspected_by_all_correct_within_bound(
        n in (SCALE_THRESHOLD + 1)..48usize,
        seed in 0u64..1000,
        victim in 0u32..200,
        crash_ms in 40u64..120,
    ) {
        let victim = ProcessId::new(victim % n as u32);
        let crash_at = Time::from_millis(crash_ms);
        let mut cfg = StackConfig::default();
        cfg.monitoring_timeout = TimeDelta::from_secs(3600);
        cfg.trace_suspicions = true;
        let bound = detection_bound(&cfg, n);
        prop_assert!(matches!(cfg.resolved_fd_mode(n), FdMode::Gossip { .. }));

        let mut g = Group::builder()
            .members(n)
            .stack_config(cfg)
            .seed(seed)
            .build();
        g.crash_at(crash_at, victim);
        g.run_until(crash_at + bound);

        let suspicions = g.suspicion_trace();
        for i in 0..n as u32 {
            let observer = ProcessId::new(i);
            if observer == victim {
                continue;
            }
            let first = suspicions
                .iter()
                .find(|&&(t, o, s)| o == observer && s == victim && t >= crash_at)
                .map(|&(t, _, _)| t);
            prop_assert!(
                first.is_some(),
                "p{i} never suspected the victim within {:?} (n={n}, seed={seed})",
                bound
            );
        }
    }

    /// Eventual strong accuracy on a quiet loss-free LAN: with every member
    /// alive and heartbeating, no consensus-class suspicion is ever raised
    /// — gossip rotation, digest merging and the extended timeout never
    /// produce a false positive.
    #[test]
    fn quiet_lan_raises_no_false_suspicion(
        n in (SCALE_THRESHOLD + 1)..64usize,
        seed in 0u64..1000,
    ) {
        let mut cfg = StackConfig::default();
        cfg.monitoring_timeout = TimeDelta::from_secs(3600);
        cfg.trace_suspicions = true;
        let mut g = Group::builder()
            .members(n)
            .stack_config(cfg)
            .seed(seed)
            .build();
        g.run_until(Time::from_secs(1));
        let suspicions = g.suspicion_trace();
        prop_assert!(
            suspicions.is_empty(),
            "false suspicions on a quiet LAN: {suspicions:?}"
        );
    }
}

/// The two FD modes agree on what matters: same deliveries, same order,
/// same membership — the mode only changes monitoring traffic shape and
/// detection latency. (Deterministic spot check; the catalog's fingerprint
/// battery pins the default-mode behavior bit-for-bit.)
#[test]
fn explicit_fd_mode_override_preserves_agreement() {
    let mut baseline = None;
    for mode in [FdMode::AllPairs, FdMode::Gossip { fanout: 0 }] {
        let mut cfg = StackConfig::default();
        cfg.monitoring_timeout = TimeDelta::from_secs(3600);
        let mut g = Group::builder()
            .members(24)
            .stack_config(cfg)
            .fd_mode(mode)
            .seed(9)
            .build();
        for i in 0..10u32 {
            g.abcast_at(
                Time::from_millis(1 + 3 * i as u64),
                ProcessId::new(i % 24),
                vec![i as u8],
            );
        }
        g.run_until(Time::from_secs(1));
        let seqs = g.adelivered_payloads();
        for s in &seqs {
            assert_eq!(s.len(), 10, "all delivered under {mode:?}");
        }
        match &baseline {
            None => baseline = Some(seqs),
            Some(b) => assert_eq!(&seqs, b, "modes agree on the delivered order"),
        }
    }
}
