//! Trait-level conformance suite: one battery — steady-state agreement,
//! crash mid-stream, quiescence semantics, membership, capability markers —
//! run generically against **all three** [`StackKind`]s on **both**
//! [`Backend`]s through the [`GroupTransport`] façade.
//!
//! Nothing in this file names a concrete harness type: if it compiles and
//! passes, every stack honors the unified surface the same way on the
//! deterministic simulator *and* on the live thread-per-member runtime,
//! which is exactly what lets workloads, scenarios and the replication
//! layer swap architectures (and execution substrates) with one builder
//! argument.
//!
//! Because live runs are not deterministic, every assertion here is
//! **bound-based**: the battery settles each phase by polling the group in
//! small time slices until the expected condition holds or a generous
//! deadline passes, then asserts the condition — never "exactly these
//! events at exactly this virtual instant". Safety properties (total
//! order, no duplication, invariant cleanliness) are asserted identically
//! on both backends; only *when* things happen is left open.

use gcs::kernel::{ProcessId, Time, TimeDelta};
use gcs::sim::{check_no_duplicates, check_prefix_consistency};
use gcs::{Backend, Group, GroupTransport, InvariantChecker, StackKind};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

const BACKENDS: [Backend; 2] = [Backend::Sim, Backend::Live];

fn build_on(backend: Backend, kind: StackKind, members: usize, joiners: usize, seed: u64) -> Group {
    Group::builder()
        .members(members)
        .joiners(joiners)
        .stack(kind)
        .backend(backend)
        .seed(seed)
        .build()
}

/// Drives a group forward in 5 ms slices until `done` holds or the cursor
/// passes `limit`, returning whether `done` held. On the simulator a slice
/// advances virtual time; on the live backend it sleeps the caller while
/// member threads keep working. The cursor persists across phases of one
/// test so later phases keep moving the same clock forward.
struct Driver {
    cursor: Time,
}

impl Driver {
    fn new() -> Self {
        Driver { cursor: Time::ZERO }
    }

    fn settle(&mut self, g: &mut Group, limit: Time, done: impl Fn(&Group) -> bool) -> bool {
        let step = TimeDelta::from_millis(5);
        loop {
            if done(g) {
                return true;
            }
            if self.cursor >= limit {
                return done(g);
            }
            self.cursor += step;
            g.run_until(self.cursor);
        }
    }

    /// Settles on `done` and panics with `what` if the deadline passes
    /// first — the bound-based replacement for "run to t, then assert".
    fn expect(&mut self, g: &mut Group, limit: Time, what: &str, done: impl Fn(&Group) -> bool) {
        assert!(self.settle(g, limit, done), "deadline passed: {what}");
    }
}

/// Everyone delivered exactly `n` atomic payloads.
fn all_delivered(n: usize) -> impl Fn(&Group) -> bool {
    move |g| g.adelivered_payloads().iter().all(|s| s.len() == n)
}

/// The first `k` processes delivered exactly `n` atomic payloads.
fn first_delivered(k: usize, n: usize) -> impl Fn(&Group) -> bool {
    move |g| g.adelivered_payloads()[..k].iter().all(|s| s.len() == n)
}

/// Steady state: every member of every stack delivers the same stream in
/// the same order, with no loss and no duplication — on both backends.
#[test]
fn steady_state_agreement_on_every_stack() {
    for backend in BACKENDS {
        for kind in StackKind::ALL {
            let mut g = build_on(backend, kind, 4, 0, 31);
            let tag = format!("{backend:?}/{}", kind.name());
            assert_eq!(g.stack(), kind);
            assert_eq!(g.process_count(), 4);
            for i in 0..12u32 {
                g.abcast_at(Time::from_millis(1 + 2 * i as u64), p(i % 4), vec![i as u8]);
            }
            let mut d = Driver::new();
            d.expect(&mut g, Time::from_secs(20), &tag, all_delivered(12));
            let seqs = g.adelivered_payloads();
            check_prefix_consistency(&seqs)
                .unwrap_or_else(|e| panic!("{tag}: order violation {e:?}"));
            check_no_duplicates(&seqs).unwrap_or_else(|e| panic!("{tag}: duplicate {e:?}"));
            // The delivery trace carries consistent identities: every
            // record's (sender, seq) appears at every correct process.
            let delivered = g.delivered();
            let ids0: Vec<(ProcessId, u64)> =
                delivered[0].iter().map(|d| (d.sender, d.seq)).collect();
            for s in &delivered[1..] {
                let ids: Vec<(ProcessId, u64)> = s.iter().map(|d| (d.sender, d.seq)).collect();
                assert_eq!(ids, ids0, "{tag}: identities agree");
            }
        }
    }
}

/// Crash mid-stream: the survivors keep delivering, agree on the order, and
/// the dead process stops being reported alive — on both backends (the
/// live backend's crash is a real one: the member's thread exits).
#[test]
fn crash_mid_stream_keeps_survivors_consistent() {
    for backend in BACKENDS {
        for kind in StackKind::ALL {
            let mut g = build_on(backend, kind, 4, 0, 32);
            let tag = format!("{backend:?}/{}", kind.name());
            // A few messages land before the crash…
            for i in 0..4u32 {
                g.abcast_at(Time::from_millis(1 + i as u64), p(i % 3), vec![i as u8]);
            }
            g.crash_at(Time::from_millis(30), p(3));
            // …and the stream continues from the survivors afterwards.
            for i in 4..12u32 {
                g.abcast_at(
                    Time::from_millis(200 + 2 * i as u64),
                    p(i % 3),
                    vec![i as u8],
                );
            }
            let mut d = Driver::new();
            d.expect(&mut g, Time::from_secs(20), &tag, first_delivered(3, 12));
            d.expect(&mut g, Time::from_secs(20), &tag, |g| !g.alive_flags()[3]);

            let alive = g.alive_flags();
            assert!(alive[..3].iter().all(|&a| a), "{tag}: survivors alive");
            let seqs = g.adelivered_payloads();
            check_prefix_consistency(&seqs[..3])
                .unwrap_or_else(|e| panic!("{tag}: order violation {e:?}"));
            check_no_duplicates(&seqs).unwrap_or_else(|e| panic!("{tag}: duplicate {e:?}"));
        }
    }
}

/// The steady-state and crash-mid-stream batteries hold under **both**
/// failure-detection modes of the new architecture: all-pairs heartbeats
/// and gossip ring-segment probing (the at-scale default above
/// `SCALE_THRESHOLD`) deliver the same streams in the same order and both
/// keep survivors consistent through a crash. Run at a size where gossip
/// genuinely rotates (n = 20 → fanout ≈ 5, a 4-tick cycle).
#[test]
fn both_fd_modes_pass_the_conformance_battery() {
    use gcs::core::{FdMode, StackConfig};
    for backend in BACKENDS {
        for mode in [FdMode::AllPairs, FdMode::Gossip { fanout: 0 }] {
            let mut cfg = StackConfig::default();
            cfg.monitoring_timeout = TimeDelta::from_secs(3600);
            let mut g = Group::builder()
                .members(20)
                .stack_config(cfg)
                .fd_mode(mode)
                .backend(backend)
                .seed(33)
                .build();
            let tag = format!("{backend:?}/{mode:?}");
            for i in 0..8u32 {
                g.abcast_at(
                    Time::from_millis(1 + 2 * i as u64),
                    p(i % 20),
                    vec![i as u8],
                );
            }
            g.crash_at(Time::from_millis(40), p(19));
            for i in 8..16u32 {
                g.abcast_at(
                    Time::from_millis(300 + 2 * i as u64),
                    p(i % 19),
                    vec![i as u8],
                );
            }
            let mut d = Driver::new();
            d.expect(&mut g, Time::from_secs(30), &tag, first_delivered(19, 16));
            d.expect(&mut g, Time::from_secs(30), &tag, |g| !g.alive_flags()[19]);
            assert!(g.alive_flags()[..19].iter().all(|&a| a), "{tag}");
            let seqs = g.adelivered_payloads();
            check_prefix_consistency(&seqs[..19])
                .unwrap_or_else(|e| panic!("{tag}: order violation {e:?}"));
            check_no_duplicates(&seqs).unwrap_or_else(|e| panic!("{tag}: duplicate {e:?}"));
            let report = InvariantChecker::check(&g, 20);
            assert!(report.is_clean(), "{tag}: {:#?}", report.violations);
        }
    }
}

/// A joiner started outside the group enters through the unified `join_at`
/// and participates in post-join traffic on every stack and backend.
#[test]
fn join_through_the_unified_entry_point() {
    for backend in BACKENDS {
        for kind in StackKind::ALL {
            let mut g = build_on(backend, kind, 3, 1, 33);
            let tag = format!("{backend:?}/{}", kind.name());
            g.join_at(Time::from_millis(10), p(3), p(0));
            // Every founding member's last view includes the joiner.
            let mut d = Driver::new();
            d.expect(&mut g, Time::from_secs(20), &tag, |g| {
                let views = g.views();
                (0..3).all(|i| views[i].last().is_some_and(|v| v.contains(p(3))))
            });
            // Post-join traffic reaches the joiner. The injection is placed
            // past the settle cursor so it is never scheduled in the past.
            let t = d.cursor + TimeDelta::from_millis(100);
            g.abcast_at(t, p(1), b"post-join".to_vec());
            d.expect(&mut g, Time::from_secs(40), &tag, |g| {
                g.adelivered_payloads()[3].contains(&b"post-join".to_vec())
            });
        }
    }
}

/// `run_to_quiescence` semantics are uniform: a group with live members
/// never quiesces (its heartbeat/token timers re-arm forever); once every
/// process has crashed, the residual events drain and the flag flips to
/// `true`.
#[test]
fn quiescence_flag_is_meaningful_on_every_stack() {
    for backend in BACKENDS {
        for kind in StackKind::ALL {
            let mut g = build_on(backend, kind, 3, 0, 34);
            let tag = format!("{backend:?}/{}", kind.name());
            g.abcast_at(Time::from_millis(1), p(0), b"m".to_vec());
            let quiesced = g.run_to_quiescence(Time::from_millis(500));
            assert!(!quiesced, "{tag}: a running group must not quiesce");
            let mut d = Driver::new();
            d.cursor = Time::from_millis(500);
            d.expect(&mut g, Time::from_secs(20), &tag, all_delivered(1));

            // Crash-stop everything: the event queue drains and quiescence
            // is reachable. The simulator needs headroom for long-scheduled
            // timers to drain off the queue; the live runtime just waits
            // for the three member threads to exit.
            let at = d.cursor + TimeDelta::from_millis(100);
            for i in 0..3 {
                g.crash_at(at, p(i));
            }
            let limit = match backend {
                Backend::Sim => Time::from_secs(7200),
                Backend::Live => at + TimeDelta::from_secs(20),
            };
            let quiesced = g.run_to_quiescence(limit);
            assert!(quiesced, "{tag}: an all-crashed group quiesces");
        }
    }
}

/// Capability markers reflect the paper's pick-your-services modularity:
/// only the new architecture offers generic/reliable broadcast, while every
/// stack executes scripted removal; the markers and the entry points agree
/// on both backends.
#[test]
fn capability_markers_match_the_stacks() {
    for backend in BACKENDS {
        for kind in StackKind::ALL {
            let g = build_on(backend, kind, 3, 0, 35);
            let tag = format!("{backend:?}/{}", kind.name());
            let expect = kind == StackKind::NewArch;
            assert_eq!(g.supports_gbcast(), expect, "{tag}");
            assert_eq!(g.supports_rbcast(), expect, "{tag}");
            assert!(g.supports_removal(), "{tag}");
        }
        // The supported path actually works end to end.
        let mut g = build_on(backend, StackKind::NewArch, 3, 0, 36);
        g.rbcast_at(Time::from_millis(1), p(0), b"r".to_vec());
        let mut d = Driver::new();
        d.expect(&mut g, Time::from_secs(20), "rbcast delivery", |g| {
            g.delivered().iter().all(|s| s.len() == 1)
        });
    }
}

/// The unsupported entry points fail loudly, pointing at the marker.
#[test]
#[should_panic(expected = "supports_gbcast")]
fn gbcast_on_the_token_stack_panics_with_the_capability_hint() {
    use gcs::core::MessageClass;
    let mut g = build_on(Backend::Sim, StackKind::Token, 3, 0, 37);
    g.gbcast_at(Time::from_millis(1), p(0), MessageClass(0), b"x".to_vec());
}

/// The same hint fires through the live backend's projection.
#[test]
#[should_panic(expected = "supports_gbcast")]
fn gbcast_on_a_live_baseline_panics_with_the_capability_hint() {
    use gcs::core::MessageClass;
    let mut g = build_on(Backend::Live, StackKind::Token, 3, 0, 37);
    g.gbcast_at(Time::from_millis(1), p(0), MessageClass(0), b"x".to_vec());
}

/// Scripted removal mid-stream on every stack and backend (honestly gated
/// on the capability marker): the survivors keep the stream alive and
/// totally ordered, the target misses the post-removal suffix, and the
/// whole run is invariant-clean.
#[test]
fn removal_mid_stream_on_every_stack() {
    for backend in BACKENDS {
        for kind in StackKind::ALL {
            let mut g = build_on(backend, kind, 4, 0, 41);
            let tag = format!("{backend:?}/{}", kind.name());
            if !g.supports_removal() {
                continue; // honest skip: the stack cannot express removal
            }
            for i in 0..6u32 {
                g.abcast_at(Time::from_millis(1 + 2 * i as u64), p(i % 4), vec![i as u8]);
            }
            g.remove_at(Time::from_millis(60), p(1), p(3));
            for i in 6..12u32 {
                g.abcast_at(
                    Time::from_millis(400 + 2 * i as u64),
                    p(i % 3),
                    vec![i as u8],
                );
            }
            let mut d = Driver::new();
            d.expect(&mut g, Time::from_secs(20), &tag, first_delivered(3, 12));

            let seqs = g.adelivered_payloads();
            check_prefix_consistency(&seqs[..3])
                .unwrap_or_else(|e| panic!("{tag}: order violation {e:?}"));
            // The removed member misses the post-removal suffix, and if it
            // saw the change its last installed view excludes it.
            assert!(
                seqs[3].len() < 12,
                "{tag}: removed member does not see the full stream"
            );
            if let Some(last) = g.views()[3].last() {
                assert!(
                    !last.contains(p(3)),
                    "{tag}: removed member's last view excludes it"
                );
            }
            let report = InvariantChecker::check(&g, 4);
            assert!(report.is_clean(), "{tag}: {:#?}", report.violations);
        }
    }
}

/// Partition + heal on every stack and backend: the majority side keeps
/// (or recovers) the stream, nothing splits the sequence space, and the
/// run is invariant-clean — the traditional stacks resolve the healed
/// minority through kill/exclusion + re-join, which the oracle absorbs as
/// an incarnation reset.
#[test]
fn partition_heal_on_every_stack() {
    for backend in BACKENDS {
        for kind in StackKind::ALL {
            let mut g = build_on(backend, kind, 5, 0, 42);
            let tag = format!("{backend:?}/{}", kind.name());
            for i in 0..5u32 {
                g.abcast_at(Time::from_millis(1 + 2 * i as u64), p(i), vec![i as u8]);
            }
            g.partition_at(
                Time::from_millis(40),
                vec![vec![p(0), p(1), p(2)], vec![p(3), p(4)]],
            );
            // Majority-side traffic during the split…
            for i in 5..9u32 {
                g.abcast_at(
                    Time::from_millis(300 + 2 * i as u64),
                    p(i % 3),
                    vec![i as u8],
                );
            }
            g.heal_at(Time::from_millis(700));
            // …and traffic after the heal.
            for i in 9..12u32 {
                g.abcast_at(Time::from_secs(3), p(i % 3), vec![i as u8]);
            }
            let mut d = Driver::new();
            d.expect(&mut g, Time::from_secs(30), &tag, first_delivered(3, 12));

            let seqs = g.adelivered_payloads();
            check_prefix_consistency(&seqs[..3])
                .unwrap_or_else(|e| panic!("{tag}: order violation {e:?}"));
            check_no_duplicates(&seqs).unwrap_or_else(|e| panic!("{tag}: duplicate {e:?}"));
            let report = InvariantChecker::check(&g, 5);
            assert!(report.is_clean(), "{tag}: {:#?}", report.violations);
        }
    }
}

/// One workload definition drives all three stacks identically on both
/// backends — the cross-stack comparison loop the scenario engine builds
/// on, via the zero-copy injection path.
#[test]
fn one_workload_definition_drives_all_stacks() {
    for backend in BACKENDS {
        let mut per_stack = Vec::new();
        for kind in StackKind::ALL {
            let mut g = build_on(backend, kind, 3, 0, 38);
            let tag = format!("{backend:?}/{}", kind.name());
            // The same closure-built stream, via the zero-copy path.
            for i in 0..6u32 {
                let t = Time::from_millis(1) + TimeDelta::from_millis(2).saturating_mul(i as u64);
                g.abcast_build_at(t, p(i % 3), &mut |buf| {
                    buf.clear();
                    buf.extend_from_slice(&[i as u8, 0xAB]);
                });
            }
            let mut d = Driver::new();
            d.expect(&mut g, Time::from_secs(20), &tag, all_delivered(6));
            per_stack.push((kind, g.metrics().total_sent()));
        }
        // Three architectures, three different costs for the same stream —
        // the comparison the paper's Section 4 is about.
        assert_eq!(per_stack.len(), 3);
        assert!(per_stack.iter().all(|&(_, sent)| sent > 0), "{backend:?}");
    }
}
