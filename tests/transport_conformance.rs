//! Trait-level conformance suite: one battery — steady-state agreement,
//! crash mid-stream, quiescence semantics, membership, capability markers —
//! run generically against **all three** [`StackKind`]s through the
//! [`GroupTransport`] façade.
//!
//! Nothing in this file names a concrete harness type: if it compiles and
//! passes, every stack honors the unified surface the same way, which is
//! exactly what lets workloads, scenarios and the replication layer swap
//! architectures with one builder argument.

use gcs::kernel::{ProcessId, Time};
use gcs::sim::{check_no_duplicates, check_prefix_consistency};
use gcs::{Group, GroupTransport, InvariantChecker, StackKind};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

fn build(kind: StackKind, members: usize, joiners: usize, seed: u64) -> Group {
    Group::builder()
        .members(members)
        .joiners(joiners)
        .stack(kind)
        .seed(seed)
        .build()
}

/// Steady state: every member of every stack delivers the same stream in
/// the same order, with no loss and no duplication.
#[test]
fn steady_state_agreement_on_every_stack() {
    for kind in StackKind::ALL {
        let mut g = build(kind, 4, 0, 31);
        assert_eq!(g.stack(), kind);
        assert_eq!(g.process_count(), 4);
        for i in 0..12u32 {
            g.abcast_at(Time::from_millis(1 + 2 * i as u64), p(i % 4), vec![i as u8]);
        }
        g.run_until(Time::from_secs(2));
        let seqs = g.adelivered_payloads();
        for (i, s) in seqs.iter().enumerate() {
            assert_eq!(s.len(), 12, "{}: p{i} delivered all", kind.name());
        }
        check_prefix_consistency(&seqs)
            .unwrap_or_else(|e| panic!("{}: order violation {e:?}", kind.name()));
        check_no_duplicates(&seqs).unwrap_or_else(|e| panic!("{}: duplicate {e:?}", kind.name()));
        // The delivery trace carries consistent identities: every record's
        // (sender, seq) appears at every correct process.
        let delivered = g.delivered();
        for s in &delivered {
            assert_eq!(s.len(), 12, "{}", kind.name());
        }
        let ids0: Vec<(ProcessId, u64)> = delivered[0].iter().map(|d| (d.sender, d.seq)).collect();
        for s in &delivered[1..] {
            let ids: Vec<(ProcessId, u64)> = s.iter().map(|d| (d.sender, d.seq)).collect();
            assert_eq!(ids, ids0, "{}: identities agree", kind.name());
        }
    }
}

/// Crash mid-stream: the survivors keep delivering, agree on the order, and
/// the dead process stops being reported alive.
#[test]
fn crash_mid_stream_keeps_survivors_consistent() {
    for kind in StackKind::ALL {
        let mut g = build(kind, 4, 0, 32);
        // A few messages land before the crash…
        for i in 0..4u32 {
            g.abcast_at(Time::from_millis(1 + i as u64), p(i % 3), vec![i as u8]);
        }
        g.crash_at(Time::from_millis(30), p(3));
        // …and the stream continues from the survivors afterwards.
        for i in 4..12u32 {
            g.abcast_at(
                Time::from_millis(200 + 2 * i as u64),
                p(i % 3),
                vec![i as u8],
            );
        }
        g.run_until(Time::from_secs(3));

        let alive = g.alive_flags();
        assert!(!alive[3], "{}: crashed process reported dead", kind.name());
        assert!(alive[..3].iter().all(|&a| a), "{}", kind.name());

        let seqs = g.adelivered_payloads();
        for i in 0..3 {
            assert_eq!(
                seqs[i].len(),
                12,
                "{}: survivor p{i} delivered the whole stream",
                kind.name()
            );
        }
        check_prefix_consistency(&seqs[..3])
            .unwrap_or_else(|e| panic!("{}: order violation {e:?}", kind.name()));
        check_no_duplicates(&seqs).unwrap_or_else(|e| panic!("{}: duplicate {e:?}", kind.name()));
    }
}

/// The steady-state and crash-mid-stream batteries hold under **both**
/// failure-detection modes of the new architecture: all-pairs heartbeats
/// and gossip ring-segment probing (the at-scale default above
/// `SCALE_THRESHOLD`) deliver the same streams in the same order and both
/// keep survivors consistent through a crash. Run at a size where gossip
/// genuinely rotates (n = 20 → fanout ≈ 5, a 4-tick cycle).
#[test]
fn both_fd_modes_pass_the_conformance_battery() {
    use gcs::core::{FdMode, StackConfig};
    use gcs::kernel::TimeDelta;
    for mode in [FdMode::AllPairs, FdMode::Gossip { fanout: 0 }] {
        let mut cfg = StackConfig::default();
        cfg.monitoring_timeout = TimeDelta::from_secs(3600);
        let mut g = Group::builder()
            .members(20)
            .stack_config(cfg)
            .fd_mode(mode)
            .seed(33)
            .build();
        for i in 0..8u32 {
            g.abcast_at(
                Time::from_millis(1 + 2 * i as u64),
                p(i % 20),
                vec![i as u8],
            );
        }
        g.crash_at(Time::from_millis(40), p(19));
        for i in 8..16u32 {
            g.abcast_at(
                Time::from_millis(300 + 2 * i as u64),
                p(i % 19),
                vec![i as u8],
            );
        }
        g.run_until(Time::from_secs(3));
        let alive = g.alive_flags();
        assert!(!alive[19], "{mode:?}: crashed process reported dead");
        assert!(alive[..19].iter().all(|&a| a), "{mode:?}");
        let seqs = g.adelivered_payloads();
        for (i, s) in seqs[..19].iter().enumerate() {
            assert_eq!(s.len(), 16, "{mode:?}: survivor p{i} delivered all");
        }
        check_prefix_consistency(&seqs[..19])
            .unwrap_or_else(|e| panic!("{mode:?}: order violation {e:?}"));
        check_no_duplicates(&seqs).unwrap_or_else(|e| panic!("{mode:?}: duplicate {e:?}"));
        let report = InvariantChecker::check(&g, 20);
        assert!(report.is_clean(), "{mode:?}: {:#?}", report.violations);
    }
}

/// A joiner started outside the group enters through the unified `join_at`
/// and participates in post-join traffic on every stack.
#[test]
fn join_through_the_unified_entry_point() {
    for kind in StackKind::ALL {
        let mut g = build(kind, 3, 1, 33);
        g.join_at(Time::from_millis(10), p(3), p(0));
        g.run_until(Time::from_millis(800));
        // Every founding member's last view includes the joiner.
        let views = g.views();
        for i in 0..3 {
            let last = views[i]
                .last()
                .unwrap_or_else(|| panic!("{}: p{i} installed no view", kind.name()));
            assert!(
                last.contains(p(3)),
                "{}: p{i} admitted the joiner",
                kind.name()
            );
        }
        // Post-join traffic reaches the joiner.
        g.abcast_at(Time::from_millis(900), p(1), b"post-join".to_vec());
        g.run_until(Time::from_secs(2));
        let seqs = g.adelivered_payloads();
        assert!(
            seqs[3].contains(&b"post-join".to_vec()),
            "{}: joiner receives post-join traffic",
            kind.name()
        );
    }
}

/// `run_to_quiescence` semantics are uniform: a live group never quiesces
/// (its heartbeat/token timers re-arm forever); once every process has
/// crashed, the residual events drain and the flag flips to `true`.
#[test]
fn quiescence_flag_is_meaningful_on_every_stack() {
    for kind in StackKind::ALL {
        // Live group: the workload completes but the group never quiesces.
        let mut g = build(kind, 3, 0, 34);
        g.abcast_at(Time::from_millis(1), p(0), b"m".to_vec());
        let quiesced = g.run_to_quiescence(Time::from_millis(500));
        assert!(
            !quiesced,
            "{}: a live group must not quiesce (timers re-arm)",
            kind.name()
        );
        assert_eq!(
            g.adelivered_payloads()[0],
            vec![b"m".to_vec()],
            "{}",
            kind.name()
        );

        // Crash-stop everything: the event queue drains and quiescence is
        // reachable (give the limit room for long-scheduled timers).
        for i in 0..3 {
            g.crash_at(Time::from_millis(600), p(i));
        }
        let quiesced = g.run_to_quiescence(Time::from_secs(7200));
        assert!(
            quiesced,
            "{}: an all-crashed group quiesces once residual events drain",
            kind.name()
        );
    }
}

/// Capability markers reflect the paper's pick-your-services modularity:
/// only the new architecture offers generic/reliable broadcast, while every
/// stack now executes scripted removal (Isis through its exclusion flush,
/// the ring through a sequenced leave); the markers and the entry points
/// agree.
#[test]
fn capability_markers_match_the_stacks() {
    for kind in StackKind::ALL {
        let g = build(kind, 3, 0, 35);
        let expect = kind == StackKind::NewArch;
        assert_eq!(g.supports_gbcast(), expect, "{}", kind.name());
        assert_eq!(g.supports_rbcast(), expect, "{}", kind.name());
        assert!(g.supports_removal(), "{}", kind.name());
    }
    // The supported path actually works end to end.
    let mut g = build(StackKind::NewArch, 3, 0, 36);
    g.rbcast_at(Time::from_millis(1), p(0), b"r".to_vec());
    g.run_until(Time::from_millis(500));
    assert!(
        g.delivered().iter().all(|s| s.len() == 1),
        "rbcast delivered everywhere"
    );
}

/// The unsupported entry points fail loudly, pointing at the marker.
#[test]
#[should_panic(expected = "supports_gbcast")]
fn gbcast_on_the_token_stack_panics_with_the_capability_hint() {
    use gcs::core::MessageClass;
    let mut g = build(StackKind::Token, 3, 0, 37);
    g.gbcast_at(Time::from_millis(1), p(0), MessageClass(0), b"x".to_vec());
}

/// Scripted removal mid-stream on every stack (honestly gated on the
/// capability marker): the survivors keep the stream alive and totally
/// ordered, the target's own last view excludes it, and the whole run is
/// invariant-clean.
#[test]
fn removal_mid_stream_on_every_stack() {
    for kind in StackKind::ALL {
        let mut g = build(kind, 4, 0, 41);
        if !g.supports_removal() {
            continue; // honest skip: the stack cannot express removal
        }
        for i in 0..6u32 {
            g.abcast_at(Time::from_millis(1 + 2 * i as u64), p(i % 4), vec![i as u8]);
        }
        g.remove_at(Time::from_millis(60), p(1), p(3));
        for i in 6..12u32 {
            g.abcast_at(
                Time::from_millis(400 + 2 * i as u64),
                p(i % 3),
                vec![i as u8],
            );
        }
        g.run_until(Time::from_secs(3));

        let seqs = g.adelivered_payloads();
        for i in 0..3 {
            assert_eq!(
                seqs[i].len(),
                12,
                "{}: survivor p{i} delivered the whole stream",
                kind.name()
            );
        }
        check_prefix_consistency(&seqs[..3])
            .unwrap_or_else(|e| panic!("{}: order violation {e:?}", kind.name()));
        // The removed member knows it is out: its last installed view (if
        // it saw the change) excludes it, and it misses the post-removal
        // suffix.
        assert!(
            seqs[3].len() < 12,
            "{}: removed member does not see the full stream",
            kind.name()
        );
        if let Some(last) = g.views()[3].last() {
            assert!(
                !last.contains(p(3)),
                "{}: removed member's last view excludes it",
                kind.name()
            );
        }
        let report = InvariantChecker::check(&g, 4);
        assert!(
            report.is_clean(),
            "{}: {:#?}",
            kind.name(),
            report.violations
        );
    }
}

/// Partition + heal on every stack: the majority side keeps (or recovers)
/// the stream, nothing splits the sequence space, and the run is
/// invariant-clean — the traditional stacks resolve the healed minority
/// through kill/exclusion + re-join, which the oracle absorbs as an
/// incarnation reset.
#[test]
fn partition_heal_on_every_stack() {
    for kind in StackKind::ALL {
        let mut g = build(kind, 5, 0, 42);
        for i in 0..5u32 {
            g.abcast_at(Time::from_millis(1 + 2 * i as u64), p(i), vec![i as u8]);
        }
        g.partition_at(
            Time::from_millis(40),
            vec![vec![p(0), p(1), p(2)], vec![p(3), p(4)]],
        );
        // Majority-side traffic during the split…
        for i in 5..9u32 {
            g.abcast_at(
                Time::from_millis(300 + 2 * i as u64),
                p(i % 3),
                vec![i as u8],
            );
        }
        g.heal_at(Time::from_millis(700));
        // …and traffic after the heal.
        for i in 9..12u32 {
            g.abcast_at(Time::from_secs(3), p(i % 3), vec![i as u8]);
        }
        g.run_until(Time::from_secs(6));

        let seqs = g.adelivered_payloads();
        for i in 0..3 {
            assert_eq!(
                seqs[i].len(),
                12,
                "{}: majority member p{i} delivered everything: {:?}",
                kind.name(),
                seqs.iter().map(|s| s.len()).collect::<Vec<_>>()
            );
        }
        check_prefix_consistency(&seqs[..3])
            .unwrap_or_else(|e| panic!("{}: order violation {e:?}", kind.name()));
        check_no_duplicates(&seqs).unwrap_or_else(|e| panic!("{}: duplicate {e:?}", kind.name()));
        let report = InvariantChecker::check(&g, 5);
        assert!(
            report.is_clean(),
            "{}: {:#?}",
            kind.name(),
            report.violations
        );
    }
}

/// One workload definition drives all three stacks identically — the
/// cross-stack comparison loop the scenario engine builds on.
#[test]
fn one_workload_definition_drives_all_stacks() {
    use gcs::kernel::TimeDelta;
    let mut per_stack = Vec::new();
    for kind in StackKind::ALL {
        let mut g = build(kind, 3, 0, 38);
        // The same closure-built stream, via the zero-copy injection path.
        for i in 0..6u32 {
            let t = Time::from_millis(1) + TimeDelta::from_millis(2).saturating_mul(i as u64);
            g.abcast_build_at(t, p(i % 3), &mut |buf| {
                buf.clear();
                buf.extend_from_slice(&[i as u8, 0xAB]);
            });
        }
        g.run_until(Time::from_secs(2));
        let seqs = g.adelivered_payloads();
        assert!(seqs.iter().all(|s| s.len() == 6), "{}", kind.name());
        per_stack.push((kind, g.metrics().total_sent()));
    }
    // Three architectures, three different costs for the same stream — the
    // comparison the paper's Section 4 is about.
    assert_eq!(per_stack.len(), 3);
    assert!(per_stack.iter().all(|&(_, sent)| sent > 0));
}
