//! F1–F7: every architecture figure of the paper as a runnable stack.
//!
//! Each test builds the corresponding protocol stack, drives the scenario
//! the paper uses to motivate it, and checks the properties the figure is
//! supposed to provide.

use gcs::core::{ConflictRelation, MessageClass, StackConfig};
use gcs::kernel::{ProcessId, Time, TimeDelta};
use gcs::sim::{check_no_duplicates, check_prefix_consistency, check_total_order};
use gcs::traditional::IsisConfig;
use gcs::{Group, GroupTransport, StackKind};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

/// F1 — Fig 1 (Isis): membership below view synchrony below abcast; a crash
/// causes an exclusion view change, after which ordering continues under a
/// new sequencer.
#[test]
fn isis_stack_fig1() {
    let mut sim = Group::builder()
        .members(4)
        .stack(StackKind::Isis)
        .seed(101)
        .build();
    for i in 0..8u32 {
        sim.abcast_at(Time::from_millis(1 + i as u64), p(i % 4), vec![i as u8]);
    }
    sim.crash_at(Time::from_millis(50), p(0));
    sim.abcast_at(Time::from_millis(400), p(2), b"post".to_vec());
    sim.run_until(Time::from_secs(2));

    let seqs = sim.adelivered_payloads();
    check_prefix_consistency(&seqs[1..]).expect("survivors agree on the order");
    check_no_duplicates(&seqs).expect("no duplicates");
    // The crash forced a membership change (the traditional coupling).
    let last = sim.views()[1]
        .last()
        .expect("exclusion view change")
        .clone();
    assert_eq!(last.members, vec![p(1), p(2), p(3)]);
    assert!(seqs[1].contains(&b"post".to_vec()));
}

/// F2 — Fig 2 (Phoenix): same layering, but exclusion decisions survive at
/// the granularity of processes, not processors — modelled by the same
/// stack where a killed process is re-admitted rather than lost.
#[test]
fn phoenix_stack_fig2() {
    let mut cfg = IsisConfig::default();
    cfg.auto_rejoin = true;
    let mut sim = Group::builder()
        .members(3)
        .stack(StackKind::Isis)
        .isis_config(cfg)
        .seed(102)
        .build();
    sim.partition_at(Time::from_millis(40), vec![vec![p(0), p(1)], vec![p(2)]]);
    sim.heal_at(Time::from_millis(400));
    sim.run_until(Time::from_secs(3));
    let (killed, rejoined) = sim
        .as_isis()
        .expect("isis stack")
        .kill_and_rejoin_times(p(2));
    assert!(killed.is_some(), "p2 was excluded while unreachable");
    assert!(rejoined.is_some(), "process-level recovery: p2 re-admitted");
    let last = sim.views()[0].last().expect("views").clone();
    assert_eq!(last.members.len(), 3, "full membership restored");
}

/// F3 — Fig 3 (RMP): fault-free membership rides the *total order* (a join
/// is an ordered message), while crashes go through the separate
/// fault-tolerant reformation protocol.
#[test]
fn rmp_stack_fig3() {
    let mut sim = Group::builder()
        .members(3)
        .joiners(1)
        .stack(StackKind::Token)
        .seed(103)
        .build();
    // Fault-free join: ordered like any other message.
    sim.join_at(Time::from_millis(5), p(3), p(0));
    sim.abcast_at(Time::from_millis(80), p(0), b"hello".to_vec());
    sim.run_until(Time::from_millis(500));
    for i in 0..4 {
        let ring = sim.views()[i].last().expect("ring").clone();
        assert!(ring.contains(p(3)), "p{i}: join ordered through abcast");
    }
    // Fault path: reformation.
    sim.crash_at(Time::from_millis(500), p(0));
    sim.abcast_at(Time::from_millis(800), p(1), b"post-crash".to_vec());
    sim.run_until(Time::from_secs(2));
    let seqs = sim.adelivered_payloads();
    assert!(seqs[1].contains(&b"post-crash".to_vec()));
    assert_eq!(seqs[1], seqs[2]);
}

/// F4 — Fig 4 (Totem): token ordering + membership (token-loss detection)
/// + recovery of messages lost with the broken ring.
#[test]
fn totem_stack_fig4() {
    let mut sim = Group::builder()
        .members(5)
        .stack(StackKind::Token)
        .seed(104)
        .build();
    for i in 0..15u32 {
        sim.abcast_at(
            Time::from_millis(1 + (i / 5) as u64 * 3),
            p(i % 5),
            vec![i as u8],
        );
    }
    sim.crash_at(Time::from_millis(30), p(2));
    sim.run_until(Time::from_secs(2));
    let seqs = sim.adelivered_payloads();
    let survivors: Vec<Vec<Vec<u8>>> = (0..5)
        .filter(|&i| i != 2)
        .map(|i| seqs[i].clone())
        .collect();
    check_prefix_consistency(&survivors).expect("recovered order agrees");
    // Reformation excluded the crashed member.
    for i in [0usize, 1, 3, 4] {
        let ring = sim.views()[i].last().expect("reformed").clone();
        assert!(!ring.contains(p(2)), "p{i} excluded the crashed member");
    }
}

/// F5 — Fig 5 (Ensemble): a *modular* linear stack assembled from layers by
/// the composition kernel, with events travelling up and down.
#[test]
fn ensemble_stack_fig5() {
    use gcs::kernel::{Direction, Event, Layer, LayerContext, Process, StackBuilder};

    #[derive(Clone, Debug, PartialEq)]
    enum Ev {
        Send(u32),
        Recv(u32),
    }
    impl Event for Ev {
        fn kind(&self) -> &'static str {
            "ev"
        }
    }

    /// "stable"-like bookkeeping layer: counts what passes through.
    struct Counter {
        up: u32,
        down: u32,
    }
    impl Layer<Ev> for Counter {
        fn name(&self) -> &'static str {
            "stable"
        }
        fn on_event(&mut self, ev: Ev, dir: Direction, ctx: &mut LayerContext<'_, '_, Ev>) {
            match dir {
                Direction::Up => self.up += 1,
                Direction::Down => self.down += 1,
            }
            ctx.pass(dir, ev);
        }
    }

    /// Bottom "network" layer.
    struct Net;
    impl Layer<Ev> for Net {
        fn name(&self) -> &'static str {
            "net"
        }
        fn on_event(&mut self, ev: Ev, dir: Direction, ctx: &mut LayerContext<'_, '_, Ev>) {
            match (dir, ev) {
                (Direction::Down, Ev::Send(n)) => ctx.send(ProcessId::new(1), Ev::Recv(n)),
                (Direction::Up, ev) => ctx.up(ev),
                _ => {}
            }
        }
    }

    let build = |id: ProcessId| {
        let stack = StackBuilder::new("ensemble")
            .layer(Counter { up: 0, down: 0 }) // top (applic side)
            .layer(Counter { up: 0, down: 0 }) // middle
            .layer(Net) // bottom
            .build();
        assert_eq!(stack.depth(), 3);
        assert_eq!(stack.layer_names(), vec!["net", "stable", "stable"]);
        Process::builder(id).with(stack).build()
    };
    let mut sim: gcs::sim::SimWorld<Ev> = gcs::sim::SimWorld::new(gcs::sim::SimConfig::lan(105));
    sim.add_node(build);
    sim.add_node(build);
    sim.inject_at(Time::from_millis(1), p(0), "ensemble", Ev::Send(9));
    assert!(sim.run_to_quiescence(Time::from_secs(1)));
    // The event traversed p0's stack downwards and p1's stack upwards.
    let got: Vec<Ev> = sim
        .trace()
        .entries()
        .iter()
        .map(|e| e.event.clone())
        .collect();
    assert_eq!(got, vec![Ev::Recv(9)]);
}

/// F6 — Fig 6 (new architecture, overview): consensus+FD at the bottom,
/// abcast above them, membership above abcast. A crash does *not* trigger a
/// view change yet ordering continues.
#[test]
fn new_stack_fig6() {
    let mut cfg = StackConfig::default();
    cfg.monitoring_timeout = TimeDelta::from_secs(3600);
    let mut g = Group::builder()
        .members(5)
        .stack_config(cfg)
        .seed(106)
        .build();
    g.crash_at(Time::from_millis(30), p(0));
    g.crash_at(Time::from_millis(35), p(4));
    for i in 0..10u32 {
        g.abcast_at(
            Time::from_millis(40 + i as u64 * 2),
            p(1 + i % 3),
            vec![i as u8],
        );
    }
    g.run_until(Time::from_secs(3));
    let seqs = g.adelivered_payloads();
    for i in 1..4 {
        assert_eq!(seqs[i].len(), 10, "p{i} delivered all despite f=2 crashes");
    }
    check_prefix_consistency(&seqs[1..4]).expect("total order");
    assert!(
        g.views().iter().all(|v| v.is_empty()),
        "no membership change needed"
    );
}

/// F7 — Fig 7 (new architecture, augmented): generic broadcast between the
/// application and atomic broadcast, ordering only what conflicts.
#[test]
fn new_stack_fig7() {
    let mut cfg = StackConfig::default();
    let mut rel = ConflictRelation::none(4);
    rel.set_conflict(MessageClass(1), MessageClass(1));
    cfg.conflict = rel;
    let mut g = Group::builder()
        .members(4)
        .stack_config(cfg)
        .seed(107)
        .build();
    // Class 0 messages commute; class 1 conflict with each other only.
    for i in 0..12u32 {
        let class = MessageClass((i % 2) as u16);
        g.gbcast_at(
            Time::from_millis(1 + i as u64),
            p(i % 4),
            class,
            vec![i as u8],
        );
    }
    g.run_until(Time::from_secs(3));
    let ids = g.as_new_arch().expect("new arch").gdelivered_ids();
    for s in &ids {
        assert_eq!(s.len(), 12);
    }
    check_total_order(&ids).expect("conflicting pairs ordered consistently");
    check_no_duplicates(&ids).expect("no duplicates");
}
