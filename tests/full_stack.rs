//! F9 — the full Fig 9 architecture end to end: joins with state transfer,
//! exclusion through the monitoring component, output-triggered suspicion,
//! and group communication properties across many seeds.

use gcs::core::{DeliveryKind, Ev, MonitoringPolicy, StackConfig};
use gcs::kernel::{ProcessId, Time, TimeDelta};
use gcs::sim::{check_agreement, check_no_duplicates, check_prefix_consistency};
use gcs::{Group, GroupTransport};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

/// End-to-end life of a group: traffic, a join, a crash, an exclusion —
/// everything through the ordinary ordered-message machinery.
#[test]
fn join_crash_exclude_lifecycle() {
    let mut cfg = StackConfig::default();
    cfg.monitoring_timeout = TimeDelta::from_millis(250);
    cfg.state_size = 1024;
    let mut g = Group::builder()
        .members(3)
        .joiners(1)
        .stack_config(cfg)
        .seed(900)
        .build();

    for i in 0..30u64 {
        g.abcast_at(
            Time::from_millis(5 + 10 * i),
            p((i % 2) as u32),
            vec![i as u8],
        );
    }
    g.join_at(Time::from_millis(60), p(3), p(1));
    g.crash_at(Time::from_millis(150), p(2));
    g.run_until(Time::from_secs(3));

    // Views: everyone alive converges to v2 = {p0, p1, p3}.
    let mut finals = Vec::new();
    for i in [0u32, 1, 3] {
        let v = g.views()[i as usize]
            .last()
            .expect("views installed")
            .clone();
        finals.push(v);
    }
    assert!(
        finals.windows(2).all(|w| w[0] == w[1]),
        "view agreement: {finals:?}"
    );
    assert_eq!(finals[0].members.len(), 3);
    assert!(!finals[0].contains(p(2)));

    // Ordering: members deliver the same totally ordered sequence.
    let seqs = g.adelivered_payloads();
    assert_eq!(
        seqs[0].len(),
        30,
        "all stream messages delivered: {:?}",
        seqs[0].len()
    );
    check_prefix_consistency(&[seqs[0].clone(), seqs[1].clone()]).expect("total order");
    check_no_duplicates(&seqs).expect("no duplicates");
}

/// Group communication properties hold across seeds and fault schedules
/// (the repeated-seed harness is the paper-scale confidence check).
#[test]
fn properties_across_seeds() {
    for seed in 0..12u64 {
        let mut cfg = StackConfig::default();
        cfg.monitoring_timeout = TimeDelta::from_secs(3600);
        let mut g = Group::builder()
            .members(5)
            .stack_config(cfg)
            .seed(seed)
            .build();
        let crash_victim = p((seed % 5) as u32);
        g.crash_at(Time::from_millis(20 + (seed % 7) * 13), crash_victim);
        for i in 0..15u32 {
            let sender = p(1 + (seed as u32 + i) % 4);
            if sender != crash_victim {
                g.abcast_at(
                    Time::from_millis(5 + 7 * i as u64),
                    sender,
                    vec![i as u8, seed as u8],
                );
            }
        }
        g.run_until(Time::from_secs(4));
        let seqs = g.adelivered_payloads();
        check_prefix_consistency(
            &seqs
                .iter()
                .enumerate()
                .filter(|(i, _)| p(*i as u32) != crash_victim)
                .map(|(_, s)| s.clone())
                .collect::<Vec<_>>(),
        )
        .unwrap_or_else(|e| panic!("seed {seed}: order violation {e:?}"));
        check_no_duplicates(&seqs)
            .unwrap_or_else(|(i, m)| panic!("seed {seed}: dup {m:?} at p{i}"));
        check_agreement(&seqs, &g.alive_flags())
            .unwrap_or_else(|(a, b, _)| panic!("seed {seed}: agreement violation p{a}/p{b}"));
    }
}

/// Output-triggered suspicion (§3.3.2): with the FD's monitoring class
/// disabled, a crashed peer is still excluded because the reliable channel
/// reports it stuck.
#[test]
fn output_triggered_exclusion() {
    let mut cfg = StackConfig::default();
    cfg.monitoring = MonitoringPolicy {
        threshold: 1,
        use_fd: false,
        use_output_triggered: true,
    };
    cfg.monitoring_timeout = TimeDelta::from_secs(3600); // FD class never fires
    cfg.rc.stuck_after = TimeDelta::from_millis(200);
    let mut g = Group::builder()
        .members(3)
        .stack_config(cfg)
        .seed(901)
        .build();
    g.crash_at(Time::from_millis(30), p(2));
    // Keep sending so the reliable channel accumulates unacked messages.
    for i in 0..40u64 {
        g.abcast_at(Time::from_millis(5 + 15 * i), p(0), vec![i as u8]);
    }
    g.run_until(Time::from_secs(4));
    let v = g.views()[0].last().expect("exclusion happened").clone();
    assert!(
        !v.contains(p(2)),
        "stuck peer excluded via output-triggered suspicion"
    );
}

/// FIFO generic broadcast (paper footnote 9): with FIFO enabled, every
/// member delivers each sender's messages in broadcast order, across seeds
/// and regardless of acknowledgement races.
#[test]
fn fifo_generic_broadcast_per_sender_order() {
    for seed in 0..8u64 {
        let mut cfg = StackConfig::default();
        cfg.fifo_generic = true;
        // Nothing conflicts: without FIFO, ack races can invert a sender's
        // messages; with FIFO they cannot.
        cfg.conflict = gcs::core::ConflictRelation::none(4);
        let mut g = Group::builder()
            .members(4)
            .stack_config(cfg)
            .seed(seed)
            .build();
        for i in 0..10u32 {
            // Two rapid-fire messages per sender per round.
            g.gbcast_at(
                Time::from_micros(500 + 100 * i as u64),
                p(i % 4),
                gcs::core::MessageClass(0),
                vec![i as u8],
            );
        }
        g.run_until(Time::from_secs(3));
        let ids = g.as_new_arch().expect("new arch").gdelivered_ids();
        for (i, seq) in ids.iter().enumerate() {
            assert_eq!(seq.len(), 10, "seed {seed}: p{i} delivered all");
            // Per-sender sequence numbers must be increasing.
            let mut last: std::collections::HashMap<ProcessId, u64> = Default::default();
            for id in seq {
                if let Some(prev) = last.insert(id.sender, id.seq) {
                    assert!(id.seq > prev, "seed {seed}: FIFO violated at p{i}: {seq:?}");
                }
            }
        }
    }
}

/// Same view delivery (§4.4): every delivery is tagged with the view id in
/// which it happened, and deliveries never precede the view they claim.
#[test]
fn same_view_delivery_tagging() {
    let mut cfg = StackConfig::default();
    cfg.monitoring_timeout = TimeDelta::from_millis(250);
    let mut g = Group::builder()
        .members(3)
        .stack_config(cfg)
        .seed(902)
        .build();
    g.crash_at(Time::from_millis(100), p(2));
    for i in 0..30u64 {
        g.abcast_at(Time::from_millis(5 + 12 * i), p(0), vec![i as u8]);
    }
    g.run_until(Time::from_secs(3));
    // At p0: reconstruct (view at delivery time) and check tags.
    let mut current_view = 0u64;
    for e in g.as_new_arch().expect("new arch").trace().of_proc(p(0)) {
        match &e.event {
            Ev::ViewInstalled(v) => current_view = v.id,
            Ev::Deliver(d) if d.kind == DeliveryKind::Atomic => {
                assert_eq!(d.view, current_view, "delivery tagged with its view");
            }
            _ => {}
        }
    }
    // And a view change did happen.
    assert!(g.views()[0].last().is_some());
}
