//! # gcs — group communication middleware, the AB-GB architecture
//!
//! A full reproduction of *A Step Towards a New Generation of Group
//! Communication Systems* (Mena, Schiper, Wojciechowski — Middleware 2003,
//! EPFL TR IC/2003/01): the proposed architecture where **atomic broadcast
//! is the basic abstraction** and **generic broadcast replaces view
//! synchrony**, together with runnable **traditional GM-VS baselines**
//! (Isis-style and token-ring stacks) and a replication layer (active and
//! passive) on top.
//!
//! The workspace crates, re-exported here:
//!
//! * [`api`] — **the public façade**: the [`GroupTransport`] trait (one
//!   surface over all three stacks, with `supports_*` capability markers)
//!   and the [`Group`]/[`GroupBuilder`] entry point composing stack choice
//!   × topology × schedule × seed. Start here.
//! * [`kernel`] — the protocol-composition framework (Appia/Cactus
//!   counterpart): components, events, timers, linear stacks.
//! * [`sim`] — deterministic discrete-event simulator: virtual time,
//!   configurable network, fault injection, metrics, trace checking.
//! * [`net`] — the reliable channel (acks, retransmission, FIFO,
//!   output-triggered suspicion).
//! * [`fd`] — heartbeat failure detection with independent timeout classes.
//! * [`consensus`] — Chandra-Toueg ◇S consensus (+ Paxos ablation).
//! * [`core`] — the new architecture itself: atomic broadcast over
//!   consensus, thrifty generic broadcast, membership above abcast,
//!   monitoring-driven exclusion.
//! * [`traditional`] — the baselines the paper compares against.
//! * [`live`] — the live backend: members as OS threads, wall-clock
//!   timers, frames over channels or loopback TCP — select it with
//!   `Group::builder().backend(Backend::Live)`.
//! * [`replication`] — active (state machine) and passive (primary-backup)
//!   replication, generic over [`GroupTransport`] so the same service runs
//!   on any stack.
//!
//! ## Quickstart
//!
//! ```
//! use gcs::{Group, GroupTransport, StackKind};
//! use gcs::kernel::{ProcessId, Time};
//!
//! // Three replicas of the new architecture on a simulated LAN; swap
//! // `StackKind::Isis` or `StackKind::Token` in to compare baselines.
//! let mut group = Group::builder()
//!     .members(3)
//!     .stack(StackKind::NewArch)
//!     .seed(42)
//!     .build();
//! group.abcast_at(Time::from_millis(1), ProcessId::new(0), b"m1".to_vec());
//! group.abcast_at(Time::from_millis(1), ProcessId::new(2), b"m2".to_vec());
//! group.run_until(Time::from_millis(500));
//!
//! // Same messages, same order, at every replica.
//! let delivered = group.adelivered_payloads();
//! assert_eq!(delivered[0], delivered[1]);
//! assert_eq!(delivered[1], delivered[2]);
//!
//! // A live group never quiesces (heartbeats re-arm forever), so
//! // `run_to_quiescence` reports `false` — see its docs.
//! assert!(!group.run_to_quiescence(Time::from_secs(1)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gcs_api as api;
pub use gcs_consensus as consensus;
pub use gcs_core as core;
pub use gcs_fd as fd;
pub use gcs_kernel as kernel;
pub use gcs_live as live;
pub use gcs_net as net;
pub use gcs_replication as replication;
pub use gcs_sim as sim;
pub use gcs_traditional as traditional;

pub use gcs_api::{
    Backend, Group, GroupBuilder, GroupTransport, InvariantChecker, InvariantKind, OracleReport,
    StackKind, TransportDelivery, Violation,
};
