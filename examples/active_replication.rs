//! Active replication (state machine approach, §3.2.2): a replicated KV
//! store where every replica executes every request in the abcast order —
//! first on the new architecture under crashes, then the same client
//! workload on all three stacks through the unified transport.
//!
//! ```text
//! cargo run --example active_replication
//! ```

use gcs::kernel::{ProcessId, Time, TimeDelta};
use gcs::replication::active::{ActiveGroup, KvStore, StateMachine};
use gcs::StackKind;

fn main() {
    let p = ProcessId::new;
    let mut cfg = gcs::core::StackConfig::default();
    cfg.monitoring_timeout = TimeDelta::from_secs(3600);
    let mut service: ActiveGroup<KvStore> = ActiveGroup::new(5, cfg, 3);

    // Clients hit different replicas with conflicting writes.
    service.client_request(Time::from_millis(1), p(0), b"set owner=alice".to_vec());
    service.client_request(Time::from_millis(1), p(3), b"set owner=bob".to_vec());
    service.client_request(Time::from_millis(2), p(1), b"set color=green".to_vec());

    // Two replicas crash (f < n/2): the service keeps running.
    service.crash_at(Time::from_millis(40), p(0));
    service.crash_at(Time::from_millis(45), p(4));
    service.client_request(Time::from_millis(60), p(2), b"set after=crashes".to_vec());

    service.run_until(Time::from_secs(3));

    let states = service.replica_states();
    let alive = service.alive();
    for (i, (state, ok)) in states.iter().zip(&alive).enumerate() {
        println!(
            "replica {i} ({}): owner={:?} color={:?} after={:?}",
            if *ok { "alive" } else { "crashed" },
            state.get("owner"),
            state.get("color"),
            state.get("after"),
        );
    }
    let survivors: Vec<&KvStore> = states
        .iter()
        .zip(&alive)
        .filter(|(_, ok)| **ok)
        .map(|(s, _)| s)
        .collect();
    assert!(survivors.windows(2).all(|w| w[0].digest() == w[1].digest()));
    println!("\nall surviving replicas converged on an identical state.");

    // The cross-stack comparison the unified transport enables: the same
    // replicated service on every architecture, one line to swap stacks.
    println!("\nsame workload across all three stacks:");
    for kind in StackKind::ALL {
        let mut svc: ActiveGroup<KvStore> = ActiveGroup::on_stack(kind, 3, 9);
        svc.client_request(Time::from_millis(1), p(0), b"set k=1".to_vec());
        svc.client_request(Time::from_millis(2), p(1), b"set k=2".to_vec());
        svc.run_until(Time::from_secs(2));
        let states = svc.replica_states();
        assert!(states.windows(2).all(|w| w[0] == w[1]), "replica agreement");
        println!(
            "  {:<9} converged on k={:?}",
            kind.name(),
            states[0].get("k").unwrap_or("?")
        );
    }
}
