//! Membership on top of atomic broadcast (§3.1.1): a join with state
//! transfer, a crash detected by the monitoring component's long timeout,
//! and the resulting exclusion — all as ordinary ordered messages.
//!
//! ```text
//! cargo run --example membership_dynamics
//! ```

use gcs::kernel::{ProcessId, Time, TimeDelta};
use gcs::{Group, GroupTransport};

fn main() {
    let p = ProcessId::new;
    let mut cfg = gcs::core::StackConfig::default();
    cfg.monitoring_timeout = TimeDelta::from_millis(300); // exclusion timeout
    cfg.state_size = 4096; // joiners receive 4 KiB of application state
    let mut group = Group::builder()
        .members(3)
        .joiners(1)
        .stack_config(cfg)
        .seed(21)
        .build();

    // p3 joins through p0 at t=20ms.
    group.join_at(Time::from_millis(20), p(3), p(0));
    // p2 crashes at t=200ms; the monitoring component excludes it after its
    // long-timeout suspicion fires (failure detection stays decoupled).
    group.crash_at(Time::from_millis(200), p(2));
    // Traffic keeps flowing throughout.
    for i in 0..40u64 {
        group.abcast_at(
            Time::from_millis(10 + 20 * i),
            p((i % 2) as u32),
            vec![i as u8],
        );
    }
    group.run_until(Time::from_secs(3));

    for i in [0u32, 1, 3] {
        let views = &group.views()[i as usize];
        let rendered: Vec<String> = views
            .iter()
            .map(|v| {
                format!(
                    "v{}{:?}",
                    v.id,
                    v.members.iter().map(|m| m.raw()).collect::<Vec<_>>()
                )
            })
            .collect();
        println!("p{i} views: {}", rendered.join(" -> "));
    }
    let final_views: Vec<_> = [0u32, 1, 3]
        .iter()
        .map(|&i| {
            group.views()[i as usize]
                .last()
                .expect("views installed")
                .clone()
        })
        .collect();
    assert!(
        final_views.windows(2).all(|w| w[0] == w[1]),
        "view agreement"
    );
    assert!(!final_views[0].contains(p(2)), "crashed member excluded");
    assert!(final_views[0].contains(p(3)), "joiner admitted");

    let seqs = group.adelivered_payloads();
    assert_eq!(seqs[0], seqs[1], "same total order at old members");
    println!(
        "\nfinal view v{} {:?}; {} messages delivered in agreement at the members.",
        final_views[0].id,
        final_views[0].members,
        seqs[0].len()
    );
}
