//! The paper's Fig 8: passive replication over generic broadcast. An
//! `update` from the primary races a `primary-change(s1)` from a backup;
//! generic broadcast guarantees exactly one of the two legal outcomes —
//! identically at every replica.
//!
//! ```text
//! cargo run --example passive_replication
//! ```

use gcs::kernel::{ProcessId, Time};
use gcs::replication::passive::PassiveGroup;
use gcs::GroupTransport;

fn main() {
    let p = ProcessId::new;
    let mut outcome1 = 0;
    let mut outcome2 = 0;

    for seed in 0..20u64 {
        let mut group = PassiveGroup::new(3, seed);
        // Passive replication is a generic-broadcast protocol: the builder
        // pinned a stack that provides it (the capability marker proves it).
        assert!(group.group().supports_gbcast());
        // s1 (p0) processes a client request and broadcasts the update…
        group.update_at(Time::from_millis(10), p(0), 1, b"state-update");
        // …while s2 (p1) suspects s1 and broadcasts primary-change(s1),
        // "approximately at the same time t" (Fig 8).
        group.primary_change_at(Time::from_millis(4 + seed % 13), p(1), p(0));
        group.run_until(Time::from_secs(2));

        let outcomes = group.outcomes();
        assert!(outcomes.iter().all(|o| o == &outcomes[0]), "replicas agree");
        let o = &outcomes[0];
        assert_eq!(o.primary, p(1), "s2 is the new primary");
        if o.applied == vec![1] {
            outcome1 += 1; // update ordered before the primary change
        } else {
            assert_eq!(o.ignored, vec![1]);
            outcome2 += 1; // change first: deposed primary's update ignored
        }
    }

    println!("20 seeded races, all replicas agreed in every run:");
    println!("  outcome 1 (update delivered before primary-change): {outcome1}");
    println!("  outcome 2 (primary-change first, update ignored, client re-issues): {outcome2}");
    println!("\nthe old primary was rotated to the tail of the view, never excluded —");
    println!("no view synchrony component was involved (paper §3.2.3).");
    assert!(outcome1 > 0 && outcome2 > 0, "both legal outcomes observed");
}
