//! Live-backend quickstart: the same three-member group as
//! `quickstart.rs`, but on `Backend::Live` — every member is a real OS
//! thread running the kernel dispatch loop, frames travel over real
//! channels, and timers fire on the wall clock. The façade is identical;
//! only the builder line changes.
//!
//! Because the clock is real, the drive loop is bound-based: we poll until
//! the survivors have delivered everything or a wall deadline passes,
//! instead of relying on virtual-time quiescence.
//!
//! ```text
//! cargo run --example live_group
//! ```

use gcs::kernel::{ProcessId, Time, TimeDelta};
use gcs::{Backend, Group, GroupTransport, StackKind};

fn main() {
    let p = ProcessId::new;

    // Identical to the simulator quickstart except for `.backend(...)`.
    // Swap in `.wire(gcs::live::WireMode::Tcp)` to run the same frames
    // over loopback TCP sockets instead of in-process channels.
    let mut cfg = gcs::core::StackConfig::default();
    cfg.monitoring_timeout = TimeDelta::from_secs(3600); // demo: never exclude
    let mut group = Group::builder()
        .members(3)
        .stack(StackKind::NewArch)
        .stack_config(cfg)
        .backend(Backend::Live)
        .seed(7)
        .build();

    // Concurrent broadcasts from different members. Times are on the
    // group's wall clock (t = 0 at build); anything already in the past
    // is sent immediately.
    group.abcast_at(Time::from_millis(1), p(0), b"alpha".to_vec());
    group.abcast_at(Time::from_millis(1), p(1), b"bravo".to_vec());
    group.abcast_at(Time::from_millis(2), p(2), b"charlie".to_vec());

    // p0 crashes — on this backend that kills its thread, mid-protocol,
    // for real. The group keeps ordering without any membership change
    // (the paper's §3.1.1: abcast does not rely on group membership).
    group.crash_at(Time::from_millis(50), p(0));
    group.abcast_at(Time::from_millis(60), p(1), b"delta".to_vec());

    // Drive in 5 ms slices of real time until both survivors have
    // delivered all four messages (or we give up — which would be a bug).
    let deadline = Time::from_secs(10);
    let mut cursor = Time::ZERO;
    let done = |g: &Group| {
        let d = g.adelivered_payloads();
        d[1].len() >= 4 && d[2].len() >= 4
    };
    while !done(&group) {
        assert!(cursor < deadline, "survivors never finished the stream");
        cursor += TimeDelta::from_millis(5);
        group.run_until(cursor);
    }

    let delivered = group.adelivered_payloads();
    for (i, seq) in delivered.iter().enumerate() {
        let rendered: Vec<String> = seq
            .iter()
            .map(|m| String::from_utf8_lossy(m).into_owned())
            .collect();
        println!("p{i} delivered: {rendered:?}");
    }
    assert_eq!(
        delivered[1], delivered[2],
        "identical order at the survivors"
    );
    assert_eq!(delivered[1].len(), 4, "all four messages delivered");
    assert!(group.views()[1].is_empty(), "no view change was needed");

    let live = group.as_live().expect("built with Backend::Live");
    println!(
        "\ntotal order held across a real thread crash in {:.1} ms of wall time.",
        live.now().since(Time::ZERO).as_millis_f64()
    );
    println!("\nmessage accounting:\n{}", group.metrics());
}
