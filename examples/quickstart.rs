//! Quickstart: a three-member group built through the `Group` façade,
//! atomic broadcast, and the architectural headline — a crash does not need
//! a view change.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gcs::kernel::{ProcessId, Time, TimeDelta};
use gcs::{Group, GroupTransport, StackKind};

fn main() {
    let p = ProcessId::new;

    // Three founding members of the new architecture; one seed = one
    // reproducible run. Swap `.stack(StackKind::Isis)` in to watch the
    // baseline pay a view change for the same crash.
    let mut cfg = gcs::core::StackConfig::default();
    cfg.monitoring_timeout = TimeDelta::from_secs(3600); // demo: never exclude
    let mut group = Group::builder()
        .members(3)
        .stack(StackKind::NewArch)
        .stack_config(cfg)
        .seed(7)
        .build();

    // Concurrent broadcasts from different members.
    group.abcast_at(Time::from_millis(1), p(0), b"alpha".to_vec());
    group.abcast_at(Time::from_millis(1), p(1), b"bravo".to_vec());
    group.abcast_at(Time::from_millis(2), p(2), b"charlie".to_vec());

    // p0 crashes; the group keeps ordering without any membership change
    // (the paper's §3.1.1: abcast does not rely on group membership).
    group.crash_at(Time::from_millis(50), p(0));
    group.abcast_at(Time::from_millis(60), p(1), b"delta".to_vec());

    // A group with live members never quiesces — its heartbeat timers
    // re-arm forever — so `run_to_quiescence` returns `false` here and is
    // equivalent to running to the limit. Assert it instead of ignoring it.
    let quiesced = group.run_to_quiescence(Time::from_secs(2));
    assert!(
        !quiesced,
        "a live group must not quiesce (heartbeats run on)"
    );

    let delivered = group.adelivered_payloads();
    for (i, seq) in delivered.iter().enumerate() {
        let rendered: Vec<String> = seq
            .iter()
            .map(|m| String::from_utf8_lossy(m).into_owned())
            .collect();
        println!("p{i} delivered: {rendered:?}");
    }
    assert_eq!(
        delivered[1], delivered[2],
        "identical order at the survivors"
    );
    assert_eq!(delivered[1].len(), 4, "all four messages delivered");
    assert!(group.views()[1].is_empty(), "no view change was needed");
    println!("\ntotal order held across a crash with zero view changes.");
    println!("\nmessage accounting:\n{}", group.metrics());
}
