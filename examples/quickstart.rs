//! Quickstart: a three-member group on a simulated LAN, atomic broadcast,
//! and the architectural headline — a crash does not need a view change.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gcs::core::{GroupSim, StackConfig};
use gcs::kernel::{ProcessId, Time, TimeDelta};

fn main() {
    let p = ProcessId::new;

    // Three founding members with default timeouts; one seed = one
    // reproducible run.
    let mut cfg = StackConfig::default();
    cfg.monitoring_timeout = TimeDelta::from_secs(3600); // demo: never exclude
    let mut group = GroupSim::new(3, cfg, 7);

    // Concurrent broadcasts from different members.
    group.abcast_at(Time::from_millis(1), p(0), b"alpha".to_vec());
    group.abcast_at(Time::from_millis(1), p(1), b"bravo".to_vec());
    group.abcast_at(Time::from_millis(2), p(2), b"charlie".to_vec());

    // p0 crashes; the group keeps ordering without any membership change
    // (the paper's §3.1.1: abcast does not rely on group membership).
    group.crash_at(Time::from_millis(50), p(0));
    group.abcast_at(Time::from_millis(60), p(1), b"delta".to_vec());

    group.run_until(Time::from_secs(2));

    let delivered = group.adelivered_payloads();
    for (i, seq) in delivered.iter().enumerate() {
        let rendered: Vec<String> = seq
            .iter()
            .map(|m| String::from_utf8_lossy(m).into_owned())
            .collect();
        println!("p{i} delivered: {rendered:?}");
    }
    assert_eq!(
        delivered[1], delivered[2],
        "identical order at the survivors"
    );
    assert_eq!(delivered[1].len(), 4, "all four messages delivered");
    assert!(group.views()[1].is_empty(), "no view change was needed");
    println!("\ntotal order held across a crash with zero view changes.");
    println!("\nmessage accounting:\n{}", group.metrics());
}
