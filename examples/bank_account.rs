//! The paper's §4.2 bank account on generic broadcast: deposits commute
//! (fast path, no consensus), withdrawals are ordered against everything.
//!
//! ```text
//! cargo run --example bank_account
//! ```

use gcs::core::{DeliveryKind, Ev, GroupSim, StackConfig};
use gcs::kernel::{ProcessId, Time};
use gcs::replication::bank::{bank_conflicts, BankAccount, BankOp};

fn main() {
    let p = ProcessId::new;
    let mut cfg = StackConfig::default();
    cfg.conflict = bank_conflicts();
    let mut group = GroupSim::new(4, cfg, 11);

    // A burst of commutative deposits from all replicas…
    let ops = [
        (1, BankOp::Deposit(100)),
        (2, BankOp::Deposit(50)),
        (3, BankOp::Deposit(25)),
        (0, BankOp::Deposit(10)),
        // …then a withdrawal, which must be ordered against the deposits.
        (1, BankOp::Withdraw(120)),
        (2, BankOp::Deposit(5)),
    ];
    for (i, (replica, op)) in ops.iter().enumerate() {
        group.gbcast_at(
            Time::from_millis(1 + i as u64),
            p(*replica),
            op.class(),
            op.encode(),
        );
    }
    group.run_until(Time::from_secs(3));

    // Replay each replica's generic-delivery order through an account.
    let per_replica = group.trace().per_proc(4, |e| match e {
        Ev::Deliver(d) if d.kind != DeliveryKind::Atomic => Some((
            d.kind,
            BankOp::decode(&group.resolve(d.payload)[..]).expect("bank op"),
        )),
        _ => None,
    });
    for (i, seq) in per_replica.iter().enumerate() {
        let mut account = BankAccount::default();
        let mut fast = 0;
        for (kind, op) in seq {
            account.apply(*op);
            if *kind == DeliveryKind::GenericFast {
                fast += 1;
            }
        }
        println!(
            "replica {i}: balance={} rejected={} ({} of {} ops on the conflict-free fast path)",
            account.balance(),
            account.rejected(),
            fast,
            seq.len()
        );
    }
    println!(
        "\nconsensus messages used: {} (deposits never touch consensus — the thrifty property)",
        group.metrics().sent_matching(|k| k.starts_with("ct/"))
    );
}
