//! The paper's §4.2 bank account on generic broadcast: deposits commute
//! (fast path, no consensus), withdrawals are ordered against everything.
//!
//! ```text
//! cargo run --example bank_account
//! ```

use gcs::core::DeliveryKind;
use gcs::kernel::{ProcessId, Time};
use gcs::replication::bank::{bank_conflicts, BankAccount, BankOp};
use gcs::{Group, GroupTransport};

fn main() {
    let p = ProcessId::new;
    let mut cfg = gcs::core::StackConfig::default();
    cfg.conflict = bank_conflicts();
    let mut group = Group::builder()
        .members(4)
        .stack_config(cfg)
        .seed(11)
        .build();
    assert!(
        group.supports_gbcast(),
        "the bank needs generic broadcast — pick a stack that provides it"
    );

    // A burst of commutative deposits from all replicas…
    let ops = [
        (1, BankOp::Deposit(100)),
        (2, BankOp::Deposit(50)),
        (3, BankOp::Deposit(25)),
        (0, BankOp::Deposit(10)),
        // …then a withdrawal, which must be ordered against the deposits.
        (1, BankOp::Withdraw(120)),
        (2, BankOp::Deposit(5)),
    ];
    for (i, (replica, op)) in ops.iter().enumerate() {
        group.gbcast_at(
            Time::from_millis(1 + i as u64),
            p(*replica),
            op.class(),
            op.encode(),
        );
    }
    group.run_until(Time::from_secs(3));

    // Replay each replica's generic-delivery order through an account.
    for (i, seq) in group.delivered().iter().enumerate() {
        let mut account = BankAccount::default();
        let mut fast = 0;
        let mut total = 0;
        for d in seq {
            if d.kind == DeliveryKind::Atomic {
                continue;
            }
            let op = BankOp::decode(&group.resolve(d.payload)[..]).expect("bank op");
            account.apply(op);
            total += 1;
            if d.kind == DeliveryKind::GenericFast {
                fast += 1;
            }
        }
        println!(
            "replica {i}: balance={} rejected={} ({fast} of {total} ops on the conflict-free fast path)",
            account.balance(),
            account.rejected(),
        );
    }
    println!(
        "\nconsensus messages used: {} (deposits never touch consensus — the thrifty property)",
        group.metrics().sent_matching(|k| k.starts_with("ct/"))
    );
}
