//! Passive replication over generic broadcast — the paper's §3.2.3 and
//! Fig 8.
//!
//! Two message classes with the paper's conflict relation:
//!
//! | | update | primary change |
//! |----------------|------------|----------|
//! | update         | no conflict| conflict |
//! | primary change | conflict   | conflict |
//!
//! Updates from the primary take the generic-broadcast fast path; a
//! `primary-change(s)` message is totally ordered against all updates, so
//! every replica agrees on whether a racing update landed *before* the
//! change (it is applied) or *after* (it came from a deposed primary and is
//! ignored; the client times out and re-issues — the paper's two legal
//! outcomes of Fig 8). A primary change only **rotates** the deposed primary
//! to the tail of the view list (footnote 10) — no exclusion.
//!
//! Per the paper's footnote 9, the stack runs **FIFO generic broadcast**:
//! a primary's updates are applied in issue order at every backup.

use bytes::Bytes;
use gcs_api::{Group, GroupTransport};
use gcs_core::{ConflictRelation, DeliveryKind, MessageClass, StackConfig};
use gcs_kernel::{ProcessId, Time};

/// Conflict class of state updates (commute with each other).
pub const CLASS_UPDATE: MessageClass = MessageClass(8);
/// Conflict class of primary-change messages (conflict with everything).
pub const CLASS_PRIMARY_CHANGE: MessageClass = MessageClass(9);

/// The §3.2.3 conflict relation.
pub fn passive_conflicts() -> ConflictRelation {
    let mut r = ConflictRelation::none(10);
    r.set_conflict(CLASS_PRIMARY_CHANGE, CLASS_PRIMARY_CHANGE);
    r.set_conflict(CLASS_PRIMARY_CHANGE, CLASS_UPDATE);
    r
}

/// What happened to one replica after replaying its delivery sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassiveOutcome {
    /// Request ids applied, in order.
    pub applied: Vec<u64>,
    /// Request ids ignored because their issuer had been deposed.
    pub ignored: Vec<u64>,
    /// The primary after the replay (head of the rotated list).
    pub primary: ProcessId,
    /// Number of primary changes processed.
    pub changes: usize,
}

/// A passively replicated group: a new-architecture [`Group`] configured
/// with the §3.2.3 conflict relation plus the replay logic of the replicas.
///
/// Passive replication *requires* generic broadcast (the conflict relation
/// between updates and primary changes is the whole protocol), so the
/// builder pins the stack to the new architecture and the constructor
/// asserts the capability marker.
pub struct PassiveGroup {
    group: Group,
    n: usize,
}

impl PassiveGroup {
    /// Creates `n` replicas; the initial primary is process 0 (view head).
    pub fn new(n: usize, seed: u64) -> Self {
        Self::with_config(n, StackConfig::default(), seed)
    }

    /// With a custom stack configuration (the conflict relation and the
    /// FIFO requirement of the paper's footnote 9 are always enforced).
    pub fn with_config(n: usize, mut config: StackConfig, seed: u64) -> Self {
        config.conflict = passive_conflicts();
        config.fifo_generic = true; // footnote 9: FIFO generic broadcast
        let group = Group::builder()
            .members(n)
            .stack_config(config)
            .seed(seed)
            .build();
        assert!(
            group.supports_gbcast(),
            "passive replication needs generic broadcast"
        );
        PassiveGroup { group, n }
    }

    /// The primary processes a client request and broadcasts the resulting
    /// state update (`req` identifies the request).
    pub fn update_at(&mut self, t: Time, primary: ProcessId, req: u64, data: &[u8]) {
        let mut payload = req.to_be_bytes().to_vec();
        payload.extend_from_slice(data);
        self.group
            .gbcast_at(t, primary, CLASS_UPDATE, Bytes::from(payload));
    }

    /// Replica `by` suspects `suspected` (the current primary) and
    /// broadcasts `primary-change(suspected)` — Fig 8's second message.
    pub fn primary_change_at(&mut self, t: Time, by: ProcessId, suspected: ProcessId) {
        self.group.gbcast_at(
            t,
            by,
            CLASS_PRIMARY_CHANGE,
            Bytes::from(suspected.raw().to_be_bytes().to_vec()),
        );
    }

    /// Crashes a replica.
    pub fn crash_at(&mut self, t: Time, p: ProcessId) {
        self.group.crash_at(t, p);
    }

    /// Runs the simulation until `t`.
    pub fn run_until(&mut self, t: Time) {
        self.group.run_until(t);
    }

    /// Access to the underlying group.
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// Mutable access to the underlying group.
    pub fn group_mut(&mut self) -> &mut Group {
        &mut self.group
    }

    /// Replays every replica's g-delivery sequence through the passive
    /// replication logic.
    pub fn outcomes(&self) -> Vec<PassiveOutcome> {
        let deliveries: Vec<Vec<(ProcessId, MessageClass, Bytes)>> = self
            .group
            .delivered()
            .into_iter()
            .map(|seq| {
                seq.into_iter()
                    .filter(|d| d.kind != DeliveryKind::Atomic)
                    // Resolve the arena handle at the observation edge.
                    .map(|d| (d.sender, d.class, self.group.resolve(d.payload)))
                    .collect()
            })
            .collect();
        deliveries
            .into_iter()
            .map(|seq| {
                let mut view: Vec<ProcessId> = (0..self.n as u32).map(ProcessId::new).collect();
                let mut out = PassiveOutcome {
                    applied: Vec::new(),
                    ignored: Vec::new(),
                    primary: view[0],
                    changes: 0,
                };
                for (sender, class, payload) in seq {
                    if class == CLASS_PRIMARY_CHANGE {
                        let raw = u32::from_be_bytes(payload[..4].try_into().expect("4-byte pid"));
                        let deposed = ProcessId::new(raw);
                        // Rotate the deposed primary to the tail (footnote
                        // 10): only meaningful if it is the current head.
                        if view.first() == Some(&deposed) {
                            view.rotate_left(1);
                            out.changes += 1;
                        }
                    } else if class == CLASS_UPDATE {
                        let req = u64::from_be_bytes(payload[..8].try_into().expect("8-byte req"));
                        // Apply only updates from the *current* primary;
                        // updates from a deposed primary are ignored (the
                        // client re-issues).
                        if view.first() == Some(&sender) {
                            out.applied.push(req);
                        } else {
                            out.ignored.push(req);
                        }
                    }
                }
                out.primary = view[0];
                out
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn updates_from_the_primary_apply_everywhere() {
        let mut g = PassiveGroup::new(3, 1);
        g.update_at(Time::from_millis(1), p(0), 1, b"state-v1");
        g.update_at(Time::from_millis(2), p(0), 2, b"state-v2");
        g.run_until(Time::from_secs(1));
        let outcomes = g.outcomes();
        for o in &outcomes {
            assert_eq!(o.applied, vec![1, 2]);
            assert_eq!(o.primary, p(0));
        }
    }

    #[test]
    fn fig8_race_has_exactly_the_two_legal_outcomes_and_agreement() {
        // The paper's Fig 8: s1 broadcasts update(1) at ~t while s2
        // broadcasts primary-change(s1). Across seeds both outcomes occur,
        // and within a run all replicas agree.
        let mut saw_applied = false;
        let mut saw_ignored = false;
        for seed in 0..30u64 {
            let mut g = PassiveGroup::new(3, seed);
            // "Approximately at the same time t" (Fig 8): the race offset
            // varies with the seed, like real suspicion timing would.
            g.update_at(Time::from_millis(10), p(0), 1, b"update");
            g.primary_change_at(Time::from_millis(4 + seed % 13), p(1), p(0));
            g.run_until(Time::from_secs(2));
            let outcomes = g.outcomes();
            for o in &outcomes[1..] {
                assert_eq!(o, &outcomes[0], "replicas disagree (seed {seed})");
            }
            let o = &outcomes[0];
            assert_eq!(o.changes, 1, "the change is always delivered (seed {seed})");
            assert_eq!(o.primary, p(1), "s2 is the new primary (seed {seed})");
            match (o.applied.as_slice(), o.ignored.as_slice()) {
                ([1], []) => saw_applied = true, // outcome 1: update first
                ([], [1]) => saw_ignored = true, // outcome 2: change first
                other => panic!("illegal outcome {other:?} (seed {seed})"),
            }
        }
        assert!(
            saw_applied,
            "outcome 1 (update before change) never observed"
        );
        assert!(
            saw_ignored,
            "outcome 2 (change before update) never observed"
        );
    }

    #[test]
    fn deposed_primary_remains_in_the_view() {
        // The paper stresses a primary change does NOT exclude the old
        // primary: it can keep working as a backup and later updates from
        // the new primary apply.
        let mut g = PassiveGroup::new(3, 7);
        g.primary_change_at(Time::from_millis(1), p(1), p(0));
        g.update_at(Time::from_millis(200), p(1), 9, b"from-new-primary");
        g.run_until(Time::from_secs(2));
        let outcomes = g.outcomes();
        for o in &outcomes {
            assert_eq!(o.primary, p(1));
            assert_eq!(o.applied, vec![9]);
        }
        // No membership change happened at all (rotation ≠ exclusion).
        assert!(g.group().views().iter().all(|v| v.is_empty()));
    }
}
