//! # gcs-replication — replication techniques on the AB-GB stack (§3.2.2–3.2.3)
//!
//! The paper motivates its architecture by the two classic replication
//! techniques:
//!
//! * **Active replication** (state machine approach \[33\]): every replica
//!   executes every request; requests are disseminated with **atomic
//!   broadcast**. See [`active`].
//! * **Passive replication** (primary-backup): only the primary executes;
//!   update messages go to the backups with **FIFO generic broadcast**, and
//!   *primary-change* messages conflict with updates while updates do not
//!   conflict with each other (§3.2.3, Fig 8). See [`passive`].
//!
//! [`bank`] provides the paper's §4.2 example service — a bank account where
//!   deposits commute (class without self-conflict) but withdrawals do not —
//!   used by experiment E2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod bank;
pub mod passive;

pub use active::{ActiveGroup, Command, KvStore, StateMachine};
pub use bank::{BankAccount, BankOp, CLASS_DEPOSIT, CLASS_WITHDRAW};
pub use passive::{PassiveGroup, PassiveOutcome, CLASS_PRIMARY_CHANGE, CLASS_UPDATE};
