//! The paper's §4.2 bank account: deposits commute, withdrawals do not.
//!
//! > "Both classes of operations update the state of the server, but deposit
//! > operations are commutative […] This ordering typically can be solved
//! > using generic broadcast. Traditional stacks do not provide any specific
//! > solution: atomic broadcast would have to be used both for deposit and
//! > withdrawal operations. This would induce a non-necessary overhead."
//!
//! Experiment E2 sweeps the deposit/withdrawal mix and compares thrifty
//! generic broadcast against using atomic broadcast for everything.

use gcs_core::{ConflictRelation, MessageClass};

/// Conflict class of deposits: commutes with itself.
pub const CLASS_DEPOSIT: MessageClass = MessageClass(8);
/// Conflict class of withdrawals: conflicts with everything.
pub const CLASS_WITHDRAW: MessageClass = MessageClass(9);

/// A bank-account operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BankOp {
    /// Add to the balance (commutative).
    Deposit(u64),
    /// Subtract from the balance if covered (must be ordered).
    Withdraw(u64),
}

impl BankOp {
    /// The generic-broadcast class of this operation.
    pub fn class(&self) -> MessageClass {
        match self {
            BankOp::Deposit(_) => CLASS_DEPOSIT,
            BankOp::Withdraw(_) => CLASS_WITHDRAW,
        }
    }

    /// Serializes the operation for broadcast.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            BankOp::Deposit(a) => {
                let mut v = vec![b'd'];
                v.extend_from_slice(&a.to_be_bytes());
                v
            }
            BankOp::Withdraw(a) => {
                let mut v = vec![b'w'];
                v.extend_from_slice(&a.to_be_bytes());
                v
            }
        }
    }

    /// Parses an operation from its encoding.
    ///
    /// # Errors
    ///
    /// Returns `None` on malformed input.
    pub fn decode(bytes: &[u8]) -> Option<BankOp> {
        if bytes.len() != 9 {
            return None;
        }
        let amount = u64::from_be_bytes(bytes[1..9].try_into().ok()?);
        match bytes[0] {
            b'd' => Some(BankOp::Deposit(amount)),
            b'w' => Some(BankOp::Withdraw(amount)),
            _ => None,
        }
    }
}

/// The conflict relation of the bank service (§4.2): deposits do not
/// conflict with deposits; everything else conflicts.
pub fn bank_conflicts() -> ConflictRelation {
    let mut r = ConflictRelation::none(10);
    r.set_conflict(CLASS_WITHDRAW, CLASS_WITHDRAW);
    r.set_conflict(CLASS_WITHDRAW, CLASS_DEPOSIT);
    r
}

/// A replicated bank account.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BankAccount {
    balance: u64,
    rejected: u64,
}

impl BankAccount {
    /// Creates an account with an opening balance.
    pub fn with_balance(balance: u64) -> Self {
        BankAccount {
            balance,
            rejected: 0,
        }
    }

    /// Applies an operation. Withdrawals that exceed the balance are
    /// rejected (counted, balance unchanged).
    pub fn apply(&mut self, op: BankOp) {
        match op {
            BankOp::Deposit(a) => self.balance += a,
            BankOp::Withdraw(a) => {
                if a <= self.balance {
                    self.balance -= a;
                } else {
                    self.rejected += 1;
                }
            }
        }
    }

    /// The current balance.
    pub fn balance(&self) -> u64 {
        self.balance
    }

    /// Number of rejected withdrawals.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for op in [BankOp::Deposit(17), BankOp::Withdraw(u64::MAX)] {
            assert_eq!(BankOp::decode(&op.encode()), Some(op));
        }
        assert_eq!(BankOp::decode(b"junk"), None);
        assert_eq!(BankOp::decode(&[b'x'; 9]), None);
    }

    #[test]
    fn conflict_relation_matches_section_4_2() {
        let r = bank_conflicts();
        assert!(
            !r.conflicts(CLASS_DEPOSIT, CLASS_DEPOSIT),
            "deposits commute"
        );
        assert!(r.conflicts(CLASS_DEPOSIT, CLASS_WITHDRAW));
        assert!(r.conflicts(CLASS_WITHDRAW, CLASS_WITHDRAW));
    }

    #[test]
    fn withdrawals_respect_the_balance() {
        let mut acc = BankAccount::with_balance(100);
        acc.apply(BankOp::Withdraw(60));
        assert_eq!(acc.balance(), 40);
        acc.apply(BankOp::Withdraw(60));
        assert_eq!(acc.balance(), 40, "uncovered withdrawal rejected");
        assert_eq!(acc.rejected(), 1);
        acc.apply(BankOp::Deposit(20));
        assert_eq!(acc.balance(), 60);
    }

    #[test]
    fn deposit_only_histories_commute() {
        // The algebraic fact the conflict relation exploits: any permutation
        // of deposits yields the same balance.
        let ops = [BankOp::Deposit(5), BankOp::Deposit(7), BankOp::Deposit(11)];
        let mut a = BankAccount::default();
        let mut b = BankAccount::default();
        for op in ops {
            a.apply(op);
        }
        for op in ops.iter().rev() {
            b.apply(*op);
        }
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Deposits commute under any permutation (the §4.2 premise).
        #[test]
        fn deposits_commute(amounts in proptest::collection::vec(0u64..1_000_000, 0..32),
                            swap_a in 0usize..32, swap_b in 0usize..32) {
            let mut forward = BankAccount::default();
            for &a in &amounts {
                forward.apply(BankOp::Deposit(a));
            }
            let mut shuffled = amounts.clone();
            if !shuffled.is_empty() {
                let (i, j) = (swap_a % shuffled.len(), swap_b % shuffled.len());
                shuffled.swap(i, j);
            }
            let mut other = BankAccount::default();
            for &a in &shuffled {
                other.apply(BankOp::Deposit(a));
            }
            prop_assert_eq!(forward.balance(), other.balance());
        }

        /// The balance never goes negative regardless of history.
        #[test]
        fn balance_never_underflows(ops in proptest::collection::vec((any::<bool>(), 0u64..1000), 0..64)) {
            let mut acc = BankAccount::default();
            for (is_dep, amount) in ops {
                acc.apply(if is_dep { BankOp::Deposit(amount) } else { BankOp::Withdraw(amount) });
            }
            // (u64 makes underflow a panic; reaching here means rejection
            // logic covered every case.)
            prop_assert!(acc.balance() < u64::MAX);
        }
    }
}
