//! Active replication (state machine approach, §3.2.2): client requests are
//! atomically broadcast and every replica executes them in the agreed order.
//!
//! The service is generic over [`GroupTransport`], so the same replicated
//! state machine runs on the new architecture or either traditional
//! baseline — the paper's claim that active replication only needs *atomic
//! broadcast*, not any particular stack, made executable.

use bytes::Bytes;
use gcs_api::{Group, GroupTransport, StackKind};
use gcs_core::StackConfig;
use gcs_kernel::{ProcessId, Time};
use std::collections::BTreeMap;

/// A deterministic replicated state machine.
pub trait StateMachine: Default {
    /// Applies one command, returning its response.
    fn apply(&mut self, cmd: &[u8]) -> Vec<u8>;

    /// A digest of the current state (for replica-equality checks).
    fn digest(&self) -> Vec<u8>;
}

/// A serialized command (opaque to the group communication layer).
pub type Command = Vec<u8>;

/// A simple replicated key-value store.
///
/// Commands: `set <key>=<value>` and `get <key>`, both UTF-8.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KvStore {
    entries: BTreeMap<String, String>,
}

impl KvStore {
    /// Reads a key directly (for assertions).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl StateMachine for KvStore {
    fn apply(&mut self, cmd: &[u8]) -> Vec<u8> {
        let text = String::from_utf8_lossy(cmd);
        if let Some(rest) = text.strip_prefix("set ") {
            if let Some((k, v)) = rest.split_once('=') {
                self.entries.insert(k.to_string(), v.to_string());
                return b"ok".to_vec();
            }
            return b"err: malformed set".to_vec();
        }
        if let Some(k) = text.strip_prefix("get ") {
            return self
                .entries
                .get(k)
                .cloned()
                .unwrap_or_default()
                .into_bytes();
        }
        b"err: unknown command".to_vec()
    }

    fn digest(&self) -> Vec<u8> {
        let mut d = Vec::new();
        for (k, v) in &self.entries {
            d.extend_from_slice(k.as_bytes());
            d.push(b'=');
            d.extend_from_slice(v.as_bytes());
            d.push(b';');
        }
        d
    }
}

/// An actively replicated service: any [`GroupTransport`] plus a replayed
/// state machine per replica.
///
/// Client requests are injected as atomic broadcasts; after the run, the
/// agreed delivery order is replayed through one state machine per replica
/// to obtain the replicated states (which must be identical on all correct
/// replicas — checked by [`replica_states`](Self::replica_states) users).
pub struct ActiveGroup<S: StateMachine, T: GroupTransport = Group> {
    group: T,
    _marker: std::marker::PhantomData<S>,
}

impl<S: StateMachine> ActiveGroup<S, Group> {
    /// Creates an actively replicated group of `n` replicas on the new
    /// architecture.
    pub fn new(n: usize, config: StackConfig, seed: u64) -> Self {
        Self::on(
            Group::builder()
                .members(n)
                .stack_config(config)
                .seed(seed)
                .build(),
        )
    }

    /// Creates `n` replicas on the given stack with its default
    /// configuration — the cross-stack comparison entry point.
    pub fn on_stack(kind: StackKind, n: usize, seed: u64) -> Self {
        Self::on(Group::builder().members(n).stack(kind).seed(seed).build())
    }
}

impl<S: StateMachine, T: GroupTransport> ActiveGroup<S, T> {
    /// Wraps an already-built transport (any stack, any topology) as an
    /// actively replicated service.
    pub fn on(group: T) -> Self {
        ActiveGroup {
            group,
            _marker: std::marker::PhantomData,
        }
    }

    /// A client sends `cmd` to replica `entry` at time `t`; the replica
    /// atomically broadcasts it (the state machine approach: every replica
    /// will execute it).
    pub fn client_request(&mut self, t: Time, entry: ProcessId, cmd: Command) {
        self.group.abcast_bytes_at(t, entry, Bytes::from(cmd));
    }

    /// Crashes a replica.
    pub fn crash_at(&mut self, t: Time, p: ProcessId) {
        self.group.crash_at(t, p);
    }

    /// Runs the simulation until `t`.
    pub fn run_until(&mut self, t: Time) {
        self.group.run_until(t);
    }

    /// Access to the underlying transport (metrics, observation).
    pub fn group(&self) -> &T {
        &self.group
    }

    /// Mutable access to the underlying transport (fault injection).
    pub fn group_mut(&mut self) -> &mut T {
        &mut self.group
    }

    /// Replays the delivery order of every replica through a fresh state
    /// machine; entry `i` is replica `i`'s final state.
    pub fn replica_states(&self) -> Vec<S> {
        self.group
            .adelivered_payloads()
            .into_iter()
            .map(|cmds| {
                let mut sm = S::default();
                for c in cmds {
                    let _ = sm.apply(&c);
                }
                sm
            })
            .collect()
    }

    /// The digests of all replica states (for equality assertions).
    pub fn digests(&self) -> Vec<Vec<u8>> {
        self.replica_states().iter().map(|s| s.digest()).collect()
    }

    /// Liveness flags of the replicas.
    pub fn alive(&self) -> Vec<bool> {
        self.group.alive_flags()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_kernel::TimeDelta;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn kv_store_applies_commands() {
        let mut kv = KvStore::default();
        assert_eq!(kv.apply(b"set a=1"), b"ok");
        assert_eq!(kv.apply(b"get a"), b"1");
        assert_eq!(kv.apply(b"get missing"), b"");
        assert_eq!(kv.apply(b"nonsense"), b"err: unknown command");
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn replicas_converge_on_identical_state() {
        let mut svc: ActiveGroup<KvStore> = ActiveGroup::new(3, StackConfig::default(), 1);
        // Conflicting writes to the same key from different entry replicas:
        // total order makes the outcome identical everywhere.
        svc.client_request(Time::from_millis(1), p(0), b"set x=from-p0".to_vec());
        svc.client_request(Time::from_millis(1), p(1), b"set x=from-p1".to_vec());
        svc.client_request(Time::from_millis(2), p(2), b"set y=2".to_vec());
        svc.run_until(Time::from_secs(1));
        let states = svc.replica_states();
        assert_eq!(states[0], states[1]);
        assert_eq!(states[1], states[2]);
        assert!(states[0].get("x").is_some());
        assert_eq!(states[0].get("y"), Some("2"));
    }

    #[test]
    fn service_survives_minority_crash() {
        let mut cfg = StackConfig::default();
        cfg.monitoring_timeout = TimeDelta::from_secs(3600);
        let mut svc: ActiveGroup<KvStore> = ActiveGroup::new(3, cfg, 2);
        svc.crash_at(Time::from_millis(5), p(0));
        svc.client_request(Time::from_millis(50), p(1), b"set k=alive".to_vec());
        svc.run_until(Time::from_secs(2));
        let states = svc.replica_states();
        assert_eq!(states[1].get("k"), Some("alive"));
        assert_eq!(states[1], states[2]);
    }

    /// The cross-stack comparison the unified transport enables: the same
    /// client workload on all three architectures converges every stack's
    /// replicas onto the same final state.
    #[test]
    fn same_workload_converges_on_every_stack() {
        // The stacks may legally order the racing `set a=…` pair differently
        // (total order is per group, not across architectures), but within
        // each stack every replica agrees and both keys are applied.
        for kind in StackKind::ALL {
            let mut svc: ActiveGroup<KvStore> = ActiveGroup::on_stack(kind, 3, 5);
            svc.client_request(Time::from_millis(1), p(0), b"set a=1".to_vec());
            svc.client_request(Time::from_millis(1), p(1), b"set a=2".to_vec());
            svc.client_request(Time::from_millis(3), p(2), b"set b=3".to_vec());
            svc.run_until(Time::from_secs(2));
            let states = svc.replica_states();
            assert_eq!(states[0], states[1], "{}", kind.name());
            assert_eq!(states[1], states[2], "{}", kind.name());
            assert_eq!(states[0].get("b"), Some("3"), "{}", kind.name());
            assert!(
                matches!(states[0].get("a"), Some("1") | Some("2")),
                "{}: racing writes resolved to one of the two values",
                kind.name()
            );
            assert_eq!(states[0].len(), 2, "{}", kind.name());
        }
    }

    /// A state machine driven directly over a concrete transport type (no
    /// enum indirection): the service is generic over `GroupTransport`.
    #[test]
    fn runs_over_a_concrete_transport_type() {
        use gcs_core::GroupSim;
        let sim = GroupSim::new(3, StackConfig::default(), 11);
        let mut svc: ActiveGroup<KvStore, GroupSim> = ActiveGroup::on(sim);
        svc.client_request(Time::from_millis(1), p(0), b"set x=y".to_vec());
        svc.run_until(Time::from_secs(1));
        let states = svc.replica_states();
        assert_eq!(states[0].get("x"), Some("y"));
        assert_eq!(states[0], states[2]);
    }
}
