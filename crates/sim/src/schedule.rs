//! Scripted scenario schedules: the fault/membership timeline of a run.
//!
//! A [`Schedule`] is an ordered list of `(time, action)` steps that every
//! experiment composes with a [`Topology`](crate::Topology) and a workload.
//! It subsumes the ad-hoc `crash_at`/`partition_at` call sequences: the
//! whole timeline is a value that can be named, merged, compared and
//! replayed — the precondition for the determinism property tests.
//!
//! Simulator-level actions (crash, partition, link changes, delay spikes,
//! loss bursts) are applied by [`SimWorld::apply_schedule`]
//! (see [`SimWorld`](crate::SimWorld)); membership actions
//! ([`Join`](ScheduleAction::Join) / [`Remove`](ScheduleAction::Remove)) are
//! returned to the caller, because only a protocol harness (e.g.
//! `gcs_core::GroupSim`) knows how to route them through its membership
//! component.

use gcs_kernel::{ProcessId, Time, TimeDelta};

use crate::network::LinkModel;

/// One scheduled scenario action.
#[derive(Clone, Debug, PartialEq)]
pub enum ScheduleAction {
    /// Crash-stop a process.
    Crash(ProcessId),
    /// Install a partition (communication only within a group).
    Partition(Vec<Vec<ProcessId>>),
    /// Partition the network along the topology's region boundaries (each
    /// region becomes one group).
    PartitionRegions,
    /// Heal any partition.
    Heal,
    /// Add `extra` delay to every link for `duration`.
    DelaySpike {
        /// How long the spike lasts.
        duration: TimeDelta,
        /// The extra one-way delay during the spike.
        extra: TimeDelta,
    },
    /// Drop messages with probability `prob` for `duration`.
    LossBurst {
        /// How long the burst lasts.
        duration: TimeDelta,
        /// The additional drop probability during the burst.
        prob: f64,
    },
    /// Replace the directed link `from -> to` (degrade or repair a route
    /// mid-run).
    SetLink {
        /// Link source.
        from: ProcessId,
        /// Link destination.
        to: ProcessId,
        /// The new link model.
        link: LinkModel,
    },
    /// Membership: `joiner` (a process started outside the group) requests
    /// membership via `contact`. Applied by the protocol harness, not the
    /// simulator.
    Join {
        /// The joining process.
        joiner: ProcessId,
        /// The member it contacts.
        contact: ProcessId,
    },
    /// Membership: member `by` asks for the removal of `target`. Applied by
    /// the protocol harness, not the simulator.
    Remove {
        /// The member issuing the removal.
        by: ProcessId,
        /// The member to remove.
        target: ProcessId,
    },
}

impl ScheduleAction {
    /// Whether the simulator can apply this action itself (as opposed to the
    /// membership actions a protocol harness must route).
    pub fn is_sim_level(&self) -> bool {
        !matches!(
            self,
            ScheduleAction::Join { .. } | ScheduleAction::Remove { .. }
        )
    }
}

/// A scripted scenario: `(time, action)` steps, in application order.
///
/// Built with the chaining constructors and handed to
/// `SimWorld::apply_schedule` / `GroupSim::apply_schedule`:
///
/// ```
/// use gcs_sim::Schedule;
/// use gcs_kernel::{ProcessId, Time};
///
/// let s = Schedule::new()
///     .crash(Time::from_millis(100), ProcessId::new(0))
///     .partition_regions(Time::from_millis(200))
///     .heal(Time::from_millis(400));
/// assert_eq!(s.len(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Schedule {
    steps: Vec<(Time, ScheduleAction)>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an arbitrary action at `t`.
    pub fn at(mut self, t: Time, action: ScheduleAction) -> Self {
        self.steps.push((t, action));
        self
    }

    /// Crash-stops `p` at `t`.
    pub fn crash(self, t: Time, p: ProcessId) -> Self {
        self.at(t, ScheduleAction::Crash(p))
    }

    /// Installs a partition at `t`.
    pub fn partition(self, t: Time, groups: Vec<Vec<ProcessId>>) -> Self {
        self.at(t, ScheduleAction::Partition(groups))
    }

    /// Partitions along region boundaries at `t`.
    pub fn partition_regions(self, t: Time) -> Self {
        self.at(t, ScheduleAction::PartitionRegions)
    }

    /// Heals any partition at `t`.
    pub fn heal(self, t: Time) -> Self {
        self.at(t, ScheduleAction::Heal)
    }

    /// Adds a delay spike during `[t, t + duration)`.
    pub fn delay_spike(self, t: Time, duration: TimeDelta, extra: TimeDelta) -> Self {
        self.at(t, ScheduleAction::DelaySpike { duration, extra })
    }

    /// Adds a loss burst during `[t, t + duration)`.
    pub fn loss_burst(self, t: Time, duration: TimeDelta, prob: f64) -> Self {
        self.at(t, ScheduleAction::LossBurst { duration, prob })
    }

    /// Replaces the directed link `from -> to` at `t`.
    pub fn set_link(self, t: Time, from: ProcessId, to: ProcessId, link: LinkModel) -> Self {
        self.at(t, ScheduleAction::SetLink { from, to, link })
    }

    /// Schedules `joiner` to request membership via `contact` at `t`.
    pub fn join(self, t: Time, joiner: ProcessId, contact: ProcessId) -> Self {
        self.at(t, ScheduleAction::Join { joiner, contact })
    }

    /// Schedules member `by` to ask for the removal of `target` at `t`.
    pub fn remove(self, t: Time, by: ProcessId, target: ProcessId) -> Self {
        self.at(t, ScheduleAction::Remove { by, target })
    }

    /// Appends every step of `other`.
    pub fn merge(mut self, other: Schedule) -> Self {
        self.steps.extend(other.steps);
        self
    }

    /// The steps, in application order.
    pub fn steps(&self) -> &[(Time, ScheduleAction)] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the schedule has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn builder_records_steps_in_order() {
        let s = Schedule::new()
            .crash(Time::from_millis(10), p(1))
            .heal(Time::from_millis(20))
            .join(Time::from_millis(30), p(3), p(0));
        assert_eq!(s.len(), 3);
        assert_eq!(s.steps()[0].0, Time::from_millis(10));
        assert!(matches!(s.steps()[2].1, ScheduleAction::Join { .. }));
    }

    #[test]
    fn sim_level_classification() {
        assert!(ScheduleAction::Crash(p(0)).is_sim_level());
        assert!(ScheduleAction::Heal.is_sim_level());
        assert!(!ScheduleAction::Join {
            joiner: p(3),
            contact: p(0)
        }
        .is_sim_level());
        assert!(!ScheduleAction::Remove {
            by: p(0),
            target: p(1)
        }
        .is_sim_level());
    }

    #[test]
    fn merge_concatenates() {
        let a = Schedule::new().crash(Time::from_millis(1), p(0));
        let b = Schedule::new().heal(Time::from_millis(2));
        let m = a.merge(b);
        assert_eq!(m.len(), 2);
    }
}
