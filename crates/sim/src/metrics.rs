//! Message and byte accounting for experiments.

use std::fmt;

/// Per-kind counters: a short linear table instead of a map. A run touches
/// a dozen-odd distinct kinds, and consecutive sends overwhelmingly repeat
/// the previous kind (heartbeat fan-out, ack trains), so a last-hit cache
/// plus pointer-first comparison beats any map on the `record_send` hot
/// path.
#[derive(Clone, Debug, Default)]
struct KindTable {
    rows: Vec<(&'static str, u64, u64)>, // (kind, msgs, bytes)
    last: usize,
}

impl KindTable {
    fn record(&mut self, kind: &'static str, bytes: u64) {
        if let Some(row) = self.rows.get_mut(self.last) {
            if std::ptr::eq(row.0, kind) || row.0 == kind {
                row.1 += 1;
                row.2 += bytes;
                return;
            }
        }
        for (i, row) in self.rows.iter_mut().enumerate() {
            if std::ptr::eq(row.0, kind) || row.0 == kind {
                row.1 += 1;
                row.2 += bytes;
                self.last = i;
                return;
            }
        }
        self.last = self.rows.len();
        self.rows.push((kind, 1, bytes));
    }

    fn get(&self, kind: &str) -> Option<(u64, u64)> {
        self.rows
            .iter()
            .find(|(k, _, _)| *k == kind)
            .map(|&(_, m, b)| (m, b))
    }

    fn sorted(&self) -> Vec<(&'static str, u64, u64)> {
        let mut rows = self.rows.clone();
        rows.sort_unstable_by_key(|&(k, _, _)| k);
        rows
    }
}

/// Counters collected while a simulation runs.
///
/// Sends are attributed to the [`Event::kind`](gcs_kernel::Event::kind) of
/// the event, so experiments can report per-protocol message complexity
/// (e.g. how many messages a view change costs in each architecture).
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    kinds: KindTable,
    total_sent: u64,
    total_bytes: u64,
    delivered: u64,
    dropped_loss: u64,
    dropped_partition: u64,
    dropped_crash: u64,
}

impl Metrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_send(&mut self, kind: &'static str, bytes: usize) {
        self.kinds.record(kind, bytes as u64);
        self.total_sent += 1;
        self.total_bytes += bytes as u64;
    }

    pub(crate) fn record_delivery(&mut self) {
        self.delivered += 1;
    }

    pub(crate) fn record_drop_loss(&mut self) {
        self.dropped_loss += 1;
    }

    pub(crate) fn record_drop_partition(&mut self) {
        self.dropped_partition += 1;
    }

    pub(crate) fn record_drop_crash(&mut self) {
        self.dropped_crash += 1;
    }

    /// Total messages handed to the network.
    pub fn total_sent(&self) -> u64 {
        self.total_sent
    }

    /// Total payload bytes handed to the network.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total messages delivered to a destination process.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages dropped by random loss (including loss bursts).
    pub fn dropped_loss(&self) -> u64 {
        self.dropped_loss
    }

    /// Messages dropped because sender and destination were partitioned.
    pub fn dropped_partition(&self) -> u64 {
        self.dropped_partition
    }

    /// Messages dropped because the destination had crashed.
    pub fn dropped_crash(&self) -> u64 {
        self.dropped_crash
    }

    /// Messages sent with the given event kind.
    pub fn sent_of_kind(&self, kind: &str) -> u64 {
        self.kinds.get(kind).map_or(0, |(m, _)| m)
    }

    /// Iterates over `(kind, messages, bytes)` rows, sorted by kind.
    pub fn by_kind(&self) -> impl Iterator<Item = (&'static str, u64, u64)> {
        self.kinds.sorted().into_iter()
    }

    /// Total messages across the kinds whose name passes `filter`.
    pub fn sent_matching(&self, filter: impl Fn(&str) -> bool) -> u64 {
        self.kinds
            .rows
            .iter()
            .filter(|(k, _, _)| filter(k))
            .map(|(_, n, _)| *n)
            .sum()
    }

    /// Difference `self - earlier`, counter by counter (for windowed
    /// measurements: snapshot, run a phase, subtract).
    pub fn delta_since(&self, earlier: &Metrics) -> Metrics {
        let mut d = Metrics::new();
        for &(k, msgs, bytes) in &self.kinds.rows {
            let (m0, b0) = earlier.kinds.get(k).unwrap_or((0, 0));
            if msgs > m0 || bytes > b0 {
                d.kinds.rows.push((k, msgs - m0, bytes - b0));
            }
        }
        d.total_sent = self.total_sent - earlier.total_sent;
        d.total_bytes = self.total_bytes - earlier.total_bytes;
        d.delivered = self.delivered - earlier.delivered;
        d.dropped_loss = self.dropped_loss - earlier.dropped_loss;
        d.dropped_partition = self.dropped_partition - earlier.dropped_partition;
        d.dropped_crash = self.dropped_crash - earlier.dropped_crash;
        d
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "messages: sent={} delivered={} lost={} partitioned={} to-crashed={}",
            self.total_sent,
            self.delivered,
            self.dropped_loss,
            self.dropped_partition,
            self.dropped_crash
        )?;
        for (kind, n, bytes) in self.by_kind() {
            writeln!(f, "  {kind:<24} {n:>8} msgs {bytes:>10} B")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_kind() {
        let mut m = Metrics::new();
        m.record_send("ack", 10);
        m.record_send("ack", 10);
        m.record_send("data", 100);
        assert_eq!(m.sent_of_kind("ack"), 2);
        assert_eq!(m.sent_of_kind("data"), 1);
        assert_eq!(m.sent_of_kind("none"), 0);
        assert_eq!(m.total_sent(), 3);
        assert_eq!(m.total_bytes(), 120);
    }

    #[test]
    fn delta_since_subtracts() {
        let mut m = Metrics::new();
        m.record_send("a", 1);
        let snapshot = m.clone();
        m.record_send("a", 1);
        m.record_send("b", 2);
        let d = m.delta_since(&snapshot);
        assert_eq!(d.sent_of_kind("a"), 1);
        assert_eq!(d.sent_of_kind("b"), 1);
        assert_eq!(d.total_sent(), 2);
    }

    #[test]
    fn display_lists_kinds() {
        let mut m = Metrics::new();
        m.record_send("xyz", 7);
        let s = format!("{m}");
        assert!(s.contains("xyz"));
        assert!(s.contains("sent=1"));
    }

    #[test]
    fn sent_matching_filters() {
        let mut m = Metrics::new();
        m.record_send("fd/heartbeat", 1);
        m.record_send("ct/propose", 1);
        m.record_send("ct/ack", 1);
        assert_eq!(m.sent_matching(|k| k.starts_with("ct/")), 2);
    }
}
