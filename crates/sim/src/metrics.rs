//! Message and byte accounting for experiments, including per-region-pair
//! link-latency histograms.

use std::fmt;

use gcs_kernel::TimeDelta;

/// Number of log2 buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` nanoseconds, with the last bucket open-ended
/// (`2^39` ns ≈ 9 minutes — far beyond any simulated link).
const LAT_BUCKETS: usize = 40;

/// A log2-bucketed latency histogram (nanosecond samples).
///
/// Recording is two increments and a store — cheap enough for the
/// per-message network hot path. Quantiles are approximate: a quantile
/// resolves to the upper edge of the bucket where the cumulative count
/// crosses it (within 2× of the true value, which is what a log2 histogram
/// buys).
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; LAT_BUCKETS],
    count: u64,
    total_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; LAT_BUCKETS],
            count: 0,
            total_ns: 0,
        }
    }
}

impl LatencyHistogram {
    #[inline]
    pub(crate) fn record(&mut self, delta: TimeDelta) {
        let ns = delta.as_nanos();
        let bucket = (63 - (ns | 1).leading_zeros() as usize).min(LAT_BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_ns += ns;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate `q`-quantile (0.0 ..= 1.0) in nanoseconds: the upper
    /// edge of the bucket where the cumulative count crosses `q`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }

    /// Raw bucket counts (bucket `i` spans `[2^i, 2^(i+1))` ns).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    fn subtract(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        let mut out = LatencyHistogram::default();
        for i in 0..LAT_BUCKETS {
            out.buckets[i] = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.total_ns = self.total_ns.saturating_sub(earlier.total_ns);
        out
    }
}

/// Per-kind counters: a short linear table instead of a map. A run touches
/// a dozen-odd distinct kinds, and consecutive sends overwhelmingly repeat
/// the previous kind (heartbeat fan-out, ack trains), so a last-hit cache
/// plus pointer-first comparison beats any map on the `record_send` hot
/// path.
#[derive(Clone, Debug, Default)]
struct KindTable {
    rows: Vec<(&'static str, u64, u64)>, // (kind, msgs, bytes)
    last: usize,
}

impl KindTable {
    fn record(&mut self, kind: &'static str, bytes: u64) {
        if let Some(row) = self.rows.get_mut(self.last) {
            if std::ptr::eq(row.0, kind) || row.0 == kind {
                row.1 += 1;
                row.2 += bytes;
                return;
            }
        }
        for (i, row) in self.rows.iter_mut().enumerate() {
            if std::ptr::eq(row.0, kind) || row.0 == kind {
                row.1 += 1;
                row.2 += bytes;
                self.last = i;
                return;
            }
        }
        self.last = self.rows.len();
        self.rows.push((kind, 1, bytes));
    }

    fn get(&self, kind: &str) -> Option<(u64, u64)> {
        self.rows
            .iter()
            .find(|(k, _, _)| *k == kind)
            .map(|&(_, m, b)| (m, b))
    }

    fn sorted(&self) -> Vec<(&'static str, u64, u64)> {
        let mut rows = self.rows.clone();
        rows.sort_unstable_by_key(|&(k, _, _)| k);
        rows
    }
}

/// Counters collected while a simulation runs.
///
/// Sends are attributed to the [`Event::kind`](gcs_kernel::Event::kind) of
/// the event, so experiments can report per-protocol message complexity
/// (e.g. how many messages a view change costs in each architecture).
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    kinds: KindTable,
    total_sent: u64,
    total_bytes: u64,
    delivered: u64,
    dropped_loss: u64,
    dropped_partition: u64,
    dropped_crash: u64,
    /// Region count of the topology (histograms are kept only for
    /// multi-region topologies — a flat LAN pays nothing).
    regions: usize,
    /// Per-(src region, dst region) one-way link latency histograms,
    /// row-major `from * regions + to`.
    region_hist: Vec<LatencyHistogram>,
}

impl Metrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a message handed to the network, attributed to its event
    /// kind. Public so non-simulator runtimes (the live threaded backend)
    /// can account traffic in the same vocabulary.
    pub fn record_send(&mut self, kind: &'static str, bytes: usize) {
        self.kinds.record(kind, bytes as u64);
        self.total_sent += 1;
        self.total_bytes += bytes as u64;
    }

    /// Records a message delivered to its destination process.
    pub fn record_delivery(&mut self) {
        self.delivered += 1;
    }

    /// Records a message dropped by random loss (or a loss burst).
    pub fn record_drop_loss(&mut self) {
        self.dropped_loss += 1;
    }

    /// Records a message dropped by an active partition.
    pub fn record_drop_partition(&mut self) {
        self.dropped_partition += 1;
    }

    /// Records a message dropped because its destination had crashed.
    pub fn record_drop_crash(&mut self) {
        self.dropped_crash += 1;
    }

    /// Sizes the region-pair histogram table (only multi-region topologies
    /// record; called once when the world is built).
    pub(crate) fn set_regions(&mut self, regions: usize) {
        self.regions = regions;
        if regions > 1 {
            self.region_hist = vec![LatencyHistogram::default(); regions * regions];
        }
    }

    #[inline]
    pub(crate) fn record_link_latency(&mut self, from: usize, to: usize, delta: TimeDelta) {
        if self.regions > 1 {
            self.region_hist[from * self.regions + to].record(delta);
        }
    }

    /// The one-way latency histogram of the directed region pair
    /// `from -> to` (`None` on single-region topologies or out-of-range
    /// regions).
    pub fn region_latency(&self, from: usize, to: usize) -> Option<&LatencyHistogram> {
        if self.regions > 1 && from < self.regions && to < self.regions {
            Some(&self.region_hist[from * self.regions + to])
        } else {
            None
        }
    }

    /// All region pairs with recorded traffic, as
    /// `(src region, dst region, histogram)`, in row-major order.
    pub fn region_pairs(&self) -> impl Iterator<Item = (usize, usize, &LatencyHistogram)> {
        let regions = self.regions;
        self.region_hist
            .iter()
            .enumerate()
            .filter(|(_, h)| h.count() > 0)
            .map(move |(i, h)| (i / regions, i % regions, h))
    }

    /// Total messages handed to the network.
    pub fn total_sent(&self) -> u64 {
        self.total_sent
    }

    /// Total payload bytes handed to the network.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total messages delivered to a destination process.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages dropped by random loss (including loss bursts).
    pub fn dropped_loss(&self) -> u64 {
        self.dropped_loss
    }

    /// Messages dropped because sender and destination were partitioned.
    pub fn dropped_partition(&self) -> u64 {
        self.dropped_partition
    }

    /// Messages dropped because the destination had crashed.
    pub fn dropped_crash(&self) -> u64 {
        self.dropped_crash
    }

    /// Messages sent with the given event kind.
    pub fn sent_of_kind(&self, kind: &str) -> u64 {
        self.kinds.get(kind).map_or(0, |(m, _)| m)
    }

    /// Iterates over `(kind, messages, bytes)` rows, sorted by kind.
    pub fn by_kind(&self) -> impl Iterator<Item = (&'static str, u64, u64)> {
        self.kinds.sorted().into_iter()
    }

    /// Total messages across the kinds whose name passes `filter`.
    pub fn sent_matching(&self, filter: impl Fn(&str) -> bool) -> u64 {
        self.kinds
            .rows
            .iter()
            .filter(|(k, _, _)| filter(k))
            .map(|(_, n, _)| *n)
            .sum()
    }

    /// Difference `self - earlier`, counter by counter (for windowed
    /// measurements: snapshot, run a phase, subtract).
    pub fn delta_since(&self, earlier: &Metrics) -> Metrics {
        let mut d = Metrics::new();
        for &(k, msgs, bytes) in &self.kinds.rows {
            let (m0, b0) = earlier.kinds.get(k).unwrap_or((0, 0));
            if msgs > m0 || bytes > b0 {
                d.kinds.rows.push((k, msgs - m0, bytes - b0));
            }
        }
        d.total_sent = self.total_sent - earlier.total_sent;
        d.total_bytes = self.total_bytes - earlier.total_bytes;
        d.delivered = self.delivered - earlier.delivered;
        d.dropped_loss = self.dropped_loss - earlier.dropped_loss;
        d.dropped_partition = self.dropped_partition - earlier.dropped_partition;
        d.dropped_crash = self.dropped_crash - earlier.dropped_crash;
        d.regions = self.regions;
        if self.regions > 1 && earlier.region_hist.len() == self.region_hist.len() {
            d.region_hist = self
                .region_hist
                .iter()
                .zip(&earlier.region_hist)
                .map(|(a, b)| a.subtract(b))
                .collect();
        } else {
            d.region_hist = self.region_hist.clone();
        }
        d
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "messages: sent={} delivered={} lost={} partitioned={} to-crashed={}",
            self.total_sent,
            self.delivered,
            self.dropped_loss,
            self.dropped_partition,
            self.dropped_crash
        )?;
        for (kind, n, bytes) in self.by_kind() {
            writeln!(f, "  {kind:<24} {n:>8} msgs {bytes:>10} B")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_kind() {
        let mut m = Metrics::new();
        m.record_send("ack", 10);
        m.record_send("ack", 10);
        m.record_send("data", 100);
        assert_eq!(m.sent_of_kind("ack"), 2);
        assert_eq!(m.sent_of_kind("data"), 1);
        assert_eq!(m.sent_of_kind("none"), 0);
        assert_eq!(m.total_sent(), 3);
        assert_eq!(m.total_bytes(), 120);
    }

    #[test]
    fn delta_since_subtracts() {
        let mut m = Metrics::new();
        m.record_send("a", 1);
        let snapshot = m.clone();
        m.record_send("a", 1);
        m.record_send("b", 2);
        let d = m.delta_since(&snapshot);
        assert_eq!(d.sent_of_kind("a"), 1);
        assert_eq!(d.sent_of_kind("b"), 1);
        assert_eq!(d.total_sent(), 2);
    }

    #[test]
    fn display_lists_kinds() {
        let mut m = Metrics::new();
        m.record_send("xyz", 7);
        let s = format!("{m}");
        assert!(s.contains("xyz"));
        assert!(s.contains("sent=1"));
    }

    #[test]
    fn latency_histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::default();
        for ms in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 100] {
            h.record(TimeDelta::from_millis(ms));
        }
        assert_eq!(h.count(), 10);
        // Mean: (9·1ms + 100ms)/10 = 10.9 ms.
        assert_eq!(h.mean_ns(), 10_900_000);
        // Median lands in the 1ms bucket (upper edge ≤ 2·2^20 ns ≈ 2.1 ms);
        // p99 lands in the 100ms bucket (upper edge ≥ 100 ms).
        assert!(h.quantile_ns(0.5) <= 2_097_152 * 2);
        assert!(h.quantile_ns(0.99) >= 100_000_000);
        assert_eq!(LatencyHistogram::default().quantile_ns(0.5), 0);
    }

    #[test]
    fn region_histograms_only_exist_for_multi_region() {
        let mut m = Metrics::new();
        m.set_regions(1);
        m.record_link_latency(0, 0, TimeDelta::from_millis(1));
        assert!(m.region_latency(0, 0).is_none());
        assert_eq!(m.region_pairs().count(), 0);

        let mut m = Metrics::new();
        m.set_regions(2);
        m.record_link_latency(0, 1, TimeDelta::from_millis(20));
        m.record_link_latency(0, 1, TimeDelta::from_millis(30));
        m.record_link_latency(1, 0, TimeDelta::from_millis(40));
        assert_eq!(m.region_latency(0, 1).unwrap().count(), 2);
        assert_eq!(m.region_latency(1, 1).unwrap().count(), 0);
        let pairs: Vec<(usize, usize, u64)> = m
            .region_pairs()
            .map(|(f, t, h)| (f, t, h.count()))
            .collect();
        assert_eq!(pairs, vec![(0, 1, 2), (1, 0, 1)]);
        // Deltas subtract bucket-wise.
        let snap = m.clone();
        m.record_link_latency(0, 1, TimeDelta::from_millis(25));
        let d = m.delta_since(&snap);
        assert_eq!(d.region_latency(0, 1).unwrap().count(), 1);
    }

    #[test]
    fn sent_matching_filters() {
        let mut m = Metrics::new();
        m.record_send("fd/heartbeat", 1);
        m.record_send("ct/propose", 1);
        m.record_send("ct/ack", 1);
        assert_eq!(m.sent_matching(|k| k.starts_with("ct/")), 2);
    }
}
