//! The simulation world: event queue, process hosting, fault injection.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gcs_kernel::{Effects, Event, Process, ProcessId, Time, TimeDelta, TimerId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::Metrics;
use crate::network::{LinkModel, NetworkModel};
use crate::trace::Trace;

/// Configuration of a simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// PRNG seed; two runs with equal seed, topology and workload are
    /// identical.
    pub seed: u64,
    /// Default link model for every pair of processes.
    pub link: LinkModel,
    /// Fixed loopback delay for self-sends (never lost or partitioned).
    pub loopback_delay: TimeDelta,
}

impl SimConfig {
    /// A LAN-like configuration with the given seed.
    pub fn lan(seed: u64) -> Self {
        SimConfig { seed, link: LinkModel::lan(), loopback_delay: TimeDelta::from_micros(10) }
    }

    /// Replaces the default link model.
    pub fn with_link(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::lan(0)
    }
}

#[derive(Debug)]
enum Pending<E> {
    Net { from: ProcessId, to: ProcessId, component: &'static str, event: E },
    Timer { proc: ProcessId, id: TimerId },
    Inject { proc: ProcessId, component: &'static str, event: E },
    Crash(ProcessId),
    Partition(Vec<Vec<ProcessId>>),
    Heal,
    DelaySpike { extra: TimeDelta, until: Time },
    LossBurst { prob: f64, until: Time },
}

#[derive(Debug)]
struct Scheduled<E> {
    at: Time,
    seq: u64,
    pending: Pending<E>,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Node<E: Event> {
    process: Process<E>,
    alive: bool,
}

/// The discrete-event simulation world.
///
/// Build one with [`SimWorld::new`], add processes with
/// [`add_node`](SimWorld::add_node), schedule workload with
/// [`inject_at`](SimWorld::inject_at) and faults with
/// [`crash_at`](SimWorld::crash_at) et al., then drive it with
/// [`run_until`](SimWorld::run_until) or
/// [`run_to_quiescence`](SimWorld::run_to_quiescence).
pub struct SimWorld<E: Event> {
    now: Time,
    seq: u64,
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    nodes: Vec<Node<E>>,
    net: NetworkModel,
    rng: StdRng,
    metrics: Metrics,
    trace: Trace<E>,
    loopback_delay: TimeDelta,
    spike_extra: TimeDelta,
    spike_until: Time,
    burst_prob: f64,
    burst_until: Time,
    started: bool,
}

impl<E: Event> SimWorld<E> {
    /// Creates an empty world.
    pub fn new(config: SimConfig) -> Self {
        SimWorld {
            now: Time::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            nodes: Vec::new(),
            net: NetworkModel::new(config.link),
            rng: StdRng::seed_from_u64(config.seed),
            metrics: Metrics::new(),
            trace: Trace::new(),
            loopback_delay: config.loopback_delay,
            spike_extra: TimeDelta::ZERO,
            spike_until: Time::ZERO,
            burst_prob: 0.0,
            burst_until: Time::ZERO,
            started: false,
        }
    }

    /// Adds a process built by `f`, which receives the assigned id.
    ///
    /// # Panics
    ///
    /// Panics if called after the world started running, or if `f` builds a
    /// process with a different id.
    pub fn add_node(&mut self, f: impl FnOnce(ProcessId) -> Process<E>) -> ProcessId {
        assert!(!self.started, "processes must be added before the world starts");
        let id = ProcessId::new(self.nodes.len() as u32);
        let process = f(id);
        assert_eq!(process.id(), id, "process built with wrong id");
        self.nodes.push(Node { process, alive: true });
        id
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no processes were added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All process ids.
    pub fn process_ids(&self) -> Vec<ProcessId> {
        (0..self.nodes.len() as u32).map(ProcessId::new).collect()
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Whether a process is still running (not crashed / halted).
    pub fn is_alive(&self, p: ProcessId) -> bool {
        self.nodes[p.index()].alive && !self.nodes[p.index()].process.is_halted()
    }

    /// Liveness flags indexed by process, for trace checkers.
    pub fn alive_flags(&self) -> Vec<bool> {
        self.process_ids().iter().map(|&p| self.is_alive(p)).collect()
    }

    /// The collected metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The application-delivery trace.
    pub fn trace(&self) -> &Trace<E> {
        &self.trace
    }

    /// Mutable access to the network model (link overrides).
    pub fn network_mut(&mut self) -> &mut NetworkModel {
        &mut self.net
    }

    /// Schedules a local event for `proc`'s component at time `at`.
    pub fn inject_at(&mut self, at: Time, proc: ProcessId, component: &'static str, event: E) {
        self.schedule(at, Pending::Inject { proc, component, event });
    }

    /// Crashes `proc` at time `at` (crash-stop).
    pub fn crash_at(&mut self, at: Time, proc: ProcessId) {
        self.schedule(at, Pending::Crash(proc));
    }

    /// Installs a partition at time `at`.
    pub fn partition_at(&mut self, at: Time, groups: Vec<Vec<ProcessId>>) {
        self.schedule(at, Pending::Partition(groups));
    }

    /// Heals any partition at time `at`.
    pub fn heal_at(&mut self, at: Time) {
        self.schedule(at, Pending::Heal);
    }

    /// Adds `extra` delay to every link during `[at, at + duration)` —
    /// the false-suspicion generator of experiment E3.
    pub fn delay_spike_at(&mut self, at: Time, duration: TimeDelta, extra: TimeDelta) {
        self.schedule(at, Pending::DelaySpike { extra, until: at + duration });
    }

    /// Drops messages with probability `prob` during `[at, at + duration)`.
    pub fn loss_burst_at(&mut self, at: Time, duration: TimeDelta, prob: f64) {
        self.schedule(at, Pending::LossBurst { prob, until: at + duration });
    }

    fn schedule(&mut self, at: Time, pending: Pending<E>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, pending }));
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let fx = self.nodes[i].process.start(self.now);
            self.apply_effects(ProcessId::new(i as u32), fx);
        }
    }

    /// Executes the next scheduled event; returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let Some(Reverse(next)) = self.heap.pop() else {
            return false;
        };
        debug_assert!(next.at >= self.now, "time went backwards");
        self.now = next.at;
        match next.pending {
            Pending::Net { from, to, component, event } => {
                if self.nodes[to.index()].alive {
                    self.metrics.record_delivery();
                    let fx = self.nodes[to.index()].process.deliver_net(
                        from, component, event, self.now,
                    );
                    self.apply_effects(to, fx);
                } else {
                    self.metrics.record_drop_crash();
                }
            }
            Pending::Timer { proc, id } => {
                if self.nodes[proc.index()].alive {
                    let fx = self.nodes[proc.index()].process.fire_timer(id, self.now);
                    self.apply_effects(proc, fx);
                }
            }
            Pending::Inject { proc, component, event } => {
                if self.nodes[proc.index()].alive {
                    let fx = self.nodes[proc.index()].process.deliver(component, event, self.now);
                    self.apply_effects(proc, fx);
                }
            }
            Pending::Crash(p) => {
                self.nodes[p.index()].alive = false;
                self.nodes[p.index()].process.halt();
            }
            Pending::Partition(groups) => self.net.set_partition(groups),
            Pending::Heal => self.net.heal(),
            Pending::DelaySpike { extra, until } => {
                self.spike_extra = extra;
                self.spike_until = until;
            }
            Pending::LossBurst { prob, until } => {
                self.burst_prob = prob;
                self.burst_until = until;
            }
        }
        true
    }

    /// Runs until virtual time `t` (inclusive of events at `t`); afterwards
    /// `now() == t` even if the queue drained earlier.
    pub fn run_until(&mut self, t: Time) {
        self.ensure_started();
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.at > t {
                break;
            }
            self.step();
        }
        self.now = self.now.max(t);
    }

    /// Runs until the event queue drains or virtual time would exceed
    /// `limit`; returns `true` if the system quiesced within the limit.
    pub fn run_to_quiescence(&mut self, limit: Time) -> bool {
        self.ensure_started();
        loop {
            match self.heap.peek() {
                None => return true,
                Some(Reverse(head)) if head.at > limit => return false,
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    fn apply_effects(&mut self, proc: ProcessId, fx: Effects<E>) {
        for out in fx.outputs {
            self.trace.push(self.now, proc, out);
        }
        for t in fx.timers {
            self.schedule(self.now + t.after, Pending::Timer { proc, id: t.id });
        }
        for env in fx.sends {
            self.route(env.from, env.to, env.component, env.event);
        }
        if fx.halted {
            self.nodes[proc.index()].alive = false;
        }
    }

    fn route(&mut self, from: ProcessId, to: ProcessId, component: &'static str, event: E) {
        self.metrics.record_send(event.kind(), event.wire_size());
        if from == to {
            // Loopback: fixed small delay, never lost or partitioned.
            let at = self.now + self.loopback_delay;
            self.schedule(at, Pending::Net { from, to, component, event });
            return;
        }
        if self.net.blocked(from, to) {
            self.metrics.record_drop_partition();
            return;
        }
        let link = self.net.link(from, to);
        let mut drop_prob = link.drop_prob;
        if self.now < self.burst_until {
            drop_prob = (drop_prob + self.burst_prob).min(1.0);
        }
        if drop_prob > 0.0 && self.rng.gen_bool(drop_prob) {
            self.metrics.record_drop_loss();
            return;
        }
        let mut delay = link.sample_delay(&mut self.rng);
        if self.now < self.spike_until {
            delay = delay + self.spike_extra;
        }
        if link.dup_prob > 0.0 && self.rng.gen_bool(link.dup_prob) {
            let delay2 = link.sample_delay(&mut self.rng);
            self.schedule(
                self.now + delay2,
                Pending::Net { from, to, component, event: event.clone() },
            );
        }
        self.schedule(self.now + delay, Pending::Net { from, to, component, event });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_kernel::{Component, Context};

    #[derive(Clone, Debug, PartialEq)]
    enum Ev {
        Hello(u32),
        Deliver(u32),
        Tick,
    }
    impl Event for Ev {
        fn kind(&self) -> &'static str {
            match self {
                Ev::Hello(_) => "hello",
                Ev::Deliver(_) => "deliver",
                Ev::Tick => "tick",
            }
        }
    }

    /// Broadcasts Hello on injection; outputs Deliver on reception.
    struct Echo {
        n: u32,
    }
    impl Component<Ev> for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn on_event(&mut self, ev: Ev, ctx: &mut Context<'_, Ev>) {
            if let Ev::Hello(v) = ev {
                let targets: Vec<ProcessId> = (0..self.n).map(ProcessId::new).collect();
                ctx.send_to_all(targets, "echo", Ev::Hello(v));
            }
        }
        fn on_message(&mut self, _from: ProcessId, ev: Ev, ctx: &mut Context<'_, Ev>) {
            if let Ev::Hello(v) = ev {
                ctx.output(Ev::Deliver(v));
            }
        }
    }

    fn world(n: u32, seed: u64) -> SimWorld<Ev> {
        let mut w = SimWorld::new(SimConfig::lan(seed));
        for _ in 0..n {
            w.add_node(|id| Process::builder(id).with(Echo { n }).build());
        }
        w
    }

    #[test]
    fn broadcast_reaches_all_nodes() {
        let mut w = world(3, 1);
        w.inject_at(Time::ZERO, ProcessId::new(0), "echo", Ev::Hello(42));
        assert!(w.run_to_quiescence(Time::from_secs(1)));
        let seqs = w.trace().per_proc(3, |e| match e {
            Ev::Deliver(v) => Some(*v),
            _ => None,
        });
        assert_eq!(seqs, vec![vec![42], vec![42], vec![42]]);
        assert_eq!(w.metrics().sent_of_kind("hello"), 3);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut w = world(4, seed);
            for i in 0..10 {
                w.inject_at(
                    Time::from_millis(i),
                    ProcessId::new((i % 4) as u32),
                    "echo",
                    Ev::Hello(i as u32),
                );
            }
            assert!(w.run_to_quiescence(Time::from_secs(1)));
            w.trace()
                .entries()
                .iter()
                .map(|e| (e.time, e.proc, e.event.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8)); // different seed ⇒ different delays
    }

    #[test]
    fn crashed_node_receives_nothing() {
        let mut w = world(3, 2);
        w.crash_at(Time::from_millis(1), ProcessId::new(2));
        w.inject_at(Time::from_millis(2), ProcessId::new(0), "echo", Ev::Hello(1));
        assert!(w.run_to_quiescence(Time::from_secs(1)));
        let seqs = w.trace().per_proc(3, |e| match e {
            Ev::Deliver(v) => Some(*v),
            _ => None,
        });
        assert_eq!(seqs[2], Vec::<u32>::new());
        assert!(!w.is_alive(ProcessId::new(2)));
        assert_eq!(w.metrics().dropped_crash(), 1);
    }

    #[test]
    fn partition_blocks_and_heals() {
        let p = |i| ProcessId::new(i);
        let mut w = world(3, 3);
        w.partition_at(Time::ZERO, vec![vec![p(0)], vec![p(1), p(2)]]);
        w.inject_at(Time::from_millis(1), p(1), "echo", Ev::Hello(5));
        assert!(w.run_to_quiescence(Time::from_secs(1)));
        let seqs = w.trace().per_proc(3, |e| match e {
            Ev::Deliver(v) => Some(*v),
            _ => None,
        });
        assert_eq!(seqs[0], Vec::<u32>::new());
        assert_eq!(seqs[1], vec![5]);
        assert_eq!(w.metrics().dropped_partition(), 1);
    }

    #[test]
    fn loss_burst_drops_messages() {
        let mut w = world(2, 4);
        w.loss_burst_at(Time::ZERO, TimeDelta::from_secs(10), 1.0);
        w.inject_at(Time::from_millis(1), ProcessId::new(0), "echo", Ev::Hello(9));
        assert!(w.run_to_quiescence(Time::from_secs(1)));
        // Self-send still arrives (loopback is never lost); peer send dropped.
        assert_eq!(w.metrics().dropped_loss(), 1);
        let seqs = w.trace().per_proc(2, |e| match e {
            Ev::Deliver(v) => Some(*v),
            _ => None,
        });
        assert_eq!(seqs[1], Vec::<u32>::new());
        assert_eq!(seqs[0], vec![9]);
    }

    #[test]
    fn delay_spike_slows_delivery() {
        let measure = |spike: bool| {
            let mut w = world(2, 5);
            if spike {
                w.delay_spike_at(Time::ZERO, TimeDelta::from_secs(1), TimeDelta::from_millis(50));
            }
            w.inject_at(Time::ZERO, ProcessId::new(0), "echo", Ev::Hello(1));
            assert!(w.run_to_quiescence(Time::from_secs(2)));
            w.trace()
                .project(|e| matches!(e, Ev::Deliver(_)).then_some(()))
                .iter()
                .filter(|(_, p, _)| *p == ProcessId::new(1))
                .map(|(t, _, _)| *t)
                .next()
                .unwrap()
        };
        let base = measure(false);
        let spiked = measure(true);
        assert!(spiked.as_nanos() >= base.as_nanos() + 49_000_000);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut w = world(2, 6);
        w.run_until(Time::from_millis(250));
        assert_eq!(w.now(), Time::from_millis(250));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use gcs_kernel::{Component, Context};
    use proptest::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Num(u32);
    impl Event for Num {
        fn kind(&self) -> &'static str {
            "num"
        }
    }

    /// Forwards every received value to a pseudo-random peer and outputs it.
    struct Forwarder {
        n: u32,
    }
    impl Component<Num> for Forwarder {
        fn name(&self) -> &'static str {
            "fwd"
        }
        fn on_event(&mut self, ev: Num, ctx: &mut Context<'_, Num>) {
            ctx.send(ProcessId::new(ev.0 % self.n), "fwd", Num(ev.0));
        }
        fn on_message(&mut self, _from: ProcessId, ev: Num, ctx: &mut Context<'_, Num>) {
            ctx.output(ev);
        }
    }

    proptest! {
        /// Determinism: identical seeds and workloads produce identical
        /// traces and metrics, for arbitrary workloads.
        #[test]
        fn identical_seeds_identical_runs(
            seed in any::<u64>(),
            injections in proptest::collection::vec((0u32..4, 0u64..50, any::<u32>()), 0..40),
        ) {
            let run = || {
                let mut w: SimWorld<Num> = SimWorld::new(SimConfig::lan(seed));
                for _ in 0..4 {
                    w.add_node(|id| {
                        gcs_kernel::Process::builder(id).with(Forwarder { n: 4 }).build()
                    });
                }
                for (p, t, v) in &injections {
                    w.inject_at(Time::from_millis(*t), ProcessId::new(*p), "fwd", Num(*v));
                }
                prop_assert!(w.run_to_quiescence(Time::from_secs(60)));
                Ok((
                    w.trace().entries().iter().map(|e| (e.time, e.proc, e.event.clone())).collect::<Vec<_>>(),
                    w.metrics().total_sent(),
                ))
            };
            prop_assert_eq!(run()?, run()?);
        }

        /// Time monotonicity and conservation: every injected message is
        /// delivered exactly once (loss-free network), in non-decreasing
        /// virtual time.
        #[test]
        fn conservation_and_monotonic_time(
            injections in proptest::collection::vec((0u32..3, 0u64..30, any::<u32>()), 1..30),
        ) {
            let mut w: SimWorld<Num> = SimWorld::new(SimConfig::lan(1));
            for _ in 0..3 {
                w.add_node(|id| {
                    gcs_kernel::Process::builder(id).with(Forwarder { n: 3 }).build()
                });
            }
            for (p, t, v) in &injections {
                w.inject_at(Time::from_millis(*t), ProcessId::new(*p), "fwd", Num(*v));
            }
            prop_assert!(w.run_to_quiescence(Time::from_secs(60)));
            prop_assert_eq!(w.trace().len(), injections.len());
            let mut last = Time::ZERO;
            for e in w.trace().entries() {
                prop_assert!(e.time >= last, "time went backwards");
                last = e.time;
            }
        }
    }
}
