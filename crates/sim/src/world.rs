//! The simulation world: event queue, process hosting, fault injection.

use gcs_kernel::{Effects, Event, Process, ProcessId, Time, TimeDelta, TimerId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::Metrics;
use crate::network::{LinkModel, NetworkModel};
use crate::schedule::{Schedule, ScheduleAction};
use crate::topology::Topology;
use crate::trace::{Trace, TraceMode};
use crate::wheel::{TimingWheel, WheelItem};

/// Configuration of a simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// PRNG seed; two runs with equal seed, topology and workload are
    /// identical.
    pub seed: u64,
    /// Network topology resolving the link model of every process pair.
    pub topology: Topology,
    /// Fixed loopback delay for self-sends (never lost or partitioned).
    pub loopback_delay: TimeDelta,
    /// How application deliveries are recorded (see [`TraceMode`]); long
    /// throughput runs should switch off the full sink.
    pub trace: TraceMode,
}

impl SimConfig {
    /// A LAN-like configuration with the given seed.
    pub fn lan(seed: u64) -> Self {
        SimConfig {
            seed,
            topology: Topology::lan(),
            loopback_delay: TimeDelta::from_micros(10),
            trace: TraceMode::Full,
        }
    }

    /// Replaces the topology with a single uniform link model.
    pub fn with_link(self, link: LinkModel) -> Self {
        self.with_topology(Topology::uniform("uniform", link))
    }

    /// Replaces the network topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Replaces the trace sink mode.
    pub fn with_trace(mut self, trace: TraceMode) -> Self {
        self.trace = trace;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::lan(0)
    }
}

#[derive(Debug)]
enum Pending<E> {
    Net {
        from: ProcessId,
        to: ProcessId,
        component: &'static str,
        event: E,
    },
    Timer {
        proc: ProcessId,
        id: TimerId,
    },
    Inject {
        proc: ProcessId,
        component: &'static str,
        event: E,
    },
    Crash(ProcessId),
    Partition(Vec<Vec<ProcessId>>),
    /// Region-boundary partition, resolved against the topology and node
    /// count when the step *fires* (processes may be added between
    /// scheduling and firing).
    PartitionRegions,
    Heal,
    DelaySpike {
        extra: TimeDelta,
        until: Time,
    },
    LossBurst {
        prob: f64,
        until: Time,
    },
    SetLink {
        from: ProcessId,
        to: ProcessId,
        link: LinkModel,
    },
}

#[derive(Debug)]
struct Scheduled<E> {
    at: Time,
    seq: u64,
    pending: Pending<E>,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}
impl<E> WheelItem for Scheduled<E> {
    fn at_nanos(&self) -> u64 {
        self.at.as_nanos()
    }
}

struct Node<E: Event> {
    process: Process<E>,
    alive: bool,
}

/// The discrete-event simulation world.
///
/// Build one with [`SimWorld::new`], add processes with
/// [`add_node`](SimWorld::add_node), schedule workload with
/// [`inject_at`](SimWorld::inject_at) and faults with
/// [`crash_at`](SimWorld::crash_at) et al., then drive it with
/// [`run_until`](SimWorld::run_until) or
/// [`run_to_quiescence`](SimWorld::run_to_quiescence).
pub struct SimWorld<E: Event> {
    now: Time,
    seq: u64,
    executed: u64,
    queue: TimingWheel<Scheduled<E>>,
    nodes: Vec<Node<E>>,
    net: NetworkModel,
    rng: StdRng,
    metrics: Metrics,
    trace: Trace<E>,
    loopback_delay: TimeDelta,
    spike_extra: TimeDelta,
    spike_until: Time,
    burst_prob: f64,
    burst_until: Time,
    started: bool,
    /// Reused effects buffer: dispatches append into it and
    /// [`apply_effects`](Self::apply_effects) drains it, so the steady state
    /// allocates nothing per event. Boxed so borrowing it out of `self` is a
    /// pointer swap, not a memcpy of the inline buffers.
    fx: Option<Box<Effects<E>>>,
}

impl<E: Event> SimWorld<E> {
    /// Creates an empty world.
    pub fn new(config: SimConfig) -> Self {
        let mut metrics = Metrics::new();
        metrics.set_regions(config.topology.regions());
        SimWorld {
            now: Time::ZERO,
            seq: 0,
            executed: 0,
            queue: TimingWheel::new(),
            nodes: Vec::new(),
            net: NetworkModel::with_topology(config.topology),
            rng: StdRng::seed_from_u64(config.seed),
            metrics,
            trace: Trace::with_mode(config.trace),
            loopback_delay: config.loopback_delay,
            spike_extra: TimeDelta::ZERO,
            spike_until: Time::ZERO,
            burst_prob: 0.0,
            burst_until: Time::ZERO,
            started: false,
            fx: Some(Box::new(Effects::new())),
        }
    }

    /// Adds a process built by `f`, which receives the assigned id.
    ///
    /// # Panics
    ///
    /// Panics if called after the world started running, or if `f` builds a
    /// process with a different id.
    pub fn add_node(&mut self, f: impl FnOnce(ProcessId) -> Process<E>) -> ProcessId {
        assert!(
            !self.started,
            "processes must be added before the world starts"
        );
        let id = ProcessId::new(self.nodes.len() as u32);
        let process = f(id);
        assert_eq!(process.id(), id, "process built with wrong id");
        self.nodes.push(Node {
            process,
            alive: true,
        });
        id
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no processes were added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All process ids, without allocating.
    pub fn process_ids(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.nodes.len() as u32).map(ProcessId::new)
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of simulation events executed so far (for events/sec
    /// throughput measurements).
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Whether a process is still running (not crashed / halted).
    pub fn is_alive(&self, p: ProcessId) -> bool {
        self.nodes[p.index()].alive && !self.nodes[p.index()].process.is_halted()
    }

    /// Liveness flags indexed by process, for trace checkers.
    pub fn alive_flags(&self) -> Vec<bool> {
        self.nodes
            .iter()
            .map(|n| n.alive && !n.process.is_halted())
            .collect()
    }

    /// The collected metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The application-delivery trace.
    pub fn trace(&self) -> &Trace<E> {
        &self.trace
    }

    /// Mutable access to the network model (link overrides).
    pub fn network_mut(&mut self) -> &mut NetworkModel {
        &mut self.net
    }

    /// Schedules a local event for `proc`'s component at time `at`.
    pub fn inject_at(&mut self, at: Time, proc: ProcessId, component: &'static str, event: E) {
        self.schedule(
            at,
            Pending::Inject {
                proc,
                component,
                event,
            },
        );
    }

    /// Crashes `proc` at time `at` (crash-stop).
    pub fn crash_at(&mut self, at: Time, proc: ProcessId) {
        self.schedule(at, Pending::Crash(proc));
    }

    /// Installs a partition at time `at`.
    pub fn partition_at(&mut self, at: Time, groups: Vec<Vec<ProcessId>>) {
        self.schedule(at, Pending::Partition(groups));
    }

    /// Heals any partition at time `at`.
    pub fn heal_at(&mut self, at: Time) {
        self.schedule(at, Pending::Heal);
    }

    /// Adds `extra` delay to every link during `[at, at + duration)` —
    /// the false-suspicion generator of experiment E3.
    pub fn delay_spike_at(&mut self, at: Time, duration: TimeDelta, extra: TimeDelta) {
        self.schedule(
            at,
            Pending::DelaySpike {
                extra,
                until: at + duration,
            },
        );
    }

    /// Drops messages with probability `prob` during `[at, at + duration)`.
    pub fn loss_burst_at(&mut self, at: Time, duration: TimeDelta, prob: f64) {
        self.schedule(
            at,
            Pending::LossBurst {
                prob,
                until: at + duration,
            },
        );
    }

    /// Replaces the directed link `from -> to` at time `at` (a per-pair
    /// override on top of the topology).
    pub fn set_link_at(&mut self, at: Time, from: ProcessId, to: ProcessId, link: LinkModel) {
        self.schedule(at, Pending::SetLink { from, to, link });
    }

    /// Applies every simulator-level step of `schedule` (crashes,
    /// partitions, link changes, spikes, bursts) and returns the membership
    /// steps ([`ScheduleAction::Join`] / [`ScheduleAction::Remove`]) the
    /// caller's protocol harness must route itself.
    pub fn apply_schedule(&mut self, schedule: &Schedule) -> Vec<(Time, ScheduleAction)> {
        let mut membership = Vec::new();
        for (t, action) in schedule.steps() {
            match action {
                ScheduleAction::Crash(p) => self.crash_at(*t, *p),
                ScheduleAction::Partition(groups) => self.partition_at(*t, groups.clone()),
                ScheduleAction::PartitionRegions => self.schedule(*t, Pending::PartitionRegions),
                ScheduleAction::Heal => self.heal_at(*t),
                ScheduleAction::DelaySpike { duration, extra } => {
                    self.delay_spike_at(*t, *duration, *extra)
                }
                ScheduleAction::LossBurst { duration, prob } => {
                    self.loss_burst_at(*t, *duration, *prob)
                }
                ScheduleAction::SetLink { from, to, link } => {
                    self.set_link_at(*t, *from, *to, *link)
                }
                ScheduleAction::Join { .. } | ScheduleAction::Remove { .. } => {
                    membership.push((*t, action.clone()));
                }
            }
        }
        membership
    }

    fn schedule(&mut self, at: Time, pending: Pending<E>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, pending });
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let mut fx = self.fx.take().unwrap_or_default();
            self.nodes[i].process.start_into(self.now, &mut fx);
            self.apply_effects(ProcessId::new(i as u32), &mut fx);
            self.fx = Some(fx);
        }
    }

    /// Executes the next scheduled event; returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let Some(next) = self.queue.pop() else {
            return false;
        };
        self.execute(next);
        true
    }

    /// Executes one already-popped scheduled entry.
    fn execute(&mut self, next: Scheduled<E>) {
        debug_assert!(next.at >= self.now, "time went backwards");
        self.now = next.at;
        self.executed += 1;
        match next.pending {
            Pending::Net {
                from,
                to,
                component,
                event,
            } => {
                if self.nodes[to.index()].alive {
                    self.metrics.record_delivery();
                    let mut fx = self.fx.take().unwrap_or_default();
                    self.nodes[to.index()]
                        .process
                        .deliver_net_into(from, component, event, self.now, &mut fx);
                    self.apply_effects(to, &mut fx);
                    self.fx = Some(fx);
                } else {
                    self.metrics.record_drop_crash();
                }
            }
            Pending::Timer { proc, id } => {
                if self.nodes[proc.index()].alive {
                    let mut fx = self.fx.take().unwrap_or_default();
                    self.nodes[proc.index()]
                        .process
                        .fire_timer_into(id, self.now, &mut fx);
                    self.apply_effects(proc, &mut fx);
                    self.fx = Some(fx);
                }
            }
            Pending::Inject {
                proc,
                component,
                event,
            } => {
                if self.nodes[proc.index()].alive {
                    let mut fx = self.fx.take().unwrap_or_default();
                    self.nodes[proc.index()]
                        .process
                        .deliver_into(component, event, self.now, &mut fx);
                    self.apply_effects(proc, &mut fx);
                    self.fx = Some(fx);
                }
            }
            Pending::Crash(p) => {
                self.nodes[p.index()].alive = false;
                self.nodes[p.index()].process.halt();
            }
            Pending::Partition(groups) => self.net.set_partition(groups),
            Pending::PartitionRegions => {
                let groups = self.net.topology().region_groups(self.nodes.len());
                self.net.set_partition(groups);
            }
            Pending::Heal => self.net.heal(),
            Pending::DelaySpike { extra, until } => {
                self.spike_extra = extra;
                self.spike_until = until;
            }
            Pending::LossBurst { prob, until } => {
                self.burst_prob = prob;
                self.burst_until = until;
            }
            Pending::SetLink { from, to, link } => self.net.set_link(from, to, link),
        }
    }

    /// Runs until virtual time `t` (inclusive of events at `t`); afterwards
    /// `now() == t` even if the queue drained earlier.
    pub fn run_until(&mut self, t: Time) {
        self.ensure_started();
        while let Some(next) = self.queue.pop_if(|head| head.at <= t) {
            self.execute(next);
        }
        self.now = self.now.max(t);
    }

    /// Runs until the event queue drains or virtual time would exceed
    /// `limit`; returns `true` if the system quiesced within the limit.
    pub fn run_to_quiescence(&mut self, limit: Time) -> bool {
        self.ensure_started();
        loop {
            if self.queue.is_empty() {
                return true;
            }
            match self.queue.pop_if(|head| head.at <= limit) {
                Some(next) => self.execute(next),
                None => return false,
            }
        }
    }

    /// Drains a dispatch's effects into the queue/trace, leaving `fx` empty
    /// and ready for reuse.
    fn apply_effects(&mut self, proc: ProcessId, fx: &mut Effects<E>) {
        for out in fx.outputs.drain() {
            self.trace.push(self.now, proc, out);
        }
        for t in fx.timers.drain() {
            self.schedule(self.now + t.after, Pending::Timer { proc, id: t.id });
        }
        for env in fx.sends.drain() {
            self.route(env.from, env.to, env.component, env.event);
        }
        for cast in fx.casts.drain() {
            self.route_multicast(cast.from, &cast.to, cast.component, cast.event);
        }
        if fx.halted {
            self.nodes[proc.index()].alive = false;
        }
        fx.clear();
    }

    fn route(&mut self, from: ProcessId, to: ProcessId, component: &'static str, event: E) {
        let wire_size = event.wire_size();
        self.metrics.record_send(event.kind(), wire_size);
        if from == to {
            // Loopback: fixed small delay, never lost or partitioned.
            let at = self.now + self.loopback_delay;
            self.schedule(
                at,
                Pending::Net {
                    from,
                    to,
                    component,
                    event,
                },
            );
            return;
        }
        if self.net.blocked(from, to) {
            self.metrics.record_drop_partition();
            return;
        }
        let link = self.net.link(from, to);
        let mut drop_prob = link.drop_prob;
        if self.now < self.burst_until {
            drop_prob = (drop_prob + self.burst_prob).min(1.0);
        }
        if drop_prob > 0.0 && self.rng.gen_bool(drop_prob) {
            self.metrics.record_drop_loss();
            return;
        }
        // Every scheduled copy pays serialization and any active delay
        // spike, duplicates included — a spike must slow *all* traffic.
        let spike = if self.now < self.spike_until {
            self.spike_extra
        } else {
            TimeDelta::ZERO
        };
        let serialization = link.serialization_delay(wire_size);
        let delay = link.sample_delay(&mut self.rng) + serialization + spike;
        // Region-pair observability: every scheduled copy records its
        // one-way latency under (src region, dst region). Single-region
        // topologies skip this entirely (see Metrics::set_regions).
        let topology = self.net.topology();
        let (from_region, to_region) = (topology.region_of(from), topology.region_of(to));
        if link.dup_prob > 0.0 && self.rng.gen_bool(link.dup_prob) {
            let delay2 = link.sample_delay(&mut self.rng) + serialization + spike;
            self.metrics
                .record_link_latency(from_region, to_region, delay2);
            self.schedule(
                self.now + delay2,
                Pending::Net {
                    from,
                    to,
                    component,
                    event: event.clone(),
                },
            );
        }
        self.metrics
            .record_link_latency(from_region, to_region, delay);
        self.schedule(
            self.now + delay,
            Pending::Net {
                from,
                to,
                component,
                event,
            },
        );
    }

    /// Expands a broadcast envelope: the wire-size/kind metrics are recorded
    /// per destination (each transmission is a message on the network), and
    /// the event is cloned once per *scheduled delivery* — the last
    /// destination receives the original, so a unicast "broadcast" is fully
    /// zero-copy and an `n`-cast performs `n − 1` cheap clones instead of
    /// the `n` deep per-envelope copies the old per-destination path made.
    fn route_multicast(
        &mut self,
        from: ProcessId,
        to: &gcs_kernel::SmallVec<ProcessId, 8>,
        component: &'static str,
        event: E,
    ) {
        let n = to.len();
        if n == 0 {
            return;
        }
        for i in 0..n - 1 {
            self.route(from, to[i], component, event.clone());
        }
        self.route(from, to[n - 1], component, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_kernel::{Component, Context};

    #[derive(Clone, Debug, PartialEq)]
    enum Ev {
        Hello(u32),
        Deliver(u32),
    }
    impl Event for Ev {
        fn kind(&self) -> &'static str {
            match self {
                Ev::Hello(_) => "hello",
                Ev::Deliver(_) => "deliver",
            }
        }
    }

    /// Broadcasts Hello on injection; outputs Deliver on reception.
    struct Echo {
        n: u32,
    }
    impl Component<Ev> for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn on_event(&mut self, ev: Ev, ctx: &mut Context<'_, Ev>) {
            if let Ev::Hello(v) = ev {
                let targets: Vec<ProcessId> = (0..self.n).map(ProcessId::new).collect();
                ctx.send_to_all(targets, "echo", Ev::Hello(v));
            }
        }
        fn on_message(&mut self, _from: ProcessId, ev: Ev, ctx: &mut Context<'_, Ev>) {
            if let Ev::Hello(v) = ev {
                ctx.output(Ev::Deliver(v));
            }
        }
    }

    fn world(n: u32, seed: u64) -> SimWorld<Ev> {
        let mut w = SimWorld::new(SimConfig::lan(seed));
        for _ in 0..n {
            w.add_node(|id| Process::builder(id).with(Echo { n }).build());
        }
        w
    }

    #[test]
    fn broadcast_reaches_all_nodes() {
        let mut w = world(3, 1);
        w.inject_at(Time::ZERO, ProcessId::new(0), "echo", Ev::Hello(42));
        assert!(w.run_to_quiescence(Time::from_secs(1)));
        let seqs = w.trace().per_proc(3, |e| match e {
            Ev::Deliver(v) => Some(*v),
            _ => None,
        });
        assert_eq!(seqs, vec![vec![42], vec![42], vec![42]]);
        assert_eq!(w.metrics().sent_of_kind("hello"), 3);
    }

    #[test]
    fn equal_time_events_fire_in_schedule_order() {
        // Tie-breaking pin for the scheduler: events scheduled at the same
        // instant fire in scheduling (seq) order. The old BinaryHeap ordered
        // by (time, seq); the timing wheel must preserve that exactly.
        let mut w = world(1, 42);
        for i in 0..50u32 {
            w.inject_at(
                Time::from_millis(5),
                ProcessId::new(0),
                "echo",
                Ev::Hello(i),
            );
        }
        assert!(w.run_to_quiescence(Time::from_secs(1)));
        let seqs = w.trace().per_proc(1, |e| match e {
            Ev::Deliver(v) => Some(*v),
            _ => None,
        });
        assert_eq!(seqs[0], (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn counts_only_trace_still_counts_deliveries() {
        let mut w: SimWorld<Ev> =
            SimWorld::new(SimConfig::lan(1).with_trace(crate::trace::TraceMode::CountsOnly));
        for _ in 0..3 {
            w.add_node(|id| Process::builder(id).with(Echo { n: 3 }).build());
        }
        w.inject_at(Time::ZERO, ProcessId::new(0), "echo", Ev::Hello(1));
        assert!(w.run_to_quiescence(Time::from_secs(1)));
        assert!(w.trace().entries().is_empty(), "no entries stored");
        assert_eq!(w.trace().delivery_count(), 3, "but deliveries counted");
        assert_eq!(w.metrics().sent_of_kind("hello"), 3);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut w = world(4, seed);
            for i in 0..10 {
                w.inject_at(
                    Time::from_millis(i),
                    ProcessId::new((i % 4) as u32),
                    "echo",
                    Ev::Hello(i as u32),
                );
            }
            assert!(w.run_to_quiescence(Time::from_secs(1)));
            w.trace()
                .entries()
                .iter()
                .map(|e| (e.time, e.proc, e.event.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8)); // different seed ⇒ different delays
    }

    #[test]
    fn crashed_node_receives_nothing() {
        let mut w = world(3, 2);
        w.crash_at(Time::from_millis(1), ProcessId::new(2));
        w.inject_at(
            Time::from_millis(2),
            ProcessId::new(0),
            "echo",
            Ev::Hello(1),
        );
        assert!(w.run_to_quiescence(Time::from_secs(1)));
        let seqs = w.trace().per_proc(3, |e| match e {
            Ev::Deliver(v) => Some(*v),
            _ => None,
        });
        assert_eq!(seqs[2], Vec::<u32>::new());
        assert!(!w.is_alive(ProcessId::new(2)));
        assert_eq!(w.metrics().dropped_crash(), 1);
    }

    #[test]
    fn partition_blocks_and_heals() {
        let p = |i| ProcessId::new(i);
        let mut w = world(3, 3);
        w.partition_at(Time::ZERO, vec![vec![p(0)], vec![p(1), p(2)]]);
        w.inject_at(Time::from_millis(1), p(1), "echo", Ev::Hello(5));
        assert!(w.run_to_quiescence(Time::from_secs(1)));
        let seqs = w.trace().per_proc(3, |e| match e {
            Ev::Deliver(v) => Some(*v),
            _ => None,
        });
        assert_eq!(seqs[0], Vec::<u32>::new());
        assert_eq!(seqs[1], vec![5]);
        assert_eq!(w.metrics().dropped_partition(), 1);
    }

    #[test]
    fn loss_burst_drops_messages() {
        let mut w = world(2, 4);
        w.loss_burst_at(Time::ZERO, TimeDelta::from_secs(10), 1.0);
        w.inject_at(
            Time::from_millis(1),
            ProcessId::new(0),
            "echo",
            Ev::Hello(9),
        );
        assert!(w.run_to_quiescence(Time::from_secs(1)));
        // Self-send still arrives (loopback is never lost); peer send dropped.
        assert_eq!(w.metrics().dropped_loss(), 1);
        let seqs = w.trace().per_proc(2, |e| match e {
            Ev::Deliver(v) => Some(*v),
            _ => None,
        });
        assert_eq!(seqs[1], Vec::<u32>::new());
        assert_eq!(seqs[0], vec![9]);
    }

    #[test]
    fn delay_spike_slows_delivery() {
        let measure = |spike: bool| {
            let mut w = world(2, 5);
            if spike {
                w.delay_spike_at(
                    Time::ZERO,
                    TimeDelta::from_secs(1),
                    TimeDelta::from_millis(50),
                );
            }
            w.inject_at(Time::ZERO, ProcessId::new(0), "echo", Ev::Hello(1));
            assert!(w.run_to_quiescence(Time::from_secs(2)));
            w.trace()
                .project(|e| matches!(e, Ev::Deliver(_)).then_some(()))
                .iter()
                .filter(|(_, p, _)| *p == ProcessId::new(1))
                .map(|(t, _, _)| *t)
                .next()
                .unwrap()
        };
        let base = measure(false);
        let spiked = measure(true);
        assert!(spiked.as_nanos() >= base.as_nanos() + 49_000_000);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut w = world(2, 6);
        w.run_until(Time::from_millis(250));
        assert_eq!(w.now(), Time::from_millis(250));
    }

    #[test]
    fn apply_schedule_drives_sim_actions_and_returns_membership() {
        let p = |i| ProcessId::new(i);
        let mut w = world(3, 7);
        let s = crate::Schedule::new()
            .crash(Time::from_millis(1), p(2))
            .join(Time::from_millis(5), p(9), p(0))
            .remove(Time::from_millis(6), p(0), p(1));
        let leftover = w.apply_schedule(&s);
        assert_eq!(leftover.len(), 2, "membership steps returned");
        assert!(leftover.iter().all(|(_, a)| !a.is_sim_level()));
        w.inject_at(Time::from_millis(2), p(0), "echo", Ev::Hello(1));
        assert!(w.run_to_quiescence(Time::from_secs(1)));
        assert!(!w.is_alive(p(2)), "scheduled crash applied");
        assert_eq!(w.metrics().dropped_crash(), 1);
    }

    #[test]
    fn region_partition_splits_along_topology() {
        let p = |i| ProcessId::new(i);
        let cfg = SimConfig::lan(8).with_topology(crate::Topology::wan_2dc());
        let mut w: SimWorld<Ev> = SimWorld::new(cfg);
        for _ in 0..4 {
            w.add_node(|id| Process::builder(id).with(Echo { n: 4 }).build());
        }
        let s = crate::Schedule::new().partition_regions(Time::ZERO);
        assert!(w.apply_schedule(&s).is_empty());
        w.inject_at(Time::from_millis(1), p(0), "echo", Ev::Hello(3));
        assert!(w.run_to_quiescence(Time::from_secs(1)));
        let seqs = w.trace().per_proc(4, |e| match e {
            Ev::Deliver(v) => Some(*v),
            _ => None,
        });
        // Round-robin regions: p0/p2 in one DC, p1/p3 in the other.
        assert_eq!(seqs[0], vec![3]);
        assert_eq!(seqs[2], vec![3]);
        assert_eq!(seqs[1], Vec::<u32>::new());
        assert_eq!(seqs[3], Vec::<u32>::new());
        assert_eq!(w.metrics().dropped_partition(), 2);
    }

    #[test]
    fn scheduled_set_link_degrades_a_route() {
        let p = |i| ProcessId::new(i);
        let slow = LinkModel {
            delay_min: TimeDelta::from_millis(80),
            delay_max: TimeDelta::from_millis(90),
            ..LinkModel::lan()
        };
        let measure = |degrade: bool| {
            let mut w = world(2, 9);
            if degrade {
                let s = crate::Schedule::new().set_link(Time::ZERO, p(0), p(1), slow);
                w.apply_schedule(&s);
            }
            w.inject_at(Time::from_millis(1), p(0), "echo", Ev::Hello(1));
            assert!(w.run_to_quiescence(Time::from_secs(1)));
            w.trace()
                .project(|e| matches!(e, Ev::Deliver(_)).then_some(()))
                .iter()
                .find(|(_, q, _)| *q == p(1))
                .map(|(t, _, _)| *t)
                .unwrap()
        };
        let base = measure(false);
        let degraded = measure(true);
        assert!(degraded.as_nanos() >= base.as_nanos() + 78_000_000);
    }

    #[test]
    fn bandwidth_limited_link_delays_by_wire_size() {
        // Ev::Hello has the default 64-byte wire size; a 64-byte/sec link
        // therefore adds a full second of serialization delay.
        let p = |i| ProcessId::new(i);
        let cfg = SimConfig::lan(10).with_link(LinkModel::lan().with_bandwidth(64));
        let mut w: SimWorld<Ev> = SimWorld::new(cfg);
        for _ in 0..2 {
            w.add_node(|id| Process::builder(id).with(Echo { n: 2 }).build());
        }
        w.inject_at(Time::ZERO, p(0), "echo", Ev::Hello(1));
        assert!(w.run_to_quiescence(Time::from_secs(5)));
        let at = w
            .trace()
            .project(|e| matches!(e, Ev::Deliver(_)).then_some(()))
            .iter()
            .find(|(_, q, _)| *q == p(1))
            .map(|(t, _, _)| *t)
            .unwrap();
        assert!(at >= Time::from_secs(1), "serialization delay paid: {at:?}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use gcs_kernel::{Component, Context};
    use proptest::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Num(u32);
    impl Event for Num {
        fn kind(&self) -> &'static str {
            "num"
        }
    }

    /// Forwards every received value to a pseudo-random peer and outputs it.
    struct Forwarder {
        n: u32,
    }
    impl Component<Num> for Forwarder {
        fn name(&self) -> &'static str {
            "fwd"
        }
        fn on_event(&mut self, ev: Num, ctx: &mut Context<'_, Num>) {
            ctx.send(ProcessId::new(ev.0 % self.n), "fwd", Num(ev.0));
        }
        fn on_message(&mut self, _from: ProcessId, ev: Num, ctx: &mut Context<'_, Num>) {
            ctx.output(ev);
        }
    }

    proptest! {
        /// Determinism: identical seeds and workloads produce identical
        /// traces and metrics, for arbitrary workloads.
        #[test]
        fn identical_seeds_identical_runs(
            seed in any::<u64>(),
            injections in proptest::collection::vec((0u32..4, 0u64..50, any::<u32>()), 0..40),
        ) {
            let run = || {
                let mut w: SimWorld<Num> = SimWorld::new(SimConfig::lan(seed));
                for _ in 0..4 {
                    w.add_node(|id| {
                        gcs_kernel::Process::builder(id).with(Forwarder { n: 4 }).build()
                    });
                }
                for (p, t, v) in &injections {
                    w.inject_at(Time::from_millis(*t), ProcessId::new(*p), "fwd", Num(*v));
                }
                prop_assert!(w.run_to_quiescence(Time::from_secs(60)));
                Ok((
                    w.trace().entries().iter().map(|e| (e.time, e.proc, e.event.clone())).collect::<Vec<_>>(),
                    w.metrics().total_sent(),
                ))
            };
            prop_assert_eq!(run()?, run()?);
        }

        /// Time monotonicity and conservation: every injected message is
        /// delivered exactly once (loss-free network), in non-decreasing
        /// virtual time.
        #[test]
        fn conservation_and_monotonic_time(
            injections in proptest::collection::vec((0u32..3, 0u64..30, any::<u32>()), 1..30),
        ) {
            let mut w: SimWorld<Num> = SimWorld::new(SimConfig::lan(1));
            for _ in 0..3 {
                w.add_node(|id| {
                    gcs_kernel::Process::builder(id).with(Forwarder { n: 3 }).build()
                });
            }
            for (p, t, v) in &injections {
                w.inject_at(Time::from_millis(*t), ProcessId::new(*p), "fwd", Num(*v));
            }
            prop_assert!(w.run_to_quiescence(Time::from_secs(60)));
            prop_assert_eq!(w.trace().len(), injections.len());
            let mut last = Time::ZERO;
            for e in w.trace().entries() {
                prop_assert!(e.time >= last, "time went backwards");
                last = e.time;
            }
        }
    }
}
