//! # gcs-sim — deterministic discrete-event simulation substrate
//!
//! The paper evaluated its architecture on a LAN testbed; this crate is the
//! substitution documented in DESIGN.md: a deterministic discrete-event
//! simulator that hosts [`gcs_kernel::Process`] component graphs and models
//! the network between them.
//!
//! Key properties:
//!
//! * **Determinism** — given the same seed, topology and workload, a run is
//!   reproducible bit-for-bit; the event queue breaks time ties by a
//!   monotonically increasing sequence number and all randomness comes from
//!   one seeded PRNG sampled in event order.
//! * **Configurable network** — region-based WAN [`Topology`]s (directed
//!   latency matrices, asymmetric and lossy links, per-link bandwidth so
//!   large payloads pay serialization delay), per-pair overrides, plus
//!   scheduled partitions, delay spikes (the false-suspicion generator of
//!   experiment E3) and loss bursts.
//! * **Fault injection** — scripted [`Schedule`]s of crashes, partitions,
//!   link changes and membership churn; crashed processes silently stop,
//!   exactly the crash-stop model of the paper.
//! * **Observability** — per-kind message/byte counters ([`Metrics`]) and a
//!   full application-delivery [`Trace`] with property checkers used by the
//!   integration tests (total order, agreement, …).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod network;
mod schedule;
mod topology;
mod trace;
mod wheel;
mod world;

pub use metrics::{LatencyHistogram, Metrics};
pub use network::{LinkModel, NetworkModel};
pub use schedule::{Schedule, ScheduleAction};
pub use topology::{Assignment, Topology, TOPOLOGY_PRESETS};
pub use trace::{
    check_agreement, check_no_duplicates, check_prefix_consistency, check_total_order,
    OrderViolation, Trace, TraceEntry, TraceMode,
};
pub use wheel::{TimingWheel, WheelItem};
pub use world::{SimConfig, SimWorld};
