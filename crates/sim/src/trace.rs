//! Application-delivery traces and global property checkers.
//!
//! Every event a component [`output`](gcs_kernel::Context::output)s is
//! recorded here with its process and virtual time. Integration tests project
//! the trace into per-process delivery sequences and check the group
//! communication properties the paper relies on: total order, (uniform)
//! agreement, integrity, and conflict-order consistency.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use gcs_kernel::{ProcessId, Time};

/// One recorded application delivery.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEntry<E> {
    /// Virtual time of the delivery.
    pub time: Time,
    /// Process at which the delivery happened.
    pub proc: ProcessId,
    /// The delivered event.
    pub event: E,
}

/// How the simulation records application deliveries.
///
/// Long throughput runs should use [`CountsOnly`](TraceMode::CountsOnly) or
/// [`Off`](TraceMode::Off): the [`Full`](TraceMode::Full) sink accumulates an
/// unbounded `Vec` of entries, which both costs memory and pollutes
/// wall-clock measurements.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// Record every delivery with its time, process, and event (default).
    #[default]
    Full,
    /// Keep only per-process delivery counters; drop the events.
    CountsOnly,
    /// Record nothing.
    Off,
}

/// The application-delivery trace of a run, in delivery order.
#[derive(Clone, Debug, Default)]
pub struct Trace<E> {
    mode: TraceMode,
    entries: Vec<TraceEntry<E>>,
    /// Deliveries per process (kept in every mode except [`TraceMode::Off`]).
    counts: Vec<u64>,
    total: u64,
}

impl<E> Trace<E> {
    /// Creates an empty trace with the [`TraceMode::Full`] sink.
    pub fn new() -> Self {
        Self::with_mode(TraceMode::Full)
    }

    /// Creates an empty trace with the given sink mode.
    pub fn with_mode(mode: TraceMode) -> Self {
        Trace {
            mode,
            entries: Vec::new(),
            counts: Vec::new(),
            total: 0,
        }
    }

    /// The sink mode this trace records with.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    pub(crate) fn push(&mut self, time: Time, proc: ProcessId, event: E) {
        match self.mode {
            TraceMode::Off => {}
            TraceMode::CountsOnly => {
                self.total += 1;
                let idx = proc.index();
                if idx >= self.counts.len() {
                    self.counts.resize(idx + 1, 0);
                }
                self.counts[idx] += 1;
            }
            TraceMode::Full => {
                self.total += 1;
                let idx = proc.index();
                if idx >= self.counts.len() {
                    self.counts.resize(idx + 1, 0);
                }
                self.counts[idx] += 1;
                self.entries.push(TraceEntry { time, proc, event });
            }
        }
    }

    /// All entries in global delivery order (empty unless the mode is
    /// [`TraceMode::Full`]).
    pub fn entries(&self) -> &[TraceEntry<E>] {
        &self.entries
    }

    /// Number of recorded *entries* — zero in the counting-only modes even
    /// when deliveries happened (use [`delivery_count`](Self::delivery_count)
    /// for the mode-independent total).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no delivery was *observed*. Unlike [`len`](Self::len) this
    /// accounts for the [`TraceMode::CountsOnly`] sink; under
    /// [`TraceMode::Off`] nothing is observed, so this stays `true`.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Total deliveries observed, in any mode except [`TraceMode::Off`]
    /// (where it stays zero).
    pub fn delivery_count(&self) -> u64 {
        self.total
    }

    /// Deliveries observed at `proc` (zero when the mode is
    /// [`TraceMode::Off`]).
    pub fn deliveries_of(&self, proc: ProcessId) -> u64 {
        self.counts.get(proc.index()).copied().unwrap_or(0)
    }

    /// Entries of one process, in delivery order.
    pub fn of_proc(&self, proc: ProcessId) -> impl Iterator<Item = &TraceEntry<E>> {
        self.entries.iter().filter(move |e| e.proc == proc)
    }

    /// Projects the trace into a per-process sequence of keys: entry `i` of
    /// the result is the sequence of `f(event)` values (where `f` returned
    /// `Some`) delivered at process `i`, in order.
    pub fn per_proc<K>(&self, n: usize, f: impl Fn(&E) -> Option<K>) -> Vec<Vec<K>> {
        let mut out: Vec<Vec<K>> = (0..n).map(|_| Vec::new()).collect();
        for e in &self.entries {
            if let Some(k) = f(&e.event) {
                let idx = e.proc.index();
                if idx < n {
                    out[idx].push(k);
                }
            }
        }
        out
    }

    /// Projects the trace into `(time, proc, key)` triples.
    pub fn project<K>(&self, f: impl Fn(&E) -> Option<K>) -> Vec<(Time, ProcessId, K)> {
        self.entries
            .iter()
            .filter_map(|e| f(&e.event).map(|k| (e.time, e.proc, k)))
            .collect()
    }

    /// First delivery time of the first event for which `f` returns `Some`.
    pub fn first_time<K>(&self, f: impl Fn(&E) -> Option<K>) -> Option<(Time, ProcessId, K)> {
        self.entries
            .iter()
            .find_map(|e| f(&e.event).map(|k| (e.time, e.proc, k)))
    }
}

/// A violation of pairwise order consistency found by [`check_total_order`].
#[derive(Clone, Debug, PartialEq)]
pub struct OrderViolation<K> {
    /// Index of the first sequence involved.
    pub seq_a: usize,
    /// Index of the second sequence involved.
    pub seq_b: usize,
    /// The two keys delivered in opposite orders.
    pub pair: (K, K),
}

impl<K: fmt::Debug> fmt::Display for OrderViolation<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sequences {} and {} deliver {:?} and {:?} in opposite orders",
            self.seq_a, self.seq_b, self.pair.0, self.pair.1
        )
    }
}

/// Checks pairwise **total order**: for every pair of sequences, the elements
/// they have in common appear in the same relative order.
///
/// # Errors
///
/// Returns the first violating pair found.
pub fn check_total_order<K: Eq + Hash + Clone>(seqs: &[Vec<K>]) -> Result<(), OrderViolation<K>> {
    for a in 0..seqs.len() {
        for b in (a + 1)..seqs.len() {
            let pos_b: HashMap<&K, usize> =
                seqs[b].iter().enumerate().map(|(i, k)| (k, i)).collect();
            // Indices into seqs[b] of the common elements, in seqs[a]'s order;
            // they must be increasing.
            let mut last: Option<(usize, &K)> = None;
            for k in &seqs[a] {
                if let Some(&i) = pos_b.get(k) {
                    if let Some((last_i, last_k)) = last {
                        if i < last_i {
                            return Err(OrderViolation {
                                seq_a: a,
                                seq_b: b,
                                pair: (last_k.clone(), k.clone()),
                            });
                        }
                    }
                    last = Some((i, k));
                }
            }
        }
    }
    Ok(())
}

/// Checks **agreement**: every sequence flagged `correct` contains exactly
/// the same set of elements.
///
/// # Errors
///
/// Returns `(i, j, key)` where the key is in sequence `i` but not `j`.
pub fn check_agreement<K: Eq + Hash + Clone>(
    seqs: &[Vec<K>],
    correct: &[bool],
) -> Result<(), (usize, usize, K)> {
    let idx: Vec<usize> = (0..seqs.len()).filter(|&i| correct[i]).collect();
    for &i in &idx {
        for &j in &idx {
            if i == j {
                continue;
            }
            let set_j: std::collections::HashSet<&K> = seqs[j].iter().collect();
            for k in &seqs[i] {
                if !set_j.contains(k) {
                    return Err((i, j, k.clone()));
                }
            }
        }
    }
    Ok(())
}

/// Checks **integrity** (no duplication): no element appears twice in any
/// sequence.
///
/// # Errors
///
/// Returns `(sequence index, key)` of the first duplicate.
pub fn check_no_duplicates<K: Eq + Hash + Clone>(seqs: &[Vec<K>]) -> Result<(), (usize, K)> {
    for (i, seq) in seqs.iter().enumerate() {
        let mut seen = std::collections::HashSet::new();
        for k in seq {
            if !seen.insert(k) {
                return Err((i, k.clone()));
            }
        }
    }
    Ok(())
}

/// Checks **prefix consistency**: every pair of sequences is such that one is
/// a prefix of the other (the strongest form of total order + agreement at
/// every cut; holds for abcast delivery sequences of live runs).
///
/// # Errors
///
/// Returns the indices of the first offending pair.
pub fn check_prefix_consistency<K: Eq>(seqs: &[Vec<K>]) -> Result<(), (usize, usize)> {
    for a in 0..seqs.len() {
        for b in (a + 1)..seqs.len() {
            let n = seqs[a].len().min(seqs[b].len());
            if seqs[a][..n] != seqs[b][..n] {
                return Err((a, b));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_accepts_consistent_sequences() {
        let seqs = vec![vec![1, 2, 3], vec![1, 3], vec![2, 3]];
        assert!(check_total_order(&seqs).is_ok());
    }

    #[test]
    fn total_order_rejects_inversions() {
        let seqs = vec![vec![1, 2], vec![2, 1]];
        let v = check_total_order(&seqs).unwrap_err();
        assert_eq!((v.seq_a, v.seq_b), (0, 1));
    }

    #[test]
    fn agreement_ignores_faulty_sequences() {
        let seqs = vec![vec![1, 2], vec![1], vec![1, 2]];
        assert!(check_agreement(&seqs, &[true, false, true]).is_ok());
        assert!(check_agreement(&seqs, &[true, true, true]).is_err());
    }

    #[test]
    fn duplicates_are_detected() {
        assert!(check_no_duplicates(&[vec![1, 2, 3]]).is_ok());
        assert_eq!(check_no_duplicates(&[vec![1, 2, 1]]), Err((0, 1)));
    }

    #[test]
    fn prefix_consistency() {
        assert!(check_prefix_consistency(&[vec![1, 2, 3], vec![1, 2]]).is_ok());
        assert_eq!(
            check_prefix_consistency(&[vec![1, 2], vec![1, 3]]),
            Err((0, 1))
        );
    }

    #[test]
    fn counts_only_mode_counts_without_storing() {
        let mut t: Trace<u32> = Trace::with_mode(TraceMode::CountsOnly);
        t.push(Time::from_millis(1), ProcessId::new(0), 10);
        t.push(Time::from_millis(2), ProcessId::new(2), 20);
        t.push(Time::from_millis(3), ProcessId::new(0), 30);
        assert!(t.entries().is_empty());
        assert_eq!(t.delivery_count(), 3);
        assert_eq!(t.deliveries_of(ProcessId::new(0)), 2);
        assert_eq!(t.deliveries_of(ProcessId::new(1)), 0);
        assert_eq!(t.deliveries_of(ProcessId::new(2)), 1);
    }

    #[test]
    fn off_mode_records_nothing() {
        let mut t: Trace<u32> = Trace::with_mode(TraceMode::Off);
        t.push(Time::from_millis(1), ProcessId::new(0), 10);
        assert!(t.entries().is_empty());
        assert_eq!(t.delivery_count(), 0);
        assert_eq!(t.mode(), TraceMode::Off);
    }

    #[test]
    fn trace_projection_per_proc() {
        let mut t: Trace<u32> = Trace::new();
        t.push(Time::from_millis(1), ProcessId::new(0), 10);
        t.push(Time::from_millis(2), ProcessId::new(1), 20);
        t.push(Time::from_millis(3), ProcessId::new(0), 30);
        let seqs = t.per_proc(2, |e| Some(*e));
        assert_eq!(seqs, vec![vec![10, 30], vec![20]]);
        assert_eq!(t.of_proc(ProcessId::new(0)).count(), 2);
        let first = t.first_time(|e| (*e == 20).then_some(())).unwrap();
        assert_eq!(first.0, Time::from_millis(2));
    }
}
