//! The network model: link characteristics and partitions.

use gcs_kernel::{ProcessId, TimeDelta};
use rand::Rng;

use crate::topology::Topology;

/// Delay/loss/duplication/bandwidth characteristics of one directed link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkModel {
    /// Minimum one-way delay.
    pub delay_min: TimeDelta,
    /// Maximum one-way delay (uniformly sampled between min and max).
    pub delay_max: TimeDelta,
    /// Probability that a message is silently dropped.
    pub drop_prob: f64,
    /// Probability that a message is delivered twice.
    pub dup_prob: f64,
    /// Link bandwidth in bytes per second; `0` means unlimited. A message of
    /// `s` wire bytes pays `s / bandwidth` of serialization delay on top of
    /// the sampled propagation delay, so large payloads are slower than
    /// small ones on constrained links.
    pub bandwidth: u64,
}

impl LinkModel {
    /// A LAN-like link: 0.2–1.2 ms one-way delay, no loss, unlimited
    /// bandwidth.
    pub fn lan() -> Self {
        LinkModel {
            delay_min: TimeDelta::from_micros(200),
            delay_max: TimeDelta::from_micros(1_200),
            drop_prob: 0.0,
            dup_prob: 0.0,
            bandwidth: 0,
        }
    }

    /// A lossy LAN: same delays as [`lan`](Self::lan) with the given loss
    /// probability.
    pub fn lossy_lan(drop_prob: f64) -> Self {
        LinkModel {
            drop_prob,
            ..Self::lan()
        }
    }

    /// A WAN-like link: 10–40 ms one-way delay, 0.1% loss.
    pub fn wan() -> Self {
        LinkModel {
            delay_min: TimeDelta::from_millis(10),
            delay_max: TimeDelta::from_millis(40),
            drop_prob: 0.001,
            dup_prob: 0.0,
            bandwidth: 0,
        }
    }

    /// This link with the given bandwidth (bytes per second; 0 = unlimited).
    pub fn with_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.bandwidth = bytes_per_sec;
        self
    }

    /// Samples a one-way delay for this link.
    pub fn sample_delay<R: Rng>(&self, rng: &mut R) -> TimeDelta {
        let lo = self.delay_min.as_nanos();
        let hi = self.delay_max.as_nanos().max(lo + 1);
        TimeDelta::from_nanos(rng.gen_range(lo..hi))
    }

    /// Serialization delay of a `wire_bytes`-sized message on this link
    /// (zero on unlimited-bandwidth links).
    #[inline]
    pub fn serialization_delay(&self, wire_bytes: usize) -> TimeDelta {
        if self.bandwidth == 0 {
            return TimeDelta::ZERO;
        }
        let nanos = (wire_bytes as u128 * 1_000_000_000) / self.bandwidth as u128;
        TimeDelta::from_nanos(nanos as u64)
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        Self::lan()
    }
}

/// The global network model: a region [`Topology`], per-pair overrides, and
/// the current partition (if any).
#[derive(Clone, Debug, Default)]
pub struct NetworkModel {
    topology: Topology,
    overrides: Vec<((ProcessId, ProcessId), LinkModel)>,
    /// Current partition: a process may communicate only with processes in
    /// its own group. Processes absent from every group are isolated.
    partition: Option<Vec<Vec<ProcessId>>>,
}

impl NetworkModel {
    /// Creates a network where every link uses `default_link` (a one-region
    /// topology).
    pub fn new(default_link: LinkModel) -> Self {
        Self::with_topology(Topology::uniform("uniform", default_link))
    }

    /// Creates a network resolving links through `topology`.
    pub fn with_topology(topology: Topology) -> Self {
        NetworkModel {
            topology,
            overrides: Vec::new(),
            partition: None,
        }
    }

    /// The topology links resolve through (unless overridden per pair).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Overrides the model of the directed link `from -> to`.
    pub fn set_link(&mut self, from: ProcessId, to: ProcessId, link: LinkModel) {
        if let Some(slot) = self.overrides.iter_mut().find(|(k, _)| *k == (from, to)) {
            slot.1 = link;
        } else {
            self.overrides.push(((from, to), link));
        }
    }

    /// The model of the directed link `from -> to`: a per-pair override if
    /// one was set, the topology's region link otherwise.
    pub fn link(&self, from: ProcessId, to: ProcessId) -> LinkModel {
        if !self.overrides.is_empty() {
            if let Some((_, l)) = self.overrides.iter().find(|(k, _)| *k == (from, to)) {
                return *l;
            }
        }
        self.topology.link(from, to)
    }

    /// Installs a partition. Communication is allowed only within a group.
    pub fn set_partition(&mut self, groups: Vec<Vec<ProcessId>>) {
        self.partition = Some(groups);
    }

    /// Removes any partition.
    pub fn heal(&mut self) {
        self.partition = None;
    }

    /// Whether a message from `from` to `to` is currently blocked by a
    /// partition.
    pub fn blocked(&self, from: ProcessId, to: ProcessId) -> bool {
        match &self.partition {
            None => false,
            Some(groups) => !groups.iter().any(|g| g.contains(&from) && g.contains(&to)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_delay_is_within_bounds() {
        let link = LinkModel::lan();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let d = link.sample_delay(&mut rng);
            assert!(d >= link.delay_min && d <= link.delay_max);
        }
    }

    #[test]
    fn partition_blocks_across_groups_only() {
        let p = |i| ProcessId::new(i);
        let mut net = NetworkModel::new(LinkModel::lan());
        assert!(!net.blocked(p(0), p(1)));
        net.set_partition(vec![vec![p(0), p(1)], vec![p(2)]]);
        assert!(!net.blocked(p(0), p(1)));
        assert!(net.blocked(p(0), p(2)));
        assert!(net.blocked(p(2), p(1)));
        net.heal();
        assert!(!net.blocked(p(0), p(2)));
    }

    #[test]
    fn isolated_process_is_blocked_from_everyone() {
        let p = |i| ProcessId::new(i);
        let mut net = NetworkModel::new(LinkModel::lan());
        net.set_partition(vec![vec![p(0), p(1)]]);
        assert!(net.blocked(p(2), p(0)));
        assert!(net.blocked(p(0), p(2)));
    }

    #[test]
    fn serialization_delay_scales_with_size() {
        let free = LinkModel::lan();
        assert_eq!(free.serialization_delay(1 << 20), TimeDelta::ZERO);
        let thin = LinkModel::lan().with_bandwidth(1_000_000); // 1 MB/s
        assert_eq!(thin.serialization_delay(1_000_000), TimeDelta::from_secs(1));
        assert_eq!(thin.serialization_delay(1_000), TimeDelta::from_millis(1));
    }

    #[test]
    fn network_resolves_links_through_topology() {
        let p = |i| ProcessId::new(i);
        let net = NetworkModel::with_topology(Topology::wan_2dc());
        // Same DC (round-robin: p0, p2 in region 0): LAN link.
        assert_eq!(net.link(p(0), p(2)), LinkModel::lan());
        // Cross DC: the inter-region link.
        assert!(net.link(p(0), p(1)).delay_min >= TimeDelta::from_millis(10));
    }

    #[test]
    fn link_overrides_take_precedence() {
        let p = |i| ProcessId::new(i);
        let mut net = NetworkModel::new(LinkModel::lan());
        net.set_link(p(0), p(1), LinkModel::wan());
        assert_eq!(net.link(p(0), p(1)), LinkModel::wan());
        assert_eq!(net.link(p(1), p(0)), LinkModel::lan());
        // Overwriting an existing override replaces it.
        net.set_link(p(0), p(1), LinkModel::lossy_lan(0.5));
        assert_eq!(net.link(p(0), p(1)).drop_prob, 0.5);
    }
}
