//! Region-based WAN topologies: the first-class network layer every
//! scenario composes.
//!
//! A [`Topology`] assigns processes to *regions* (data centers, radio cells,
//! …) and gives every ordered region pair its own [`LinkModel`] — a full
//! directed latency matrix, so asymmetric routes, lossy inter-region links
//! and per-link bandwidth are all expressible. Named presets cover the
//! experiment matrix ([`Topology::lan`], [`Topology::wan_2dc`],
//! [`Topology::wan_3region`], [`Topology::lossy`]); bespoke topologies are
//! built with [`Topology::with_regions`] + [`Topology::set_region_link`].

use gcs_kernel::{ProcessId, TimeDelta};

use crate::network::LinkModel;

/// How processes map onto regions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Assignment {
    /// Process `p` lives in region `p.index() % regions` — any group size
    /// spreads evenly across all regions.
    RoundRobin,
    /// Process `p` lives in region `p.index() / block`, clamped to the last
    /// region — contiguous id blocks per region.
    Blocks(usize),
}

/// A region-based network topology: a directed region × region link matrix
/// plus a process → region assignment.
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    name: &'static str,
    regions: usize,
    /// Directed matrix, row-major: `links[from * regions + to]`.
    links: Vec<LinkModel>,
    assignment: Assignment,
}

/// The preset names accepted by [`Topology::by_name`].
pub const TOPOLOGY_PRESETS: &[&str] = &["lan", "wan-2dc", "wan-3region", "lossy"];

impl Topology {
    /// A topology of `regions` regions where every link (intra and inter)
    /// starts as `link`; customize with
    /// [`set_region_link`](Self::set_region_link).
    pub fn with_regions(
        name: &'static str,
        regions: usize,
        link: LinkModel,
        assignment: Assignment,
    ) -> Self {
        assert!(regions > 0, "a topology needs at least one region");
        Topology {
            name,
            regions,
            links: vec![link; regions * regions],
            assignment,
        }
    }

    /// A single-region topology where every link is `link`.
    pub fn uniform(name: &'static str, link: LinkModel) -> Self {
        Self::with_regions(name, 1, link, Assignment::RoundRobin)
    }

    /// The `lan` preset: one region of [`LinkModel::lan`] links.
    pub fn lan() -> Self {
        Self::uniform("lan", LinkModel::lan())
    }

    /// The `lossy` preset: one region of 2%-loss LAN links.
    pub fn lossy() -> Self {
        Self::uniform("lossy", LinkModel::lossy_lan(0.02))
    }

    /// The `wan-2dc` preset: two data centers with LAN-quality links inside
    /// each and a bandwidth-limited WAN link between them.
    pub fn wan_2dc() -> Self {
        let mut t = Self::with_regions("wan-2dc", 2, LinkModel::lan(), Assignment::RoundRobin);
        let inter = LinkModel {
            delay_min: TimeDelta::from_millis(15),
            delay_max: TimeDelta::from_millis(35),
            drop_prob: 0.001,
            dup_prob: 0.0,
            bandwidth: 25_000_000, // 25 MB/s cross-DC pipe
        };
        t.set_region_link_sym(0, 1, inter);
        t
    }

    /// The `wan-3region` preset: three regions with an *asymmetric* latency
    /// matrix (the return path of each long-haul route is slower, as on real
    /// transit links), loss on the longest route, and bandwidth limits on
    /// every inter-region link.
    pub fn wan_3region() -> Self {
        let mut t = Self::with_regions("wan-3region", 3, LinkModel::lan(), Assignment::RoundRobin);
        let link = |lo_ms: u64, hi_ms: u64, drop: f64, bw: u64| LinkModel {
            delay_min: TimeDelta::from_millis(lo_ms),
            delay_max: TimeDelta::from_millis(hi_ms),
            drop_prob: drop,
            dup_prob: 0.0,
            bandwidth: bw,
        };
        // r0 ↔ r1: short haul, fat pipe.
        t.set_region_link(0, 1, link(18, 28, 0.001, 50_000_000));
        t.set_region_link(1, 0, link(22, 34, 0.001, 50_000_000));
        // r1 ↔ r2: medium haul.
        t.set_region_link(1, 2, link(35, 50, 0.002, 25_000_000));
        t.set_region_link(2, 1, link(40, 58, 0.002, 25_000_000));
        // r0 ↔ r2: long haul, lossy, thin pipe.
        t.set_region_link(0, 2, link(60, 90, 0.003, 12_500_000));
        t.set_region_link(2, 0, link(70, 105, 0.003, 12_500_000));
        t
    }

    /// Looks a preset up by name (see [`TOPOLOGY_PRESETS`]).
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "lan" => Some(Self::lan()),
            "wan-2dc" => Some(Self::wan_2dc()),
            "wan-3region" => Some(Self::wan_3region()),
            "lossy" => Some(Self::lossy()),
            _ => None,
        }
    }

    /// The topology's name (preset name, or whatever the builder was given).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// The region a process is assigned to.
    #[inline]
    pub fn region_of(&self, p: ProcessId) -> usize {
        match self.assignment {
            Assignment::RoundRobin => p.index() % self.regions,
            Assignment::Blocks(block) => (p.index() / block.max(1)).min(self.regions - 1),
        }
    }

    /// The model of the directed link `from -> to`, resolved through the
    /// region matrix.
    #[inline]
    pub fn link(&self, from: ProcessId, to: ProcessId) -> LinkModel {
        if self.regions == 1 {
            return self.links[0];
        }
        self.links[self.region_of(from) * self.regions + self.region_of(to)]
    }

    /// The model of the directed region link `from -> to`.
    pub fn region_link(&self, from: usize, to: usize) -> LinkModel {
        self.links[from * self.regions + to]
    }

    /// Sets the directed region link `from -> to` (asymmetry: set the two
    /// directions independently).
    pub fn set_region_link(&mut self, from: usize, to: usize, link: LinkModel) {
        assert!(
            from < self.regions && to < self.regions,
            "region out of range"
        );
        self.links[from * self.regions + to] = link;
    }

    /// Sets both directions of the region link `a <-> b`.
    pub fn set_region_link_sym(&mut self, a: usize, b: usize, link: LinkModel) {
        self.set_region_link(a, b, link);
        self.set_region_link(b, a, link);
    }

    /// The largest one-way propagation delay any link of this topology can
    /// sample (the maximum `delay_max` over the region matrix) — the RTT
    /// bound protocol timeout profiles derive from: a failure-detection or
    /// token-loss timeout below `2 ×` this value suspects peers that are
    /// merely far away.
    pub fn max_one_way_delay(&self) -> TimeDelta {
        self.links
            .iter()
            .map(|l| l.delay_max)
            .max()
            .unwrap_or(TimeDelta::ZERO)
    }

    /// The first `n` processes grouped by region — the partition groups of a
    /// region-boundary split (see
    /// [`ScheduleAction::PartitionRegions`](crate::ScheduleAction)).
    pub fn region_groups(&self, n: usize) -> Vec<Vec<ProcessId>> {
        let mut groups: Vec<Vec<ProcessId>> = vec![Vec::new(); self.regions];
        for i in 0..n as u32 {
            let p = ProcessId::new(i);
            groups[self.region_of(p)].push(p);
        }
        groups.retain(|g| !g.is_empty());
        groups
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn uniform_topology_resolves_every_pair_to_the_same_link() {
        let t = Topology::uniform("u", LinkModel::wan());
        assert_eq!(t.link(p(0), p(5)), LinkModel::wan());
        assert_eq!(t.link(p(3), p(3)), LinkModel::wan());
        assert_eq!(t.regions(), 1);
    }

    #[test]
    fn round_robin_assignment_spreads_processes() {
        let t = Topology::wan_3region();
        assert_eq!(t.region_of(p(0)), 0);
        assert_eq!(t.region_of(p(1)), 1);
        assert_eq!(t.region_of(p(2)), 2);
        assert_eq!(t.region_of(p(3)), 0);
    }

    #[test]
    fn block_assignment_clamps_to_last_region() {
        let t = Topology::with_regions("b", 2, LinkModel::lan(), Assignment::Blocks(2));
        assert_eq!(t.region_of(p(0)), 0);
        assert_eq!(t.region_of(p(1)), 0);
        assert_eq!(t.region_of(p(2)), 1);
        assert_eq!(t.region_of(p(5)), 1, "overflow clamps");
    }

    #[test]
    fn wan_2dc_intra_is_lan_inter_is_wan() {
        let t = Topology::wan_2dc();
        // p0 and p2 share region 0 (round-robin): LAN.
        assert_eq!(t.link(p(0), p(2)), LinkModel::lan());
        // p0 and p1 are in different DCs: the slow link, with bandwidth.
        let l = t.link(p(0), p(1));
        assert!(l.delay_min >= TimeDelta::from_millis(10));
        assert!(l.bandwidth > 0);
    }

    #[test]
    fn wan_3region_is_asymmetric() {
        let t = Topology::wan_3region();
        let fwd = t.link(p(0), p(2));
        let rev = t.link(p(2), p(0));
        assert_ne!(fwd, rev, "long-haul route is direction-dependent");
        assert!(rev.delay_min > fwd.delay_min);
    }

    #[test]
    fn presets_resolve_by_name() {
        for name in TOPOLOGY_PRESETS {
            let t = Topology::by_name(name).expect("preset exists");
            assert_eq!(t.name(), *name);
        }
        assert!(Topology::by_name("nope").is_none());
    }

    #[test]
    fn region_groups_follow_assignment() {
        let t = Topology::wan_2dc();
        let groups = t.region_groups(5);
        assert_eq!(groups, vec![vec![p(0), p(2), p(4)], vec![p(1), p(3)]]);
        // Single-region topologies yield one group.
        assert_eq!(Topology::lan().region_groups(3).len(), 1);
    }
}
