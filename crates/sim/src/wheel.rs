//! The hierarchical timing-wheel event queue of the simulator.
//!
//! The simulation's scheduled-event population is dominated by short-horizon
//! periodic work (heartbeats, reliable-channel ticks, LAN-delay message
//! arrivals), for which a calendar queue beats a binary heap: insertion is
//! an O(1) bucket push instead of an O(log n) sift of a large element, and
//! ordering work is only paid per *occupied* slot, over the handful of
//! events that share it.
//!
//! Layout:
//!
//! * **current** — a descending-sorted `Vec` holding every pending item
//!   whose slot is at or before the cursor; pops come from its back, so the
//!   exact `(time, seq)` total order of the old `BinaryHeap` scheduler is
//!   preserved bit-for-bit (the reference-equivalence property test pins
//!   this). Items pushed *into* the already-drained current slot go to a
//!   small side min-heap instead of a sorted insert — a large fan-out burst
//!   whose arrivals land within the current slot would otherwise pay an
//!   O(len) memmove per insert, which is quadratic in the burst size.
//! * **wheel** — `SLOTS` buckets of `1 << SLOT_SHIFT` nanoseconds each,
//!   covering the near future; unsorted `Vec`s, swapped into `current` and
//!   sorted once when the cursor reaches them.
//! * **overflow** — a binary heap for items beyond the wheel horizon
//!   (long timeouts such as monitoring-class suspicion timers); refilled
//!   into the wheel as the cursor advances.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Log2 of the slot width in nanoseconds: 2^19 ns ≈ 524 µs per slot — a
/// little above the typical LAN one-way delay, so a burst of sends lands in
/// one or two slots and the per-slot ordering heap stays small.
const SLOT_SHIFT: u32 = 19;
/// Number of wheel slots; the wheel horizon is `SLOTS << SLOT_SHIFT`
/// ≈ 67 ms, which covers heartbeat/tick/consensus periods. Power of two so
/// the slot index is a mask. Kept small: each slot owns a reusable `Vec`,
/// and a fresh simulation pays one allocation per slot it touches.
const SLOTS: usize = 128;

/// An entry schedulable on a [`TimingWheel`].
///
/// The `Ord` implementation must order by `(at_nanos, tie-break)` — the
/// wheel relies on it for intra-slot ordering.
pub trait WheelItem: Ord {
    /// Absolute due time in nanoseconds.
    fn at_nanos(&self) -> u64;
}

/// A timing-wheel priority queue with a heap overflow tier.
///
/// Pops yield items in exactly the order the item type's `Ord` defines,
/// provided no item is ever pushed with a due time before the most recently
/// popped item (the discrete-event invariant: you cannot schedule into the
/// past).
///
/// The *current* tier is a descending-sorted `Vec` rather than a binary
/// heap: slot populations are small, so one `sort_unstable` at slot-drain
/// time plus O(1) back-pops beat per-element sift operations — and draining
/// swaps buffers with the slot, so `Vec` capacities circulate and the
/// steady state allocates nothing.
#[derive(Debug)]
pub struct TimingWheel<T: WheelItem> {
    cur_slot: u64,
    /// Items with slot ≤ cursor, sorted descending (minimum at the back).
    current: Vec<T>,
    /// Items pushed with slot ≤ cursor *after* the slot was drained — the
    /// fan-out-burst tier. A min-heap: O(log n) insert instead of the O(n)
    /// sorted insert into `current`, which collapses quadratically when a
    /// broadcast burst lands thousands of arrivals in the current slot.
    late: BinaryHeap<Reverse<T>>,
    slots: Vec<Vec<T>>,
    wheel_len: usize,
    overflow: BinaryHeap<Reverse<T>>,
    len: usize,
}

impl<T: WheelItem> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: WheelItem> TimingWheel<T> {
    /// Creates an empty wheel with the cursor at time zero.
    pub fn new() -> Self {
        TimingWheel {
            cur_slot: 0,
            current: Vec::new(),
            late: BinaryHeap::new(),
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Number of pending items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn slot_of(at: u64) -> u64 {
        at >> SLOT_SHIFT
    }

    /// Schedules an item.
    pub fn push(&mut self, item: T) {
        let s = Self::slot_of(item.at_nanos());
        self.len += 1;
        if s <= self.cur_slot {
            self.late.push(Reverse(item));
        } else if s < self.cur_slot + SLOTS as u64 {
            self.wheel_len += 1;
            self.slots[(s % SLOTS as u64) as usize].push(item);
        } else {
            self.overflow.push(Reverse(item));
        }
    }

    /// True when the next pop should come from the `late` heap rather than
    /// the sorted `current` tier (strict `Ord`: `(time, seq)` keys are
    /// unique, so ties cannot occur).
    fn late_is_next(&self) -> bool {
        match (self.current.last(), self.late.peek()) {
            (Some(c), Some(Reverse(l))) => l < c,
            (None, Some(_)) => true,
            _ => false,
        }
    }

    /// Removes and returns the earliest item.
    pub fn pop(&mut self) -> Option<T> {
        if self.current.is_empty() && self.late.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
        let item = if self.late_is_next() {
            self.late.pop().expect("peeked").0
        } else {
            self.current.pop().expect("advance fills a tier")
        };
        self.len -= 1;
        Some(item)
    }

    /// Removes and returns the earliest item if `pred` accepts it — one
    /// tier traversal instead of a `peek` followed by a `pop` (the
    /// simulator's run-loop pattern). Returns `None` when the wheel is
    /// empty or the head is rejected.
    pub fn pop_if(&mut self, pred: impl FnOnce(&T) -> bool) -> Option<T> {
        if self.current.is_empty() && self.late.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
        if self.late_is_next() {
            if !pred(&self.late.peek().expect("checked non-empty").0) {
                return None;
            }
            self.len -= 1;
            Some(self.late.pop().expect("peeked").0)
        } else {
            if !pred(self.current.last().expect("advance fills a tier")) {
                return None;
            }
            self.len -= 1;
            self.current.pop()
        }
    }

    /// The earliest pending item, without removing it.
    ///
    /// Takes `&mut self` because peeking may advance the cursor to the next
    /// occupied slot.
    pub fn peek(&mut self) -> Option<&T> {
        if self.current.is_empty() && self.late.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
        if self.late_is_next() {
            self.late.peek().map(|Reverse(item)| item)
        } else {
            self.current.last()
        }
    }

    /// Moves the cursor forward to the next occupied slot and drains it into
    /// `current`. Precondition: `current` and `late` are empty and `len > 0`.
    fn advance(&mut self) {
        debug_assert!(self.current.is_empty() && self.late.is_empty() && self.len > 0);
        loop {
            if self.wheel_len == 0 {
                // Everything pending lives in the overflow tier: jump the
                // cursor straight to its head instead of scanning slots.
                let head_slot = {
                    let Reverse(head) = self.overflow.peek().expect("len > 0");
                    Self::slot_of(head.at_nanos())
                };
                debug_assert!(head_slot > self.cur_slot);
                self.cur_slot = head_slot - 1;
            }
            self.cur_slot += 1;
            // Pull overflow items that fit the advanced wheel window; ones
            // landing at or before the new cursor join the late heap.
            let window_end = self.cur_slot + SLOTS as u64;
            while let Some(Reverse(head)) = self.overflow.peek() {
                let s = Self::slot_of(head.at_nanos());
                if s >= window_end {
                    break;
                }
                let Reverse(item) = self.overflow.pop().expect("peeked");
                if s <= self.cur_slot {
                    self.late.push(Reverse(item));
                } else {
                    self.wheel_len += 1;
                    self.slots[(s % SLOTS as u64) as usize].push(item);
                }
            }
            let idx = (self.cur_slot % SLOTS as u64) as usize;
            if !self.slots[idx].is_empty() {
                self.wheel_len -= self.slots[idx].len();
                // Swap buffers: the drained slot inherits the empty
                // current's capacity, and vice versa — no copying, no
                // allocation.
                std::mem::swap(&mut self.current, &mut self.slots[idx]);
                self.current.sort_unstable_by(|a, b| b.cmp(a));
            }
            if !self.current.is_empty() || !self.late.is_empty() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
    struct Item(u64, u64); // (at, seq)

    impl WheelItem for Item {
        fn at_nanos(&self) -> u64 {
            self.0
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimingWheel::new();
        w.push(Item(500, 2));
        w.push(Item(100, 1));
        w.push(Item(100, 0));
        w.push(Item(1 << 20, 3)); // later slot
        assert_eq!(w.len(), 4);
        assert_eq!(w.pop(), Some(Item(100, 0)));
        assert_eq!(w.pop(), Some(Item(100, 1)));
        assert_eq!(w.pop(), Some(Item(500, 2)));
        assert_eq!(w.pop(), Some(Item(1 << 20, 3)));
        assert_eq!(w.pop(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn overflow_events_fire_in_order() {
        let mut w = TimingWheel::new();
        let horizon = (SLOTS as u64) << SLOT_SHIFT;
        w.push(Item(3 * horizon + 17, 1)); // far future: overflow tier
        w.push(Item(10 * horizon, 2)); // even further
        w.push(Item(5, 0)); // now
        assert_eq!(w.pop(), Some(Item(5, 0)));
        assert_eq!(w.pop(), Some(Item(3 * horizon + 17, 1)));
        assert_eq!(w.pop(), Some(Item(10 * horizon, 2)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        // Simulates the discrete-event pattern: after popping an item at t,
        // push follow-ups at t + delta for assorted deltas, including ones
        // landing in the current slot, other slots, and the overflow.
        let mut w = TimingWheel::new();
        w.push(Item(0, 0));
        let mut seq = 1u64;
        let mut last = (0u64, 0u64);
        let mut popped = 0usize;
        let deltas = [1u64, 60_000, 5_000_000, 80_000_000, 200_000_000];
        while let Some(Item(at, s)) = w.pop() {
            assert!((at, s) > last || popped == 0, "order violated");
            last = (at, s);
            popped += 1;
            if popped < 500 {
                let d = deltas[popped % deltas.len()];
                w.push(Item(at + d, seq));
                seq += 1;
                if popped.is_multiple_of(7) {
                    w.push(Item(at, seq)); // same instant, later seq
                    seq += 1;
                }
            }
        }
        assert!(popped >= 500);
    }

    #[test]
    fn peek_matches_pop() {
        let mut w = TimingWheel::new();
        w.push(Item(70_000, 0)); // next slot over
        w.push(Item(900_000_000, 1)); // overflow tier
        assert_eq!(w.peek(), Some(&Item(70_000, 0)));
        assert_eq!(w.pop(), Some(Item(70_000, 0)));
        assert_eq!(w.peek(), Some(&Item(900_000_000, 1)));
        assert_eq!(w.pop(), Some(Item(900_000_000, 1)));
        assert_eq!(w.peek(), None);
    }

    #[test]
    fn dense_same_slot_burst() {
        let mut w = TimingWheel::new();
        for i in 0..1000u64 {
            w.push(Item(42, i));
        }
        for i in 0..1000u64 {
            assert_eq!(w.pop(), Some(Item(42, i)));
        }
        assert!(w.pop().is_none());
    }

    /// The pin for the BinaryHeap→timing-wheel swap: against a reference
    /// binary heap, random interleavings of pushes (never into the past)
    /// and pops must produce identical sequences — including `(time, seq)`
    /// tie-breaks — so same-seed simulations stay bit-identical.
    mod equivalence {
        use super::*;
        use proptest::prelude::*;
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        proptest! {
            #[test]
            fn wheel_matches_reference_heap(
                ops in proptest::collection::vec(
                    (0u64..200_000_000, any::<bool>(), any::<bool>()), 1..400),
            ) {
                let mut wheel = TimingWheel::new();
                let mut heap: BinaryHeap<Reverse<Item>> = BinaryHeap::new();
                let mut now = 0u64;
                for (seq, (delta, same_instant, do_pop)) in ops.into_iter().enumerate() {
                    let seq = seq as u64;
                    let at = if same_instant { now } else { now + delta };
                    wheel.push(Item(at, seq));
                    heap.push(Reverse(Item(at, seq)));
                    if do_pop {
                        let a = wheel.pop();
                        let b = heap.pop().map(|Reverse(x)| x);
                        prop_assert_eq!(&a, &b);
                        now = a.expect("pushed at least one").0;
                    }
                }
                loop {
                    let a = wheel.pop();
                    let b = heap.pop().map(|Reverse(x)| x);
                    prop_assert_eq!(&a, &b);
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn late_push_into_passed_region_still_orders_with_current() {
        // peek() may advance the cursor; a subsequent push at an earlier
        // (but still >= last popped) time must still come out first.
        let mut w = TimingWheel::new();
        w.push(Item(100 << SLOT_SHIFT, 0));
        assert!(w.peek().is_some()); // cursor advanced to slot 100
        w.push(Item(50 << SLOT_SHIFT, 1)); // earlier slot, never popped past
        assert_eq!(w.pop(), Some(Item(50 << SLOT_SHIFT, 1)));
        assert_eq!(w.pop(), Some(Item(100 << SLOT_SHIFT, 0)));
    }
}
