//! The protocol-invariant oracle: an online trace observer that machine-
//! checks the paper's group-communication properties on every run.
//!
//! The paper's central claim is that the modular new architecture provides
//! the *same* guarantees — agreement, total order, view synchrony — as the
//! monolithic Isis-style and token-ring baselines. Fingerprint equality can
//! only say a run *changed*; this module says whether a run was *correct*:
//! feed an [`InvariantChecker`] the neutral [`TransportDelivery`] stream,
//! the installed [`View`]s and the incarnation resets of any
//! [`GroupTransport`], and [`finalize`](InvariantChecker::finalize) reports
//! structured [`Violation`]s instead of a boolean.
//!
//! ## Checked properties
//!
//! * **No duplication** — no incarnation of a process delivers the same
//!   message twice.
//! * **FIFO per sender (rbcast)** — reliable-broadcast deliveries from one
//!   sender arrive in send order at every process.
//! * **Total order (abcast)** — no two incarnations deliver two atomic
//!   messages in opposite relative orders.
//! * **Gap-freedom** — no incarnation skips a message *inside* its delivery
//!   window: if some witness delivered `a … m … b` and this incarnation
//!   delivered `a` directly followed by `b` without ever delivering `m`, a
//!   message was lost mid-stream.
//! * **Uniform agreement among survivors** — the final incarnations of the
//!   surviving members end at the same point of the stream; a survivor whose
//!   delivery sequence stops strictly short of another's missed messages.
//! * **View synchrony** — no message is delivered in different views by two
//!   processes that both installed both views (same-view delivery, §4.4).
//!
//! ## Incarnations
//!
//! The traditional stacks *kill* wrongly excluded processes, which may later
//! re-join as logically fresh members with a state transfer (§4.3). A
//! rejoined process legitimately resumes delivering at the group's current
//! position — a raw per-process comparison would misread that as a gap. The
//! checker therefore splits each process's stream at its
//! [`resets`](GroupTransport::resets) and compares *incarnations*: each one
//! must individually honor the properties, and only the final incarnation of
//! a surviving member owes tail agreement.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

use gcs_core::{DeliveryKind, MessageClass, View};
use gcs_kernel::{ProcessId, Time};

use crate::transport::{GroupTransport, TransportDelivery};

/// Which protocol property a [`Violation`] breaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InvariantKind {
    /// A survivor's delivery sequence ends strictly short of another
    /// survivor's (uniform agreement among survivors).
    Agreement,
    /// Two incarnations delivered two atomic messages in opposite orders.
    TotalOrder,
    /// A message was delivered in different views by two processes that both
    /// installed both views.
    ViewSynchrony,
    /// Reliable-broadcast deliveries from one sender arrived out of send
    /// order.
    FifoOrder,
    /// An incarnation skipped a message inside its delivery window.
    GapFreedom,
    /// An incarnation delivered the same message twice.
    Duplication,
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            InvariantKind::Agreement => "agreement",
            InvariantKind::TotalOrder => "total-order",
            InvariantKind::ViewSynchrony => "view-synchrony",
            InvariantKind::FifoOrder => "fifo-order",
            InvariantKind::GapFreedom => "gap-freedom",
            InvariantKind::Duplication => "duplication",
        };
        f.write_str(name)
    }
}

/// One concrete invariant violation found in a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The property broken.
    pub kind: InvariantKind,
    /// Human-readable evidence: which processes and messages.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.detail)
    }
}

/// The oracle's verdict on one run.
#[derive(Clone, Debug, Default)]
pub struct OracleReport {
    /// Every violation found, in deterministic order (capped at
    /// [`MAX_VIOLATIONS`] to bound pathological traces).
    pub violations: Vec<Violation>,
    /// Deliveries the checker consumed.
    pub deliveries: usize,
    /// Distinct atomic messages observed across all processes.
    pub atomic_messages: usize,
    /// Process incarnations compared (processes plus kill/re-join rebirths).
    pub incarnations: usize,
}

/// Upper bound on reported violations: a systematically broken trace
/// produces thousands of identical findings; the first few dozen carry all
/// the signal.
pub const MAX_VIOLATIONS: usize = 64;

impl OracleReport {
    /// `true` when every checked property held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Message identity in the checker's vocabulary: `(sender, seq)` is unique
/// within one stack run.
type Key = (ProcessId, u64);

fn key_str(k: Key) -> String {
    format!("({},{})", k.0.index(), k.1)
}

/// One incarnation's projected delivery streams.
#[derive(Default)]
struct Incarnation {
    /// Process index.
    proc: usize,
    /// Incarnation number within the process (0 = original).
    life: usize,
    /// Atomic deliveries, in delivery order.
    atomic: Vec<Key>,
    /// View tag of each atomic delivery (first delivery wins).
    atomic_view: HashMap<Key, u64>,
    /// Rbcast deliveries per sender, in delivery order.
    rbcast: HashMap<ProcessId, Vec<u64>>,
    /// Every key delivered (any kind), for duplication checking.
    seen: HashSet<(Key, bool)>,
}

/// The online invariant oracle. Feed it deliveries, view installations and
/// incarnation resets (in any order), then [`finalize`](Self::finalize) with
/// the liveness flags.
pub struct InvariantChecker {
    founding: usize,
    deliveries: Vec<TransportDelivery>,
    views: Vec<Vec<View>>,
    resets: Vec<Vec<Time>>,
    violations: Vec<Violation>,
}

impl InvariantChecker {
    /// A checker for a group of `total` processes of which the first
    /// `founding` were members from the start (the rest are joiners, which
    /// owe nothing until they install their first view).
    pub fn new(founding: usize, total: usize) -> Self {
        InvariantChecker {
            founding,
            deliveries: Vec::new(),
            views: vec![Vec::new(); total],
            resets: vec![Vec::new(); total],
            violations: Vec::new(),
        }
    }

    /// Runs the whole pipeline against a transport: replay its delivery
    /// trace, views and resets, and finalize with its liveness flags.
    /// `founding` is the number of founding members (process ids
    /// `0..founding`).
    pub fn check(transport: &dyn GroupTransport, founding: usize) -> OracleReport {
        let mut c = InvariantChecker::new(founding, transport.process_count());
        for d in transport.delivery_trace() {
            c.observe_delivery(d);
        }
        for (i, vs) in transport.views().into_iter().enumerate() {
            for v in vs {
                c.observe_view(ProcessId::new(i as u32), v);
            }
        }
        for (i, rs) in transport.resets().into_iter().enumerate() {
            for t in rs {
                c.observe_reset(ProcessId::new(i as u32), t);
            }
        }
        c.finalize(&transport.alive_flags())
    }

    /// Feeds one delivery record (call in global delivery order).
    pub fn observe_delivery(&mut self, d: TransportDelivery) {
        self.deliveries.push(d);
    }

    /// Feeds one view installation at `proc` (call in installation order
    /// per process).
    pub fn observe_view(&mut self, proc: ProcessId, view: View) {
        if let Some(vs) = self.views.get_mut(proc.index()) {
            vs.push(view);
        }
    }

    /// Feeds one incarnation reset: `proc` was killed/excluded at `t` and
    /// deliveries strictly after `t` belong to a fresh incarnation.
    pub fn observe_reset(&mut self, proc: ProcessId, t: Time) {
        if let Some(rs) = self.resets.get_mut(proc.index()) {
            rs.push(t);
        }
    }

    fn violate(&mut self, kind: InvariantKind, detail: String) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(Violation { kind, detail });
        }
    }

    /// Splits the observed deliveries into per-incarnation streams, checking
    /// the online properties (duplication, rbcast FIFO) along the way.
    fn build_incarnations(&mut self) -> Vec<Incarnation> {
        let nprocs = self.views.len();
        let mut resets = self.resets.clone();
        for r in &mut resets {
            r.sort_unstable();
        }
        // incs[proc] = streams of that process, one per incarnation.
        let mut incs: Vec<Vec<Incarnation>> = (0..nprocs)
            .map(|p| {
                (0..resets[p].len() + 1)
                    .map(|life| Incarnation {
                        proc: p,
                        life,
                        ..Incarnation::default()
                    })
                    .collect()
            })
            .collect();
        let deliveries = std::mem::take(&mut self.deliveries);
        for d in &deliveries {
            let p = d.proc.index();
            if p >= nprocs {
                continue;
            }
            // Deliveries at exactly the reset time still belong to the dying
            // incarnation (a kill-flush delivers before the kill marker).
            let life = resets[p].iter().filter(|&&r| r < d.time).count();
            let inc = &mut incs[p][life];
            let key: Key = (d.sender, d.seq);
            let atomic = d.kind == DeliveryKind::Atomic;
            if !inc.seen.insert((key, atomic)) {
                self.violate(
                    InvariantKind::Duplication,
                    format!("p{p}(life {life}) delivered message {} twice", key_str(key)),
                );
                continue;
            }
            if atomic {
                inc.atomic.push(key);
                inc.atomic_view.entry(key).or_insert(d.view);
            } else if d.class == MessageClass::RBCAST {
                let seqs = inc.rbcast.entry(d.sender).or_default();
                if seqs.last().is_some_and(|&last| d.seq <= last) {
                    self.violate(
                        InvariantKind::FifoOrder,
                        format!(
                            "p{p}(life {life}) delivered rbcast seq {} from p{} after seq {}",
                            d.seq,
                            d.sender.index(),
                            seqs.last().copied().unwrap_or(0),
                        ),
                    );
                }
                seqs.push(d.seq);
            }
        }
        self.deliveries = deliveries;
        incs.into_iter().flatten().collect()
    }

    /// The set of view ids a process installed (plus the implicit initial
    /// view for founding members).
    fn installed_ids(&self, proc: usize) -> BTreeSet<u64> {
        let mut ids: BTreeSet<u64> = self.views[proc].iter().map(|v| v.id).collect();
        if proc < self.founding {
            ids.insert(0);
        }
        ids
    }

    /// Survivor detection: alive, still a member by its own last installed
    /// view, and not holding a stale view while the group moved on. A
    /// founding member that never installed a view counts only when *nobody*
    /// did (a steady run without membership changes) — once view changes
    /// happened, a view-less process was left behind by one of them (e.g.
    /// an Isis removal target never installs the view that excludes it).
    fn survivors(&self, alive: &[bool]) -> Vec<usize> {
        let nprocs = self.views.len();
        let candidate = |p: usize| -> Option<Option<u64>> {
            if !alive.get(p).copied().unwrap_or(false) {
                return None;
            }
            match self.views[p].last() {
                None => (p < self.founding).then_some(None),
                Some(v) => v.contains(ProcessId::new(p as u32)).then_some(Some(v.id)),
            }
        };
        let vids: Vec<Option<Option<u64>>> = (0..nprocs).map(candidate).collect();
        let max_vid = vids.iter().flatten().flatten().max().copied();
        (0..nprocs)
            .filter(|&p| match vids[p] {
                None => false,
                Some(None) => max_vid.is_none(),
                Some(Some(v)) => Some(v) == max_vid,
            })
            .collect()
    }

    /// Consumes the checker and reports every violation found.
    pub fn finalize(mut self, alive: &[bool]) -> OracleReport {
        let incs = self.build_incarnations();
        let n_incs = incs.len();

        // Position maps, shared by the order/gap/agreement passes.
        let pos: Vec<HashMap<Key, usize>> = incs
            .iter()
            .map(|inc| {
                inc.atomic
                    .iter()
                    .enumerate()
                    .map(|(i, &k)| (k, i))
                    .collect()
            })
            .collect();

        // Total order: for every pair, the common messages appear in the
        // same relative order.
        for a in 0..n_incs {
            if incs[a].atomic.is_empty() {
                continue;
            }
            for b in (a + 1)..n_incs {
                let mut last: Option<(usize, Key)> = None;
                for &k in &incs[a].atomic {
                    let Some(&i) = pos[b].get(&k) else { continue };
                    if let Some((last_i, last_k)) = last {
                        if i < last_i {
                            self.violate(
                                InvariantKind::TotalOrder,
                                format!(
                                    "p{}(life {}) and p{}(life {}) deliver {} and {} in opposite orders",
                                    incs[a].proc,
                                    incs[a].life,
                                    incs[b].proc,
                                    incs[b].life,
                                    key_str(last_k),
                                    key_str(k),
                                ),
                            );
                            break;
                        }
                    }
                    last = Some((i, k));
                }
            }
        }

        // Gap-freedom: incarnation I skipped message m if a witness W
        // delivered a … m … b while I delivered a directly followed by b and
        // never delivered m at all. This is direct evidence — no merged
        // global order (whose tie-breaks would invent false gaps around
        // messages only a crashed process delivered) is needed.
        for i in 0..n_incs {
            let atomic = &incs[i].atomic;
            if atomic.is_empty() {
                continue;
            }
            let mine: HashSet<Key> = atomic.iter().copied().collect();
            'outer: for w in 0..n_incs {
                if w == i {
                    continue;
                }
                for pair in atomic.windows(2) {
                    let (Some(&wa), Some(&wb)) = (pos[w].get(&pair[0]), pos[w].get(&pair[1]))
                    else {
                        continue;
                    };
                    if wb <= wa + 1 {
                        continue;
                    }
                    for &m in &incs[w].atomic[wa + 1..wb] {
                        if !mine.contains(&m) {
                            self.violate(
                                InvariantKind::GapFreedom,
                                format!(
                                    "p{}(life {}) delivered {} then {} but skipped {} (witness p{})",
                                    incs[i].proc,
                                    incs[i].life,
                                    key_str(pair[0]),
                                    key_str(pair[1]),
                                    key_str(m),
                                    incs[w].proc,
                                ),
                            );
                            continue 'outer;
                        }
                    }
                }
            }
        }

        // Uniform agreement among survivors: the *final* incarnations of the
        // surviving members end at the same message. (Scenario horizons give
        // runs ample quiescence time, so an in-flight tail is a real miss.)
        let survivors = self.survivors(alive);
        let mut finals: Vec<usize> = Vec::new();
        for &p in &survivors {
            // Index of p's last incarnation in the flattened list.
            if let Some(idx) = incs
                .iter()
                .enumerate()
                .filter(|(_, inc)| inc.proc == p)
                .map(|(idx, _)| idx)
                .next_back()
            {
                // An empty final incarnation is meaningful only if the
                // process never reset (a late rejoiner may simply have seen
                // no post-rejoin traffic).
                if !incs[idx].atomic.is_empty() || incs[idx].life == 0 {
                    finals.push(idx);
                }
            }
        }
        for (ai, &a) in finals.iter().enumerate() {
            for &b in finals.iter().skip(ai + 1) {
                let (la, lb) = (incs[a].atomic.last(), incs[b].atomic.last());
                let stopped_short = match (la, lb) {
                    (None, None) => false,
                    (Some(&ka), Some(&kb)) => ka != kb,
                    // One founding survivor delivered nothing while another
                    // delivered the stream.
                    _ => true,
                };
                if stopped_short {
                    self.violate(
                        InvariantKind::Agreement,
                        format!(
                            "survivors p{} and p{} end their atomic streams at {} vs {}",
                            incs[a].proc,
                            incs[b].proc,
                            la.map_or("nothing".to_string(), |&k| key_str(k)),
                            lb.map_or("nothing".to_string(), |&k| key_str(k)),
                        ),
                    );
                }
            }
        }

        // View synchrony: a message delivered under view v1 at p and v2 at q
        // spans a view change if both p and q installed both views.
        let mut tags: HashMap<Key, Vec<(usize, u64)>> = HashMap::new();
        for inc in &incs {
            for (&k, &v) in &inc.atomic_view {
                tags.entry(k).or_default().push((inc.proc, v));
            }
        }
        let mut keys: Vec<Key> = tags.keys().copied().collect();
        keys.sort_unstable();
        'keys: for k in keys {
            let mut by_proc = tags[&k].clone();
            by_proc.sort_unstable();
            for (i, &(p, v1)) in by_proc.iter().enumerate() {
                for &(q, v2) in by_proc.iter().skip(i + 1) {
                    if v1 == v2 || p == q {
                        continue;
                    }
                    let ip = self.installed_ids(p);
                    let iq = self.installed_ids(q);
                    if ip.contains(&v1) && ip.contains(&v2) && iq.contains(&v1) && iq.contains(&v2)
                    {
                        self.violate(
                            InvariantKind::ViewSynchrony,
                            format!(
                                "message {} delivered in view {v1} at p{p} but view {v2} at p{q} \
                                 (both installed both views)",
                                key_str(k),
                            ),
                        );
                        continue 'keys;
                    }
                }
            }
        }

        let atomic_messages = {
            let mut all: BTreeSet<Key> = BTreeSet::new();
            for inc in &incs {
                all.extend(inc.atomic.iter().copied());
            }
            all.len()
        };
        OracleReport {
            violations: self.violations,
            deliveries: self.deliveries.len(),
            atomic_messages,
            incarnations: n_incs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_kernel::PayloadRef;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn atomic(t: u64, proc: u32, sender: u32, seq: u64, view: u64) -> TransportDelivery {
        TransportDelivery {
            time: Time::from_millis(t),
            proc: p(proc),
            sender: p(sender),
            seq,
            kind: DeliveryKind::Atomic,
            class: MessageClass::ABCAST,
            view,
            payload: PayloadRef::EMPTY,
        }
    }

    fn rbcast(t: u64, proc: u32, sender: u32, seq: u64) -> TransportDelivery {
        TransportDelivery {
            kind: DeliveryKind::GenericFast,
            class: MessageClass::RBCAST,
            ..atomic(t, proc, sender, seq, 0)
        }
    }

    fn kinds(r: &OracleReport) -> Vec<InvariantKind> {
        r.violations.iter().map(|v| v.kind).collect()
    }

    /// The oracle must not be vacuously green: a fully consistent trace
    /// yields zero violations, and each seeded fault below yields exactly
    /// the targeted one.
    #[test]
    fn clean_trace_has_no_violations() {
        let mut c = InvariantChecker::new(2, 2);
        for proc in 0..2 {
            c.observe_delivery(atomic(1 + proc as u64, proc, 0, 0, 0));
            c.observe_delivery(atomic(3 + proc as u64, proc, 1, 0, 0));
            c.observe_delivery(atomic(5 + proc as u64, proc, 0, 1, 0));
        }
        let r = c.finalize(&[true, true]);
        assert!(r.is_clean(), "{:?}", r.violations);
        assert_eq!(r.atomic_messages, 3);
        assert_eq!(r.incarnations, 2);
    }

    #[test]
    fn reordered_delivery_fires_total_order() {
        let mut c = InvariantChecker::new(2, 2);
        // p0: a then b — p1: b then a.
        c.observe_delivery(atomic(1, 0, 0, 0, 0));
        c.observe_delivery(atomic(2, 0, 1, 0, 0));
        c.observe_delivery(atomic(1, 1, 1, 0, 0));
        c.observe_delivery(atomic(2, 1, 0, 0, 0));
        let r = c.finalize(&[true, true]);
        assert!(
            kinds(&r).contains(&InvariantKind::TotalOrder),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn dropped_message_fires_gap_freedom() {
        let mut c = InvariantChecker::new(2, 2);
        // p0 delivers a, m, b; p1 delivers a, b — m vanished mid-window.
        for (seq, t) in [(0u64, 1u64), (1, 2), (2, 3)] {
            c.observe_delivery(atomic(t, 0, 0, seq, 0));
        }
        c.observe_delivery(atomic(1, 1, 0, 0, 0));
        c.observe_delivery(atomic(3, 1, 0, 2, 0));
        let r = c.finalize(&[true, true]);
        assert!(
            kinds(&r).contains(&InvariantKind::GapFreedom),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn survivor_stopping_short_fires_agreement() {
        let mut c = InvariantChecker::new(2, 2);
        // Both survive, but p1's stream ends one message early.
        for (seq, t) in [(0u64, 1u64), (1, 2), (2, 3)] {
            c.observe_delivery(atomic(t, 0, 0, seq, 0));
        }
        c.observe_delivery(atomic(1, 1, 0, 0, 0));
        c.observe_delivery(atomic(2, 1, 0, 1, 0));
        let r = c.finalize(&[true, true]);
        assert!(
            kinds(&r).contains(&InvariantKind::Agreement),
            "{:?}",
            r.violations
        );
        // A *dead* process stopping early is fine.
        let mut c = InvariantChecker::new(2, 2);
        for (seq, t) in [(0u64, 1u64), (1, 2), (2, 3)] {
            c.observe_delivery(atomic(t, 0, 0, seq, 0));
        }
        c.observe_delivery(atomic(1, 1, 0, 0, 0));
        let r = c.finalize(&[true, false]);
        assert!(r.is_clean(), "{:?}", r.violations);
    }

    #[test]
    fn view_spanning_delivery_fires_view_synchrony() {
        let mut c = InvariantChecker::new(2, 2);
        // Both processes install views 0 (implicit) and 1, but the same
        // message is delivered pre-change at p0 and post-change at p1.
        c.observe_delivery(atomic(1, 0, 0, 0, 0));
        c.observe_delivery(atomic(2, 1, 0, 0, 1));
        for proc in 0..2u32 {
            c.observe_view(
                p(proc),
                View {
                    id: 1,
                    members: vec![p(0), p(1)],
                },
            );
        }
        let r = c.finalize(&[true, true]);
        assert!(
            kinds(&r).contains(&InvariantKind::ViewSynchrony),
            "{:?}",
            r.violations
        );
        // Without the joint installation there is no violation: a process
        // that never saw view 1 cannot span it.
        let mut c = InvariantChecker::new(2, 2);
        c.observe_delivery(atomic(1, 0, 0, 0, 0));
        c.observe_delivery(atomic(2, 1, 0, 0, 1));
        c.observe_view(
            p(1),
            View {
                id: 1,
                members: vec![p(0), p(1)],
            },
        );
        let r = c.finalize(&[true, true]);
        assert!(
            !kinds(&r).contains(&InvariantKind::ViewSynchrony),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn duplicate_delivery_fires_duplication() {
        let mut c = InvariantChecker::new(1, 1);
        c.observe_delivery(atomic(1, 0, 0, 0, 0));
        c.observe_delivery(atomic(2, 0, 0, 0, 0));
        let r = c.finalize(&[true]);
        assert_eq!(kinds(&r), vec![InvariantKind::Duplication]);
    }

    #[test]
    fn rbcast_out_of_order_fires_fifo() {
        let mut c = InvariantChecker::new(1, 1);
        c.observe_delivery(rbcast(1, 0, 0, 1));
        c.observe_delivery(rbcast(2, 0, 0, 0));
        let r = c.finalize(&[true]);
        assert_eq!(kinds(&r), vec![InvariantKind::FifoOrder]);
    }

    #[test]
    fn incarnation_reset_absolves_the_rejoined_stream() {
        // p1 is killed after one delivery and rejoins at the group's
        // current position: without the reset this is a gap + an agreement
        // mismatch; with it, both incarnations are individually clean.
        let mut c = InvariantChecker::new(2, 2);
        for (seq, t) in [(0u64, 1u64), (1, 2), (2, 3), (3, 4)] {
            c.observe_delivery(atomic(t, 0, 0, seq, 0));
        }
        c.observe_delivery(atomic(1, 1, 0, 0, 0));
        // …killed at t=2, rejoined, resumes at seq 3.
        c.observe_delivery(atomic(4, 1, 0, 3, 0));
        let no_reset = {
            let mut c2 = InvariantChecker::new(2, 2);
            c2.observe_delivery(atomic(1, 1, 0, 0, 0));
            c2.observe_delivery(atomic(4, 1, 0, 3, 0));
            for (seq, t) in [(0u64, 1u64), (1, 2), (2, 3), (3, 4)] {
                c2.observe_delivery(atomic(t, 0, 0, seq, 0));
            }
            c2.finalize(&[true, true])
        };
        assert!(
            kinds(&no_reset).contains(&InvariantKind::GapFreedom),
            "{:?}",
            no_reset.violations
        );
        c.observe_reset(p(1), Time::from_millis(2));
        let r = c.finalize(&[true, true]);
        assert!(r.is_clean(), "{:?}", r.violations);
        assert_eq!(r.incarnations, 3);
    }

    #[test]
    fn joiner_suffix_window_is_clean() {
        let mut c = InvariantChecker::new(2, 3);
        for (seq, t) in [(0u64, 1u64), (1, 2), (2, 3)] {
            c.observe_delivery(atomic(t, 0, 0, seq, 0));
            c.observe_delivery(atomic(t, 1, 0, seq, 0));
        }
        // The joiner p2 delivers only the suffix, from its join on.
        c.observe_delivery(atomic(3, 2, 0, 2, 1));
        for proc in 0..3u32 {
            c.observe_view(
                p(proc),
                View {
                    id: 1,
                    members: vec![p(0), p(1), p(2)],
                },
            );
        }
        let r = c.finalize(&[true, true, true]);
        assert!(r.is_clean(), "{:?}", r.violations);
    }
}
