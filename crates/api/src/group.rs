//! The [`Group`] façade and its [`GroupBuilder`]: one coherent entry point
//! composing stack choice × topology × schedule × seed, replacing the three
//! positional-constructor surfaces the stacks used to expose.

use bytes::Bytes;
use gcs_core::{BatchPolicy, GroupSim, MessageClass, StackConfig, View};
use gcs_kernel::{PayloadRef, ProcessId, SharedArena, Time};
use gcs_live::{LiveConfig, LiveGroup, WireMode};
use gcs_sim::{Metrics, Schedule, SimConfig, Topology, TraceMode};
use gcs_traditional::{IsisConfig, IsisSim, TokenConfig, TokenSim};

use crate::transport::{GroupTransport, StackKind, TransportDelivery};

/// Which execution backend hosts a group.
///
/// Every knob of [`GroupBuilder`] and every method of [`GroupTransport`]
/// means the same thing on both backends; what changes is *how* the
/// protocol stacks execute and what guarantees observation carries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Discrete-event simulation: one thread, virtual time, deterministic —
    /// two builds with equal parameters and seed are bit-identical.
    #[default]
    Sim,
    /// The live runtime (`gcs-live`): every member is an OS thread, timers
    /// are wall-clock deadlines, frames cross channels or loopback TCP.
    /// `Time` is real nanoseconds since the group started, and runs are
    /// **not** deterministic — assert bounds, not fingerprints.
    Live,
}

/// A simulated group running one of the three stacks behind the unified
/// [`GroupTransport`] surface.
///
/// Build one with [`Group::builder`]:
///
/// ```
/// use gcs_api::{Group, GroupTransport, StackKind};
/// use gcs_kernel::{ProcessId, Time};
///
/// let mut group = Group::builder()
///     .members(3)
///     .stack(StackKind::NewArch)
///     .seed(42)
///     .build();
/// group.abcast_at(Time::from_millis(1), ProcessId::new(0), b"m1".to_vec());
/// group.run_until(Time::from_millis(500));
/// let seqs = group.adelivered_payloads();
/// assert_eq!(seqs[0], vec![b"m1".to_vec()]);
/// assert_eq!(seqs[0], seqs[1]);
/// ```
///
/// Stack-specific observation (Isis blocking windows, token rings, the raw
/// typed trace) stays available through the [`as_new_arch`](Self::as_new_arch)
/// / [`as_isis`](Self::as_isis) / [`as_token`](Self::as_token) accessors.
pub enum Group {
    /// The paper's new architecture (Fig 9).
    NewArch(GroupSim),
    /// The Isis-style GM-VS baseline.
    Isis(IsisSim),
    /// The token-ring baseline.
    Token(TokenSim),
    /// Any stack on the live backend ([`Backend::Live`]): member threads,
    /// wall-clock timers, a real frame path.
    Live(LiveGroup),
}

/// Composes one simulated group: member/joiner counts, stack choice,
/// topology, scripted schedule, trace sink, per-stack configuration, seed.
///
/// Every knob has a sensible default (3 members, no joiners, the new
/// architecture, a flat LAN, empty schedule, full trace, seed 0), so the
/// minimal group is `Group::builder().build()`.
#[derive(Clone, Debug)]
pub struct GroupBuilder {
    members: usize,
    joiners: usize,
    stack: StackKind,
    backend: Backend,
    wire: WireMode,
    topology: Topology,
    schedule: Schedule,
    seed: u64,
    trace: TraceMode,
    config: StackConfig,
    /// `None` = derive a timeout profile from the topology at build time.
    isis: Option<IsisConfig>,
    /// `None` = derive a timeout profile from the topology at build time.
    token: Option<TokenConfig>,
    /// Pending-queue bound installed on the built group (`None` = unbounded).
    capacity: Option<usize>,
}

impl Default for GroupBuilder {
    fn default() -> Self {
        GroupBuilder {
            members: 3,
            joiners: 0,
            stack: StackKind::NewArch,
            backend: Backend::Sim,
            wire: WireMode::Channel,
            topology: Topology::lan(),
            schedule: Schedule::new(),
            seed: 0,
            trace: TraceMode::Full,
            config: StackConfig::default(),
            isis: None,
            token: None,
            capacity: None,
        }
    }
}

impl GroupBuilder {
    /// Number of founding members.
    pub fn members(mut self, n: usize) -> Self {
        self.members = n;
        self
    }

    /// Number of processes started outside the group (activate them with
    /// [`GroupTransport::join_at`] or a schedule `Join` step).
    pub fn joiners(mut self, joiners: usize) -> Self {
        self.joiners = joiners;
        self
    }

    /// Which protocol stack to run (default: the new architecture).
    pub fn stack(mut self, stack: StackKind) -> Self {
        self.stack = stack;
        self
    }

    /// Which execution backend hosts the group (default: the deterministic
    /// simulator). With [`Backend::Live`] the same stack runs on OS threads
    /// under wall-clock time — see [`Backend`] for the semantic contract.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// How frames physically move between live members (default: in-process
    /// channels; [`WireMode::Tcp`] runs one loopback-TCP stream per member
    /// through the `gcs_net` frame codec). Ignored by [`Backend::Sim`].
    pub fn wire(mut self, wire: WireMode) -> Self {
        self.wire = wire;
        self
    }

    /// The network topology (default: a flat loss-free LAN). Use the
    /// [`Topology`] presets — `Topology::wan_3region()`,
    /// `Topology::wan_2dc()`, `Topology::lossy()` — or a custom matrix.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// A scripted fault/membership [`Schedule`], applied at build time.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// The simulation seed (two builds with equal parameters and equal seed
    /// are bit-identical).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// How deliveries are recorded (default [`TraceMode::Full`]; long
    /// throughput runs should use [`TraceMode::CountsOnly`]).
    pub fn trace(mut self, trace: TraceMode) -> Self {
        self.trace = trace;
        self
    }

    /// Per-process configuration of the new-architecture stack (ignored by
    /// the baselines).
    pub fn stack_config(mut self, config: StackConfig) -> Self {
        self.config = config;
        self
    }

    /// Failure-detection mode of the new-architecture stack (ignored by the
    /// baselines): [`FdMode::AllPairs`](gcs_core::FdMode::AllPairs) for exact
    /// small-group monitoring, [`FdMode::Gossip`](gcs_core::FdMode::Gossip)
    /// for O(n·k) ring-segment probing at scale (`fanout: 0` = auto,
    /// ≈ log₂ n). When not set, the builder picks all-pairs up to
    /// [`SCALE_THRESHOLD`](gcs_core::SCALE_THRESHOLD) members and gossip
    /// above it.
    pub fn fd_mode(mut self, mode: gcs_core::FdMode) -> Self {
        self.config.fd_mode = Some(mode);
        self
    }

    /// Reliable-broadcast relay policy of the new-architecture stack
    /// (ignored by the baselines): [`RelayFanout::All`](gcs_core::RelayFanout)
    /// re-sends every first copy to the whole view,
    /// [`RelayFanout::Bounded`](gcs_core::RelayFanout) to `k` ring
    /// successors. When not set, the builder picks all-relay up to
    /// [`SCALE_THRESHOLD`](gcs_core::SCALE_THRESHOLD) members and a bounded
    /// ≈ log₂ n fan-out above it.
    pub fn relay_fanout(mut self, relay: gcs_core::RelayFanout) -> Self {
        self.config.relay_fanout = Some(relay);
        self
    }

    /// Number of consensus instances the new-architecture stack keeps in
    /// flight concurrently (ignored by the baselines). The default (and
    /// `depth <= 1`) reproduces the sequential one-instance-at-a-time
    /// pipeline bit for bit; higher depths overlap instance latencies and
    /// multiply sustainable throughput while delivery still flushes in
    /// strict instance order.
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.config.pipeline_depth = Some(depth);
        self
    }

    /// Batch-closing policy of the new-architecture stack (ignored by the
    /// baselines): a batch proposes when it reaches `max_msgs` messages or
    /// `max_bytes` payload bytes, or when `max_delay` has elapsed since the
    /// batch could first have been proposed — whichever comes first. The
    /// default closes on every poll exactly like the pre-policy code.
    pub fn batch_policy(mut self, policy: BatchPolicy) -> Self {
        self.config.batch = Some(policy);
        self
    }

    /// Bounds each sender's pending abcast queue: `try_abcast_*` calls
    /// refuse with [`Backpressure`](crate::Backpressure) once the sender's
    /// backlog reaches `cap`. Unconditional `abcast_*` calls ignore the
    /// bound (they only feed the high-water statistic).
    pub fn abcast_capacity(mut self, cap: usize) -> Self {
        self.capacity = Some(cap);
        self
    }

    /// Per-process configuration of the Isis baseline (ignored by the other
    /// stacks). When not set, the builder derives a timeout profile from the
    /// topology's RTT bound ([`IsisConfig::for_topology`]) — on a LAN that
    /// profile equals [`IsisConfig::default`], on WAN presets the
    /// failure-detection timeout stretches so distance is not mistaken for
    /// death.
    pub fn isis_config(mut self, config: IsisConfig) -> Self {
        self.isis = Some(config);
        self
    }

    /// Per-process configuration of the token baseline (ignored by the
    /// other stacks). When not set, the builder derives a timeout profile
    /// from the topology's RTT bound and the ring size
    /// ([`TokenConfig::for_topology`]).
    pub fn token_config(mut self, config: TokenConfig) -> Self {
        self.token = Some(config);
        self
    }

    /// Builds the group: constructs the world for the selected stack on the
    /// selected backend (deriving baseline timeout profiles from the
    /// topology where not explicitly configured) and applies the scripted
    /// schedule.
    ///
    /// On [`Backend::Live`] the clock starts running at this call — a
    /// schedule step at 20 ms fires 20 ms of wall time after `build`
    /// returns the group.
    pub fn build(self) -> Group {
        let isis = self
            .isis
            .unwrap_or_else(|| IsisConfig::for_topology(&self.topology));
        let token = self.token.unwrap_or_else(|| {
            TokenConfig::for_topology(&self.topology, self.members + self.joiners)
        });
        let mut group = match self.backend {
            Backend::Sim => {
                let sim = SimConfig::lan(self.seed)
                    .with_topology(self.topology)
                    .with_trace(self.trace);
                match self.stack {
                    StackKind::NewArch => Group::NewArch(GroupSim::with_sim(
                        self.members,
                        self.joiners,
                        self.config,
                        sim,
                    )),
                    StackKind::Isis => {
                        Group::Isis(IsisSim::with_sim(self.members, self.joiners, isis, sim))
                    }
                    StackKind::Token => {
                        Group::Token(TokenSim::with_sim(self.members, self.joiners, token, sim))
                    }
                }
            }
            Backend::Live => {
                let live = LiveConfig::new(self.members)
                    .with_joiners(self.joiners)
                    .with_seed(self.seed)
                    .with_topology(self.topology)
                    .with_trace(self.trace)
                    .with_wire(self.wire);
                Group::Live(match self.stack {
                    StackKind::NewArch => LiveGroup::new_arch(self.config, live),
                    StackKind::Isis => LiveGroup::isis(isis, live),
                    StackKind::Token => LiveGroup::token(token, live),
                })
            }
        };
        if self.capacity.is_some() {
            group.set_abcast_capacity(self.capacity);
        }
        if !self.schedule.is_empty() {
            group.apply_schedule(&self.schedule);
        }
        group
    }
}

impl Group {
    /// Starts composing a group (see [`GroupBuilder`]).
    pub fn builder() -> GroupBuilder {
        GroupBuilder::default()
    }

    /// The new-architecture harness, when this group runs it.
    pub fn as_new_arch(&self) -> Option<&GroupSim> {
        match self {
            Group::NewArch(g) => Some(g),
            _ => None,
        }
    }

    /// Mutable access to the new-architecture harness.
    pub fn as_new_arch_mut(&mut self) -> Option<&mut GroupSim> {
        match self {
            Group::NewArch(g) => Some(g),
            _ => None,
        }
    }

    /// The Isis harness, when this group runs it.
    pub fn as_isis(&self) -> Option<&IsisSim> {
        match self {
            Group::Isis(g) => Some(g),
            _ => None,
        }
    }

    /// Mutable access to the Isis harness.
    pub fn as_isis_mut(&mut self) -> Option<&mut IsisSim> {
        match self {
            Group::Isis(g) => Some(g),
            _ => None,
        }
    }

    /// The token-ring harness, when this group runs it.
    pub fn as_token(&self) -> Option<&TokenSim> {
        match self {
            Group::Token(g) => Some(g),
            _ => None,
        }
    }

    /// Mutable access to the token-ring harness.
    pub fn as_token_mut(&mut self) -> Option<&mut TokenSim> {
        match self {
            Group::Token(g) => Some(g),
            _ => None,
        }
    }

    /// The live harness, when this group runs on [`Backend::Live`].
    pub fn as_live(&self) -> Option<&LiveGroup> {
        match self {
            Group::Live(g) => Some(g),
            _ => None,
        }
    }

    /// Mutable access to the live harness.
    pub fn as_live_mut(&mut self) -> Option<&mut LiveGroup> {
        match self {
            Group::Live(g) => Some(g),
            _ => None,
        }
    }
}

/// Delegates one `GroupTransport` call to whichever stack the group runs.
macro_rules! delegate {
    ($self:ident, $g:ident => $e:expr) => {
        match $self {
            Group::NewArch($g) => $e,
            Group::Isis($g) => $e,
            Group::Token($g) => $e,
            Group::Live($g) => $e,
        }
    };
}

impl GroupTransport for Group {
    fn stack(&self) -> StackKind {
        delegate!(self, g => GroupTransport::stack(g))
    }

    fn process_count(&self) -> usize {
        delegate!(self, g => g.process_count())
    }

    fn supports_gbcast(&self) -> bool {
        delegate!(self, g => g.supports_gbcast())
    }

    fn supports_rbcast(&self) -> bool {
        delegate!(self, g => g.supports_rbcast())
    }

    fn supports_removal(&self) -> bool {
        delegate!(self, g => g.supports_removal())
    }

    fn abcast_bytes_at(&mut self, t: Time, p: ProcessId, payload: Bytes) {
        delegate!(self, g => g.abcast_bytes_at(t, p, payload))
    }

    fn abcast_ref_at(&mut self, t: Time, p: ProcessId, payload: PayloadRef) {
        delegate!(self, g => g.abcast_ref_at(t, p, payload))
    }

    fn set_abcast_capacity(&mut self, cap: Option<usize>) {
        delegate!(self, g => GroupTransport::set_abcast_capacity(g, cap))
    }

    fn abcast_capacity(&self) -> Option<usize> {
        delegate!(self, g => GroupTransport::abcast_capacity(g))
    }

    fn queue_depth(&self, p: ProcessId) -> usize {
        delegate!(self, g => GroupTransport::queue_depth(g, p))
    }

    fn queue_high_water(&self) -> usize {
        delegate!(self, g => GroupTransport::queue_high_water(g))
    }

    fn gbcast_bytes_at(&mut self, t: Time, p: ProcessId, class: MessageClass, payload: Bytes) {
        delegate!(self, g => g.gbcast_bytes_at(t, p, class, payload))
    }

    fn gbcast_ref_at(&mut self, t: Time, p: ProcessId, class: MessageClass, payload: PayloadRef) {
        delegate!(self, g => GroupTransport::gbcast_ref_at(g, t, p, class, payload))
    }

    fn rbcast_bytes_at(&mut self, t: Time, p: ProcessId, payload: Bytes) {
        delegate!(self, g => g.rbcast_bytes_at(t, p, payload))
    }

    fn rbcast_ref_at(&mut self, t: Time, p: ProcessId, payload: PayloadRef) {
        delegate!(self, g => GroupTransport::rbcast_ref_at(g, t, p, payload))
    }

    fn join_at(&mut self, t: Time, joiner: ProcessId, contact: ProcessId) {
        delegate!(self, g => GroupTransport::join_at(g, t, joiner, contact))
    }

    fn remove_at(&mut self, t: Time, by: ProcessId, target: ProcessId) {
        delegate!(self, g => g.remove_at(t, by, target))
    }

    fn crash_at(&mut self, t: Time, p: ProcessId) {
        delegate!(self, g => g.crash_at(t, p))
    }

    fn partition_at(&mut self, t: Time, groups: Vec<Vec<ProcessId>>) {
        delegate!(self, g => g.partition_at(t, groups))
    }

    fn heal_at(&mut self, t: Time) {
        delegate!(self, g => g.heal_at(t))
    }

    fn apply_schedule(&mut self, schedule: &Schedule) {
        delegate!(self, g => GroupTransport::apply_schedule(g, schedule))
    }

    fn run_until(&mut self, t: Time) {
        delegate!(self, g => g.run_until(t))
    }

    fn run_to_quiescence(&mut self, limit: Time) -> bool {
        delegate!(self, g => g.run_to_quiescence(limit))
    }

    fn arena(&self) -> &SharedArena {
        delegate!(self, g => GroupTransport::arena(g))
    }

    fn metrics(&self) -> &Metrics {
        delegate!(self, g => GroupTransport::metrics(g))
    }

    fn events_executed(&self) -> u64 {
        delegate!(self, g => g.events_executed())
    }

    fn alive_flags(&self) -> Vec<bool> {
        delegate!(self, g => g.alive_flags())
    }

    fn delivery_count(&self) -> u64 {
        delegate!(self, g => g.delivery_count())
    }

    fn delivery_trace(&self) -> Vec<TransportDelivery> {
        delegate!(self, g => GroupTransport::delivery_trace(g))
    }

    fn views(&self) -> Vec<Vec<View>> {
        delegate!(self, g => GroupTransport::views(g))
    }

    fn suspicion_trace(&self) -> Vec<(Time, ProcessId, ProcessId)> {
        match self {
            Group::NewArch(g) => g.suspicion_trace(),
            Group::Live(g) => g.suspicion_trace(),
            _ => Vec::new(),
        }
    }

    fn resets(&self) -> Vec<Vec<Time>> {
        delegate!(self, g => GroupTransport::resets(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn builder_defaults_build_a_working_new_arch_group() {
        let mut g = Group::builder().seed(1).build();
        assert_eq!(g.stack(), StackKind::NewArch);
        assert_eq!(g.process_count(), 3);
        assert!(g.supports_gbcast() && g.supports_rbcast() && g.supports_removal());
        g.abcast_at(Time::from_millis(1), p(0), b"a".to_vec());
        g.run_until(Time::from_millis(500));
        assert_eq!(g.adelivered_payloads(), vec![vec![b"a".to_vec()]; 3]);
    }

    #[test]
    fn builder_matches_the_direct_constructors_bit_for_bit() {
        // The façade must be a pure re-packaging: same seed, same events.
        let mut direct = GroupSim::new(4, StackConfig::default(), 9);
        let mut built = Group::builder().members(4).seed(9).build();
        for i in 0..6u32 {
            let t = Time::from_millis(1 + i as u64);
            direct.abcast_at(t, p(i % 4), vec![i as u8]);
            built.abcast_at(t, p(i % 4), vec![i as u8]);
        }
        direct.run_until(Time::from_secs(1));
        built.run_until(Time::from_secs(1));
        assert_eq!(direct.adelivered_payloads(), built.adelivered_payloads());
        assert_eq!(direct.world().events_executed(), built.events_executed());
        assert_eq!(direct.metrics().total_sent(), built.metrics().total_sent());
    }

    #[test]
    fn all_three_stacks_order_the_same_stream() {
        for kind in StackKind::ALL {
            let mut g = Group::builder().members(3).stack(kind).seed(2).build();
            assert_eq!(g.stack(), kind);
            for i in 0..6u32 {
                g.abcast_at(Time::from_millis(1 + i as u64), p(i % 3), vec![i as u8]);
            }
            g.run_until(Time::from_secs(2));
            let seqs = g.adelivered_payloads();
            for (i, s) in seqs.iter().enumerate() {
                assert_eq!(s.len(), 6, "{}: p{i} delivered all", kind.name());
            }
            assert_eq!(seqs[0], seqs[1], "{}", kind.name());
            assert_eq!(seqs[1], seqs[2], "{}", kind.name());
        }
    }

    #[test]
    fn schedule_is_applied_at_build_time() {
        let schedule = Schedule::new()
            .join(Time::from_millis(20), p(3), p(1))
            .remove(Time::from_millis(200), p(0), p(2));
        let mut g = Group::builder()
            .members(3)
            .joiners(1)
            .schedule(schedule)
            .seed(13)
            .build();
        g.run_until(Time::from_secs(2));
        let views = GroupTransport::views(&g);
        for i in [0usize, 1, 3] {
            let last = views[i].last().unwrap_or_else(|| panic!("p{i} saw a view"));
            assert!(last.contains(p(3)), "p{i}: joiner in final view");
            assert!(!last.contains(p(2)), "p{i}: removed member gone");
        }
    }

    #[test]
    #[should_panic(expected = "supports_gbcast")]
    fn gbcast_on_a_baseline_panics_with_the_capability_hint() {
        let mut g = Group::builder().stack(StackKind::Isis).build();
        assert!(!g.supports_gbcast());
        g.gbcast_at(Time::from_millis(1), p(0), MessageClass(0), b"x".to_vec());
    }

    #[test]
    fn wan_profiles_keep_baselines_stable() {
        use gcs_sim::Topology;
        // With default LAN timeouts both baselines mistake WAN latency for
        // failure and thrash through view changes; the derived profiles keep
        // the full membership intact through a steady WAN stream.
        for kind in [StackKind::Isis, StackKind::Token] {
            let mut g = Group::builder()
                .members(6)
                .stack(kind)
                .topology(Topology::wan_3region())
                .seed(5)
                .build();
            for i in 0..6u32 {
                g.abcast_at(
                    Time::from_millis(1 + 20 * i as u64),
                    p(i % 6),
                    vec![i as u8],
                );
            }
            g.run_until(Time::from_secs(8));
            let seqs = g.adelivered_payloads();
            for (i, s) in seqs.iter().enumerate() {
                assert_eq!(
                    s.len(),
                    6,
                    "{}: p{i} delivered all of {seqs:?}",
                    kind.name()
                );
            }
            // Nobody was expelled: any installed view still has 6 members.
            for (i, vs) in GroupTransport::views(&g).iter().enumerate() {
                if let Some(last) = vs.last() {
                    assert_eq!(last.len(), 6, "{}: p{i} kept the full view", kind.name());
                }
            }
        }
    }

    #[test]
    fn bounded_queue_refuses_with_backpressure_then_reopens() {
        let mut g = Group::builder()
            .members(3)
            .seed(6)
            .abcast_capacity(2)
            .build();
        assert_eq!(g.abcast_capacity(), Some(2));
        // Offer without letting the sim drain: the third offer must refuse.
        assert!(g
            .try_abcast_at(Time::from_millis(1), p(0), b"a".to_vec())
            .is_ok());
        assert!(g
            .try_abcast_at(Time::from_millis(1), p(0), b"b".to_vec())
            .is_ok());
        let err = g
            .try_abcast_at(Time::from_millis(1), p(0), b"c".to_vec())
            .expect_err("queue at capacity");
        assert_eq!(err.limit, 2);
        assert!(err.depth >= 2, "{err}");
        assert!(g.queue_high_water() <= 2, "accepted backlog stays bounded");
        // Draining the queue reopens it.
        g.run_until(Time::from_millis(500));
        assert_eq!(g.queue_depth(p(0)), 0);
        assert!(g
            .try_abcast_at(Time::from_millis(501), p(0), b"d".to_vec())
            .is_ok());
        g.run_until(Time::from_secs(1));
        assert_eq!(g.adelivered_payloads()[0].len(), 3, "refused op was shed");
    }

    #[test]
    fn refused_build_offer_interns_no_payload() {
        // try_abcast_build_at's contract: the capacity check runs before
        // the payload is built, so a refusal leaves no arena slot behind.
        let mut g = Group::builder()
            .members(3)
            .seed(11)
            .abcast_capacity(1)
            .build();
        g.try_abcast_build_at(Time::from_millis(1), p(0), &mut |buf| {
            buf.extend_from_slice(b"accepted")
        })
        .expect("first offer fits");
        let live_before = g.arena().live();
        g.try_abcast_build_at(Time::from_millis(1), p(0), &mut |buf| {
            buf.extend_from_slice(b"refused")
        })
        .expect_err("queue at capacity");
        assert_eq!(
            g.arena().live(),
            live_before,
            "a refused build offer must not leak an arena slot"
        );
    }

    #[test]
    fn pipelined_group_delivers_the_same_set_as_sequential() {
        let run = |depth: usize| {
            let mut g = Group::builder()
                .members(3)
                .seed(8)
                .pipeline_depth(depth)
                .batch_policy(BatchPolicy {
                    max_msgs: 2,
                    ..BatchPolicy::default()
                })
                .build();
            for i in 0..12u32 {
                g.abcast_at(Time::from_millis(1 + i as u64), p(i % 3), vec![i as u8]);
            }
            g.run_until(Time::from_secs(2));
            let seqs = g.adelivered_payloads();
            assert_eq!(seqs[0], seqs[1], "depth {depth}: total order");
            assert_eq!(seqs[1], seqs[2], "depth {depth}: total order");
            assert_eq!(seqs[0].len(), 12, "depth {depth}: everything delivered");
            let mut sorted = seqs[0].clone();
            sorted.sort();
            sorted
        };
        // The interleaving may differ across depths, the delivered set not.
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn baseline_views_surface_through_the_neutral_type() {
        let mut g = Group::builder()
            .stack(StackKind::Token)
            .members(3)
            .seed(3)
            .build();
        g.crash_at(Time::from_millis(5), p(0));
        g.run_until(Time::from_secs(1));
        let views = GroupTransport::views(&g);
        let last = views[1].last().expect("reformation ring");
        assert_eq!(last.members, vec![p(1), p(2)]);
        assert!(g.as_token().is_some() && g.as_isis().is_none());
    }
}
