//! # gcs-api — one façade, three stacks
//!
//! The unified public API of the group-communication workspace: a single
//! [`GroupTransport`] trait capturing the full harness surface shared by the
//! paper's new architecture (`gcs_core::GroupSim`) and the two traditional
//! baselines (`gcs_traditional::{IsisSim, TokenSim}`), plus the
//! [`Group`]/[`GroupBuilder`] façade that composes stack choice × topology ×
//! schedule × seed in one place:
//!
//! ```
//! use gcs_api::{Group, GroupTransport, StackKind};
//! use gcs_kernel::{ProcessId, Time};
//! use gcs_sim::Topology;
//!
//! // The same workload on the new architecture over a 3-region WAN…
//! let mut group = Group::builder()
//!     .members(9)
//!     .stack(StackKind::NewArch)
//!     .topology(Topology::wan_3region())
//!     .seed(7)
//!     .build();
//! group.abcast_at(Time::from_millis(1), ProcessId::new(0), b"m".to_vec());
//! group.run_until(Time::from_secs(2));
//! assert_eq!(group.adelivered_payloads()[0].len(), 1);
//!
//! // …and on the Isis baseline, through the same trait surface.
//! let mut isis = Group::builder().members(3).stack(StackKind::Isis).seed(7).build();
//! isis.abcast_at(Time::from_millis(1), ProcessId::new(0), b"m".to_vec());
//! isis.run_until(Time::from_secs(1));
//! assert!(!isis.supports_gbcast()); // pick-your-services: Isis has no GB
//! ```
//!
//! Services a stack does not provide are visible through the trait's
//! `supports_*` capability markers — the paper's pick-your-services
//! modularity reflected in the API instead of three incompatible harness
//! types.
//!
//! ## Backends: simulated and live
//!
//! The same facade runs on two execution backends, selected with
//! [`GroupBuilder::backend`]. The default, [`Backend::Sim`], is the
//! deterministic discrete-event simulator: virtual time, bit-identical
//! replay under a fixed seed. [`Backend::Live`] hosts the identical
//! protocol stacks on the `gcs-live` runtime — every member an OS thread,
//! timers real wall-clock deadlines, frames crossing in-process channels
//! or loopback TCP ([`WireMode`]) — so `Time` means real nanoseconds since
//! the group started and assertions must be bound-based ("delivered within
//! 10 s"), never fingerprint-based:
//!
//! ```
//! use gcs_api::{Backend, Group, GroupTransport};
//! use gcs_kernel::{ProcessId, Time, TimeDelta};
//!
//! let mut group = Group::builder()
//!     .members(3)
//!     .backend(Backend::Live)
//!     .build();
//! group.abcast_at(Time::ZERO, ProcessId::new(0), b"m1".to_vec());
//! let deadline = Time::from_secs(20);
//! while group.delivery_count() < 3 && group.as_live().unwrap().now() < deadline {
//!     let next = group.as_live().unwrap().now() + TimeDelta::from_millis(5);
//!     group.run_until(next);
//! }
//! assert_eq!(group.delivery_count(), 3); // every member delivered m1
//! ```
//!
//! ## Saturation: pipelining, batching, backpressure
//!
//! Three knobs control behavior under load. On the new architecture,
//! [`GroupBuilder::pipeline_depth`] keeps several consensus instances in
//! flight at once (depth 1, the default, is the paper's sequential abcast,
//! bit for bit) and [`GroupBuilder::batch_policy`] closes proposal batches
//! on a message count, a byte budget, or a deadline. On any stack,
//! [`GroupBuilder::abcast_capacity`] bounds each sender's pending queue so
//! the `try_abcast_*` entry points refuse with [`Backpressure`] instead of
//! queueing without limit.
//!
//! The refusal paths differ in cost, and the difference is a contract:
//! [`GroupTransport::try_abcast_build_at`] checks capacity **before the
//! payload is interned** — a refused offer allocates nothing and leaves no
//! arena slot behind, so an open-loop producer can shed load at arbitrary
//! rates without touching the payload plane. The `impl Into<Bytes>`
//! convenience [`GroupTransport::try_abcast_at`] must consume its argument
//! and therefore interns first; high-rate shedding drivers should use the
//! build form. Example:
//!
//! ```
//! use gcs_api::{BatchPolicy, Group, GroupTransport};
//! use gcs_kernel::{ProcessId, Time, TimeDelta};
//!
//! let mut group = Group::builder()
//!     .members(3)
//!     .pipeline_depth(4)
//!     .batch_policy(BatchPolicy {
//!         max_msgs: 16,
//!         max_bytes: 4096,
//!         max_delay: TimeDelta::from_millis(2),
//!     })
//!     .abcast_capacity(64)
//!     .seed(7)
//!     .build();
//! let mut accepted = 0u32;
//! for i in 0..80u32 {
//!     // An open-loop producer sheds load the group refuses.
//!     if group
//!         .try_abcast_at(Time::from_millis(1), ProcessId::new(0), vec![i as u8])
//!         .is_ok()
//!     {
//!         accepted += 1;
//!     }
//! }
//! assert_eq!(accepted, 64); // the rest hit the queue bound
//! assert!(group.queue_high_water() <= 64);
//! group.run_until(Time::from_secs(2));
//! assert_eq!(group.adelivered_payloads()[0].len(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod group;
mod live;
mod oracle;
mod sims;
mod transport;

pub use gcs_core::BatchPolicy;
pub use gcs_live::{LiveGroup, WireMode};
pub use group::{Backend, Group, GroupBuilder};
pub use oracle::{InvariantChecker, InvariantKind, OracleReport, Violation, MAX_VIOLATIONS};
pub use transport::{Backpressure, GroupTransport, StackKind, TransportDelivery};
