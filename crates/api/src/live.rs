//! [`GroupTransport`] implementation for the live backend's [`LiveGroup`].
//!
//! The projection mirrors `sims.rs` exactly: every method delegates to the
//! inherent surface `gcs_live::LiveGroup` already exposes, mapping its
//! neutral `LiveDelivery` records into [`TransportDelivery`]. Because the
//! live harness is stack-agnostic (one type hosts all three stacks), the
//! capability markers switch on the group's stack at runtime instead of on
//! the implementing type.
//!
//! One semantic difference carries through from the backend: **time is
//! real**. `run_until(t)` sleeps the caller while member threads keep
//! working, and two runs with the same seed need not interleave
//! identically — live assertions should be bound-based, not
//! fingerprint-based (the simulator remains the place for bit-identical
//! replay).

use bytes::Bytes;
use gcs_core::{MessageClass, View};
use gcs_kernel::{PayloadRef, ProcessId, SharedArena, Time};
use gcs_live::{LiveGroup, LiveStackKind};
use gcs_sim::{Metrics, Schedule};

use crate::transport::{GroupTransport, StackKind, TransportDelivery};

impl GroupTransport for LiveGroup {
    fn stack(&self) -> StackKind {
        match LiveGroup::stack(self) {
            LiveStackKind::NewArch => StackKind::NewArch,
            LiveStackKind::Isis => StackKind::Isis,
            LiveStackKind::Token => StackKind::Token,
        }
    }

    fn process_count(&self) -> usize {
        self.len()
    }

    fn supports_gbcast(&self) -> bool {
        LiveGroup::stack(self) == LiveStackKind::NewArch
    }

    fn supports_rbcast(&self) -> bool {
        LiveGroup::stack(self) == LiveStackKind::NewArch
    }

    fn supports_removal(&self) -> bool {
        true
    }

    fn abcast_bytes_at(&mut self, t: Time, p: ProcessId, payload: Bytes) {
        LiveGroup::abcast_at(self, t, p, payload);
    }

    fn abcast_ref_at(&mut self, t: Time, p: ProcessId, payload: PayloadRef) {
        LiveGroup::abcast_ref_at(self, t, p, payload);
    }

    fn set_abcast_capacity(&mut self, cap: Option<usize>) {
        LiveGroup::set_queue_capacity(self, cap);
    }

    fn abcast_capacity(&self) -> Option<usize> {
        LiveGroup::queue_capacity(self)
    }

    fn queue_depth(&self, p: ProcessId) -> usize {
        LiveGroup::queue_depth(self, p)
    }

    fn queue_high_water(&self) -> usize {
        LiveGroup::queue_high_water(self)
    }

    fn gbcast_bytes_at(&mut self, t: Time, p: ProcessId, class: MessageClass, payload: Bytes) {
        self.require_gbcast();
        LiveGroup::gbcast_at(self, t, p, class, payload);
    }

    fn gbcast_ref_at(&mut self, t: Time, p: ProcessId, class: MessageClass, payload: PayloadRef) {
        self.require_gbcast();
        LiveGroup::gbcast_ref_at(self, t, p, class, payload);
    }

    fn rbcast_bytes_at(&mut self, t: Time, p: ProcessId, payload: Bytes) {
        self.require_rbcast();
        LiveGroup::rbcast_at(self, t, p, payload);
    }

    fn rbcast_ref_at(&mut self, t: Time, p: ProcessId, payload: PayloadRef) {
        self.require_rbcast();
        LiveGroup::rbcast_ref_at(self, t, p, payload);
    }

    fn join_at(&mut self, t: Time, joiner: ProcessId, contact: ProcessId) {
        LiveGroup::join_at(self, t, joiner, contact);
    }

    fn remove_at(&mut self, t: Time, by: ProcessId, target: ProcessId) {
        LiveGroup::remove_at(self, t, by, target);
    }

    fn crash_at(&mut self, t: Time, p: ProcessId) {
        LiveGroup::crash_at(self, t, p);
    }

    fn partition_at(&mut self, t: Time, groups: Vec<Vec<ProcessId>>) {
        LiveGroup::partition_at(self, t, groups);
    }

    fn heal_at(&mut self, t: Time) {
        LiveGroup::heal_at(self, t);
    }

    fn apply_schedule(&mut self, schedule: &Schedule) {
        // The live harness routes membership steps through its own
        // join/removal entry points itself.
        LiveGroup::apply_schedule(self, schedule);
    }

    fn run_until(&mut self, t: Time) {
        LiveGroup::run_until(self, t);
    }

    fn run_to_quiescence(&mut self, limit: Time) -> bool {
        LiveGroup::run_to_quiescence(self, limit)
    }

    fn arena(&self) -> &SharedArena {
        LiveGroup::arena(self)
    }

    fn metrics(&self) -> &Metrics {
        // A snapshot refreshed by the run methods — between runs it lags
        // the member threads by design (&self cannot lock a fresh copy).
        LiveGroup::metrics(self)
    }

    fn events_executed(&self) -> u64 {
        LiveGroup::events_executed(self)
    }

    fn alive_flags(&self) -> Vec<bool> {
        LiveGroup::alive_flags(self)
    }

    fn delivery_count(&self) -> u64 {
        LiveGroup::delivery_count(self)
    }

    fn delivery_trace(&self) -> Vec<TransportDelivery> {
        LiveGroup::delivery_trace(self)
            .into_iter()
            .map(|d| TransportDelivery {
                time: d.time,
                proc: d.proc,
                sender: d.sender,
                seq: d.seq,
                kind: d.kind,
                class: d.class,
                view: d.view,
                payload: d.payload,
            })
            .collect()
    }

    fn views(&self) -> Vec<Vec<View>> {
        LiveGroup::views(self)
    }

    fn suspicion_trace(&self) -> Vec<(Time, ProcessId, ProcessId)> {
        LiveGroup::suspicion_trace(self)
    }

    fn resets(&self) -> Vec<Vec<Time>> {
        LiveGroup::resets(self)
    }
}

/// Capability guards producing the same panic messages as the trait's
/// defaults, so drivers see one vocabulary regardless of backend.
trait RequireCapability {
    fn require_gbcast(&self);
    fn require_rbcast(&self);
}

impl RequireCapability for LiveGroup {
    fn require_gbcast(&self) {
        if !GroupTransport::supports_gbcast(self) {
            panic!(
                "the {} stack provides no generic broadcast (check supports_gbcast())",
                GroupTransport::stack(self).name()
            );
        }
    }

    fn require_rbcast(&self) {
        if !GroupTransport::supports_rbcast(self) {
            panic!(
                "the {} stack provides no reliable broadcast (check supports_rbcast())",
                GroupTransport::stack(self).name()
            );
        }
    }
}
