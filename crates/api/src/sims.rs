//! [`GroupTransport`] implementations for the three concrete harnesses.
//!
//! These are thin projections: every method delegates to the inherent
//! surface the stack already exposes (`gcs_core::GroupSim`,
//! `gcs_traditional::{IsisSim, TokenSim}`), mapping stack-specific trace
//! events into the neutral [`TransportDelivery`] / [`View`] vocabulary.

use bytes::Bytes;
use gcs_core::{Ev, GroupSim, MessageClass, View};
use gcs_kernel::{PayloadRef, ProcessId, SharedArena, Time};
use gcs_sim::{Metrics, Schedule, ScheduleAction};
use gcs_traditional::{IsisEvent, IsisSim, TokenEvent, TokenSim};

use crate::transport::{GroupTransport, StackKind, TransportDelivery};

/// Routes the membership steps a world-level schedule application returns
/// through the transport's own join/removal entry points — shared by the
/// baseline impls so the dispatch cannot drift between them.
fn route_membership<T: GroupTransport + ?Sized>(t: &mut T, actions: Vec<(Time, ScheduleAction)>) {
    for (at, action) in actions {
        match action {
            ScheduleAction::Join { joiner, contact } => t.join_at(at, joiner, contact),
            ScheduleAction::Remove { by, target } => t.remove_at(at, by, target),
            _ => unreachable!("apply_schedule only returns membership actions"),
        }
    }
}

impl GroupTransport for GroupSim {
    fn stack(&self) -> StackKind {
        StackKind::NewArch
    }

    fn process_count(&self) -> usize {
        self.len()
    }

    fn supports_gbcast(&self) -> bool {
        true
    }

    fn supports_rbcast(&self) -> bool {
        true
    }

    fn supports_removal(&self) -> bool {
        true
    }

    fn abcast_bytes_at(&mut self, t: Time, p: ProcessId, payload: Bytes) {
        GroupSim::abcast_at(self, t, p, payload);
    }

    fn abcast_ref_at(&mut self, t: Time, p: ProcessId, payload: PayloadRef) {
        GroupSim::abcast_ref_at(self, t, p, payload);
    }

    fn set_abcast_capacity(&mut self, cap: Option<usize>) {
        GroupSim::set_queue_capacity(self, cap);
    }

    fn abcast_capacity(&self) -> Option<usize> {
        GroupSim::queue_capacity(self)
    }

    fn queue_depth(&self, p: ProcessId) -> usize {
        GroupSim::queue_depth(self, p)
    }

    fn queue_high_water(&self) -> usize {
        GroupSim::queue_high_water(self)
    }

    fn gbcast_bytes_at(&mut self, t: Time, p: ProcessId, class: MessageClass, payload: Bytes) {
        GroupSim::gbcast_at(self, t, p, class, payload);
    }

    fn gbcast_ref_at(&mut self, t: Time, p: ProcessId, class: MessageClass, payload: PayloadRef) {
        GroupSim::gbcast_ref_at(self, t, p, class, payload);
    }

    fn rbcast_bytes_at(&mut self, t: Time, p: ProcessId, payload: Bytes) {
        GroupSim::rbcast_at(self, t, p, payload);
    }

    fn rbcast_ref_at(&mut self, t: Time, p: ProcessId, payload: PayloadRef) {
        GroupSim::rbcast_ref_at(self, t, p, payload);
    }

    fn join_at(&mut self, t: Time, joiner: ProcessId, contact: ProcessId) {
        GroupSim::join_at(self, t, joiner, contact);
    }

    fn remove_at(&mut self, t: Time, by: ProcessId, target: ProcessId) {
        GroupSim::remove_at(self, t, by, target);
    }

    fn crash_at(&mut self, t: Time, p: ProcessId) {
        GroupSim::crash_at(self, t, p);
    }

    fn partition_at(&mut self, t: Time, groups: Vec<Vec<ProcessId>>) {
        self.world_mut().partition_at(t, groups);
    }

    fn heal_at(&mut self, t: Time) {
        self.world_mut().heal_at(t);
    }

    fn apply_schedule(&mut self, schedule: &Schedule) {
        GroupSim::apply_schedule(self, schedule);
    }

    fn run_until(&mut self, t: Time) {
        GroupSim::run_until(self, t);
    }

    fn run_to_quiescence(&mut self, limit: Time) -> bool {
        GroupSim::run_to_quiescence(self, limit)
    }

    fn arena(&self) -> &SharedArena {
        GroupSim::arena(self)
    }

    fn metrics(&self) -> &Metrics {
        GroupSim::metrics(self)
    }

    fn events_executed(&self) -> u64 {
        self.world().events_executed()
    }

    fn alive_flags(&self) -> Vec<bool> {
        GroupSim::alive_flags(self)
    }

    fn delivery_count(&self) -> u64 {
        self.trace().delivery_count()
    }

    fn delivery_trace(&self) -> Vec<TransportDelivery> {
        self.trace()
            .entries()
            .iter()
            .filter_map(|e| match &e.event {
                Ev::Deliver(d) => Some(TransportDelivery {
                    time: e.time,
                    proc: e.proc,
                    sender: d.id.sender,
                    seq: d.id.seq,
                    kind: d.kind,
                    class: d.class,
                    view: d.view,
                    payload: d.payload,
                }),
                _ => None,
            })
            .collect()
    }

    fn views(&self) -> Vec<Vec<View>> {
        GroupSim::views(self)
    }

    fn suspicion_trace(&self) -> Vec<(Time, ProcessId, ProcessId)> {
        GroupSim::suspicion_trace(self)
    }
}

impl GroupTransport for IsisSim {
    fn stack(&self) -> StackKind {
        StackKind::Isis
    }

    fn process_count(&self) -> usize {
        self.len()
    }

    fn supports_removal(&self) -> bool {
        true
    }

    fn abcast_bytes_at(&mut self, t: Time, p: ProcessId, payload: Bytes) {
        IsisSim::abcast_at(self, t, p, payload);
    }

    fn abcast_ref_at(&mut self, t: Time, p: ProcessId, payload: PayloadRef) {
        IsisSim::abcast_ref_at(self, t, p, payload);
    }

    fn set_abcast_capacity(&mut self, cap: Option<usize>) {
        IsisSim::set_queue_capacity(self, cap);
    }

    fn abcast_capacity(&self) -> Option<usize> {
        IsisSim::queue_capacity(self)
    }

    fn queue_depth(&self, p: ProcessId) -> usize {
        IsisSim::queue_depth(self, p)
    }

    fn queue_high_water(&self) -> usize {
        IsisSim::queue_high_water(self)
    }

    fn join_at(&mut self, t: Time, joiner: ProcessId, _contact: ProcessId) {
        // Isis routes the request to its coordinator itself.
        IsisSim::join_at(self, t, joiner);
    }

    fn remove_at(&mut self, t: Time, by: ProcessId, target: ProcessId) {
        IsisSim::remove_at(self, t, by, target);
    }

    fn crash_at(&mut self, t: Time, p: ProcessId) {
        IsisSim::crash_at(self, t, p);
    }

    fn partition_at(&mut self, t: Time, groups: Vec<Vec<ProcessId>>) {
        self.world_mut().partition_at(t, groups);
    }

    fn heal_at(&mut self, t: Time) {
        self.world_mut().heal_at(t);
    }

    fn apply_schedule(&mut self, schedule: &Schedule) {
        let actions = self.world_mut().apply_schedule(schedule);
        route_membership(self, actions);
    }

    fn run_until(&mut self, t: Time) {
        IsisSim::run_until(self, t);
    }

    fn run_to_quiescence(&mut self, limit: Time) -> bool {
        IsisSim::run_to_quiescence(self, limit)
    }

    fn arena(&self) -> &SharedArena {
        IsisSim::arena(self)
    }

    fn metrics(&self) -> &Metrics {
        IsisSim::metrics(self)
    }

    fn events_executed(&self) -> u64 {
        self.world().events_executed()
    }

    fn alive_flags(&self) -> Vec<bool> {
        IsisSim::alive_flags(self)
    }

    fn delivery_count(&self) -> u64 {
        self.trace().delivery_count()
    }

    fn delivery_trace(&self) -> Vec<TransportDelivery> {
        self.trace()
            .entries()
            .iter()
            .filter_map(|e| match &e.event {
                IsisEvent::Deliver { id, payload, vid } => Some(TransportDelivery {
                    time: e.time,
                    proc: e.proc,
                    sender: id.0,
                    seq: id.1,
                    kind: gcs_core::DeliveryKind::Atomic,
                    class: MessageClass::ABCAST,
                    view: *vid,
                    payload: *payload,
                }),
                _ => None,
            })
            .collect()
    }

    fn views(&self) -> Vec<Vec<View>> {
        IsisSim::views(self)
            .into_iter()
            .map(|vs| {
                vs.into_iter()
                    .map(|(vid, members)| View { id: vid, members })
                    .collect()
            })
            .collect()
    }

    fn resets(&self) -> Vec<Vec<Time>> {
        // A killed process that re-joins comes back as a logically fresh
        // member (its delivery state was wiped with it, §4.3): the kill time
        // is the incarnation boundary.
        let mut out = vec![Vec::new(); self.len()];
        for e in self.trace().entries() {
            if matches!(e.event, IsisEvent::Killed) {
                if let Some(r) = out.get_mut(e.proc.index()) {
                    r.push(e.time);
                }
            }
        }
        out
    }
}

impl GroupTransport for TokenSim {
    fn stack(&self) -> StackKind {
        StackKind::Token
    }

    fn process_count(&self) -> usize {
        self.len()
    }

    fn supports_removal(&self) -> bool {
        true
    }

    fn abcast_bytes_at(&mut self, t: Time, p: ProcessId, payload: Bytes) {
        TokenSim::abcast_at(self, t, p, payload);
    }

    fn abcast_ref_at(&mut self, t: Time, p: ProcessId, payload: PayloadRef) {
        TokenSim::abcast_ref_at(self, t, p, payload);
    }

    fn set_abcast_capacity(&mut self, cap: Option<usize>) {
        TokenSim::set_queue_capacity(self, cap);
    }

    fn abcast_capacity(&self) -> Option<usize> {
        TokenSim::queue_capacity(self)
    }

    fn queue_depth(&self, p: ProcessId) -> usize {
        TokenSim::queue_depth(self, p)
    }

    fn queue_high_water(&self) -> usize {
        TokenSim::queue_high_water(self)
    }

    fn join_at(&mut self, t: Time, joiner: ProcessId, _contact: ProcessId) {
        // RMP-style fault-free join: the ring sponsors the joiner itself.
        TokenSim::join_at(self, t, joiner);
    }

    fn remove_at(&mut self, t: Time, by: ProcessId, target: ProcessId) {
        TokenSim::remove_at(self, t, by, target);
    }

    fn crash_at(&mut self, t: Time, p: ProcessId) {
        TokenSim::crash_at(self, t, p);
    }

    fn partition_at(&mut self, t: Time, groups: Vec<Vec<ProcessId>>) {
        self.world_mut().partition_at(t, groups);
    }

    fn heal_at(&mut self, t: Time) {
        self.world_mut().heal_at(t);
    }

    fn apply_schedule(&mut self, schedule: &Schedule) {
        let actions = self.world_mut().apply_schedule(schedule);
        route_membership(self, actions);
    }

    fn run_until(&mut self, t: Time) {
        TokenSim::run_until(self, t);
    }

    fn run_to_quiescence(&mut self, limit: Time) -> bool {
        TokenSim::run_to_quiescence(self, limit)
    }

    fn arena(&self) -> &SharedArena {
        TokenSim::arena(self)
    }

    fn metrics(&self) -> &Metrics {
        TokenSim::metrics(self)
    }

    fn events_executed(&self) -> u64 {
        self.world().events_executed()
    }

    fn alive_flags(&self) -> Vec<bool> {
        TokenSim::alive_flags(self)
    }

    fn delivery_count(&self) -> u64 {
        self.trace().delivery_count()
    }

    fn delivery_trace(&self) -> Vec<TransportDelivery> {
        self.trace()
            .entries()
            .iter()
            .filter_map(|e| match &e.event {
                TokenEvent::Deliver {
                    seq,
                    origin,
                    payload,
                    vid,
                } => Some(TransportDelivery {
                    time: e.time,
                    proc: e.proc,
                    sender: *origin,
                    seq: *seq,
                    kind: gcs_core::DeliveryKind::Atomic,
                    class: MessageClass::ABCAST,
                    view: *vid,
                    payload: *payload,
                }),
                _ => None,
            })
            .collect()
    }

    fn views(&self) -> Vec<Vec<View>> {
        self.rings()
            .into_iter()
            .map(|vs| {
                vs.into_iter()
                    .map(|(vid, ring)| View {
                        id: vid,
                        members: ring,
                    })
                    .collect()
            })
            .collect()
    }

    fn resets(&self) -> Vec<Vec<Time>> {
        // A member excluded by a reformation it missed stops delivering and
        // re-enters later through the fault-free join: its stream resets at
        // the exclusion.
        let mut out = vec![Vec::new(); self.len()];
        for e in self.trace().entries() {
            if matches!(e.event, TokenEvent::Excluded) {
                if let Some(r) = out.get_mut(e.proc.index()) {
                    r.push(e.time);
                }
            }
        }
        out
    }
}
