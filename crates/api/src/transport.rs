//! The [`GroupTransport`] trait: the full common surface of the three
//! protocol stacks, with capability markers for the services a stack does
//! not provide.
//!
//! The paper's architectural claim is that group communication should be a
//! set of composable *services* the application picks from, not a monolithic
//! stack with one hard-wired entry point. This trait is that claim as an
//! API: every stack exposes the same workload, membership, control and
//! observation surface, and the services a stack genuinely lacks (generic
//! broadcast on the GM-VS baselines, scripted removal on stacks whose
//! membership cannot express it) are visible through `supports_*` markers
//! rather than through three incompatible harness types.

use std::fmt;

use bytes::Bytes;
use gcs_core::{DeliveryKind, MessageClass, View};
use gcs_kernel::{PayloadRef, ProcessId, SharedArena, Time};
use gcs_sim::{Metrics, Schedule};

/// Which protocol stack a transport runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StackKind {
    /// The paper's new architecture (Fig 9): atomic broadcast over
    /// consensus, thrifty generic broadcast, membership above abcast.
    NewArch,
    /// The Isis/Phoenix GM-VS baseline (Figs 1–2): membership + view
    /// synchrony below a fixed-sequencer atomic broadcast.
    Isis,
    /// The RMP/Totem token-ring baseline (Figs 3–4).
    Token,
}

impl StackKind {
    /// Every stack, in catalog order — the iteration axis of cross-stack
    /// comparisons and the conformance suite.
    pub const ALL: [StackKind; 3] = [StackKind::NewArch, StackKind::Isis, StackKind::Token];

    /// Stable lowercase name (used in scenario names and reports).
    pub fn name(self) -> &'static str {
        match self {
            StackKind::NewArch => "new-arch",
            StackKind::Isis => "isis",
            StackKind::Token => "token",
        }
    }
}

/// One observed application delivery, in stack-neutral vocabulary.
///
/// The three stacks trace deliveries with their own event types; this record
/// is the common projection the trait's observation methods return. Payloads
/// stay arena handles — resolve them at the observation edge with
/// [`GroupTransport::resolve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransportDelivery {
    /// Virtual time of the delivery.
    pub time: Time,
    /// The delivering process.
    pub proc: ProcessId,
    /// The originating sender.
    pub sender: ProcessId,
    /// Sequence number disambiguating the message: per-sender on the new
    /// architecture and Isis (`(sender, seq)` is the message identity),
    /// global on the token ring. Within one stack, `(sender, seq)`
    /// identifies a message uniquely across replicas.
    pub seq: u64,
    /// Which primitive delivered the message. The traditional baselines
    /// only deliver atomically; on the new architecture generic deliveries
    /// carry their fast-path/escalation kind.
    pub kind: DeliveryKind,
    /// Conflict class ([`MessageClass::ABCAST`] on stacks without generic
    /// broadcast).
    pub class: MessageClass,
    /// View (ring generation) current at delivery; `0` on stacks that do
    /// not tag deliveries with a view.
    pub view: u64,
    /// Application payload handle.
    pub payload: PayloadRef,
}

/// An atomic broadcast refused because the sender's pending queue is at
/// capacity.
///
/// Returned by [`GroupTransport::try_abcast_ref_at`] and friends when a
/// queue bound is configured
/// ([`set_abcast_capacity`](GroupTransport::set_abcast_capacity)) and the
/// sender's backlog has reached it. The caller owns the retry policy: an
/// open-loop driver typically drops the operation (counting it as shed
/// load), a closed-loop driver waits and re-offers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backpressure {
    /// The sender whose queue is full.
    pub proc: ProcessId,
    /// The backlog observed at refusal time.
    pub depth: usize,
    /// The configured capacity the backlog reached.
    pub limit: usize,
}

impl fmt::Display for Backpressure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "abcast refused at {:?}: queue depth {} >= capacity {}",
            self.proc, self.depth, self.limit
        )
    }
}

impl std::error::Error for Backpressure {}

/// The unified harness surface of a simulated group, implemented by all
/// three stacks (`gcs_core::GroupSim`, `gcs_traditional::IsisSim`,
/// `gcs_traditional::TokenSim`) and by the [`Group`](crate::Group) façade.
///
/// The trait is object-safe: workloads and scenario drivers take
/// `&mut dyn GroupTransport`. The `impl Into<Bytes>` conveniences
/// ([`abcast_at`](Self::abcast_at) and friends) are provided methods gated
/// on `Self: Sized`; through a trait object, use the `*_bytes_at` forms or
/// the zero-copy [`abcast_build_at`](Self::abcast_build_at).
///
/// # Capability markers
///
/// Entry points for services a stack does not provide (`supports_gbcast`,
/// `supports_rbcast`, `supports_removal`) **panic** when invoked; the
/// markers exist so generic drivers can select the services they need
/// up front, in the paper's pick-your-services spirit.
pub trait GroupTransport {
    // -- identity & capabilities -------------------------------------------

    /// Which protocol stack this transport runs.
    fn stack(&self) -> StackKind;

    /// Total number of simulated processes (founding members + joiners).
    fn process_count(&self) -> usize;

    /// Whether the stack provides generic broadcast (conflict-relation
    /// ordering). Only the new architecture does.
    fn supports_gbcast(&self) -> bool {
        false
    }

    /// Whether the stack provides reliable (unordered) broadcast as a
    /// first-class service.
    fn supports_rbcast(&self) -> bool {
        false
    }

    /// Whether the stack can remove a member by request (a scripted
    /// [`Schedule`] `Remove` step). The baselines only exclude members via
    /// their own failure suspicion, so they answer `false`.
    fn supports_removal(&self) -> bool {
        false
    }

    // -- workload ----------------------------------------------------------

    /// Schedules an atomic broadcast by `p` at time `t`; the payload is
    /// interned in the group's arena.
    fn abcast_bytes_at(&mut self, t: Time, p: ProcessId, payload: Bytes);

    /// Schedules an atomic broadcast of an already-interned payload handle
    /// (the zero-copy injection path).
    fn abcast_ref_at(&mut self, t: Time, p: ProcessId, payload: PayloadRef);

    /// Bounds the per-sender pending queue the `try_abcast_*` entry points
    /// check against; `None` (the default) removes the bound. Stacks that do
    /// not track a backlog ignore the setting, in which case `try_abcast_*`
    /// never refuses.
    fn set_abcast_capacity(&mut self, cap: Option<usize>) {
        let _ = cap;
    }

    /// The configured pending-queue bound, if any.
    fn abcast_capacity(&self) -> Option<usize> {
        None
    }

    /// Schedules an atomic broadcast of an already-interned payload handle,
    /// refusing with [`Backpressure`] if a queue bound is configured and
    /// `p`'s backlog has reached it.
    ///
    /// On refusal the payload handle is simply unused (arena handles are
    /// plain indices; an unreferenced one costs nothing).
    fn try_abcast_ref_at(
        &mut self,
        t: Time,
        p: ProcessId,
        payload: PayloadRef,
    ) -> Result<(), Backpressure> {
        if let Some(limit) = self.abcast_capacity() {
            let depth = self.queue_depth(p);
            if depth >= limit {
                return Err(Backpressure {
                    proc: p,
                    depth,
                    limit,
                });
            }
        }
        self.abcast_ref_at(t, p, payload);
        Ok(())
    }

    /// [`abcast_build_at`](Self::abcast_build_at) with backpressure: the
    /// capacity check runs *before* the payload is built, so a refused
    /// operation costs no allocation at all.
    fn try_abcast_build_at(
        &mut self,
        t: Time,
        sender: ProcessId,
        fill: &mut dyn FnMut(&mut Vec<u8>),
    ) -> Result<(), Backpressure> {
        if let Some(limit) = self.abcast_capacity() {
            let depth = self.queue_depth(sender);
            if depth >= limit {
                return Err(Backpressure {
                    proc: sender,
                    depth,
                    limit,
                });
            }
        }
        self.abcast_build_at(t, sender, fill);
        Ok(())
    }

    /// Schedules a generic broadcast of `class` by `p` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics on stacks where [`supports_gbcast`](Self::supports_gbcast) is
    /// `false`.
    fn gbcast_bytes_at(&mut self, t: Time, p: ProcessId, class: MessageClass, payload: Bytes) {
        let _ = (t, p, class, payload);
        panic!(
            "the {} stack provides no generic broadcast (check supports_gbcast())",
            self.stack().name()
        );
    }

    /// Schedules a generic broadcast of an already-interned payload handle.
    ///
    /// # Panics
    ///
    /// Panics on stacks where [`supports_gbcast`](Self::supports_gbcast) is
    /// `false`.
    fn gbcast_ref_at(&mut self, t: Time, p: ProcessId, class: MessageClass, payload: PayloadRef) {
        let _ = (t, p, class, payload);
        panic!(
            "the {} stack provides no generic broadcast (check supports_gbcast())",
            self.stack().name()
        );
    }

    /// Schedules a reliable broadcast by `p` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics on stacks where [`supports_rbcast`](Self::supports_rbcast) is
    /// `false`.
    fn rbcast_bytes_at(&mut self, t: Time, p: ProcessId, payload: Bytes) {
        let _ = (t, p, payload);
        panic!(
            "the {} stack provides no reliable broadcast (check supports_rbcast())",
            self.stack().name()
        );
    }

    /// Schedules a reliable broadcast of an already-interned payload handle.
    ///
    /// # Panics
    ///
    /// Panics on stacks where [`supports_rbcast`](Self::supports_rbcast) is
    /// `false`.
    fn rbcast_ref_at(&mut self, t: Time, p: ProcessId, payload: PayloadRef) {
        let _ = (t, p, payload);
        panic!(
            "the {} stack provides no reliable broadcast (check supports_rbcast())",
            self.stack().name()
        );
    }

    // -- membership --------------------------------------------------------

    /// Schedules non-member `joiner` to request membership. `contact` is the
    /// member it joins through; stacks that route joins themselves (the
    /// baselines contact their coordinator / sponsor) ignore it.
    fn join_at(&mut self, t: Time, joiner: ProcessId, contact: ProcessId);

    /// Schedules member `by` to ask for the removal of `target`.
    ///
    /// # Panics
    ///
    /// Panics on stacks where [`supports_removal`](Self::supports_removal)
    /// is `false`.
    fn remove_at(&mut self, t: Time, by: ProcessId, target: ProcessId) {
        let _ = (t, by, target);
        panic!(
            "the {} stack cannot remove members by request (check supports_removal())",
            self.stack().name()
        );
    }

    /// Crashes `p` at `t` (crash-stop).
    fn crash_at(&mut self, t: Time, p: ProcessId);

    /// Partitions the network into the given groups at `t` (processes in
    /// different groups cannot communicate until [`heal_at`](Self::heal_at)).
    fn partition_at(&mut self, t: Time, groups: Vec<Vec<ProcessId>>);

    /// Heals any active partition at `t`.
    fn heal_at(&mut self, t: Time);

    /// Applies a scripted [`Schedule`]: simulator-level steps (crashes,
    /// partitions, link changes, spikes, bursts) go to the world, and the
    /// membership steps are routed through the stack's own join/removal
    /// entry points.
    ///
    /// # Panics
    ///
    /// Panics if the schedule contains a `Remove` step and the stack does
    /// not [`support removal`](Self::supports_removal).
    fn apply_schedule(&mut self, schedule: &Schedule);

    // -- control -----------------------------------------------------------

    /// Runs the simulation up to virtual time `t`.
    fn run_until(&mut self, t: Time);

    /// Runs until the event queue drains or virtual time would exceed
    /// `limit`; returns `true` only if the system actually quiesced.
    ///
    /// A group with at least one live member never quiesces (heartbeat/token
    /// timers re-arm forever): the call then behaves like
    /// [`run_until`](Self::run_until)`(limit)` and returns `false`. `true`
    /// is reachable once every process has crashed and the residual events
    /// have drained.
    fn run_to_quiescence(&mut self, limit: Time) -> bool;

    // -- observation -------------------------------------------------------

    /// The payload arena backing this group's message plane.
    fn arena(&self) -> &SharedArena;

    /// Simulation metrics (message/byte counts per protocol, latency
    /// histograms).
    fn metrics(&self) -> &Metrics;

    /// Simulation events executed so far (the events/sec numerator).
    fn events_executed(&self) -> u64;

    /// Liveness flags per process.
    fn alive_flags(&self) -> Vec<bool>;

    /// Total application deliveries observed across all processes —
    /// mode-independent (counted even under `TraceMode::CountsOnly`, unlike
    /// [`delivery_trace`](Self::delivery_trace)).
    fn delivery_count(&self) -> u64;

    /// Every recorded application delivery, in global delivery order
    /// (empty under the counting-only trace sinks).
    fn delivery_trace(&self) -> Vec<TransportDelivery>;

    /// The sender-side abcast backlog at `p`: operations offered through
    /// this harness minus trace outputs observed at `p`. The measure is
    /// approximate — a process's trace stream occasionally contains
    /// view-installation outputs alongside deliveries — and it is computed
    /// at call time, so it is meaningful for drivers that interleave
    /// injection with [`run_until`](Self::run_until). Stacks that do not
    /// track a backlog answer `0` (the default).
    fn queue_depth(&self, p: ProcessId) -> usize {
        let _ = p;
        0
    }

    /// The highest [`queue_depth`](Self::queue_depth) observed at the
    /// moment an injection was accepted, over the run so far. `0` on stacks
    /// that do not track a backlog (the default).
    fn queue_high_water(&self) -> usize {
        0
    }

    /// Per-process sequences of installed views (ring generations on the
    /// token stack), in installation order.
    fn views(&self) -> Vec<Vec<View>>;

    /// Consensus-class suspicion transitions recorded in the trace, as
    /// `(time, observer, suspect)` triples in trace order. Only the new
    /// architecture with `StackConfig::trace_suspicions` set records these
    /// (crash-detection-latency measurement); every other stack returns the
    /// default empty list.
    fn suspicion_trace(&self) -> Vec<(Time, ProcessId, ProcessId)> {
        Vec::new()
    }

    /// Per-process times at which the process's delivery stream *reset* —
    /// it was killed/excluded and later re-admitted as a logically fresh
    /// member (Isis kills wrongly suspected processes, §4.3; the token ring
    /// excludes members that miss a reformation). Deliveries after a reset
    /// belong to a new incarnation: invariant checking compares incarnations,
    /// not raw process indices, across such boundaries. Stacks whose members
    /// never resurrect return an empty list per process (the default).
    fn resets(&self) -> Vec<Vec<Time>> {
        vec![Vec::new(); self.process_count()]
    }

    // -- provided conveniences ---------------------------------------------

    /// Resolves a delivered payload handle to its bytes.
    ///
    /// # Panics
    ///
    /// Panics on a handle not issued by this group's arena.
    fn resolve(&self, payload: PayloadRef) -> Bytes {
        self.arena().get(payload)
    }

    /// Schedules an atomic broadcast, building the payload in place in the
    /// arena's pooled scratch buffer: a streamed injection performs exactly
    /// one allocation per message (the interned payload itself). This is
    /// the entry point workload generators use — it is object-safe.
    fn abcast_build_at(&mut self, t: Time, sender: ProcessId, fill: &mut dyn FnMut(&mut Vec<u8>)) {
        let payload = self.arena().build(|buf| fill(buf));
        self.abcast_ref_at(t, sender, payload);
    }

    /// Per-process delivery sequences (any kind), in delivery order.
    fn delivered(&self) -> Vec<Vec<TransportDelivery>> {
        let mut out = vec![Vec::new(); self.process_count()];
        for d in self.delivery_trace() {
            if let Some(seq) = out.get_mut(d.proc.index()) {
                seq.push(d);
            }
        }
        out
    }

    /// Per-process sequences of atomically delivered payloads, resolved
    /// through the arena.
    fn adelivered_payloads(&self) -> Vec<Vec<Vec<u8>>> {
        let mut out = vec![Vec::new(); self.process_count()];
        for d in self.delivery_trace() {
            if d.kind != DeliveryKind::Atomic {
                continue;
            }
            if let Some(seq) = out.get_mut(d.proc.index()) {
                seq.push(self.resolve(d.payload).to_vec());
            }
        }
        out
    }

    /// [`abcast_bytes_at`](Self::abcast_bytes_at) accepting anything
    /// convertible to [`Bytes`]. Not available through a trait object.
    fn abcast_at(&mut self, t: Time, p: ProcessId, payload: impl Into<Bytes>)
    where
        Self: Sized,
    {
        self.abcast_bytes_at(t, p, payload.into());
    }

    /// [`try_abcast_ref_at`](Self::try_abcast_ref_at) accepting anything
    /// convertible to [`Bytes`]. Not available through a trait object.
    ///
    /// Note the payload is interned before the capacity check (the `impl
    /// Into<Bytes>` must be consumed); drivers that shed load at high rates
    /// should prefer [`try_abcast_build_at`](Self::try_abcast_build_at),
    /// which checks first.
    fn try_abcast_at(
        &mut self,
        t: Time,
        p: ProcessId,
        payload: impl Into<Bytes>,
    ) -> Result<(), Backpressure>
    where
        Self: Sized,
    {
        let payload = self.arena().intern(payload.into());
        self.try_abcast_ref_at(t, p, payload)
    }

    /// [`gbcast_bytes_at`](Self::gbcast_bytes_at) accepting anything
    /// convertible to [`Bytes`]. Not available through a trait object.
    fn gbcast_at(&mut self, t: Time, p: ProcessId, class: MessageClass, payload: impl Into<Bytes>)
    where
        Self: Sized,
    {
        self.gbcast_bytes_at(t, p, class, payload.into());
    }

    /// [`rbcast_bytes_at`](Self::rbcast_bytes_at) accepting anything
    /// convertible to [`Bytes`]. Not available through a trait object.
    fn rbcast_at(&mut self, t: Time, p: ProcessId, payload: impl Into<Bytes>)
    where
        Self: Sized,
    {
        self.rbcast_bytes_at(t, p, payload.into());
    }
}
