//! # gcs-net — transport substrates
//!
//! The paper's full architecture (Fig 9) rests on two transport components:
//!
//! * the **unreliable transport** (`u-send` / `u-receive`) — in this
//!   reproduction that role is played by the simulator network itself
//!   ([`gcs_kernel::Context::send`] *is* `u-send`), so no code is needed
//!   here beyond the convention;
//! * the **reliable channel** (§3.3.1) — "if a correct process p sends
//!   message m to some correct process q, then q eventually receives m",
//!   easily implemented over TCP in the paper (its ref. 15); here implemented from
//!   scratch over the lossy simulated network: per-peer sequence numbers,
//!   cumulative acknowledgements, retransmission, FIFO reordering and
//!   duplicate suppression.
//!
//! The reliable channel additionally reports **output-triggered suspicion**
//! (§3.3.2, its ref. 12): when a message stays unacknowledged for longer than a
//! threshold, the channel raises [`RcOut::Stuck`] so the *monitoring*
//! component may decide to exclude the silent peer — one of the two
//! suspicion sources the new architecture exploits (§4.2).
//!
//! [`ReliableChannel`] is sans-I/O: callers feed it sends, received packets
//! and clock ticks; it returns the packets to transmit and the messages to
//! deliver. Protocol suites wrap it in a thin kernel component adapter.
//!
//! The [`link`] module adds the **live-backend wire**: a length-prefixed
//! frame codec and the [`Link`] trait over which `gcs-live` moves frames
//! between real OS threads — in-process channels ([`ChannelLink`]) and
//! loopback TCP ([`TcpLink`]) behind one interface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod link;
mod reliable;

pub use link::{encode_frame, ChannelLink, FrameDecoder, FrameHeader, Link, TcpLink};
pub use reliable::{Packet, RcConfig, RcOut, ReliableChannel};
