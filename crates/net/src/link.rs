//! Point-to-point frame links and the wire codec of the live backend.
//!
//! The simulator moves typed events between processes directly; the live
//! backend (`gcs-live`) moves **frames**. A frame is a fixed 16-byte header
//! plus an opaque body, and a [`Link`] is any bidirectional transport that
//! carries frames intact and in order: the in-process [`ChannelLink`]
//! (byte stream over an `mpsc` channel) and the loopback-TCP [`TcpLink`]
//! both sit behind the same trait, so the runtime above cannot tell which
//! wire it is on.
//!
//! # Frame format
//!
//! ```text
//! offset  size  field
//! 0       2     magic 0x47 0x43  ("GC")
//! 2       1     version (currently 1)
//! 3       1     channel tag (runtime-defined; the live backend uses it to
//!               distinguish net frames from control frames)
//! 4       4     sender process id   (big-endian u32)
//! 8       4     receiver process id (big-endian u32)
//! 12      4     body length         (big-endian u32)
//! 16      len   body
//! ```
//!
//! The codec is sans-I/O: [`encode_frame`] appends to a caller buffer and
//! [`FrameDecoder`] consumes arbitrary byte chunks (TCP segment boundaries
//! do not respect frames), yielding complete frames as they close. Bodies
//! are opaque: the live backend keeps event payloads as in-process handles
//! (the same philosophy as the arena's `PayloadRef`) and puts the handle in
//! the body, so the wire carries real framing, ordering, and flow-control
//! behavior without a full serialization layer — the one piece of the
//! deployment story this reproduction does not model.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};

/// Length of the fixed frame header.
pub const FRAME_HEADER_LEN: usize = 16;

/// Magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 2] = [0x47, 0x43];

/// Codec version emitted and accepted.
pub const FRAME_VERSION: u8 = 1;

/// Largest body the codec accepts (a corrupted length field must not make
/// the decoder buffer gigabytes).
pub const MAX_FRAME_BODY: usize = 16 * 1024 * 1024;

/// The fixed header of one frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// Channel tag (runtime-defined multiplexing byte).
    pub channel: u8,
    /// Sender process id.
    pub from: u32,
    /// Receiver process id.
    pub to: u32,
    /// Body length in bytes.
    pub len: u32,
}

/// A decoding failure (corrupt stream).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The stream did not open with the frame magic.
    BadMagic,
    /// The version byte was not [`FRAME_VERSION`].
    BadVersion(u8),
    /// The length field exceeded [`MAX_FRAME_BODY`].
    Oversized(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "frame stream lost sync (bad magic)"),
            FrameError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::Oversized(n) => write!(f, "frame body of {n} bytes exceeds the cap"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one frame (header + body) onto the end of `out`.
pub fn encode_frame(header: &FrameHeader, body: &[u8], out: &mut Vec<u8>) {
    debug_assert_eq!(header.len as usize, body.len(), "header length mismatch");
    out.reserve(FRAME_HEADER_LEN + body.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(FRAME_VERSION);
    out.push(header.channel);
    out.extend_from_slice(&header.from.to_be_bytes());
    out.extend_from_slice(&header.to.to_be_bytes());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body);
}

/// An incremental frame decoder: push byte chunks in, pull whole frames out.
///
/// Chunk boundaries are arbitrary — a frame may arrive split across many
/// reads or many frames may arrive in one read; the decoder buffers exactly
/// what an incomplete frame needs.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read cursor into `buf` (consumed bytes are compacted away lazily).
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: consumed prefix space is reused so a
        // long-lived decoder does not grow without bound.
        if self.pos > 0 && self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 4096 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded into a frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decodes the next complete frame, if one is buffered.
    pub fn next_frame(&mut self) -> Result<Option<(FrameHeader, Vec<u8>)>, FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        if avail[0..2] != FRAME_MAGIC {
            return Err(FrameError::BadMagic);
        }
        if avail[2] != FRAME_VERSION {
            return Err(FrameError::BadVersion(avail[2]));
        }
        let be32 = |b: &[u8]| u32::from_be_bytes([b[0], b[1], b[2], b[3]]);
        let len = be32(&avail[12..16]);
        if len as usize > MAX_FRAME_BODY {
            return Err(FrameError::Oversized(len));
        }
        if avail.len() < FRAME_HEADER_LEN + len as usize {
            return Ok(None);
        }
        let header = FrameHeader {
            channel: avail[3],
            from: be32(&avail[4..8]),
            to: be32(&avail[8..12]),
            len,
        };
        let body = avail[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len as usize].to_vec();
        self.pos += FRAME_HEADER_LEN + len as usize;
        Ok(Some((header, body)))
    }
}

/// A bidirectional, ordered, reliable frame transport.
///
/// `recv` blocks until a frame arrives and returns `None` when the peer
/// hung up. Implementations must deliver frames intact and in send order —
/// the contract TCP gives for free and [`ChannelLink`] reproduces over an
/// in-process byte channel.
pub trait Link: Send {
    /// Sends one frame (blocking until the transport accepted the bytes).
    fn send(&mut self, header: &FrameHeader, body: &[u8]) -> io::Result<()>;

    /// Receives the next frame, blocking; `None` means the peer closed.
    fn recv(&mut self) -> io::Result<Option<(FrameHeader, Vec<u8>)>>;
}

/// An in-process [`Link`]: encoded frame bytes travel over an `mpsc`
/// channel. The codec runs for real (frames are serialized and re-parsed),
/// so channel mode and TCP mode exercise the same wire path.
pub struct ChannelLink {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    decoder: FrameDecoder,
    scratch: Vec<u8>,
}

impl ChannelLink {
    /// Creates a connected pair of channel links.
    pub fn pair() -> (ChannelLink, ChannelLink) {
        let (atx, arx) = channel();
        let (btx, brx) = channel();
        let mk = |tx, rx| ChannelLink {
            tx,
            rx,
            decoder: FrameDecoder::new(),
            scratch: Vec::new(),
        };
        (mk(atx, brx), mk(btx, arx))
    }
}

impl Link for ChannelLink {
    fn send(&mut self, header: &FrameHeader, body: &[u8]) -> io::Result<()> {
        self.scratch.clear();
        encode_frame(header, body, &mut self.scratch);
        self.tx
            .send(self.scratch.clone())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"))
    }

    fn recv(&mut self) -> io::Result<Option<(FrameHeader, Vec<u8>)>> {
        loop {
            if let Some(frame) = self
                .decoder
                .next_frame()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
            {
                return Ok(Some(frame));
            }
            match self.rx.recv() {
                Ok(chunk) => self.decoder.push(&chunk),
                Err(_) => return Ok(None),
            }
        }
    }
}

/// A [`Link`] over a TCP stream (the live backend connects pairs over
/// 127.0.0.1). `TCP_NODELAY` is set: protocol frames are latency-bound,
/// not throughput-bound.
pub struct TcpLink {
    stream: TcpStream,
    decoder: FrameDecoder,
    scratch: Vec<u8>,
    read_buf: [u8; 8192],
}

impl TcpLink {
    /// Wraps an already connected stream.
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(TcpLink {
            stream,
            decoder: FrameDecoder::new(),
            scratch: Vec::new(),
            read_buf: [0; 8192],
        })
    }

    /// Creates a connected pair over the loopback interface.
    pub fn pair() -> io::Result<(TcpLink, TcpLink)> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let client = TcpStream::connect(addr)?;
        let (server, _) = listener.accept()?;
        Ok((TcpLink::new(client)?, TcpLink::new(server)?))
    }

    /// Shuts the underlying stream down in both directions, unblocking any
    /// thread parked in [`Link::recv`] on a clone of this link (it observes
    /// EOF). Used by the live runtime to tear reader threads down.
    pub fn shutdown(&self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Both)
    }

    /// Duplicates the link handle (shared underlying stream) so one side can
    /// be split between a writing and a reading thread.
    pub fn try_clone(&self) -> io::Result<TcpLink> {
        Ok(TcpLink {
            stream: self.stream.try_clone()?,
            decoder: FrameDecoder::new(),
            scratch: Vec::new(),
            read_buf: [0; 8192],
        })
    }
}

impl Link for TcpLink {
    fn send(&mut self, header: &FrameHeader, body: &[u8]) -> io::Result<()> {
        self.scratch.clear();
        encode_frame(header, body, &mut self.scratch);
        self.stream.write_all(&self.scratch)
    }

    fn recv(&mut self) -> io::Result<Option<(FrameHeader, Vec<u8>)>> {
        loop {
            if let Some(frame) = self
                .decoder
                .next_frame()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
            {
                return Ok(Some(frame));
            }
            let n = self.stream.read(&mut self.read_buf)?;
            if n == 0 {
                return Ok(if self.decoder.pending() == 0 {
                    None
                } else {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    ));
                });
            }
            self.decoder.push(&self.read_buf[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr(channel: u8, from: u32, to: u32, len: usize) -> FrameHeader {
        FrameHeader {
            channel,
            from,
            to,
            len: len as u32,
        }
    }

    #[test]
    fn roundtrip_one_frame() {
        let mut wire = Vec::new();
        encode_frame(&hdr(3, 1, 2, 5), b"hello", &mut wire);
        assert_eq!(wire.len(), FRAME_HEADER_LEN + 5);
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        let (h, body) = dec.next_frame().unwrap().expect("complete frame");
        assert_eq!((h.channel, h.from, h.to, h.len), (3, 1, 2, 5));
        assert_eq!(body, b"hello");
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn partial_reads_reassemble() {
        // TCP does not respect frame boundaries: feed the stream one byte
        // at a time and in uneven chunks across two frames.
        let mut wire = Vec::new();
        encode_frame(&hdr(0, 7, 8, 3), b"abc", &mut wire);
        encode_frame(&hdr(1, 8, 7, 0), b"", &mut wire);
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(1) {
            dec.push(chunk);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].1, b"abc");
        assert_eq!(got[1].0.channel, 1);
        assert_eq!(got[1].1, b"");
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn corrupt_streams_error_instead_of_hanging() {
        let mut dec = FrameDecoder::new();
        dec.push(&[0xde, 0xad, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(dec.next_frame(), Err(FrameError::BadMagic));

        let mut dec = FrameDecoder::new();
        let mut wire = Vec::new();
        encode_frame(&hdr(0, 0, 0, 0), b"", &mut wire);
        wire[2] = 9; // wrong version
        dec.push(&wire);
        assert_eq!(dec.next_frame(), Err(FrameError::BadVersion(9)));

        let mut dec = FrameDecoder::new();
        let mut wire = Vec::new();
        encode_frame(&hdr(0, 0, 0, 0), b"", &mut wire);
        wire[12..16].copy_from_slice(&u32::MAX.to_be_bytes());
        dec.push(&wire);
        assert_eq!(dec.next_frame(), Err(FrameError::Oversized(u32::MAX)));
    }

    #[test]
    fn channel_link_carries_frames_in_order() {
        let (mut a, mut b) = ChannelLink::pair();
        for i in 0..10u32 {
            a.send(&hdr(0, 0, 1, 4), &i.to_be_bytes()).unwrap();
        }
        for i in 0..10u32 {
            let (h, body) = b.recv().unwrap().expect("frame");
            assert_eq!(h.to, 1);
            assert_eq!(body, i.to_be_bytes());
        }
        drop(a);
        assert!(b.recv().unwrap().is_none(), "hangup surfaces as None");
    }

    #[test]
    fn tcp_link_roundtrips_over_loopback() {
        let (mut a, mut b) = TcpLink::pair().expect("loopback pair");
        let big = vec![0xabu8; 100_000]; // force multiple reads
        a.send(&hdr(2, 4, 5, big.len()), &big).unwrap();
        a.send(&hdr(2, 4, 5, 3), b"end").unwrap();
        let (h1, b1) = b.recv().unwrap().expect("big frame");
        assert_eq!(h1.len as usize, big.len());
        assert_eq!(b1, big);
        let (_, b2) = b.recv().unwrap().expect("tail frame");
        assert_eq!(b2, b"end");
        // Reply direction works too.
        b.send(&hdr(0, 5, 4, 2), b"ok").unwrap();
        let (_, r) = a.recv().unwrap().expect("reply");
        assert_eq!(r, b"ok");
        drop(a);
        assert!(b.recv().unwrap().is_none(), "hangup surfaces as None");
    }
}
