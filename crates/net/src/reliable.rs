//! The sans-I/O reliable channel.

use std::collections::{BTreeMap, HashMap};

use gcs_kernel::{ProcessId, Time, TimeDelta};

/// Configuration of a [`ReliableChannel`].
#[derive(Clone, Copy, Debug)]
pub struct RcConfig {
    /// Retransmit a data packet if unacknowledged for this long.
    pub retransmit_after: TimeDelta,
    /// Raise [`RcOut::Stuck`] when the oldest unacknowledged message for a
    /// peer is older than this (output-triggered suspicion, paper §3.3.2).
    pub stuck_after: TimeDelta,
    /// How often the owner should call [`ReliableChannel::on_tick`].
    pub tick_interval: TimeDelta,
}

impl Default for RcConfig {
    fn default() -> Self {
        RcConfig {
            retransmit_after: TimeDelta::from_millis(20),
            stuck_after: TimeDelta::from_secs(30),
            tick_interval: TimeDelta::from_millis(10),
        }
    }
}

/// A packet on the wire between two reliable-channel endpoints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Packet<M> {
    /// A data packet carrying the `seq`-th message from the sender.
    Data {
        /// Per-(sender → receiver) sequence number, starting at 0.
        seq: u64,
        /// The carried message.
        msg: M,
    },
    /// Cumulative acknowledgement: every `seq < upto` was received.
    Ack {
        /// One past the highest contiguously received sequence number.
        upto: u64,
    },
}

/// An instruction produced by the reliable channel for its owner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RcOut<M> {
    /// Transmit `packet` to `to` over the unreliable transport.
    Transmit {
        /// Destination process.
        to: ProcessId,
        /// The packet to put on the wire.
        packet: Packet<M>,
    },
    /// Deliver `msg` (sent by `from`) to the upper layers, in FIFO order.
    Deliver {
        /// Originating process.
        from: ProcessId,
        /// The delivered message.
        msg: M,
    },
    /// Output-triggered suspicion: `peer` has not acknowledged the oldest
    /// outstanding message since `since`.
    Stuck {
        /// The unresponsive peer.
        peer: ProcessId,
        /// Send time of the oldest unacknowledged message.
        since: Time,
    },
    /// `peer` acknowledged everything again after a [`RcOut::Stuck`].
    Unstuck {
        /// The peer that recovered.
        peer: ProcessId,
    },
}

#[derive(Debug)]
struct PeerTx<M> {
    next_seq: u64,
    /// Unacknowledged packets: seq → (message, first-send time, last-send time).
    inflight: BTreeMap<u64, (M, Time, Time)>,
    stuck_reported: bool,
}

impl<M> Default for PeerTx<M> {
    fn default() -> Self {
        PeerTx { next_seq: 0, inflight: BTreeMap::new(), stuck_reported: false }
    }
}

#[derive(Debug)]
struct PeerRx<M> {
    /// One past the highest contiguously delivered sequence number.
    next_deliver: u64,
    /// Out-of-order buffer.
    buffer: BTreeMap<u64, M>,
}

impl<M> Default for PeerRx<M> {
    fn default() -> Self {
        PeerRx { next_deliver: 0, buffer: BTreeMap::new() }
    }
}

/// A sans-I/O reliable, FIFO, duplicate-free channel to every peer.
///
/// One instance serves all peers of a process. The owner must:
///
/// 1. call [`send`](Self::send) to transmit messages,
/// 2. feed every received [`Packet`] to [`on_packet`](Self::on_packet),
/// 3. call [`on_tick`](Self::on_tick) every
///    [`RcConfig::tick_interval`],
///
/// and carry out the returned [`RcOut`] instructions.
///
/// Guarantees (assuming the unreliable network delivers each retransmitted
/// packet with non-zero probability): **no creation** (only sent messages
/// are delivered), **no duplication**, **FIFO** per sender, and **eventual
/// delivery** between correct processes.
#[derive(Debug)]
pub struct ReliableChannel<M> {
    me: ProcessId,
    config: RcConfig,
    tx: HashMap<ProcessId, PeerTx<M>>,
    rx: HashMap<ProcessId, PeerRx<M>>,
}

impl<M: Clone> ReliableChannel<M> {
    /// Creates a channel endpoint for process `me`.
    pub fn new(me: ProcessId, config: RcConfig) -> Self {
        ReliableChannel { me, config, tx: HashMap::new(), rx: HashMap::new() }
    }

    /// The configured tick interval, for the owner's timer.
    pub fn tick_interval(&self) -> TimeDelta {
        self.config.tick_interval
    }

    /// Queues `msg` for reliable delivery to `to` and returns the initial
    /// transmission. Sending to self delivers immediately (loopback).
    pub fn send(&mut self, to: ProcessId, msg: M, now: Time) -> Vec<RcOut<M>> {
        if to == self.me {
            return vec![RcOut::Deliver { from: self.me, msg }];
        }
        let peer = self.tx.entry(to).or_default();
        let seq = peer.next_seq;
        peer.next_seq += 1;
        peer.inflight.insert(seq, (msg.clone(), now, now));
        vec![RcOut::Transmit { to, packet: Packet::Data { seq, msg } }]
    }

    /// Handles a packet received from `from`.
    pub fn on_packet(&mut self, from: ProcessId, packet: Packet<M>, now: Time) -> Vec<RcOut<M>> {
        let _ = now;
        match packet {
            Packet::Data { seq, msg } => {
                let rx = self.rx.entry(from).or_default();
                let mut out = Vec::new();
                if seq >= rx.next_deliver {
                    rx.buffer.entry(seq).or_insert(msg);
                    while let Some(m) = rx.buffer.remove(&rx.next_deliver) {
                        rx.next_deliver += 1;
                        out.push(RcOut::Deliver { from, msg: m });
                    }
                }
                // Always (re-)acknowledge, including pure duplicates, so the
                // sender can clear its buffer even when acks were lost.
                out.push(RcOut::Transmit {
                    to: from,
                    packet: Packet::Ack { upto: rx.next_deliver },
                });
                out
            }
            Packet::Ack { upto } => {
                let mut out = Vec::new();
                if let Some(tx) = self.tx.get_mut(&from) {
                    tx.inflight = tx.inflight.split_off(&upto);
                    if tx.stuck_reported && tx.inflight.is_empty() {
                        tx.stuck_reported = false;
                        out.push(RcOut::Unstuck { peer: from });
                    }
                }
                out
            }
        }
    }

    /// Periodic maintenance: retransmissions and stuck-peer detection.
    pub fn on_tick(&mut self, now: Time) -> Vec<RcOut<M>> {
        let mut out = Vec::new();
        let mut peers: Vec<ProcessId> = self.tx.keys().copied().collect();
        peers.sort(); // deterministic output order
        for p in peers {
            let tx = self.tx.get_mut(&p).expect("peer present");
            for (&seq, (msg, first, last)) in tx.inflight.iter_mut() {
                if now.since(*last) >= self.config.retransmit_after {
                    *last = now;
                    out.push(RcOut::Transmit {
                        to: p,
                        packet: Packet::Data { seq, msg: msg.clone() },
                    });
                }
                if !tx.stuck_reported && now.since(*first) >= self.config.stuck_after {
                    tx.stuck_reported = true;
                    out.push(RcOut::Stuck { peer: p, since: *first });
                }
            }
        }
        out
    }

    /// Discards all state for `peer` — both directions.
    ///
    /// Called when the membership excludes `peer`: once excluded there is no
    /// obligation to deliver to it, so buffered messages "can be safely
    /// discarded" (paper §3.3.2).
    pub fn forget_peer(&mut self, peer: ProcessId) {
        self.tx.remove(&peer);
        self.rx.remove(&peer);
    }

    /// Number of unacknowledged messages queued for `peer`.
    pub fn backlog(&self, peer: ProcessId) -> usize {
        self.tx.get(&peer).map_or(0, |t| t.inflight.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ProcessId = ProcessId::new(0);
    const B: ProcessId = ProcessId::new(1);

    fn rc(me: ProcessId) -> ReliableChannel<&'static str> {
        ReliableChannel::new(me, RcConfig::default())
    }

    fn data_of(out: &[RcOut<&'static str>]) -> Vec<(u64, &'static str)> {
        out.iter()
            .filter_map(|o| match o {
                RcOut::Transmit { packet: Packet::Data { seq, msg }, .. } => Some((*seq, *msg)),
                _ => None,
            })
            .collect()
    }

    fn delivered(out: &[RcOut<&'static str>]) -> Vec<&'static str> {
        out.iter()
            .filter_map(|o| match o {
                RcOut::Deliver { msg, .. } => Some(*msg),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn in_order_delivery() {
        let mut a = rc(A);
        let mut b = rc(B);
        let t = Time::ZERO;
        let o1 = a.send(B, "x", t);
        let o2 = a.send(B, "y", t);
        let mut got = Vec::new();
        for (seq, msg) in data_of(&o1).into_iter().chain(data_of(&o2)) {
            got.extend(delivered(&b.on_packet(A, Packet::Data { seq, msg }, t)));
        }
        assert_eq!(got, vec!["x", "y"]);
    }

    #[test]
    fn out_of_order_is_reordered() {
        let mut b = rc(B);
        let t = Time::ZERO;
        let first = b.on_packet(A, Packet::Data { seq: 1, msg: "y" }, t);
        assert!(delivered(&first).is_empty());
        let second = b.on_packet(A, Packet::Data { seq: 0, msg: "x" }, t);
        assert_eq!(delivered(&second), vec!["x", "y"]);
    }

    #[test]
    fn duplicates_are_suppressed_but_reacked() {
        let mut b = rc(B);
        let t = Time::ZERO;
        let one = b.on_packet(A, Packet::Data { seq: 0, msg: "x" }, t);
        assert_eq!(delivered(&one), vec!["x"]);
        let two = b.on_packet(A, Packet::Data { seq: 0, msg: "x" }, t);
        assert!(delivered(&two).is_empty());
        assert!(matches!(two[0], RcOut::Transmit { packet: Packet::Ack { upto: 1 }, .. }));
    }

    #[test]
    fn retransmits_until_acked() {
        let mut a = rc(A);
        let t0 = Time::ZERO;
        a.send(B, "x", t0);
        let t1 = t0 + TimeDelta::from_millis(25);
        let out = a.on_tick(t1);
        assert_eq!(data_of(&out), vec![(0, "x")]);
        // Immediately after a retransmission, nothing more to do.
        assert!(data_of(&a.on_tick(t1)).is_empty());
        // Ack clears the buffer; no further retransmissions.
        a.on_packet(B, Packet::Ack { upto: 1 }, t1);
        let t2 = t1 + TimeDelta::from_millis(100);
        assert!(data_of(&a.on_tick(t2)).is_empty());
        assert_eq!(a.backlog(B), 0);
    }

    #[test]
    fn stuck_then_unstuck() {
        let mut a = rc(A);
        a.send(B, "x", Time::ZERO);
        let late = Time::ZERO + TimeDelta::from_secs(31);
        let out = a.on_tick(late);
        assert!(out.iter().any(|o| matches!(o, RcOut::Stuck { peer, .. } if *peer == B)));
        // Reported once only.
        assert!(!a.on_tick(late + TimeDelta::from_secs(1)).iter().any(|o| matches!(o, RcOut::Stuck { .. })));
        let acked = a.on_packet(B, Packet::Ack { upto: 1 }, late);
        assert!(acked.iter().any(|o| matches!(o, RcOut::Unstuck { peer } if *peer == B)));
    }

    #[test]
    fn loopback_delivers_immediately() {
        let mut a = rc(A);
        let out = a.send(A, "self", Time::ZERO);
        assert_eq!(delivered(&out), vec!["self"]);
    }

    #[test]
    fn forget_peer_discards_backlog() {
        let mut a = rc(A);
        a.send(B, "x", Time::ZERO);
        assert_eq!(a.backlog(B), 1);
        a.forget_peer(B);
        assert_eq!(a.backlog(B), 0);
        assert!(a.on_tick(Time::from_secs(60)).is_empty());
    }

    #[test]
    fn cumulative_ack_clears_prefix_only() {
        let mut a = rc(A);
        let t = Time::ZERO;
        a.send(B, "x", t);
        a.send(B, "y", t);
        a.send(B, "z", t);
        a.on_packet(B, Packet::Ack { upto: 2 }, t);
        assert_eq!(a.backlog(B), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const A: ProcessId = ProcessId::new(0);
    const B: ProcessId = ProcessId::new(1);

    proptest! {
        /// Under arbitrary reordering, duplication and loss of individual
        /// transmissions — with on_tick retransmissions eventually getting
        /// everything through — the receiver delivers exactly the sent
        /// sequence, in order.
        #[test]
        fn fifo_no_dup_no_creation(
            n in 1usize..30,
            // For each "round": which pending wire packets get delivered, and
            // whether each is duplicated.
            schedule in proptest::collection::vec((0usize..8, any::<bool>(), any::<bool>()), 0..200),
        ) {
            let mut a = ReliableChannel::new(A, RcConfig::default());
            let mut b = ReliableChannel::new(B, RcConfig::default());
            let mut now = Time::ZERO;
            let mut wire_ab: Vec<Packet<u64>> = Vec::new();
            let mut wire_ba: Vec<Packet<u64>> = Vec::new();
            let mut got: Vec<u64> = Vec::new();

            let mut push = |outs: Vec<RcOut<u64>>, wire_ab: &mut Vec<Packet<u64>>, wire_ba: &mut Vec<Packet<u64>>, got: &mut Vec<u64>| {
                for o in outs {
                    match o {
                        RcOut::Transmit { to, packet } => {
                            if to == B { wire_ab.push(packet) } else { wire_ba.push(packet) }
                        }
                        RcOut::Deliver { msg, .. } => got.push(msg),
                        _ => {}
                    }
                }
            };

            for i in 0..n {
                let outs = a.send(B, i as u64, now);
                push(outs, &mut wire_ab, &mut wire_ba, &mut got);
            }

            for (idx, dup, drop) in schedule {
                now = now + TimeDelta::from_millis(30);
                // Maybe deliver one packet from A→B (possibly out of order).
                if !wire_ab.is_empty() {
                    let k = idx % wire_ab.len();
                    let pkt = wire_ab.swap_remove(k);
                    if !drop {
                        if dup {
                            let outs = b.on_packet(A, pkt.clone(), now);
                            push(outs, &mut wire_ab, &mut wire_ba, &mut got);
                        }
                        let outs = b.on_packet(A, pkt, now);
                        push(outs, &mut wire_ab, &mut wire_ba, &mut got);
                    }
                }
                // Deliver one ack B→A.
                if !wire_ba.is_empty() {
                    let k = idx % wire_ba.len();
                    let pkt = wire_ba.swap_remove(k);
                    if !drop {
                        let outs = a.on_packet(B, pkt, now);
                        push(outs, &mut wire_ab, &mut wire_ba, &mut got);
                    }
                }
                let outs = a.on_tick(now);
                push(outs, &mut wire_ab, &mut wire_ba, &mut got);
            }

            // Drain: deliver everything still on the wire plus retransmissions
            // until quiescence.
            for _ in 0..(4 * n + 8) {
                now = now + TimeDelta::from_millis(30);
                let outs = a.on_tick(now);
                push(outs, &mut wire_ab, &mut wire_ba, &mut got);
                while !wire_ab.is_empty() {
                    let pkt = wire_ab.remove(0);
                    let outs = b.on_packet(A, pkt, now);
                    push(outs, &mut wire_ab, &mut wire_ba, &mut got);
                }
                while !wire_ba.is_empty() {
                    let pkt = wire_ba.remove(0);
                    let outs = a.on_packet(B, pkt, now);
                    push(outs, &mut wire_ab, &mut wire_ba, &mut got);
                }
            }

            let expected: Vec<u64> = (0..n as u64).collect();
            prop_assert_eq!(got, expected);
            prop_assert_eq!(a.backlog(B), 0);
        }
    }
}
