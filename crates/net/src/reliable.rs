//! The sans-I/O reliable channel.
//!
//! Steady-state packet economy (PR 1): every data packet carries the
//! sender's cumulative acknowledgement for the reverse direction
//! (**piggybacking**), standalone acks are **delayed** until the next tick
//! (and suppressed entirely when reverse data flows), and per-tick
//! retransmissions to one peer are **coalesced** into a single batch
//! packet. Relative to the classic ack-per-data scheme this roughly halves
//! the packet count of a steady bidirectional exchange.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use gcs_kernel::{ProcessId, SmallVec, Time, TimeDelta};

/// Dense per-peer table: process ids are small dense integers in every
/// runtime this channel targets, so peer state is indexed directly instead
/// of hashed. Slots are created on first contact.
#[derive(Debug)]
struct PeerTable<T>(Vec<Option<T>>);

impl<T> PeerTable<T> {
    fn new() -> Self {
        PeerTable(Vec::new())
    }

    fn get(&self, p: ProcessId) -> Option<&T> {
        self.0.get(p.index()).and_then(|s| s.as_ref())
    }

    fn get_mut(&mut self, p: ProcessId) -> Option<&mut T> {
        self.0.get_mut(p.index()).and_then(|s| s.as_mut())
    }

    fn entry(&mut self, p: ProcessId, default: impl FnOnce() -> T) -> &mut T {
        let idx = p.index();
        if idx >= self.0.len() {
            self.0.resize_with(idx + 1, || None);
        }
        self.0[idx].get_or_insert_with(default)
    }

    fn remove(&mut self, p: ProcessId) {
        if let Some(slot) = self.0.get_mut(p.index()) {
            *slot = None;
        }
    }
}

/// Configuration of a [`ReliableChannel`].
#[derive(Clone, Copy, Debug)]
pub struct RcConfig {
    /// Retransmit a data packet if unacknowledged for this long.
    pub retransmit_after: TimeDelta,
    /// Raise [`RcOut::Stuck`] when the oldest unacknowledged message for a
    /// peer is older than this (output-triggered suspicion, paper §3.3.2).
    pub stuck_after: TimeDelta,
    /// How often the owner should call [`ReliableChannel::on_tick`].
    pub tick_interval: TimeDelta,
    /// Piggyback cumulative acks on reverse-direction data packets and delay
    /// standalone acks to the next tick. Disable to get the classic
    /// ack-per-data behavior (used by packet-count comparisons).
    pub piggyback_acks: bool,
}

impl Default for RcConfig {
    fn default() -> Self {
        RcConfig {
            retransmit_after: TimeDelta::from_millis(20),
            stuck_after: TimeDelta::from_secs(30),
            tick_interval: TimeDelta::from_millis(10),
            piggyback_acks: true,
        }
    }
}

/// A packet on the wire between two reliable-channel endpoints.
///
/// Every data-bearing packet also carries `ack`, the sender's cumulative
/// acknowledgement for the reverse direction of the link, so a steady
/// bidirectional flow needs no standalone [`Ack`](Packet::Ack) packets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Packet<M> {
    /// A data packet carrying the `seq`-th message from the sender.
    Data {
        /// Per-(sender → receiver) sequence number, starting at 0.
        seq: u64,
        /// Piggybacked cumulative ack: every reverse-direction `seq < ack`
        /// was received by the sender of this packet.
        ack: u64,
        /// The carried message.
        msg: M,
    },
    /// Coalesced retransmission: several data packets for one peer in one
    /// wire packet (produced by [`ReliableChannel::on_tick`]).
    Batch {
        /// Piggybacked cumulative ack (as in [`Data`](Packet::Data)).
        ack: u64,
        /// The retransmitted `(seq, message)` pairs, in sequence order.
        msgs: Vec<(u64, M)>,
    },
    /// Standalone cumulative acknowledgement: every `seq < upto` was
    /// received.
    Ack {
        /// One past the highest contiguously received sequence number.
        upto: u64,
    },
}

/// An instruction produced by the reliable channel for its owner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RcOut<M> {
    /// Transmit `packet` to `to` over the unreliable transport.
    Transmit {
        /// Destination process.
        to: ProcessId,
        /// The packet to put on the wire.
        packet: Packet<M>,
    },
    /// Deliver `msg` (sent by `from`) to the upper layers, in FIFO order.
    Deliver {
        /// Originating process.
        from: ProcessId,
        /// The delivered message.
        msg: M,
    },
    /// Output-triggered suspicion: `peer` has not acknowledged the oldest
    /// outstanding message since `since`.
    Stuck {
        /// The unresponsive peer.
        peer: ProcessId,
        /// Send time of the oldest unacknowledged message.
        since: Time,
    },
    /// `peer` acknowledged everything again after a [`RcOut::Stuck`].
    Unstuck {
        /// The peer that recovered.
        peer: ProcessId,
    },
}

/// The small output buffer returned by the packet-grained entry points;
/// inline capacity covers the common cases without allocating.
pub type RcOuts<M> = SmallVec<RcOut<M>, 4>;

#[derive(Debug)]
struct PeerTx<M> {
    next_seq: u64,
    /// Unacknowledged packets, oldest first: `(seq, message, first-send,
    /// last-send)`. Sequence numbers are contiguous and cumulative acks
    /// discard a prefix, so a deque (amortized allocation-free) replaces a
    /// node-per-packet map.
    inflight: VecDeque<(u64, M, Time, Time)>,
    stuck_reported: bool,
}

impl<M> Default for PeerTx<M> {
    fn default() -> Self {
        PeerTx {
            next_seq: 0,
            inflight: VecDeque::new(),
            stuck_reported: false,
        }
    }
}

#[derive(Debug, Default)]
struct PeerRx<M> {
    /// One past the highest contiguously delivered sequence number.
    next_deliver: u64,
    /// Out-of-order buffer.
    buffer: BTreeMap<u64, M>,
    /// An acknowledgement is owed to this peer (piggyback mode): it will
    /// ride the next data packet we send there, or flush at the next tick.
    owe_ack: bool,
}

impl<M> PeerRx<M> {
    fn new() -> Self {
        PeerRx {
            next_deliver: 0,
            buffer: BTreeMap::new(),
            owe_ack: false,
        }
    }
}

/// A sans-I/O reliable, FIFO, duplicate-free channel to every peer.
///
/// One instance serves all peers of a process. The owner must:
///
/// 1. call [`send`](Self::send) to transmit messages,
/// 2. feed every received [`Packet`] to [`on_packet`](Self::on_packet),
/// 3. call [`on_tick`](Self::on_tick) every
///    [`RcConfig::tick_interval`] (this also flushes delayed acks),
///
/// and carry out the returned [`RcOut`] instructions.
///
/// Guarantees (assuming the unreliable network delivers each retransmitted
/// packet with non-zero probability): **no creation** (only sent messages
/// are delivered), **no duplication**, **FIFO** per sender, and **eventual
/// delivery** between correct processes.
#[derive(Debug)]
pub struct ReliableChannel<M> {
    me: ProcessId,
    config: RcConfig,
    tx: PeerTable<PeerTx<M>>,
    rx: PeerTable<PeerRx<M>>,
    /// Peers with unacknowledged in-flight data — the only tx slots a tick
    /// must visit. Kept exact (insert on send, remove when the inflight
    /// deque drains), so an idle channel ticks in O(1) instead of O(peers).
    /// Ascending-id iteration keeps retransmission emission order identical
    /// to a full table scan.
    active_tx: BTreeSet<ProcessId>,
    /// Peers owed a standalone ack — the only rx slots a tick must visit.
    owed_acks: BTreeSet<ProcessId>,
}

impl<M: Clone> ReliableChannel<M> {
    /// Creates a channel endpoint for process `me`.
    pub fn new(me: ProcessId, config: RcConfig) -> Self {
        ReliableChannel {
            me,
            config,
            tx: PeerTable::new(),
            rx: PeerTable::new(),
            active_tx: BTreeSet::new(),
            owed_acks: BTreeSet::new(),
        }
    }

    /// The configured tick interval, for the owner's timer.
    pub fn tick_interval(&self) -> TimeDelta {
        self.config.tick_interval
    }

    /// The cumulative ack to piggyback on a packet towards `to`, clearing
    /// any owed standalone ack (the data packet carries it).
    fn piggyback_for(&mut self, to: ProcessId) -> u64 {
        match self.rx.get_mut(to) {
            Some(rx) => {
                if rx.owe_ack {
                    rx.owe_ack = false;
                    self.owed_acks.remove(&to);
                }
                rx.next_deliver
            }
            None => 0,
        }
    }

    /// Queues `msg` for reliable delivery to `to` and returns the initial
    /// transmission. Sending to self delivers immediately (loopback).
    pub fn send(&mut self, to: ProcessId, msg: M, now: Time) -> RcOuts<M> {
        let mut out = RcOuts::new();
        if to == self.me {
            out.push(RcOut::Deliver { from: self.me, msg });
            return out;
        }
        let peer = self.tx.entry(to, PeerTx::default);
        let seq = peer.next_seq;
        peer.next_seq += 1;
        peer.inflight.push_back((seq, msg.clone(), now, now));
        self.active_tx.insert(to);
        let ack = self.piggyback_for(to);
        out.push(RcOut::Transmit {
            to,
            packet: Packet::Data { seq, ack, msg },
        });
        out
    }

    /// Processes the cumulative-ack component of any received packet.
    fn on_ack_component(&mut self, from: ProcessId, upto: u64, out: &mut RcOuts<M>) {
        if let Some(tx) = self.tx.get_mut(from) {
            while tx.inflight.front().is_some_and(|&(seq, ..)| seq < upto) {
                tx.inflight.pop_front();
            }
            if tx.inflight.is_empty() {
                if tx.stuck_reported {
                    tx.stuck_reported = false;
                    out.push(RcOut::Unstuck { peer: from });
                }
                self.active_tx.remove(&from);
            }
        }
    }

    /// Processes one data component; acknowledgements are accumulated, not
    /// sent here.
    fn on_data_component(&mut self, from: ProcessId, seq: u64, msg: M, out: &mut RcOuts<M>) {
        let rx = self.rx.entry(from, PeerRx::new);
        if seq == rx.next_deliver && rx.buffer.is_empty() {
            // Fast path: the expected packet, nothing buffered — deliver
            // without touching the out-of-order map.
            rx.next_deliver += 1;
            out.push(RcOut::Deliver { from, msg });
        } else if seq >= rx.next_deliver {
            rx.buffer.entry(seq).or_insert(msg);
            while let Some(m) = rx.buffer.remove(&rx.next_deliver) {
                rx.next_deliver += 1;
                out.push(RcOut::Deliver { from, msg: m });
            }
        }
        // An ack is now owed — for fresh data and for pure duplicates alike
        // (the sender may have lost our previous ack).
        if !rx.owe_ack {
            rx.owe_ack = true;
            self.owed_acks.insert(from);
        }
    }

    /// Emits the owed standalone ack to `from` immediately (classic mode).
    fn emit_ack_now(&mut self, from: ProcessId, out: &mut RcOuts<M>) {
        let rx = self.rx.entry(from, PeerRx::new);
        if rx.owe_ack {
            rx.owe_ack = false;
            self.owed_acks.remove(&from);
        }
        out.push(RcOut::Transmit {
            to: from,
            packet: Packet::Ack {
                upto: rx.next_deliver,
            },
        });
    }

    /// Handles a packet received from `from`.
    pub fn on_packet(&mut self, from: ProcessId, packet: Packet<M>, now: Time) -> RcOuts<M> {
        let _ = now;
        let mut out = RcOuts::new();
        match packet {
            Packet::Data { seq, ack, msg } => {
                self.on_ack_component(from, ack, &mut out);
                self.on_data_component(from, seq, msg, &mut out);
                if !self.config.piggyback_acks {
                    self.emit_ack_now(from, &mut out);
                }
            }
            Packet::Batch { ack, msgs } => {
                self.on_ack_component(from, ack, &mut out);
                for (seq, msg) in msgs {
                    self.on_data_component(from, seq, msg, &mut out);
                }
                if !self.config.piggyback_acks {
                    self.emit_ack_now(from, &mut out);
                }
            }
            Packet::Ack { upto } => {
                self.on_ack_component(from, upto, &mut out);
            }
        }
        out
    }

    /// Periodic maintenance: coalesced retransmissions, stuck-peer
    /// detection, and delayed-ack flushing.
    pub fn on_tick(&mut self, now: Time) -> Vec<RcOut<M>> {
        let mut out = Vec::new();
        self.on_tick_into(now, &mut out);
        out
    }

    /// [`on_tick`](Self::on_tick), appending into a caller-owned buffer
    /// (the hot-path entry point: ticks fire every
    /// [`RcConfig::tick_interval`] on every process).
    pub fn on_tick_into(&mut self, now: Time, out: &mut Vec<RcOut<M>>) {
        // Expired retransmissions — only peers with in-flight data, in id
        // order (deterministic; `active_tx` is exact, so this visits the
        // same slots a full table scan would emit from).
        let mut resends: Vec<(ProcessId, Vec<(u64, M)>)> = Vec::new();
        for &p in &self.active_tx {
            let Some(tx) = self.tx.get_mut(p) else {
                continue;
            };
            let mut resend: Vec<(u64, M)> = Vec::new();
            for &mut (seq, ref msg, first, ref mut last) in tx.inflight.iter_mut() {
                if now.since(*last) >= self.config.retransmit_after {
                    *last = now;
                    resend.push((seq, msg.clone()));
                }
                if !tx.stuck_reported && now.since(first) >= self.config.stuck_after {
                    tx.stuck_reported = true;
                    out.push(RcOut::Stuck {
                        peer: p,
                        since: first,
                    });
                }
            }
            if !resend.is_empty() {
                resends.push((p, resend));
            }
        }
        for (p, mut resend) in resends {
            if resend.len() == 1 {
                // A single retransmission travels as a plain data packet.
                let (seq, msg) = resend.pop().expect("one element");
                let ack = self.piggyback_for(p);
                out.push(RcOut::Transmit {
                    to: p,
                    packet: Packet::Data { seq, ack, msg },
                });
            } else {
                // Multiple expired packets coalesce into one batch.
                let ack = self.piggyback_for(p);
                out.push(RcOut::Transmit {
                    to: p,
                    packet: Packet::Batch { ack, msgs: resend },
                });
            }
        }
        // Flush owed acks that found no data packet to ride, in id order
        // (entries already cleared by a piggyback above drop silently).
        let owed = std::mem::take(&mut self.owed_acks);
        for &p in &owed {
            if let Some(rx) = self.rx.get_mut(p) {
                if rx.owe_ack {
                    rx.owe_ack = false;
                    out.push(RcOut::Transmit {
                        to: p,
                        packet: Packet::Ack {
                            upto: rx.next_deliver,
                        },
                    });
                }
            }
        }
    }

    /// Discards all state for `peer` — both directions.
    ///
    /// Called when the membership excludes `peer`: once excluded there is no
    /// obligation to deliver to it, so buffered messages "can be safely
    /// discarded" (paper §3.3.2).
    pub fn forget_peer(&mut self, peer: ProcessId) {
        self.tx.remove(peer);
        self.rx.remove(peer);
        self.active_tx.remove(&peer);
        self.owed_acks.remove(&peer);
    }

    /// Number of unacknowledged messages queued for `peer`.
    pub fn backlog(&self, peer: ProcessId) -> usize {
        self.tx.get(peer).map_or(0, |t| t.inflight.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ProcessId = ProcessId::new(0);
    const B: ProcessId = ProcessId::new(1);

    fn rc(me: ProcessId) -> ReliableChannel<&'static str> {
        ReliableChannel::new(me, RcConfig::default())
    }

    /// All `(seq, msg)` data components (plain or batched) transmitted.
    fn data_of(out: &[RcOut<&'static str>]) -> Vec<(u64, &'static str)> {
        out.iter()
            .flat_map(|o| match o {
                RcOut::Transmit {
                    packet: Packet::Data { seq, msg, .. },
                    ..
                } => {
                    vec![(*seq, *msg)]
                }
                RcOut::Transmit {
                    packet: Packet::Batch { msgs, .. },
                    ..
                } => msgs.clone(),
                _ => vec![],
            })
            .collect()
    }

    fn delivered(out: &[RcOut<&'static str>]) -> Vec<&'static str> {
        out.iter()
            .filter_map(|o| match o {
                RcOut::Deliver { msg, .. } => Some(*msg),
                _ => None,
            })
            .collect()
    }

    fn transmits(out: &[RcOut<&'static str>]) -> usize {
        out.iter()
            .filter(|o| matches!(o, RcOut::Transmit { .. }))
            .count()
    }

    fn collect<M: Clone>(outs: impl IntoIterator<Item = RcOut<M>>) -> Vec<RcOut<M>> {
        outs.into_iter().collect()
    }

    #[test]
    fn in_order_delivery() {
        let mut a = rc(A);
        let mut b = rc(B);
        let t = Time::ZERO;
        let o1 = collect(a.send(B, "x", t));
        let o2 = collect(a.send(B, "y", t));
        let mut got = Vec::new();
        for (seq, msg) in data_of(&o1).into_iter().chain(data_of(&o2)) {
            got.extend(delivered(&collect(b.on_packet(
                A,
                Packet::Data { seq, ack: 0, msg },
                t,
            ))));
        }
        assert_eq!(got, vec!["x", "y"]);
    }

    #[test]
    fn out_of_order_is_reordered() {
        let mut b = rc(B);
        let t = Time::ZERO;
        let first = collect(b.on_packet(
            A,
            Packet::Data {
                seq: 1,
                ack: 0,
                msg: "y",
            },
            t,
        ));
        assert!(delivered(&first).is_empty());
        let second = collect(b.on_packet(
            A,
            Packet::Data {
                seq: 0,
                ack: 0,
                msg: "x",
            },
            t,
        ));
        assert_eq!(delivered(&second), vec!["x", "y"]);
    }

    #[test]
    fn duplicates_are_suppressed_and_reacked_on_tick() {
        let mut b = rc(B);
        let t = Time::ZERO;
        let one = collect(b.on_packet(
            A,
            Packet::Data {
                seq: 0,
                ack: 0,
                msg: "x",
            },
            t,
        ));
        assert_eq!(delivered(&one), vec!["x"]);
        // Piggyback mode: no immediate standalone ack...
        assert_eq!(transmits(&one), 0);
        let two = collect(b.on_packet(
            A,
            Packet::Data {
                seq: 0,
                ack: 0,
                msg: "x",
            },
            t,
        ));
        assert!(delivered(&two).is_empty());
        // ...the (re-)ack flushes at the next tick, duplicates included.
        let tick = b.on_tick(t + TimeDelta::from_millis(10));
        assert!(
            tick.iter().any(|o| matches!(
                o,
                RcOut::Transmit {
                    packet: Packet::Ack { upto: 1 },
                    ..
                }
            )),
            "owed ack flushed: {tick:?}"
        );
        // Nothing further owed.
        assert!(b.on_tick(t + TimeDelta::from_millis(20)).is_empty());
    }

    #[test]
    fn acks_piggyback_on_reverse_data() {
        let mut a = rc(A);
        let mut b = rc(B);
        let t = Time::ZERO;
        // A→B data delivered at B: B owes an ack.
        let o = collect(a.send(B, "x", t));
        let (seq, msg) = data_of(&o)[0];
        b.on_packet(A, Packet::Data { seq, ack: 0, msg }, t);
        // B now sends data back: the owed ack rides it.
        let rev = collect(b.send(A, "reply", t));
        match &rev[0] {
            RcOut::Transmit {
                to,
                packet: Packet::Data { ack, .. },
            } => {
                assert_eq!(*to, A);
                assert_eq!(*ack, 1, "cumulative ack piggybacked");
            }
            other => panic!("expected data transmit, got {other:?}"),
        }
        // The piggybacked ack clears A's backlog on receipt.
        let (rseq, rmsg) = data_of(&rev)[0];
        a.on_packet(
            B,
            Packet::Data {
                seq: rseq,
                ack: 1,
                msg: rmsg,
            },
            t,
        );
        assert_eq!(a.backlog(B), 0);
        // And B owes no standalone ack anymore.
        assert!(b
            .on_tick(t + TimeDelta::from_millis(10))
            .iter()
            .all(|o| !matches!(
                o,
                RcOut::Transmit {
                    packet: Packet::Ack { .. },
                    ..
                }
            )));
    }

    #[test]
    fn retransmits_until_acked() {
        let mut a = rc(A);
        let t0 = Time::ZERO;
        a.send(B, "x", t0);
        let t1 = t0 + TimeDelta::from_millis(25);
        let out = a.on_tick(t1);
        assert_eq!(data_of(&out), vec![(0, "x")]);
        // Immediately after a retransmission, nothing more to do.
        assert!(data_of(&a.on_tick(t1)).is_empty());
        // Ack clears the buffer; no further retransmissions.
        a.on_packet(B, Packet::Ack { upto: 1 }, t1);
        let t2 = t1 + TimeDelta::from_millis(100);
        assert!(data_of(&a.on_tick(t2)).is_empty());
        assert_eq!(a.backlog(B), 0);
    }

    #[test]
    fn expired_retransmissions_coalesce_into_one_batch_packet() {
        let mut a = rc(A);
        let t0 = Time::ZERO;
        a.send(B, "x", t0);
        a.send(B, "y", t0);
        a.send(B, "z", t0);
        let out = a.on_tick(t0 + TimeDelta::from_millis(25));
        assert_eq!(
            transmits(&out),
            1,
            "one wire packet for three retransmissions: {out:?}"
        );
        assert_eq!(data_of(&out), vec![(0, "x"), (1, "y"), (2, "z")]);
        // The receiver unpacks the batch in order.
        let mut b = rc(B);
        let batch = match &out[0] {
            RcOut::Transmit { packet, .. } => packet.clone(),
            other => panic!("expected transmit, got {other:?}"),
        };
        let got = collect(b.on_packet(A, batch, t0 + TimeDelta::from_millis(26)));
        assert_eq!(delivered(&got), vec!["x", "y", "z"]);
    }

    #[test]
    fn stuck_then_unstuck() {
        let mut a = rc(A);
        a.send(B, "x", Time::ZERO);
        let late = Time::ZERO + TimeDelta::from_secs(31);
        let out = a.on_tick(late);
        assert!(out
            .iter()
            .any(|o| matches!(o, RcOut::Stuck { peer, .. } if *peer == B)));
        // Reported once only.
        assert!(!a
            .on_tick(late + TimeDelta::from_secs(1))
            .iter()
            .any(|o| matches!(o, RcOut::Stuck { .. })));
        let acked = collect(a.on_packet(B, Packet::Ack { upto: 1 }, late));
        assert!(acked
            .iter()
            .any(|o| matches!(o, RcOut::Unstuck { peer } if *peer == B)));
    }

    #[test]
    fn loopback_delivers_immediately() {
        let mut a = rc(A);
        let out = collect(a.send(A, "self", Time::ZERO));
        assert_eq!(delivered(&out), vec!["self"]);
    }

    #[test]
    fn forget_peer_discards_backlog() {
        let mut a = rc(A);
        a.send(B, "x", Time::ZERO);
        assert_eq!(a.backlog(B), 1);
        a.forget_peer(B);
        assert_eq!(a.backlog(B), 0);
        assert!(a.on_tick(Time::from_secs(60)).is_empty());
    }

    #[test]
    fn cumulative_ack_clears_prefix_only() {
        let mut a = rc(A);
        let t = Time::ZERO;
        a.send(B, "x", t);
        a.send(B, "y", t);
        a.send(B, "z", t);
        a.on_packet(B, Packet::Ack { upto: 2 }, t);
        assert_eq!(a.backlog(B), 1);
    }

    #[test]
    fn classic_mode_acks_every_data_packet() {
        let cfg = RcConfig {
            piggyback_acks: false,
            ..RcConfig::default()
        };
        let mut b: ReliableChannel<&'static str> = ReliableChannel::new(B, cfg);
        let out = collect(b.on_packet(
            A,
            Packet::Data {
                seq: 0,
                ack: 0,
                msg: "x",
            },
            Time::ZERO,
        ));
        assert!(matches!(
            out.last(),
            Some(RcOut::Transmit {
                packet: Packet::Ack { upto: 1 },
                ..
            })
        ));
        // Nothing owed at tick time.
        assert!(b.on_tick(Time::from_millis(10)).is_empty());
    }

    /// The headline number: a steady bidirectional exchange in piggyback
    /// mode puts at least 40% fewer packets on the wire than classic
    /// ack-per-data. (The full-stack counterpart lives in gcs-core's tests.)
    #[test]
    fn piggybacking_cuts_steady_state_packets_by_40_percent() {
        let run = |piggyback: bool| -> usize {
            let cfg = RcConfig {
                piggyback_acks: piggyback,
                ..RcConfig::default()
            };
            let mut a: ReliableChannel<u64> = ReliableChannel::new(A, cfg);
            let mut b: ReliableChannel<u64> = ReliableChannel::new(B, cfg);
            let mut packets = 0usize;
            let mut now = Time::ZERO;
            let mut wire: Vec<(ProcessId, ProcessId, Packet<u64>)> = Vec::new();
            let push = |from: ProcessId,
                        outs: Vec<RcOut<u64>>,
                        wire: &mut Vec<(ProcessId, ProcessId, Packet<u64>)>,
                        packets: &mut usize| {
                for o in outs {
                    if let RcOut::Transmit { to, packet } = o {
                        *packets += 1;
                        wire.push((from, to, packet));
                    }
                }
            };
            for i in 0..100u64 {
                now += TimeDelta::from_millis(2);
                // Request–response traffic: A sends, B replies to each
                // *delivered request* exactly once.
                let outs = a.send(B, i, now).into_iter().collect();
                push(A, outs, &mut wire, &mut packets);
                while let Some((from, to, packet)) = wire.pop() {
                    let endpoint = if to == A { &mut a } else { &mut b };
                    let outs: Vec<_> = endpoint.on_packet(from, packet, now).into_iter().collect();
                    let delivered_to_b =
                        to == B && outs.iter().any(|o| matches!(o, RcOut::Deliver { .. }));
                    push(to, outs, &mut wire, &mut packets);
                    if delivered_to_b {
                        let outs: Vec<_> = b.send(A, 1000 + i, now).into_iter().collect();
                        push(B, outs, &mut wire, &mut packets);
                    }
                }
                // Periodic ticks on both endpoints.
                if i % 5 == 0 {
                    let outs = a.on_tick(now);
                    push(A, outs, &mut wire, &mut packets);
                    let outs = b.on_tick(now);
                    push(B, outs, &mut wire, &mut packets);
                    while let Some((from, to, packet)) = wire.pop() {
                        let endpoint = if to == A { &mut a } else { &mut b };
                        let outs: Vec<_> =
                            endpoint.on_packet(from, packet, now).into_iter().collect();
                        push(to, outs, &mut wire, &mut packets);
                    }
                }
            }
            packets
        };
        let classic = run(false);
        let piggyback = run(true);
        assert!(
            (piggyback as f64) <= 0.6 * classic as f64,
            "piggybacking saved too little: {piggyback} vs {classic} packets"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const A: ProcessId = ProcessId::new(0);
    const B: ProcessId = ProcessId::new(1);

    proptest! {
        /// Under arbitrary reordering, duplication and loss of individual
        /// transmissions — with on_tick retransmissions eventually getting
        /// everything through — the receiver delivers exactly the sent
        /// sequence, in order.
        #[test]
        fn fifo_no_dup_no_creation(
            n in 1usize..30,
            piggyback in any::<bool>(),
            // For each "round": which pending wire packets get delivered, and
            // whether each is duplicated.
            schedule in proptest::collection::vec((0usize..8, any::<bool>(), any::<bool>()), 0..200),
        ) {
            let cfg = RcConfig { piggyback_acks: piggyback, ..RcConfig::default() };
            let mut a = ReliableChannel::new(A, cfg);
            let mut b = ReliableChannel::new(B, cfg);
            let mut now = Time::ZERO;
            let mut wire_ab: Vec<Packet<u64>> = Vec::new();
            let mut wire_ba: Vec<Packet<u64>> = Vec::new();
            let mut got: Vec<u64> = Vec::new();

            let push = |outs: Vec<RcOut<u64>>, wire_ab: &mut Vec<Packet<u64>>, wire_ba: &mut Vec<Packet<u64>>, got: &mut Vec<u64>| {
                for o in outs {
                    match o {
                        RcOut::Transmit { to, packet } => {
                            if to == B { wire_ab.push(packet) } else { wire_ba.push(packet) }
                        }
                        RcOut::Deliver { msg, .. } => got.push(msg),
                        _ => {}
                    }
                }
            };

            for i in 0..n {
                let outs = a.send(B, i as u64, now).into_iter().collect();
                push(outs, &mut wire_ab, &mut wire_ba, &mut got);
            }

            for (idx, dup, drop) in schedule {
                now += TimeDelta::from_millis(30);
                // Maybe deliver one packet from A→B (possibly out of order).
                if !wire_ab.is_empty() {
                    let k = idx % wire_ab.len();
                    let pkt = wire_ab.swap_remove(k);
                    if !drop {
                        if dup {
                            let outs = b.on_packet(A, pkt.clone(), now).into_iter().collect();
                            push(outs, &mut wire_ab, &mut wire_ba, &mut got);
                        }
                        let outs = b.on_packet(A, pkt, now).into_iter().collect();
                        push(outs, &mut wire_ab, &mut wire_ba, &mut got);
                    }
                }
                // Deliver one ack-bearing packet B→A.
                if !wire_ba.is_empty() {
                    let k = idx % wire_ba.len();
                    let pkt = wire_ba.swap_remove(k);
                    if !drop {
                        let outs = a.on_packet(B, pkt, now).into_iter().collect();
                        push(outs, &mut wire_ab, &mut wire_ba, &mut got);
                    }
                }
                let outs = a.on_tick(now);
                push(outs, &mut wire_ab, &mut wire_ba, &mut got);
                let outs = b.on_tick(now);
                push(outs, &mut wire_ab, &mut wire_ba, &mut got);
            }

            // Drain: deliver everything still on the wire plus retransmissions
            // until quiescence.
            for _ in 0..(4 * n + 8) {
                now += TimeDelta::from_millis(30);
                let outs = a.on_tick(now);
                push(outs, &mut wire_ab, &mut wire_ba, &mut got);
                let outs = b.on_tick(now);
                push(outs, &mut wire_ab, &mut wire_ba, &mut got);
                while !wire_ab.is_empty() {
                    let pkt = wire_ab.remove(0);
                    let outs = b.on_packet(A, pkt, now).into_iter().collect();
                    push(outs, &mut wire_ab, &mut wire_ba, &mut got);
                }
                while !wire_ba.is_empty() {
                    let pkt = wire_ba.remove(0);
                    let outs = a.on_packet(B, pkt, now).into_iter().collect();
                    push(outs, &mut wire_ab, &mut wire_ba, &mut got);
                }
            }

            let expected: Vec<u64> = (0..n as u64).collect();
            prop_assert_eq!(got, expected);
            prop_assert_eq!(a.backlog(B), 0);
        }
    }
}
