//! Wall-clock time for the live backend.

use std::time::{Duration, Instant};

use gcs_kernel::{Time, TimeSource};

/// The live backend's [`TimeSource`]: [`Time`] is real nanoseconds elapsed
/// since the clock's epoch (the moment the runtime started).
///
/// This is the whole virtual-time ↔ wall-clock mapping: an injection "at
/// `t`" happens when the wall clock reaches `epoch + t`, a timer armed for
/// `after` fires a real `after` later, and `run_until(t)` simply sleeps the
/// caller to the deadline while the member threads keep working.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the epoch, as a [`Time`].
    pub fn now(&self) -> Time {
        Time::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    /// Sleeps the calling thread until the clock reaches `t` (returns
    /// immediately if it already has).
    pub fn sleep_until(&self, t: Time) {
        let now = self.now();
        if t > now {
            std::thread::sleep(Duration::from_nanos(t.since(now).as_nanos()));
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeSource for WallClock {
    fn now(&self) -> Time {
        WallClock::now(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_sleeps() {
        let c = WallClock::new();
        let a = c.now();
        c.sleep_until(a.saturating_add(gcs_kernel::TimeDelta::from_millis(5)));
        let b = c.now();
        assert!(
            b.since(a).as_millis() >= 4,
            "slept ≈5ms: {:?} -> {:?}",
            a,
            b
        );
        // Sleeping to the past returns immediately.
        c.sleep_until(Time::ZERO);
        let source: &dyn TimeSource = &c;
        assert!(source.now() >= b);
    }
}
