//! The live runtime: one OS thread per group member, one timer thread per
//! group, real wall-clock deadlines.
//!
//! Each member thread owns its [`Process`] outright (the kernel process is
//! deliberately not `Send`-shareable — it is built *inside* the thread from
//! a `Send` constructor closure) and drains an `mpsc` inbox: protocol
//! frames, harness injections, timer fires, crash and stop signals. Effects
//! flow back out through the [`Router`], which applies the emulated network
//! before the frame reaches the destination inbox — directly in channel
//! mode, or over a loopback TCP stream per member in TCP mode.
//!
//! The timer thread services the group's [`TimerWheel`]: protocol timers,
//! frames parked by emulated link delay, and scheduled fault actions all
//! come due there. Firing a timer on a process that already cancelled it is
//! a kernel-level no-op, which is what makes a *global* wheel safe: the
//! wheel may hold stale entries for crashed members or cancelled timers
//! without corrupting anyone.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use gcs_kernel::{Effects, Event, Process, ProcessId, Time};
use gcs_net::{Link, TcpLink};
use gcs_sim::{Metrics, Topology, TraceMode};

use crate::fabric::{Control, Due, Msg, NetState, Router, Shared, TcpFabric, TimerWheel};
use crate::WallClock;

/// How frames physically move between member threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WireMode {
    /// Directly between inboxes (in-process channels). The default.
    #[default]
    Channel,
    /// Over one loopback-TCP stream per member: frames are encoded,
    /// segmented, and reassembled by the real codec; event bodies travel as
    /// in-process handles (see `gcs_net::link` docs for the honest
    /// boundary of this mode).
    Tcp,
}

/// A `Send` constructor for a member's process, run inside its thread.
pub(crate) type BuildFn<E> = Box<dyn FnOnce() -> Process<E> + Send + 'static>;

/// Options shared by every live group, independent of the protocol stack.
pub(crate) struct RuntimeOptions {
    pub seed: u64,
    pub topology: Topology,
    pub trace: TraceMode,
    pub wire: WireMode,
}

/// A running group of member threads plus their timer thread.
pub(crate) struct LiveRuntime<E: Event + Send> {
    shared: Arc<Shared<E>>,
    router: Router<E>,
    handles: Vec<JoinHandle<()>>,
    stopped: bool,
}

impl<E: Event + Send + 'static> LiveRuntime<E> {
    /// Spawns one thread per builder (process ids are dense from zero) and
    /// the timer thread, starting every process at its thread's first
    /// instant.
    pub(crate) fn start(builders: Vec<BuildFn<E>>, opts: RuntimeOptions) -> LiveRuntime<E> {
        let n = builders.len();
        let clock = WallClock::new();
        let mut senders: Vec<Sender<Msg<E>>> = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<Msg<E>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }

        // TCP wire (optional): one loopback stream per member; the write
        // half is shared by all senders, the read half is pumped into the
        // member's inbox by a dedicated reader thread.
        let mut reader_links: Vec<TcpLink> = Vec::new();
        let tcp = match opts.wire {
            WireMode::Channel => None,
            WireMode::Tcp => {
                let mut writers = Vec::with_capacity(n);
                let mut reader_shutdown = Vec::with_capacity(n);
                for _ in 0..n {
                    let (w, r) = TcpLink::pair().expect("loopback socket pair");
                    writers.push(Mutex::new(w));
                    reader_shutdown.push(r.try_clone().expect("clone reader handle"));
                    reader_links.push(r);
                }
                Some(TcpFabric {
                    writers,
                    reader_shutdown,
                    slab: Mutex::new(std::collections::HashMap::new()),
                    next_key: AtomicU64::new(0),
                })
            }
        };

        let shared = Arc::new(Shared {
            clock,
            net: Mutex::new(NetState::new(opts.seed)),
            topology: opts.topology,
            dead: (0..n).map(|_| AtomicBool::new(false)).collect(),
            delivered_total: AtomicU64::new(0),
            delivered_per: (0..n).map(|_| AtomicU64::new(0)).collect(),
            events: AtomicU64::new(0),
            trace_mode: opts.trace,
            trace: Mutex::new(Vec::new()),
            metrics: Mutex::new(Metrics::default()),
            wheel: TimerWheel::new(),
            tcp,
        });

        let router = Router {
            shared: shared.clone(),
            senders: senders.clone(),
        };

        let mut handles = Vec::with_capacity(n + 1 + reader_links.len());

        // Reader pumps (TCP mode only): resolve wire handles back to events
        // and feed the member inbox.
        for (i, link) in reader_links.into_iter().enumerate() {
            let shared = shared.clone();
            let tx = senders[i].clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("live-pump-{i}"))
                    .spawn(move || pump_loop(link, shared, tx))
                    .expect("spawn pump thread"),
            );
        }

        // Member threads.
        for ((i, builder), rx) in builders.into_iter().enumerate().zip(receivers) {
            let me = ProcessId::new(i as u32);
            let router = router.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("live-member-{i}"))
                    .spawn(move || member_loop(me, builder, rx, router))
                    .expect("spawn member thread"),
            );
        }

        // Timer thread.
        {
            let router = router.clone();
            handles.push(
                std::thread::Builder::new()
                    .name("live-timer".to_string())
                    .spawn(move || timer_loop(router))
                    .expect("spawn timer thread"),
            );
        }

        LiveRuntime {
            shared,
            router,
            handles,
            stopped: false,
        }
    }

    /// The runtime's clock.
    pub(crate) fn now(&self) -> Time {
        self.shared.clock.now()
    }

    /// Enqueues `event` on `p`'s `component` at `t` (immediately when `t`
    /// has already passed).
    pub(crate) fn inject(&self, t: Time, p: ProcessId, component: &'static str, event: E) {
        let msg = Msg::Inject { component, event };
        if t <= self.now() {
            // Direct inbox send — injections bypass the emulated network.
            let _ = self.router.senders[p.index()].send(msg);
        } else {
            self.shared.wheel.schedule(t, Due::Frame { to: p, msg });
        }
    }

    /// Applies (or schedules) a control action.
    pub(crate) fn control_at(&self, t: Time, action: Control) {
        if t <= self.now() {
            apply_control(&self.router, action);
        } else {
            self.shared.wheel.schedule(t, Due::Control(action));
        }
    }

    /// Sleeps the caller until the clock reaches `t`; member threads keep
    /// running the whole time.
    pub(crate) fn run_until(&self, t: Time) {
        self.shared.clock.sleep_until(t);
    }

    /// Waits until every member has crashed (true) or the clock passes
    /// `limit` (false). A live group with running members never quiesces —
    /// its failure detectors keep exchanging heartbeats forever.
    pub(crate) fn run_to_quiescence(&self, limit: Time) -> bool {
        loop {
            if self.shared.dead.iter().all(|d| d.load(Ordering::Acquire)) {
                // Grace for in-flight wheel entries to drain to nowhere.
                std::thread::sleep(std::time::Duration::from_millis(2));
                return true;
            }
            if self.now() >= limit {
                return false;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Liveness flags, one per member.
    pub(crate) fn alive_flags(&self) -> Vec<bool> {
        self.shared
            .dead
            .iter()
            .map(|d| !d.load(Ordering::Acquire))
            .collect()
    }

    /// Inbox messages dispatched group-wide.
    pub(crate) fn events_executed(&self) -> u64 {
        self.shared.events.load(Ordering::Relaxed)
    }

    /// Protocol outputs group-wide.
    pub(crate) fn delivered_total(&self) -> u64 {
        self.shared.delivered_total.load(Ordering::Relaxed)
    }

    /// Protocol outputs of one member.
    pub(crate) fn delivered_of(&self, p: ProcessId) -> u64 {
        self.shared.delivered_per[p.index()].load(Ordering::Relaxed)
    }

    /// A snapshot of the recorded output trace.
    pub(crate) fn trace_snapshot(&self) -> Vec<(Time, ProcessId, E)> {
        self.shared.trace.lock().expect("trace lock").clone()
    }

    /// A snapshot of the traffic metrics.
    pub(crate) fn metrics_snapshot(&self) -> Metrics {
        self.shared.metrics.lock().expect("metrics lock").clone()
    }

    /// Stops every thread and joins them. Idempotent; also runs on drop.
    pub(crate) fn shutdown(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.shared.wheel.shutdown();
        for s in &self.router.senders {
            let _ = s.send(Msg::Stop);
        }
        if let Some(tcp) = &self.shared.tcp {
            for link in &tcp.reader_shutdown {
                let _ = link.shutdown();
            }
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl<E: Event + Send> Drop for LiveRuntime<E> {
    fn drop(&mut self) {
        // Same teardown as `shutdown`, but without the generic bound the
        // inherent impl carries; duplicated senders/wheel logic lives there.
        self.stopped = true;
        self.shared.wheel.shutdown();
        for s in &self.router.senders {
            let _ = s.send(Msg::Stop);
        }
        if let Some(tcp) = &self.shared.tcp {
            for link in &tcp.reader_shutdown {
                let _ = link.shutdown();
            }
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The life of one member: build the process, start it, then drain the
/// inbox until crash or stop.
fn member_loop<E: Event + Send>(
    me: ProcessId,
    builder: BuildFn<E>,
    rx: Receiver<Msg<E>>,
    router: Router<E>,
) {
    let shared = router.shared.clone();
    let mut process = builder();
    let mut fx = Effects::new();
    process.start_into(shared.clock.now(), &mut fx);
    if apply_effects(me, &mut fx, &router) {
        shared.dead[me.index()].store(true, Ordering::Release);
        return;
    }
    for msg in rx.iter() {
        let now = shared.clock.now();
        match msg {
            Msg::Net {
                from,
                component,
                event,
            } => {
                shared.events.fetch_add(1, Ordering::Relaxed);
                process.deliver_net_into(from, component, event, now, &mut fx);
            }
            Msg::Inject { component, event } => {
                shared.events.fetch_add(1, Ordering::Relaxed);
                process.deliver_into(component, event, now, &mut fx);
            }
            Msg::Fire(id) => {
                shared.events.fetch_add(1, Ordering::Relaxed);
                process.fire_timer_into(id, now, &mut fx);
            }
            Msg::Crash => {
                shared.dead[me.index()].store(true, Ordering::Release);
                process.halt();
                return; // the thread IS the process: crash-stop
            }
            Msg::Stop => return,
        }
        if apply_effects(me, &mut fx, &router) {
            // The protocol halted itself (e.g. excluded from the group).
            shared.dead[me.index()].store(true, Ordering::Release);
            return;
        }
    }
    // All senders dropped: the runtime is tearing down.
}

/// Pushes one dispatch's effects out: frames to the router, timers to the
/// wheel, outputs to the trace. Returns whether the process halted.
fn apply_effects<E: Event + Send>(me: ProcessId, fx: &mut Effects<E>, router: &Router<E>) -> bool {
    let shared = &router.shared;
    let now = shared.clock.now();
    for env in fx.sends.drain() {
        router.route(now, me, env.to, env.component, env.event);
    }
    for cast in fx.casts.drain() {
        for &to in cast.to.iter() {
            router.route(now, me, to, cast.component, cast.event.clone());
        }
    }
    for t in fx.timers.drain() {
        shared.wheel.schedule(
            now.saturating_add(t.after),
            Due::Fire { proc: me, id: t.id },
        );
    }
    for out in fx.outputs.drain() {
        shared.record_output(now, me, &out);
    }
    let halted = fx.halted;
    fx.clear();
    halted
}

/// The timer thread: pops due work off the wheel until shutdown.
fn timer_loop<E: Event + Send>(router: Router<E>) {
    let shared = router.shared.clone();
    while let Some(due) = shared.wheel.next_due(&shared.clock) {
        match due {
            Due::Fire { proc, id } => {
                if !shared.is_dead(proc) {
                    router.deliver(proc, Msg::Fire(id));
                }
            }
            Due::Frame { to, msg } => {
                if matches!(msg, Msg::Net { .. }) && shared.is_dead(to) {
                    // The member crashed while the frame was in flight.
                    shared.with_metrics(|m| m.record_drop_crash());
                } else {
                    router.deliver(to, msg);
                }
            }
            Due::Control(action) => apply_control(&router, action),
        }
    }
}

/// Applies one control action now.
fn apply_control<E: Event + Send>(router: &Router<E>, action: Control) {
    if let Control::Crash(p) = action {
        let shared = &router.shared;
        if !shared.is_dead(p) {
            // Mark first so routers drop frames immediately, then tell the
            // thread to exit.
            shared.dead[p.index()].store(true, Ordering::Release);
            let _ = router.senders[p.index()].send(Msg::Crash);
        }
        return;
    }
    router.shared.net.lock().expect("net lock").apply(&action);
}

/// TCP-mode reader pump: decode wire frames for one member, resolve the
/// body handle back to the event, and enqueue it on the member's inbox.
fn pump_loop<E: Event + Send>(mut link: TcpLink, shared: Arc<Shared<E>>, tx: Sender<Msg<E>>) {
    let fabric = shared.tcp.as_ref().expect("tcp fabric in tcp mode");
    loop {
        match link.recv() {
            Ok(Some((_header, body))) => {
                if body.len() != 8 {
                    continue; // not a handle frame; ignore
                }
                let key = u64::from_be_bytes(body[..8].try_into().expect("8-byte handle"));
                let entry = fabric.slab.lock().expect("slab lock").remove(&key);
                if let Some((from, component, event)) = entry {
                    if tx
                        .send(Msg::Net {
                            from,
                            component,
                            event,
                        })
                        .is_err()
                    {
                        return; // member exited; stop pumping
                    }
                }
            }
            Ok(None) | Err(_) => return, // stream shut down
        }
    }
}
