//! The shared fabric of a live group: inboxes, the timer wheel, and the
//! network emulation layer every frame crosses.
//!
//! Each group member is an OS thread draining an `mpsc` inbox of [`Msg`]s.
//! Anything that must happen *later* — a protocol timer, a frame held back
//! by an emulated link delay, a scheduled fault — is an entry in the
//! [`TimerWheel`], a `BinaryHeap` + `Condvar` serviced by one dedicated
//! timer thread per group.
//!
//! The [`Router`] is the one gate between a sender and a receiver's inbox.
//! It consults [`NetState`] (partitions, per-link overrides, loss bursts,
//! delay spikes, token-bucket bandwidth) so that fault injection composes
//! exactly as it does in the simulator, and accounts every frame in the
//! same [`Metrics`] vocabulary.

use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};

use gcs_kernel::{Event, ProcessId, Time, TimeDelta, TimerId};
use gcs_net::{FrameHeader, Link, TcpLink};
use gcs_sim::{LinkModel, Metrics, Topology, TraceMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Emulated one-way delays below this floor are not worth a trip through
/// the timer wheel: the real channel/TCP hop already costs tens of
/// microseconds, so sub-200µs link models deliver directly and let the
/// wire's own latency stand in for the model's.
pub(crate) const DELAY_FLOOR: TimeDelta = TimeDelta::from_micros(200);

/// Burst credit a token-bucket link accrues while idle: a sender that
/// paused may transmit this much "for free" before bandwidth pacing kicks
/// back in (mirrors the leaky-bucket shape of real shapers).
const BUCKET_BURST: TimeDelta = TimeDelta::from_millis(5);

/// One message in a member's inbox.
#[derive(Debug)]
pub(crate) enum Msg<E> {
    /// A protocol frame from another member (or a loopback self-send).
    Net {
        /// Sending process.
        from: ProcessId,
        /// Destination component within the receiver.
        component: &'static str,
        /// The event carried by the frame.
        event: E,
    },
    /// A harness injection (client request, join/remove signal).
    Inject {
        /// Destination component.
        component: &'static str,
        /// The injected event.
        event: E,
    },
    /// A protocol timer came due.
    Fire(TimerId),
    /// Kill this member: mark it crashed and exit the thread.
    Crash,
    /// Orderly runtime shutdown (no crash accounting).
    Stop,
}

/// Work owed to the future, parked in the timer wheel.
#[derive(Debug)]
pub(crate) enum Due<E> {
    /// Fire protocol timer `id` on `proc`.
    Fire {
        /// Owning process.
        proc: ProcessId,
        /// The timer to fire.
        id: TimerId,
    },
    /// Deliver a delayed or future-scheduled inbox message.
    Frame {
        /// Destination process.
        to: ProcessId,
        /// The message to enqueue.
        msg: Msg<E>,
    },
    /// Apply a scheduled fault / network control action.
    Control(Control),
}

/// A network- or fault-control action, applied by the timer thread at its
/// scheduled instant (or immediately when already due).
#[derive(Debug)]
pub(crate) enum Control {
    /// Crash-stop a member (its thread exits; its inbox drains to nowhere).
    Crash(ProcessId),
    /// Install a partition: frames pass only within a group.
    Partition(Vec<Vec<ProcessId>>),
    /// Remove any partition.
    Heal,
    /// Override one directed link's model.
    SetLink {
        /// Sender side of the link.
        from: ProcessId,
        /// Receiver side of the link.
        to: ProcessId,
        /// The model to apply from now on.
        link: LinkModel,
    },
    /// Add `extra` delay to every frame until `until`.
    Spike {
        /// Expiry instant.
        until: Time,
        /// Added one-way delay.
        extra: TimeDelta,
    },
    /// Add `prob` loss to every frame until `until`.
    Burst {
        /// Expiry instant.
        until: Time,
        /// Added drop probability.
        prob: f64,
    },
}

/// Leaky-bucket pacing state for one directed link with finite bandwidth.
///
/// `next_free` is the instant the link finishes transmitting everything
/// already accepted; a new frame of `b` bytes departs at
/// `max(now, next_free)` and pushes `next_free` forward by `b / bandwidth`.
/// While idle the bucket accrues up to [`BUCKET_BURST`] of credit, so a
/// bursty sender is not paced until it has actually outrun the link.
#[derive(Debug, Default, Clone, Copy)]
struct TokenBucket {
    next_free: Time,
}

impl TokenBucket {
    fn delay(&mut self, now: Time, bytes: usize, bandwidth: u64) -> TimeDelta {
        let ser = TimeDelta::from_nanos(
            (bytes as u128 * 1_000_000_000 / bandwidth.max(1) as u128) as u64,
        );
        // Idle credit: never let the bucket fall more than BUCKET_BURST
        // behind the present.
        let floor = Time::from_nanos(now.as_nanos().saturating_sub(BUCKET_BURST.as_nanos()));
        if self.next_free < floor {
            self.next_free = floor;
        }
        let wait = self.next_free.since(now);
        self.next_free = self.next_free.saturating_add(ser);
        wait
    }
}

/// Mutable network-emulation state, shared behind one mutex.
pub(crate) struct NetState {
    partition: Option<Vec<Vec<ProcessId>>>,
    overrides: HashMap<(u32, u32), LinkModel>,
    buckets: HashMap<(u32, u32), TokenBucket>,
    spike: Option<(Time, TimeDelta)>,
    burst: Option<(Time, f64)>,
    rng: StdRng,
}

impl NetState {
    pub(crate) fn new(seed: u64) -> Self {
        NetState {
            partition: None,
            overrides: HashMap::new(),
            buckets: HashMap::new(),
            spike: None,
            burst: None,
            rng: StdRng::seed_from_u64(seed ^ 0x11fe_c0de),
        }
    }

    pub(crate) fn apply(&mut self, action: &Control) {
        match action {
            Control::Partition(groups) => self.partition = Some(groups.clone()),
            Control::Heal => self.partition = None,
            Control::SetLink { from, to, link } => {
                self.overrides.insert((from.raw(), to.raw()), *link);
            }
            Control::Spike { until, extra } => self.spike = Some((*until, *extra)),
            Control::Burst { until, prob } => self.burst = Some((*until, *prob)),
            // Crash is handled by the dispatcher (it owns the inboxes).
            Control::Crash(_) => {}
        }
    }

    /// Whether a partition currently blocks `from` → `to` (same rule as the
    /// simulator: allowed only when some group contains both endpoints).
    fn blocked(&self, from: ProcessId, to: ProcessId) -> bool {
        match &self.partition {
            None => false,
            Some(groups) => !groups.iter().any(|g| g.contains(&from) && g.contains(&to)),
        }
    }

    /// The fate of one frame: `None` if the emulated link dropped it,
    /// otherwise the artificial delay to add on top of the real wire.
    fn frame_delay(
        &mut self,
        topology: &Topology,
        from: ProcessId,
        to: ProcessId,
        bytes: usize,
        now: Time,
    ) -> Option<TimeDelta> {
        let link = self
            .overrides
            .get(&(from.raw(), to.raw()))
            .copied()
            .unwrap_or_else(|| topology.link(from, to));
        let mut drop_prob = link.drop_prob;
        if let Some((until, prob)) = self.burst {
            if now < until {
                drop_prob += prob;
            } else {
                self.burst = None;
            }
        }
        if drop_prob > 0.0 && self.rng.gen::<f64>() < drop_prob {
            return None;
        }
        let mut delay = TimeDelta::ZERO;
        // LAN-scale models fall below the floor entirely; WAN presets and
        // `set-link` overrides are emulated by parking the frame.
        if link.delay_max >= DELAY_FLOOR {
            delay = delay + link.sample_delay(&mut self.rng);
        }
        if let Some((until, extra)) = self.spike {
            if now < until {
                delay = delay + extra;
            } else {
                self.spike = None;
            }
        }
        if link.bandwidth > 0 {
            let bucket = self.buckets.entry((from.raw(), to.raw())).or_default();
            delay = delay + bucket.delay(now, bytes, link.bandwidth);
        }
        Some(delay)
    }
}

/// Min-ordered heap entry (`BinaryHeap` is a max-heap, so ordering is
/// reversed; `seq` breaks ties FIFO).
struct HeapEntry<E> {
    at: Time,
    seq: u64,
    due: Due<E>,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct WheelInner<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    seq: u64,
    shutdown: bool,
}

/// The group's single source of future work: protocol timers, delayed
/// frames, and scheduled control actions, serviced by one timer thread.
pub(crate) struct TimerWheel<E> {
    inner: Mutex<WheelInner<E>>,
    cond: Condvar,
}

impl<E> TimerWheel<E> {
    pub(crate) fn new() -> Self {
        TimerWheel {
            inner: Mutex::new(WheelInner {
                heap: BinaryHeap::new(),
                seq: 0,
                shutdown: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Parks `due` until `at` (the timer thread wakes early if this becomes
    /// the nearest deadline).
    pub(crate) fn schedule(&self, at: Time, due: Due<E>) {
        let mut inner = self.inner.lock().expect("wheel lock");
        if inner.shutdown {
            return;
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.heap.push(HeapEntry { at, seq, due });
        self.cond.notify_one();
    }

    /// Stops the timer thread (pending entries are abandoned).
    pub(crate) fn shutdown(&self) {
        self.inner.lock().expect("wheel lock").shutdown = true;
        self.cond.notify_all();
    }

    /// Blocks until an entry is due or shutdown; `now` is re-read through
    /// `clock` on every wakeup. Returns `None` on shutdown.
    pub(crate) fn next_due(&self, clock: &crate::WallClock) -> Option<Due<E>> {
        let mut inner = self.inner.lock().expect("wheel lock");
        loop {
            if inner.shutdown {
                return None;
            }
            let now = clock.now();
            match inner.heap.peek() {
                None => {
                    inner = self.cond.wait(inner).expect("wheel lock");
                }
                Some(top) if top.at <= now => {
                    return Some(inner.heap.pop().expect("peeked entry").due);
                }
                Some(top) => {
                    let wait = std::time::Duration::from_nanos(top.at.since(now).as_nanos());
                    let (guard, _) = self.cond.wait_timeout(inner, wait).expect("wheel lock");
                    inner = guard;
                }
            }
        }
    }
}

/// Everything live-group threads share by `Arc`.
pub(crate) struct Shared<E> {
    /// The group's wall clock (epoch = runtime start).
    pub clock: crate::WallClock,
    /// Link emulation state.
    pub net: Mutex<NetState>,
    /// Baseline link models by region.
    pub topology: Topology,
    /// Crash flags, one per process; set before the member thread exits so
    /// routers drop frames to it immediately.
    pub dead: Vec<AtomicBool>,
    /// Total protocol outputs across the group.
    pub delivered_total: AtomicU64,
    /// Per-process protocol output counts.
    pub delivered_per: Vec<AtomicU64>,
    /// Dispatched kernel events (inbox messages processed) across the group.
    pub events: AtomicU64,
    /// How much of the output stream to record.
    pub trace_mode: TraceMode,
    /// Recorded protocol outputs (empty unless `trace_mode` is `Full`).
    pub trace: Mutex<Vec<(Time, ProcessId, E)>>,
    /// Traffic accounting, same vocabulary as the simulator.
    pub metrics: Mutex<Metrics>,
    /// Future work.
    pub wheel: TimerWheel<E>,
    /// TCP wire state, when the group runs in [`crate::WireMode::Tcp`].
    pub tcp: Option<TcpFabric<E>>,
}

impl<E: Event + Send> Shared<E> {
    pub(crate) fn with_metrics<T>(&self, f: impl FnOnce(&mut Metrics) -> T) -> T {
        f(&mut self.metrics.lock().expect("metrics lock"))
    }

    pub(crate) fn is_dead(&self, p: ProcessId) -> bool {
        self.dead[p.index()].load(Ordering::Acquire)
    }

    pub(crate) fn record_output(&self, now: Time, proc: ProcessId, event: &E) {
        // Same sink semantics as the simulator's `Trace`: `Off` observes
        // nothing, `CountsOnly` keeps the counters, `Full` keeps the events.
        if matches!(self.trace_mode, TraceMode::Off) {
            return;
        }
        self.delivered_total.fetch_add(1, Ordering::Relaxed);
        self.delivered_per[proc.index()].fetch_add(1, Ordering::Relaxed);
        if matches!(self.trace_mode, TraceMode::Full) {
            self.trace
                .lock()
                .expect("trace lock")
                .push((now, proc, event.clone()));
        }
    }
}

/// The TCP wire: one loopback stream per member, bodies carried as slab
/// handles (see the `gcs_net::link` module docs — the wire exercises real
/// framing, ordering and flow control; payload bytes stay in-process, the
/// honest boundary of a reproduction without a serialization layer).
pub(crate) struct TcpFabric<E> {
    /// Write halves, locked per destination (any thread may send).
    pub writers: Vec<Mutex<TcpLink>>,
    /// Shutdown handles (clones of the *reader* side, used to unblock pumps).
    pub reader_shutdown: Vec<TcpLink>,
    /// In-flight frame bodies keyed by the u64 handle on the wire.
    pub slab: Mutex<HashMap<u64, (ProcessId, &'static str, E)>>,
    /// Next slab key.
    pub next_key: AtomicU64,
}

/// Channel tag for protocol net frames on the TCP wire.
pub(crate) const CHAN_NET: u8 = 0;

/// One thread's handle for sending frames into the group.
///
/// `mpsc::Sender` is `Send` but not `Sync`, so every thread owns its own
/// clone of the full sender table rather than sharing one behind a lock.
pub(crate) struct Router<E> {
    pub shared: std::sync::Arc<Shared<E>>,
    pub senders: Vec<Sender<Msg<E>>>,
}

impl<E: Event + Send> Clone for Router<E> {
    fn clone(&self) -> Self {
        Router {
            shared: self.shared.clone(),
            senders: self.senders.clone(),
        }
    }
}

impl<E: Event + Send> Router<E> {
    /// Routes one protocol frame, applying the emulated network: metrics,
    /// crash/partition/loss drops, and artificial delay via the wheel.
    pub(crate) fn route(
        &self,
        now: Time,
        from: ProcessId,
        to: ProcessId,
        component: &'static str,
        event: E,
    ) {
        let bytes = event.wire_size();
        self.shared
            .with_metrics(|m| m.record_send(event.kind(), bytes));
        let msg = Msg::Net {
            from,
            component,
            event,
        };
        // Loopback self-sends never traverse the network model.
        if from == to {
            self.deliver(to, msg);
            return;
        }
        if self.shared.is_dead(to) {
            self.shared.with_metrics(|m| m.record_drop_crash());
            return;
        }
        let delay = {
            let mut net = self.shared.net.lock().expect("net lock");
            if net.blocked(from, to) {
                drop(net);
                self.shared.with_metrics(|m| m.record_drop_partition());
                return;
            }
            match net.frame_delay(&self.shared.topology, from, to, bytes, now) {
                None => {
                    self.shared.with_metrics(|m| m.record_drop_loss());
                    return;
                }
                Some(d) => d,
            }
        };
        if delay < DELAY_FLOOR {
            self.deliver(to, msg);
        } else {
            self.shared
                .wheel
                .schedule(now.saturating_add(delay), Due::Frame { to, msg });
        }
    }

    /// Puts a message on `to`'s inbox — over the TCP wire for net frames
    /// when the group runs in TCP mode, directly otherwise. A send to an
    /// exited member counts as a crash drop (the frame died on the wire).
    pub(crate) fn deliver(&self, to: ProcessId, msg: Msg<E>) {
        if let (
            Some(tcp),
            Msg::Net {
                from,
                component,
                event,
            },
        ) = (&self.shared.tcp, &msg)
        {
            let key = tcp.next_key.fetch_add(1, Ordering::Relaxed);
            tcp.slab
                .lock()
                .expect("slab lock")
                .insert(key, (*from, *component, event.clone()));
            let header = FrameHeader {
                channel: CHAN_NET,
                from: from.raw(),
                to: to.raw(),
                len: 8,
            };
            let sent = tcp.writers[to.index()]
                .lock()
                .expect("writer lock")
                .send(&header, &key.to_be_bytes())
                .is_ok();
            if sent {
                self.shared.with_metrics(|m| m.record_delivery());
            } else {
                tcp.slab.lock().expect("slab lock").remove(&key);
                self.shared.with_metrics(|m| m.record_drop_crash());
            }
            return;
        }
        let was_frame = matches!(msg, Msg::Net { .. });
        if self.senders[to.index()].send(msg).is_ok() {
            if was_frame {
                self.shared.with_metrics(|m| m.record_delivery());
            }
        } else if was_frame {
            // Receiver gone: the member crashed between our liveness check
            // and the send. The frame is lost exactly as on a real wire.
            // (Timer fires and control messages to an exited member are
            // simply moot, not lost traffic.)
            self.shared.with_metrics(|m| m.record_drop_crash());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_paces_after_burst_credit() {
        let mut b = TokenBucket::default();
        let now = Time::from_secs(1);
        // 1 MB/s link, 10 kB frames: 10 ms serialization each.
        let bw = 1_000_000;
        // First frames ride the burst credit.
        assert_eq!(b.delay(now, 10_000, bw), TimeDelta::ZERO);
        // Credit (5 ms) is outrun after the first frame's 10 ms commitment.
        let d2 = b.delay(now, 10_000, bw);
        assert_eq!(d2, TimeDelta::from_millis(5));
        let d3 = b.delay(now, 10_000, bw);
        assert_eq!(d3, TimeDelta::from_millis(15));
        // After a long idle gap the credit is restored.
        let later = now.saturating_add(TimeDelta::from_secs(10));
        assert_eq!(b.delay(later, 10_000, bw), TimeDelta::ZERO);
    }

    #[test]
    fn partition_blocks_and_heals() {
        let p = |n| ProcessId::new(n);
        let mut net = NetState::new(1);
        assert!(!net.blocked(p(0), p(2)));
        net.apply(&Control::Partition(vec![vec![p(0), p(1)], vec![p(2)]]));
        assert!(net.blocked(p(0), p(2)));
        assert!(!net.blocked(p(0), p(1)));
        net.apply(&Control::Heal);
        assert!(!net.blocked(p(0), p(2)));
    }

    #[test]
    fn lan_links_fall_below_the_emulation_floor() {
        let mut net = NetState::new(2);
        let topo = Topology::lan();
        let d = net
            .frame_delay(&topo, ProcessId::new(0), ProcessId::new(1), 64, Time::ZERO)
            .expect("no loss on lan");
        // LAN delay_max (1.2 ms) is above the floor, so it IS emulated…
        assert!(d >= topo.link(ProcessId::new(0), ProcessId::new(1)).delay_min);
        // …while a sub-floor override is not.
        net.apply(&Control::SetLink {
            from: ProcessId::new(0),
            to: ProcessId::new(1),
            link: LinkModel {
                delay_min: TimeDelta::ZERO,
                delay_max: TimeDelta::from_micros(50),
                drop_prob: 0.0,
                dup_prob: 0.0,
                bandwidth: 0,
            },
        });
        let d = net
            .frame_delay(&topo, ProcessId::new(0), ProcessId::new(1), 64, Time::ZERO)
            .expect("no loss");
        assert_eq!(d, TimeDelta::ZERO);
    }

    #[test]
    fn wheel_orders_by_deadline_and_shuts_down() {
        let wheel: TimerWheel<u32> = TimerWheel::new();
        let clock = crate::WallClock::new();
        let soon = clock.now().saturating_add(TimeDelta::from_millis(2));
        let sooner = clock.now().saturating_add(TimeDelta::from_millis(1));
        wheel.schedule(
            soon,
            Due::Frame {
                to: ProcessId::new(1),
                msg: Msg::Inject {
                    component: "x",
                    event: 2,
                },
            },
        );
        wheel.schedule(
            sooner,
            Due::Frame {
                to: ProcessId::new(0),
                msg: Msg::Inject {
                    component: "x",
                    event: 1,
                },
            },
        );
        let first = wheel.next_due(&clock).expect("entry");
        match first {
            Due::Frame { to, .. } => assert_eq!(to, ProcessId::new(0)),
            other => panic!("unexpected {other:?}"),
        }
        let second = wheel.next_due(&clock).expect("entry");
        match second {
            Due::Frame { to, .. } => assert_eq!(to, ProcessId::new(1)),
            other => panic!("unexpected {other:?}"),
        }
        wheel.shutdown();
        assert!(wheel.next_due(&clock).is_none());
    }
}
