//! # gcs-live — the live backend: real processes, real clocks, real wire
//!
//! The simulator executes the protocol suite as a discrete-event program:
//! one thread, a virtual clock, deterministic scheduling. This crate runs
//! the **same sans-I/O kernel processes** as a concurrent system:
//!
//! * every group member is an **OS thread** running the kernel dispatch
//!   loop over an inbox;
//! * **timers are wall-clock deadlines** — a per-group timer thread parks
//!   on a deadline heap and wakes members when protocol timeouts actually
//!   elapse;
//! * **frames cross a real wire** — in-process channels by default
//!   ([`WireMode::Channel`]), or one loopback-TCP stream per member
//!   ([`WireMode::Tcp`]) running the `gcs_net::link` frame codec;
//! * **faults are real**: a crash makes the member's thread exit (frames
//!   to it die on the wire), partitions and link changes act on the frame
//!   path itself, and finite-bandwidth links are paced by a token bucket.
//!
//! Nothing above the kernel changes: the protocol components cannot tell
//! whether a virtual scheduler or a thread is calling them — that is the
//! sans-I/O contract, and this crate is its proof. [`LiveGroup`] mirrors
//! the simulator harnesses' surface (injection, membership, faults, trace
//! projections), so the facade crate can put both backends behind one
//! `GroupTransport`.
//!
//! Determinism is **not** promised here — thread interleavings and real
//! clocks vary between runs. Live assertions should be bound-based
//! ("everyone delivers within 20 s"), not fingerprint-based; the
//! simulator remains the place for bit-identical replay.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod fabric;
mod group;
mod runtime;

pub use clock::WallClock;
pub use group::{LiveConfig, LiveDelivery, LiveGroup, LiveStackKind};
pub use runtime::WireMode;
