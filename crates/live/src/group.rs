//! [`LiveGroup`]: the three protocol stacks hosted on the live runtime.
//!
//! A `LiveGroup` is the live-backend counterpart of `gcs_core::GroupSim` /
//! `gcs_traditional::{IsisSim, TokenSim}` — one type covering all three
//! stacks, because the runtime underneath is stack-agnostic: it moves
//! frames and fires timers; only injection entry points and trace
//! projections differ per stack.
//!
//! Time is real: `Time::ZERO` is the instant the group started and
//! `run_until(t)` sleeps the *caller* while member threads keep working.
//! A scenario written for the simulator (inject at 1 ms, crash at 50 ms)
//! runs unchanged — the stacks' millisecond-scale timeouts make live runs
//! take wall milliseconds, not minutes.

use bytes::Bytes;
use gcs_core::components::names;
use gcs_core::{build_process, DeliveryKind, Ev, MessageClass, StackConfig, View};
use gcs_fd::MonitorClass;
use gcs_kernel::{PayloadRef, ProcessId, SharedArena, Time};
use gcs_sim::{LinkModel, Metrics, Schedule, ScheduleAction, Topology, TraceMode};
use gcs_traditional::isis::IsisStack;
use gcs_traditional::token::TokenStack;
use gcs_traditional::{IsisConfig, IsisEvent, TokenConfig, TokenEvent};

use crate::fabric::Control;
use crate::runtime::{BuildFn, LiveRuntime, RuntimeOptions};
use crate::WireMode;

/// Which protocol stack a [`LiveGroup`] runs (the live twin of the API
/// crate's `StackKind`, kept separate so `gcs-live` does not depend on the
/// facade above it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LiveStackKind {
    /// The paper's new architecture (consensus-based abcast + gbcast).
    NewArch,
    /// The Isis-style sequencer baseline.
    Isis,
    /// The token-ring (Totem/RMP-style) baseline.
    Token,
}

/// Group-level options independent of the protocol stack.
#[derive(Clone, Debug)]
pub struct LiveConfig {
    /// Founding members.
    pub members: usize,
    /// Processes started outside the group (activate with `join_at`).
    pub joiners: usize,
    /// Seed for the emulated network's randomness (loss, delay sampling).
    pub seed: u64,
    /// Baseline link models. Delays below the emulation floor ride the
    /// real wire; WAN presets and overrides are emulated by parking frames
    /// on the timer wheel.
    pub topology: Topology,
    /// Output recording mode.
    pub trace: TraceMode,
    /// How frames physically move between member threads.
    pub wire: WireMode,
}

impl LiveConfig {
    /// `members` founders on a LAN topology, full trace, channel wire.
    pub fn new(members: usize) -> Self {
        LiveConfig {
            members,
            joiners: 0,
            seed: 42,
            topology: Topology::lan(),
            trace: TraceMode::Full,
            wire: WireMode::Channel,
        }
    }

    /// Adds processes that start outside the group.
    pub fn with_joiners(mut self, joiners: usize) -> Self {
        self.joiners = joiners;
        self
    }

    /// Sets the network-emulation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the baseline topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the trace sink mode.
    pub fn with_trace(mut self, trace: TraceMode) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the wire mode.
    pub fn with_wire(mut self, wire: WireMode) -> Self {
        self.wire = wire;
        self
    }
}

/// One delivery observed in a live group's trace, in the neutral
/// vocabulary shared by all three stacks.
#[derive(Clone, Copy, Debug)]
pub struct LiveDelivery {
    /// Delivery instant.
    pub time: Time,
    /// The delivering process.
    pub proc: ProcessId,
    /// The original sender.
    pub sender: ProcessId,
    /// Sender-local sequence number of the message.
    pub seq: u64,
    /// Which primitive delivered it.
    pub kind: DeliveryKind,
    /// Conflict class.
    pub class: MessageClass,
    /// View (or ring generation) current at delivery.
    pub view: u64,
    /// Payload handle (resolve via [`LiveGroup::resolve`]).
    pub payload: PayloadRef,
}

enum Inner {
    NewArch(LiveRuntime<Ev>),
    Isis(LiveRuntime<IsisEvent>),
    Token(LiveRuntime<TokenEvent>),
}

macro_rules! on_inner {
    ($self:expr, $rt:ident => $body:expr) => {
        match &$self.inner {
            Inner::NewArch($rt) => $body,
            Inner::Isis($rt) => $body,
            Inner::Token($rt) => $body,
        }
    };
}

/// A group of real processes: every member is an OS thread, timers are
/// wall-clock deadlines, frames cross channels or loopback TCP.
///
/// ```
/// use gcs_live::{LiveConfig, LiveGroup};
/// use gcs_core::StackConfig;
/// use gcs_kernel::{ProcessId, Time, TimeDelta};
///
/// let mut group = LiveGroup::new_arch(StackConfig::default(), LiveConfig::new(3));
/// group.abcast_at(group.now(), ProcessId::new(0), b"hello".to_vec());
/// // Real time: poll until the group delivered everywhere (bounded).
/// let deadline = group.now() + TimeDelta::from_secs(10);
/// while group.delivery_count() < 3 && group.now() < deadline {
///     group.run_until(group.now() + TimeDelta::from_millis(5));
/// }
/// assert_eq!(group.delivery_count(), 3);
/// ```
pub struct LiveGroup {
    inner: Inner,
    stack: LiveStackKind,
    arena: SharedArena,
    topology: Topology,
    n_members: usize,
    n_total: usize,
    /// Abcast operations accepted for injection (backpressure ledger).
    offered: u64,
    /// Optional bound on the injection-time backlog (`None` = unbounded).
    queue_capacity: Option<usize>,
    /// Highest backlog observed at an accepted injection.
    queue_high_water: usize,
    /// Snapshot of the runtime's metrics, refreshed by the run methods so
    /// `metrics()` can hand out a reference like the simulator harnesses.
    metrics_cache: Metrics,
}

impl LiveGroup {
    // -- construction ------------------------------------------------------

    /// Starts a live group running the paper's new architecture.
    pub fn new_arch(config: StackConfig, live: LiveConfig) -> LiveGroup {
        let n = live.members;
        let members: Vec<ProcessId> = (0..n as u32).map(ProcessId::new).collect();
        let view = View::initial(members);
        let mut builders: Vec<BuildFn<Ev>> = Vec::with_capacity(n + live.joiners);
        for i in 0..n + live.joiners {
            let id = ProcessId::new(i as u32);
            let config = config.clone();
            let view = (i < n).then(|| view.clone());
            builders.push(Box::new(move || build_process(id, &config, view, n)));
        }
        Self::start(LiveStackKind::NewArch, live, |opts| {
            Inner::NewArch(LiveRuntime::start(builders, opts))
        })
    }

    /// Starts a live group running the Isis-style sequencer baseline.
    pub fn isis(config: IsisConfig, live: LiveConfig) -> LiveGroup {
        let n = live.members;
        let members: Vec<ProcessId> = (0..n as u32).map(ProcessId::new).collect();
        let mut builders: Vec<BuildFn<IsisEvent>> = Vec::with_capacity(n + live.joiners);
        for i in 0..n + live.joiners {
            let id = ProcessId::new(i as u32);
            let initial = (i < n).then(|| members.clone());
            builders.push(Box::new(move || {
                gcs_kernel::Process::builder(id)
                    .with(IsisStack::new(id, initial, config))
                    .build()
            }));
        }
        Self::start(LiveStackKind::Isis, live, |opts| {
            Inner::Isis(LiveRuntime::start(builders, opts))
        })
    }

    /// Starts a live group running the token-ring baseline.
    pub fn token(config: TokenConfig, live: LiveConfig) -> LiveGroup {
        let n = live.members;
        let ring: Vec<ProcessId> = (0..n as u32).map(ProcessId::new).collect();
        let mut builders: Vec<BuildFn<TokenEvent>> = Vec::with_capacity(n + live.joiners);
        for i in 0..n + live.joiners {
            let id = ProcessId::new(i as u32);
            let initial = (i < n).then(|| ring.clone());
            builders.push(Box::new(move || {
                gcs_kernel::Process::builder(id)
                    .with(TokenStack::new(id, initial, config))
                    .build()
            }));
        }
        Self::start(LiveStackKind::Token, live, |opts| {
            Inner::Token(LiveRuntime::start(builders, opts))
        })
    }

    fn start(
        stack: LiveStackKind,
        live: LiveConfig,
        boot: impl FnOnce(RuntimeOptions) -> Inner,
    ) -> LiveGroup {
        let topology = live.topology.clone();
        let inner = boot(RuntimeOptions {
            seed: live.seed,
            topology: live.topology,
            trace: live.trace,
            wire: live.wire,
        });
        LiveGroup {
            inner,
            stack,
            arena: SharedArena::new(),
            topology,
            n_members: live.members,
            n_total: live.members + live.joiners,
            offered: 0,
            queue_capacity: None,
            queue_high_water: 0,
            metrics_cache: Metrics::default(),
        }
    }

    // -- identity ----------------------------------------------------------

    /// Which protocol stack this group runs.
    pub fn stack(&self) -> LiveStackKind {
        self.stack
    }

    /// Total process count (members + joiners).
    pub fn len(&self) -> usize {
        self.n_total
    }

    /// Whether the group hosts no processes at all.
    pub fn is_empty(&self) -> bool {
        self.n_total == 0
    }

    /// Founding-member count.
    pub fn founding_members(&self) -> usize {
        self.n_members
    }

    /// The current instant of the group's clock (nanoseconds since start).
    pub fn now(&self) -> Time {
        on_inner!(self, rt => rt.now())
    }

    // -- payloads ----------------------------------------------------------

    /// The payload arena backing this group's message plane.
    pub fn arena(&self) -> &SharedArena {
        &self.arena
    }

    /// Resolves a delivered payload handle to its bytes.
    ///
    /// # Panics
    ///
    /// Panics on a handle not issued by this group's arena.
    pub fn resolve(&self, payload: PayloadRef) -> Bytes {
        self.arena.get(payload)
    }

    // -- backpressure ------------------------------------------------------

    /// Bounds the injection-time abcast backlog; `None` removes the bound.
    pub fn set_queue_capacity(&mut self, cap: Option<usize>) {
        self.queue_capacity = cap;
    }

    /// The configured abcast backlog bound, if any.
    pub fn queue_capacity(&self) -> Option<usize> {
        self.queue_capacity
    }

    /// Abcast operations accepted for injection so far.
    pub fn abcast_offered(&self) -> u64 {
        self.offered
    }

    /// The abcast backlog as seen from `p`: operations accepted minus trace
    /// outputs observed at `p` — the same approximation the simulator
    /// harnesses use.
    pub fn queue_depth(&self, p: ProcessId) -> usize {
        let drained = on_inner!(self, rt => rt.delivered_of(p));
        self.offered.saturating_sub(drained) as usize
    }

    /// Highest backlog observed at an accepted injection.
    pub fn queue_high_water(&self) -> usize {
        self.queue_high_water
    }

    // -- workload ----------------------------------------------------------

    /// Atomically broadcasts `payload` from `p` at `t` (immediately when
    /// `t` has passed). The payload is interned in the group's arena.
    pub fn abcast_at(&mut self, t: Time, p: ProcessId, payload: impl Into<Bytes>) {
        let payload = self.arena.intern(payload.into());
        self.abcast_ref_at(t, p, payload);
    }

    /// Atomically broadcasts an already-interned payload handle.
    pub fn abcast_ref_at(&mut self, t: Time, p: ProcessId, payload: PayloadRef) {
        self.offered += 1;
        let drained = on_inner!(self, rt => rt.delivered_of(p));
        let backlog = self.offered.saturating_sub(drained) as usize;
        if backlog > self.queue_high_water {
            self.queue_high_water = backlog;
        }
        match &self.inner {
            Inner::NewArch(rt) => rt.inject(t, p, names::ABCAST, Ev::Abcast(payload)),
            Inner::Isis(rt) => rt.inject(t, p, "isis", IsisEvent::Abcast(payload)),
            Inner::Token(rt) => rt.inject(t, p, "token", TokenEvent::Abcast(payload)),
        }
    }

    /// Generic-broadcasts `payload` of `class` from `p` at `t` (new
    /// architecture only).
    ///
    /// # Panics
    ///
    /// Panics on the baseline stacks, which have no generic broadcast.
    pub fn gbcast_at(
        &mut self,
        t: Time,
        p: ProcessId,
        class: MessageClass,
        payload: impl Into<Bytes>,
    ) {
        let payload = self.arena.intern(payload.into());
        self.gbcast_ref_at(t, p, class, payload);
    }

    /// Generic-broadcasts an already-interned payload handle.
    ///
    /// # Panics
    ///
    /// Panics on the baseline stacks, which have no generic broadcast.
    pub fn gbcast_ref_at(
        &mut self,
        t: Time,
        p: ProcessId,
        class: MessageClass,
        payload: PayloadRef,
    ) {
        match &self.inner {
            Inner::NewArch(rt) => rt.inject(t, p, names::GENERIC, Ev::Gbcast(class, payload)),
            _ => panic!("{:?} stack does not expose generic broadcast", self.stack),
        }
    }

    /// Reliably broadcasts `payload` from `p` at `t` (new architecture
    /// only; see [`gbcast_at`](Self::gbcast_at) for the baseline caveat).
    ///
    /// # Panics
    ///
    /// Panics on the baseline stacks, which have no reliable broadcast.
    pub fn rbcast_at(&mut self, t: Time, p: ProcessId, payload: impl Into<Bytes>) {
        let payload = self.arena.intern(payload.into());
        self.rbcast_ref_at(t, p, payload);
    }

    /// Reliably broadcasts an already-interned payload handle.
    ///
    /// # Panics
    ///
    /// Panics on the baseline stacks, which have no reliable broadcast.
    pub fn rbcast_ref_at(&mut self, t: Time, p: ProcessId, payload: PayloadRef) {
        match &self.inner {
            Inner::NewArch(rt) => rt.inject(t, p, names::GENERIC, Ev::Rbcast(payload)),
            _ => panic!("{:?} stack does not expose reliable broadcast", self.stack),
        }
    }

    // -- membership --------------------------------------------------------

    /// Schedules non-member `joiner` to request membership (via `contact`
    /// on the new architecture; the baselines route the request through
    /// their own coordinator/ring and ignore `contact`).
    pub fn join_at(&mut self, t: Time, joiner: ProcessId, contact: ProcessId) {
        match &self.inner {
            Inner::NewArch(rt) => rt.inject(t, joiner, names::MEMBERSHIP, Ev::JoinVia(contact)),
            Inner::Isis(rt) => rt.inject(t, joiner, "isis", IsisEvent::Join),
            Inner::Token(rt) => rt.inject(t, joiner, "token", TokenEvent::Join),
        }
    }

    /// Schedules member `by` to ask for the removal of `target`.
    pub fn remove_at(&mut self, t: Time, by: ProcessId, target: ProcessId) {
        match &self.inner {
            Inner::NewArch(rt) => rt.inject(t, by, names::MEMBERSHIP, Ev::RemoveMember(target)),
            Inner::Isis(rt) => rt.inject(t, by, "isis", IsisEvent::Remove(target)),
            Inner::Token(rt) => rt.inject(t, by, "token", TokenEvent::Remove(target)),
        }
    }

    // -- faults ------------------------------------------------------------

    /// Crash-stops `p` at `t`: its thread exits and every frame addressed
    /// to it from then on is dropped.
    pub fn crash_at(&mut self, t: Time, p: ProcessId) {
        on_inner!(self, rt => rt.control_at(t, Control::Crash(p)));
    }

    /// Installs a partition at `t` (frames pass only within a group).
    pub fn partition_at(&mut self, t: Time, groups: Vec<Vec<ProcessId>>) {
        on_inner!(self, rt => rt.control_at(t, Control::Partition(groups.clone())));
    }

    /// Heals any partition at `t`.
    pub fn heal_at(&mut self, t: Time) {
        on_inner!(self, rt => rt.control_at(t, Control::Heal));
    }

    /// Replaces the directed link `from → to` at `t`.
    pub fn set_link_at(&mut self, t: Time, from: ProcessId, to: ProcessId, link: LinkModel) {
        on_inner!(self, rt => rt.control_at(t, Control::SetLink { from, to, link }));
    }

    /// Adds `extra` one-way delay to every frame from `t` for `duration`.
    pub fn spike_at(
        &mut self,
        t: Time,
        duration: gcs_kernel::TimeDelta,
        extra: gcs_kernel::TimeDelta,
    ) {
        let until = t.saturating_add(duration);
        on_inner!(self, rt => rt.control_at(t, Control::Spike { until, extra }));
    }

    /// Adds `prob` drop probability to every frame from `t` for `duration`.
    pub fn burst_at(&mut self, t: Time, duration: gcs_kernel::TimeDelta, prob: f64) {
        let until = t.saturating_add(duration);
        on_inner!(self, rt => rt.control_at(t, Control::Burst { until, prob }));
    }

    /// Applies a scripted scenario: fault actions become scheduled network
    /// controls, membership actions route through
    /// [`join_at`](Self::join_at) / [`remove_at`](Self::remove_at).
    pub fn apply_schedule(&mut self, schedule: &Schedule) {
        for (t, action) in schedule.steps().to_vec() {
            match action {
                ScheduleAction::Crash(p) => self.crash_at(t, p),
                ScheduleAction::Partition(groups) => self.partition_at(t, groups),
                ScheduleAction::PartitionRegions => {
                    let groups = self.topology.region_groups(self.n_total);
                    self.partition_at(t, groups);
                }
                ScheduleAction::Heal => self.heal_at(t),
                ScheduleAction::DelaySpike { duration, extra } => self.spike_at(t, duration, extra),
                ScheduleAction::LossBurst { duration, prob } => self.burst_at(t, duration, prob),
                ScheduleAction::SetLink { from, to, link } => self.set_link_at(t, from, to, link),
                ScheduleAction::Join { joiner, contact } => self.join_at(t, joiner, contact),
                ScheduleAction::Remove { by, target } => self.remove_at(t, by, target),
            }
        }
    }

    // -- running -----------------------------------------------------------

    /// Sleeps the caller until the group clock reaches `t`; member threads
    /// keep working the whole time.
    pub fn run_until(&mut self, t: Time) {
        on_inner!(self, rt => rt.run_until(t));
        self.refresh_metrics();
    }

    /// Waits until every member has crashed (`true`) or the clock passes
    /// `limit` (`false`). A live group with running members never
    /// quiesces — its failure detectors exchange heartbeats forever.
    pub fn run_to_quiescence(&mut self, limit: Time) -> bool {
        let quiet = on_inner!(self, rt => rt.run_to_quiescence(limit));
        self.refresh_metrics();
        quiet
    }

    // -- observation -------------------------------------------------------

    /// Traffic metrics, as of the last run call.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics_cache
    }

    /// Re-snapshots the runtime metrics into [`metrics`](Self::metrics).
    pub fn refresh_metrics(&mut self) {
        self.metrics_cache = on_inner!(self, rt => rt.metrics_snapshot());
    }

    /// Inbox messages dispatched across the group so far.
    pub fn events_executed(&self) -> u64 {
        on_inner!(self, rt => rt.events_executed())
    }

    /// Liveness flags per process.
    pub fn alive_flags(&self) -> Vec<bool> {
        on_inner!(self, rt => rt.alive_flags())
    }

    /// Total protocol outputs observed (the live analogue of the
    /// simulator's trace total — view installs included).
    pub fn delivery_count(&self) -> u64 {
        on_inner!(self, rt => rt.delivered_total())
    }

    /// All deliveries recorded so far, in global observation order
    /// (requires [`TraceMode::Full`]).
    pub fn delivery_trace(&self) -> Vec<LiveDelivery> {
        match &self.inner {
            Inner::NewArch(rt) => rt
                .trace_snapshot()
                .into_iter()
                .filter_map(|(time, proc, e)| match e {
                    Ev::Deliver(d) => Some(LiveDelivery {
                        time,
                        proc,
                        sender: d.id.sender,
                        seq: d.id.seq,
                        kind: d.kind,
                        class: d.class,
                        view: d.view,
                        payload: d.payload,
                    }),
                    _ => None,
                })
                .collect(),
            Inner::Isis(rt) => rt
                .trace_snapshot()
                .into_iter()
                .filter_map(|(time, proc, e)| match e {
                    IsisEvent::Deliver { id, payload, vid } => Some(LiveDelivery {
                        time,
                        proc,
                        sender: id.0,
                        seq: id.1,
                        kind: DeliveryKind::Atomic,
                        class: MessageClass::ABCAST,
                        view: vid,
                        payload,
                    }),
                    _ => None,
                })
                .collect(),
            Inner::Token(rt) => rt
                .trace_snapshot()
                .into_iter()
                .filter_map(|(time, proc, e)| match e {
                    TokenEvent::Deliver {
                        seq,
                        origin,
                        payload,
                        vid,
                    } => Some(LiveDelivery {
                        time,
                        proc,
                        sender: origin,
                        seq,
                        kind: DeliveryKind::Atomic,
                        class: MessageClass::ABCAST,
                        view: vid,
                        payload,
                    }),
                    _ => None,
                })
                .collect(),
        }
    }

    /// Views (ring generations for the token stack) installed per process,
    /// in installation order.
    pub fn views(&self) -> Vec<Vec<View>> {
        let mut out = vec![Vec::new(); self.n_total];
        match &self.inner {
            Inner::NewArch(rt) => {
                for (_, proc, e) in rt.trace_snapshot() {
                    if let Ev::ViewInstalled(v) = e {
                        out[proc.index()].push(v);
                    }
                }
            }
            Inner::Isis(rt) => {
                for (_, proc, e) in rt.trace_snapshot() {
                    if let IsisEvent::ViewInstalled { vid, members } = e {
                        out[proc.index()].push(View { id: vid, members });
                    }
                }
            }
            Inner::Token(rt) => {
                for (_, proc, e) in rt.trace_snapshot() {
                    if let TokenEvent::RingInstalled { vid, ring } = e {
                        out[proc.index()].push(View {
                            id: vid,
                            members: ring,
                        });
                    }
                }
            }
        }
        out
    }

    /// Consensus-class suspicion transitions `(time, observer, suspect)` —
    /// new architecture only (requires `StackConfig::trace_suspicions`);
    /// the baselines report none.
    pub fn suspicion_trace(&self) -> Vec<(Time, ProcessId, ProcessId)> {
        match &self.inner {
            Inner::NewArch(rt) => rt
                .trace_snapshot()
                .into_iter()
                .filter_map(|(time, proc, e)| match e {
                    Ev::Suspect(class, p) if class == MonitorClass::CONSENSUS => {
                        Some((time, proc, p))
                    }
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Per-process incarnation-reset instants (Isis kills, token-ring
    /// exclusions); empty for the new architecture, whose members never
    /// restart with wiped state.
    pub fn resets(&self) -> Vec<Vec<Time>> {
        let mut out = vec![Vec::new(); self.n_total];
        match &self.inner {
            Inner::NewArch(_) => {}
            Inner::Isis(rt) => {
                for (time, proc, e) in rt.trace_snapshot() {
                    if matches!(e, IsisEvent::Killed) {
                        out[proc.index()].push(time);
                    }
                }
            }
            Inner::Token(rt) => {
                for (time, proc, e) in rt.trace_snapshot() {
                    if matches!(e, TokenEvent::Excluded) {
                        out[proc.index()].push(time);
                    }
                }
            }
        }
        out
    }

    /// Shuts the group down: stops every member, pump, and timer thread
    /// and joins them. Also runs on drop.
    pub fn shutdown(&mut self) {
        match &mut self.inner {
            Inner::NewArch(rt) => rt.shutdown(),
            Inner::Isis(rt) => rt.shutdown(),
            Inner::Token(rt) => rt.shutdown(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_kernel::TimeDelta;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// Polls `pred` every 2 ms until it holds or `bound` elapses. Live
    /// assertions are bound-based: fast when healthy, slow only when broken.
    fn eventually(group: &LiveGroup, bound: TimeDelta, mut pred: impl FnMut() -> bool) -> bool {
        let deadline = group.now().saturating_add(bound);
        loop {
            if pred() {
                return true;
            }
            if group.now() >= deadline {
                return pred();
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    fn payload_seqs(group: &LiveGroup) -> Vec<Vec<Vec<u8>>> {
        let mut out = vec![Vec::new(); group.len()];
        for d in group.delivery_trace() {
            out[d.proc.index()].push(group.resolve(d.payload).to_vec());
        }
        out
    }

    #[test]
    fn new_arch_agrees_on_live_threads() {
        let mut g = LiveGroup::new_arch(StackConfig::default(), LiveConfig::new(3).with_seed(7));
        let t0 = g.now();
        g.abcast_at(t0, p(0), b"a".to_vec());
        g.abcast_at(t0, p(1), b"b".to_vec());
        assert!(
            eventually(&g, TimeDelta::from_secs(20), || {
                let seqs = payload_seqs(&g);
                seqs.iter().all(|s| s.len() == 2)
            }),
            "all three members deliver both messages: {:?}",
            payload_seqs(&g)
        );
        let seqs = payload_seqs(&g);
        assert_eq!(seqs[0], seqs[1], "total order");
        assert_eq!(seqs[1], seqs[2], "total order");
        g.shutdown();
    }

    #[test]
    fn isis_sequencer_delivers_live() {
        let mut g = LiveGroup::isis(IsisConfig::default(), LiveConfig::new(3).with_seed(8));
        let t0 = g.now();
        g.abcast_at(t0, p(1), b"x".to_vec());
        assert!(
            eventually(&g, TimeDelta::from_secs(20), || {
                payload_seqs(&g).iter().all(|s| s.len() == 1)
            }),
            "sequencer orders and diffuses to all members"
        );
        g.shutdown();
    }

    #[test]
    fn token_ring_delivers_live() {
        let mut g = LiveGroup::token(TokenConfig::default(), LiveConfig::new(3).with_seed(9));
        let t0 = g.now();
        g.abcast_at(t0, p(2), b"y".to_vec());
        assert!(
            eventually(&g, TimeDelta::from_secs(20), || {
                payload_seqs(&g).iter().all(|s| s.len() == 1)
            }),
            "token carries the message around the ring"
        );
        g.shutdown();
    }

    #[test]
    fn crash_kills_the_thread_and_survivors_continue() {
        let mut g = LiveGroup::new_arch(StackConfig::default(), LiveConfig::new(3).with_seed(10));
        let t0 = g.now();
        g.crash_at(t0, p(2));
        assert!(
            eventually(&g, TimeDelta::from_secs(5), || !g.alive_flags()[2]),
            "crash control marks the member dead"
        );
        g.abcast_at(g.now(), p(0), b"after-crash".to_vec());
        assert!(
            eventually(&g, TimeDelta::from_secs(20), || {
                let seqs = payload_seqs(&g);
                seqs[0].len() == 1 && seqs[1].len() == 1
            }),
            "survivors agree without the crashed member"
        );
        assert!(payload_seqs(&g)[2].is_empty(), "the dead deliver nothing");
        g.shutdown();
    }

    #[test]
    fn tcp_wire_carries_the_same_protocol() {
        let mut g = LiveGroup::new_arch(
            StackConfig::default(),
            LiveConfig::new(3).with_seed(11).with_wire(WireMode::Tcp),
        );
        let t0 = g.now();
        g.abcast_at(t0, p(0), b"over-tcp".to_vec());
        assert!(
            eventually(&g, TimeDelta::from_secs(20), || {
                payload_seqs(&g).iter().all(|s| s.len() == 1)
            }),
            "frames over loopback TCP still reach agreement"
        );
        g.refresh_metrics();
        assert!(g.metrics().total_sent() > 0, "wire traffic was accounted");
        g.shutdown();
    }

    #[test]
    fn partition_blocks_and_heal_recovers() {
        let mut g = LiveGroup::isis(IsisConfig::default(), LiveConfig::new(3).with_seed(12));
        let t0 = g.now();
        g.partition_at(t0, vec![vec![p(0)], vec![p(1), p(2)]]);
        g.run_until(g.now() + TimeDelta::from_millis(30));
        g.refresh_metrics();
        let dropped = g.metrics().dropped_partition();
        assert!(dropped > 0, "heartbeats died at the partition: {dropped}");
        g.heal_at(g.now());
        g.abcast_at(g.now() + TimeDelta::from_millis(20), p(1), b"z".to_vec());
        assert!(
            eventually(&g, TimeDelta::from_secs(20), || {
                payload_seqs(&g).iter().filter(|s| s.len() == 1).count() >= 2
            }),
            "after heal the group delivers again"
        );
        g.shutdown();
    }
}
