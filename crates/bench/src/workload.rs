//! First-class workloads: who broadcasts what, when.
//!
//! Every experiment used to carry its own copy of the injection loop
//! (`for i in 0..msgs { sim.abcast_at(...) }`); the [`Workload`] trait makes
//! the stream a value that scenarios compose with a
//! [`Topology`](gcs_sim::Topology) and a [`gcs_sim::Schedule`].
//! Workloads drive any [`GroupTransport`] — the new architecture and both
//! traditional baselines — through the object-safe
//! [`abcast_build_at`](GroupTransport::abcast_build_at) entry point:
//! payloads are built in place in the target arena's pooled scratch buffer,
//! so a streamed injection performs exactly one allocation per message (the
//! interned payload itself), with no intermediate `Vec` per op.
//!
//! Implementations cover the scenario matrix: [`UniformWorkload`] (the old
//! round-robin stream), [`SkewedWorkload`] (zipf-distributed senders),
//! [`LargePayloadWorkload`] (bulk messages that pay serialization delay on
//! bandwidth-limited links) and [`ChurnWorkload`] (a stream with membership
//! churn riding on it).

use gcs_api::GroupTransport;
use gcs_kernel::{ProcessId, Time, TimeDelta};
use gcs_sim::Schedule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which processes send the stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Senders {
    /// Round-robin over the `n` founding members.
    RoundRobin,
    /// A single fixed sender.
    One(ProcessId),
}

/// Writes the [`payload_for`] encoding into a reused buffer (the in-place
/// variant the injection loops use with [`GroupTransport::abcast_build_at`]).
pub fn write_payload(op: usize, size: usize, buf: &mut Vec<u8>) {
    // A hard assert (injection is cold): a wrapped tag would silently
    // attribute deliveries to the wrong injection time in release builds.
    assert!(
        op <= u16::MAX as usize,
        "op index {op} overflows the u16 payload tag"
    );
    buf.clear();
    buf.resize(size.max(2), 0);
    buf[..2].copy_from_slice(&(op as u16).to_le_bytes());
}

/// Encodes the op index into the payload head (little-endian `u16`), leaving
/// the rest zero-filled to `size` (minimum 2 bytes) — the tag latency
/// measurements decode with [`decode_op_index`].
pub fn payload_for(op: usize, size: usize) -> Vec<u8> {
    let mut payload = Vec::new();
    write_payload(op, size, &mut payload);
    payload
}

/// Decodes the op index a payload was tagged with by [`payload_for`].
pub fn decode_op_index(payload: &[u8]) -> Option<usize> {
    if payload.len() < 2 {
        return None;
    }
    Some(u16::from_le_bytes([payload[0], payload[1]]) as usize)
}

/// A timed atomic-broadcast stream over a group of `n` processes.
pub trait Workload {
    /// Stable name (used by scenario catalogs and reports).
    fn name(&self) -> &'static str;

    /// Schedules the whole stream into `target` (a group of `n` founding
    /// members); returns the injection time of each op, indexed by the op
    /// tag embedded in its payload (see [`payload_for`]).
    fn inject(&self, n: usize, target: &mut dyn GroupTransport) -> Vec<Time>;

    /// The membership/fault steps this workload carries (empty for pure
    /// streams; churn workloads schedule their join/remove here). `joiners`
    /// is the number of processes started outside the group.
    fn schedule(&self, n: usize, joiners: usize) -> Schedule {
        let _ = (n, joiners);
        Schedule::new()
    }
}

/// The classic uniform stream: `msgs` broadcasts at a fixed interval,
/// senders round-robin (or fixed), constant payload size.
#[derive(Clone, Debug)]
pub struct UniformWorkload {
    /// Number of broadcasts.
    pub msgs: u32,
    /// Injection time of the first broadcast.
    pub start: Time,
    /// Interval between consecutive broadcasts.
    pub interval: TimeDelta,
    /// Payload size in bytes (minimum 2; the head carries the op tag).
    pub payload: usize,
    /// Sender selection.
    pub senders: Senders,
}

impl UniformWorkload {
    /// The steady-state stream used across the E1-style experiments:
    /// `msgs` broadcasts every `interval_ms` ms starting at 1 ms, 2-byte
    /// payloads, round-robin senders.
    ///
    /// `interval_ms = 0` is a legitimate burst: every broadcast is injected
    /// at the same instant (1 ms), and the simulator's deterministic
    /// event-queue tie-break orders the simultaneous arrivals.
    pub fn steady(msgs: u32, interval_ms: u64) -> Self {
        UniformWorkload {
            msgs,
            start: Time::from_millis(1),
            interval: TimeDelta::from_millis(interval_ms),
            payload: 2,
            senders: Senders::RoundRobin,
        }
    }
}

impl Workload for UniformWorkload {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn inject(&self, n: usize, target: &mut dyn GroupTransport) -> Vec<Time> {
        let mut times = Vec::with_capacity(self.msgs as usize);
        for i in 0..self.msgs {
            let t = self.start + self.interval.saturating_mul(i as u64);
            let sender = match self.senders {
                Senders::RoundRobin => ProcessId::new(i % n as u32),
                Senders::One(p) => p,
            };
            target.abcast_build_at(t, sender, &mut |buf| {
                write_payload(i as usize, self.payload, buf)
            });
            times.push(t);
        }
        times
    }
}

/// An open-loop stream: a fixed *offered load* in messages per second,
/// injected on a rigid arrival clock that does not wait for the group —
/// the saturation-measurement shape, where offered load can exceed what the
/// protocol sustains. Arrivals are evenly spaced (arrival `i` lands at
/// `start + i/rate`), so a run is deterministic and independent of the
/// group's progress.
///
/// [`inject`](Workload::inject) schedules the whole stream up front like
/// every other workload. Saturation drivers that need to *shed* load
/// through `try_abcast_*` instead iterate [`arrivals`](Self::arrivals) and
/// interleave injection with `run_until` — same clock, caller-owned refusal
/// handling.
#[derive(Clone, Debug)]
pub struct OpenLoopWorkload {
    /// Offered load in messages per second (> 0).
    pub rate: u64,
    /// Injection time of the first arrival.
    pub start: Time,
    /// Length of the injection window; arrivals land in `[start, start+duration)`.
    pub duration: TimeDelta,
    /// Payload size in bytes (minimum 2; the head carries the op tag).
    pub payload: usize,
    /// Sender selection.
    pub senders: Senders,
}

impl OpenLoopWorkload {
    /// `rate` messages per second for `duration_ms` ms starting at 1 ms,
    /// 2-byte payloads, round-robin senders.
    pub fn per_second(rate: u64, duration_ms: u64) -> Self {
        OpenLoopWorkload {
            rate,
            start: Time::from_millis(1),
            duration: TimeDelta::from_millis(duration_ms),
            payload: 2,
            senders: Senders::RoundRobin,
        }
    }

    /// Number of arrivals in the window: `floor(rate × duration)`.
    pub fn count(&self) -> usize {
        ((self.rate as u128 * self.duration.as_nanos() as u128) / 1_000_000_000) as usize
    }

    /// The arrival clock: `(time, sender)` of every op, in op-tag order.
    /// Ops are tagged `0..count`, so the count must fit the `u16` payload
    /// tag (asserted at injection).
    pub fn arrivals(&self, n: usize) -> Vec<(Time, ProcessId)> {
        let rate = self.rate.max(1);
        (0..self.count())
            .map(|i| {
                let offset =
                    TimeDelta::from_nanos(((i as u128 * 1_000_000_000) / rate as u128) as u64);
                let sender = match self.senders {
                    Senders::RoundRobin => ProcessId::new(i as u32 % n as u32),
                    Senders::One(p) => p,
                };
                (self.start + offset, sender)
            })
            .collect()
    }
}

impl Workload for OpenLoopWorkload {
    fn name(&self) -> &'static str {
        "open-loop"
    }

    fn inject(&self, n: usize, target: &mut dyn GroupTransport) -> Vec<Time> {
        let arrivals = self.arrivals(n);
        let mut times = Vec::with_capacity(arrivals.len());
        for (i, (t, sender)) in arrivals.into_iter().enumerate() {
            target.abcast_build_at(t, sender, &mut |buf| write_payload(i, self.payload, buf));
            times.push(t);
        }
        times
    }
}

/// A zipf-skewed-sender stream: sender ranks follow a zipf distribution with
/// exponent `s` (rank 0 = process 0 hottest), sampled from a dedicated
/// deterministic PRNG — the shape real group-communication deployments show
/// when a few publishers dominate.
#[derive(Clone, Debug)]
pub struct SkewedWorkload {
    /// The underlying stream timing/sizing.
    pub base: UniformWorkload,
    /// Zipf exponent (1.0 = classic zipf; larger = more skew).
    pub zipf_s: f64,
    /// Seed of the sender-selection PRNG (independent of the network seed).
    pub seed: u64,
}

impl SkewedWorkload {
    /// A zipf(1.2) variant of [`UniformWorkload::steady`].
    pub fn steady(msgs: u32, interval_ms: u64) -> Self {
        SkewedWorkload {
            base: UniformWorkload::steady(msgs, interval_ms),
            zipf_s: 1.2,
            seed: 0x5eed,
        }
    }

    /// The cumulative zipf distribution over `n` ranks.
    fn cdf(&self, n: usize) -> Vec<f64> {
        let weights: Vec<f64> = (1..=n)
            .map(|r| 1.0 / (r as f64).powf(self.zipf_s))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect()
    }
}

impl Workload for SkewedWorkload {
    fn name(&self) -> &'static str {
        "skewed"
    }

    fn inject(&self, n: usize, target: &mut dyn GroupTransport) -> Vec<Time> {
        let cdf = self.cdf(n);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut times = Vec::with_capacity(self.base.msgs as usize);
        for i in 0..self.base.msgs {
            let t = self.base.start + self.base.interval.saturating_mul(i as u64);
            let u: f64 = rng.gen();
            let rank = cdf.iter().position(|&c| u < c).unwrap_or(n - 1);
            target.abcast_build_at(t, ProcessId::new(rank as u32), &mut |buf| {
                write_payload(i as usize, self.base.payload, buf)
            });
            times.push(t);
        }
        times
    }
}

/// A bulk stream: few messages, large payloads — on bandwidth-limited
/// topologies each message pays real serialization delay.
#[derive(Clone, Debug)]
pub struct LargePayloadWorkload {
    /// The underlying stream timing (its `payload` field is the bulk size).
    pub base: UniformWorkload,
}

impl LargePayloadWorkload {
    /// `msgs` broadcasts of `payload_bytes` each, every `interval_ms` ms.
    pub fn steady(msgs: u32, interval_ms: u64, payload_bytes: usize) -> Self {
        let mut base = UniformWorkload::steady(msgs, interval_ms);
        base.payload = payload_bytes;
        LargePayloadWorkload { base }
    }
}

impl Workload for LargePayloadWorkload {
    fn name(&self) -> &'static str {
        "large-payload"
    }

    fn inject(&self, n: usize, target: &mut dyn GroupTransport) -> Vec<Time> {
        self.base.inject(n, target)
    }
}

/// A uniform stream with membership churn riding on it: the first joiner
/// enters the group mid-stream and a founding member is removed shortly
/// after — the join-under-load scenario of the paper's §4.4.
#[derive(Clone, Debug)]
pub struct ChurnWorkload {
    /// The underlying stream.
    pub base: UniformWorkload,
    /// When the joiner requests membership.
    pub join_at: Time,
    /// When the removal is issued.
    pub remove_at: Time,
}

impl ChurnWorkload {
    /// A churn variant of [`UniformWorkload::steady`] with the join and
    /// removal landing inside the stream.
    pub fn steady(msgs: u32, interval_ms: u64, join_at_ms: u64, remove_at_ms: u64) -> Self {
        ChurnWorkload {
            base: UniformWorkload::steady(msgs, interval_ms),
            join_at: Time::from_millis(join_at_ms),
            remove_at: Time::from_millis(remove_at_ms),
        }
    }
}

impl Workload for ChurnWorkload {
    fn name(&self) -> &'static str {
        "churn"
    }

    fn inject(&self, n: usize, target: &mut dyn GroupTransport) -> Vec<Time> {
        // The stream is the uniform one restricted to the survivors:
        // round-robin senders skip the removal victim (the last founding
        // member, see schedule()), and a fixed sender is honored as long as
        // it is a survivor.
        let survivors = (n - 1).max(1);
        if let Senders::One(p) = self.base.senders {
            assert!(
                p.index() < survivors,
                "churn sender {p:?} is the removal victim or out of range"
            );
        }
        self.base.inject(survivors, target)
    }

    fn schedule(&self, n: usize, joiners: usize) -> Schedule {
        let mut s = Schedule::new();
        if joiners > 0 {
            // The first joiner enters via p1 (p0 may be busy coordinating).
            s = s.join(self.join_at, ProcessId::new(n as u32), ProcessId::new(1));
        }
        // The last founding member is removed by p0.
        s = s.remove(
            self.remove_at,
            ProcessId::new(0),
            ProcessId::new(n as u32 - 1),
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use gcs_api::{StackKind, TransportDelivery};
    use gcs_kernel::{PayloadRef, SharedArena};

    /// A transport stub that records the abcast stream instead of running a
    /// simulation — the only surface workloads touch is the injection path.
    #[derive(Default)]
    struct Recorder {
        arena: SharedArena,
        metrics: gcs_sim::Metrics,
        ops: Vec<(Time, ProcessId, Vec<u8>)>,
    }
    impl GroupTransport for Recorder {
        fn stack(&self) -> StackKind {
            StackKind::NewArch
        }
        fn process_count(&self) -> usize {
            unimplemented!("Recorder stubs only the injection path")
        }
        fn abcast_bytes_at(&mut self, t: Time, p: ProcessId, payload: bytes::Bytes) {
            self.ops.push((t, p, payload.to_vec()));
        }
        fn abcast_ref_at(&mut self, t: Time, p: ProcessId, payload: PayloadRef) {
            let bytes = self.arena.get(payload).to_vec();
            self.ops.push((t, p, bytes));
        }
        fn join_at(&mut self, _t: Time, _joiner: ProcessId, _contact: ProcessId) {}
        fn crash_at(&mut self, _t: Time, _p: ProcessId) {}
        fn partition_at(&mut self, _t: Time, _groups: Vec<Vec<ProcessId>>) {}
        fn heal_at(&mut self, _t: Time) {}
        fn apply_schedule(&mut self, _schedule: &gcs_sim::Schedule) {}
        fn run_until(&mut self, _t: Time) {}
        fn run_to_quiescence(&mut self, _limit: Time) -> bool {
            true
        }
        fn arena(&self) -> &SharedArena {
            &self.arena
        }
        fn metrics(&self) -> &gcs_sim::Metrics {
            &self.metrics
        }
        fn events_executed(&self) -> u64 {
            0
        }
        fn alive_flags(&self) -> Vec<bool> {
            Vec::new()
        }
        fn delivery_count(&self) -> u64 {
            0
        }
        fn delivery_trace(&self) -> Vec<TransportDelivery> {
            Vec::new()
        }
        fn views(&self) -> Vec<Vec<gcs_core::View>> {
            Vec::new()
        }
    }

    #[test]
    fn payload_tag_round_trips() {
        let p = payload_for(513, 16);
        assert_eq!(p.len(), 16);
        assert_eq!(decode_op_index(&p), Some(513));
        assert_eq!(decode_op_index(&[1]), None);
    }

    #[test]
    fn uniform_round_robins_senders_on_schedule() {
        let w = UniformWorkload::steady(6, 2);
        let mut r = Recorder::default();
        let times = w.inject(3, &mut r);
        assert_eq!(times.len(), 6);
        assert_eq!(r.ops[0].0, Time::from_millis(1));
        assert_eq!(r.ops[1].0, Time::from_millis(3));
        let senders: Vec<u32> = r.ops.iter().map(|(_, s, _)| s.index() as u32).collect();
        assert_eq!(senders, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(decode_op_index(&r.ops[4].2), Some(4));
    }

    #[test]
    fn zero_interval_steady_is_a_single_instant_burst() {
        let w = UniformWorkload::steady(5, 0);
        let mut r = Recorder::default();
        let times = w.inject(3, &mut r);
        assert!(times.iter().all(|&t| t == Time::from_millis(1)));
        // All five ops land, distinctly tagged, senders still round-robin.
        let tags: Vec<_> = r
            .ops
            .iter()
            .filter_map(|(_, _, p)| decode_op_index(p))
            .collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
        let senders: Vec<u32> = r.ops.iter().map(|(_, s, _)| s.index() as u32).collect();
        assert_eq!(senders, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn open_loop_spaces_arrivals_at_the_offered_rate() {
        let w = OpenLoopWorkload::per_second(1000, 50);
        assert_eq!(w.count(), 50);
        let arrivals = w.arrivals(4);
        assert_eq!(arrivals.len(), 50);
        assert_eq!(arrivals[0].0, Time::from_millis(1));
        // 1000 msgs/s = one arrival per ms.
        assert_eq!(arrivals[10].0, Time::from_millis(11));
        assert_eq!(arrivals[10].1, ProcessId::new(2));
        // inject() follows the same clock with matching op tags.
        let mut r = Recorder::default();
        let times = w.inject(4, &mut r);
        assert_eq!(times, arrivals.iter().map(|&(t, _)| t).collect::<Vec<_>>());
        assert_eq!(decode_op_index(&r.ops[10].2), Some(10));
    }

    #[test]
    fn skewed_senders_follow_zipf() {
        let w = SkewedWorkload::steady(400, 1);
        let mut r = Recorder::default();
        w.inject(8, &mut r);
        let mut counts = [0usize; 8];
        for (_, s, _) in &r.ops {
            counts[s.index()] += 1;
        }
        assert!(
            counts[0] > counts[7] * 3,
            "rank 0 dominates rank 7: {counts:?}"
        );
        assert!(counts[0] > counts[1], "monotone head: {counts:?}");
        // Deterministic: a second injection produces the same senders.
        let mut r2 = Recorder::default();
        w.inject(8, &mut r2);
        assert_eq!(r.ops, r2.ops);
    }

    #[test]
    fn churn_schedule_joins_and_removes() {
        let w = ChurnWorkload::steady(10, 2, 8, 12);
        let s = w.schedule(4, 1);
        assert_eq!(s.len(), 2);
        let mut r = Recorder::default();
        w.inject(4, &mut r);
        // Senders avoid the removal victim p3.
        assert!(r.ops.iter().all(|(_, s, _)| s.index() < 3));
    }

    #[test]
    fn large_payload_size_is_respected() {
        let w = LargePayloadWorkload::steady(2, 5, 4096);
        let mut r = Recorder::default();
        w.inject(3, &mut r);
        assert_eq!(r.ops[0].2.len(), 4096);
    }
}
