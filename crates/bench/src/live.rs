//! Sim-vs-live comparison (PR-9): the same fixed workload on the same
//! stack, once under the deterministic simulator and once on the live
//! thread-per-member backend, side by side.
//!
//! The point of the measurement is *not* that the numbers match — they
//! measure different things. Simulator latency is virtual time: the
//! modeled network delay plus protocol rounds, with computation free.
//! Live latency is wall time on loaded OS threads: the same protocol
//! rounds, but every hop pays scheduling, channel hand-off and lock
//! traffic, and the emulated LAN delay rides the timer wheel only when it
//! exceeds the wire floor. What must hold — and what the guards check —
//! is that the *protocol* behaves identically: every op delivers at every
//! member on both backends, and the live run completes within a generous
//! wall bound. The latency columns then document the cost of reality.

use std::time::Instant;

use gcs_api::{Backend, Group, GroupTransport, StackKind};
use gcs_core::StackConfig;
use gcs_kernel::{ProcessId, Time, TimeDelta};
use gcs_sim::TraceMode;

use crate::workload::{decode_op_index, write_payload};

/// Group size of the comparison runs.
pub const GROUP: usize = 4;

/// One backend's measurement of the fixed workload.
#[derive(Clone, Debug)]
pub struct LiveRow {
    /// Which stack ran.
    pub stack: StackKind,
    /// Which backend hosted it.
    pub backend: Backend,
    /// Ops injected.
    pub msgs: usize,
    /// Ops delivered at every member before the deadline.
    pub completed: usize,
    /// Mean arrival → delivered-everywhere latency, ms (virtual on Sim,
    /// wall on Live).
    pub mean_ms: f64,
    /// 99th-percentile arrival → delivered-everywhere latency, ms.
    pub p99_ms: f64,
    /// Wall-clock seconds the run took (the drive loop, not the build).
    pub wall_s: f64,
}

/// Runs the fixed workload — `msgs` ops, round-robin senders, one op per
/// `gap` starting at 1 ms — on one backend and measures completion.
pub fn run_on(
    backend: Backend,
    kind: StackKind,
    msgs: usize,
    gap: TimeDelta,
    seed: u64,
) -> LiveRow {
    let mut builder = Group::builder()
        .members(GROUP)
        .stack(kind)
        .backend(backend)
        .seed(seed)
        .trace(TraceMode::Full);
    if kind == StackKind::NewArch {
        // As everywhere in the harness: exclusions come from the script
        // (here: nobody), not from monitoring racing the measurement.
        let mut cfg = StackConfig::default();
        cfg.monitoring_timeout = TimeDelta::from_secs(3600);
        builder = builder.stack_config(cfg);
    }
    let mut g = builder.build();
    let arrivals: Vec<(Time, ProcessId)> = (0..msgs)
        .map(|i| {
            (
                Time::from_millis(1).saturating_add(gap.saturating_mul(i as u64)),
                ProcessId::new((i % GROUP) as u32),
            )
        })
        .collect();
    for (i, &(t, sender)) in arrivals.iter().enumerate() {
        g.abcast_build_at(t, sender, &mut |buf| write_payload(i, 2, buf));
    }

    // Drive in 5 ms slices until every op completed everywhere or the
    // deadline passes — the bound-based shape live runs require; the
    // simulator exits the loop as soon as its event queue catches up.
    let deadline = Time::from_secs(30);
    let t0 = Instant::now();
    let mut cursor = Time::ZERO;
    let step = TimeDelta::from_millis(5);
    let mut completed = completed_ops(&g, &arrivals).iter().filter(|c| **c).count();
    while completed < msgs && cursor < deadline {
        cursor += step;
        g.run_until(cursor);
        completed = completed_ops(&g, &arrivals).iter().filter(|c| **c).count();
    }
    let wall_s = t0.elapsed().as_secs_f64();

    // Latency over completed ops: arrival → last member's delivery.
    let mut done: Vec<Time> = vec![Time::ZERO; msgs];
    let mut seen: Vec<usize> = vec![0; msgs];
    for d in g.delivery_trace() {
        if d.kind != gcs_core::DeliveryKind::Atomic {
            continue;
        }
        let payload = g.resolve(d.payload);
        let Some(op) = decode_op_index(&payload) else {
            continue;
        };
        if op < msgs {
            seen[op] += 1;
            done[op] = done[op].max(d.time);
        }
    }
    let mut latencies: Vec<f64> = (0..msgs)
        .filter(|&op| seen[op] >= GROUP)
        .map(|op| done[op].since(arrivals[op].0).as_millis_f64())
        .collect();
    let (mean_ms, p99_ms) = if latencies.is_empty() {
        (f64::NAN, f64::NAN)
    } else {
        let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (mean, latencies[(latencies.len() - 1) * 99 / 100])
    };
    LiveRow {
        stack: kind,
        backend,
        msgs,
        completed,
        mean_ms,
        p99_ms,
        wall_s,
    }
}

/// Which ops have been delivered at every member.
fn completed_ops(g: &Group, arrivals: &[(Time, ProcessId)]) -> Vec<bool> {
    let mut seen = vec![0usize; arrivals.len()];
    for d in g.delivery_trace() {
        if d.kind != gcs_core::DeliveryKind::Atomic {
            continue;
        }
        let payload = g.resolve(d.payload);
        if let Some(op) = decode_op_index(&payload) {
            if let Some(s) = seen.get_mut(op) {
                *s += 1;
            }
        }
    }
    seen.into_iter().map(|s| s >= GROUP).collect()
}

/// Runs the comparison for every stack on both backends, sim first.
pub fn run_matrix(msgs: usize, gap: TimeDelta, seed: u64) -> Vec<LiveRow> {
    let mut rows = Vec::new();
    for kind in StackKind::ALL {
        for backend in [Backend::Sim, Backend::Live] {
            rows.push(run_on(backend, kind, msgs, gap, seed));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_backends_complete_the_fixed_workload() {
        for kind in StackKind::ALL {
            for backend in [Backend::Sim, Backend::Live] {
                let r = run_on(backend, kind, 8, TimeDelta::from_millis(2), 7);
                assert_eq!(
                    r.completed,
                    8,
                    "{backend:?}/{} completed the stream: {r:?}",
                    kind.name()
                );
                assert!(r.mean_ms.is_finite() && r.p99_ms.is_finite(), "{r:?}");
            }
        }
    }
}
