//! The experiments of DESIGN.md §3: each function runs one experiment and
//! prints a markdown table (virtual-time latencies, message counts).

use gcs_api::{Group, GroupTransport, StackKind};
use gcs_core::{ConflictRelation, StackConfig};
use gcs_kernel::{Component, Context, Event, Process, ProcessId, Time, TimeDelta, TimerId};
use gcs_replication::bank::{bank_conflicts, BankOp, CLASS_DEPOSIT, CLASS_WITHDRAW};
use gcs_sim::{LinkModel, SimConfig, SimWorld};
use gcs_traditional::IsisConfig;

use crate::workload::{Senders, UniformWorkload, Workload};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

/// Mean delivery latency for payload-tagged messages: payload byte 0..N is
/// the op index; returns (mean ms over (op, replica) pairs, deliveries).
fn mean_latency(inject_times: &[Time], deliveries: &[(Time, usize)]) -> (f64, usize) {
    if deliveries.is_empty() {
        return (f64::NAN, 0);
    }
    let total: f64 = deliveries
        .iter()
        .map(|(t, idx)| t.since(inject_times[*idx]).as_millis_f64())
        .sum();
    (total / deliveries.len() as f64, deliveries.len())
}

// ---------------------------------------------------------------------------
// E1 — §4.1 "less complex stack": ordering machinery and its cost
// ---------------------------------------------------------------------------

/// E1: counts how many distinct protocols solve an ordering problem in each
/// architecture, and what the steady state and a crash cost in messages.
pub fn e1_ordering_complexity() {
    println!("## E1 — §4.1 ordering complexity (n=5, 50 abcasts, then 1 crash)\n");
    println!("| architecture | ordering protocols | msgs steady (50 abcasts) | msgs crash recovery | view change on crash |");
    println!("|---|---|---|---|---|");

    let n = 5;
    // The shared steady-state stream: one workload value drives all three
    // architectures (no more per-architecture injection loops).
    let stream = UniformWorkload::steady(50, 2);

    // -- new architecture -------------------------------------------------
    {
        let mut cfg = StackConfig::default();
        cfg.monitoring_timeout = TimeDelta::from_secs(3600); // isolate: no exclusion
        let mut g = Group::builder()
            .members(n)
            .stack_config(cfg)
            .seed(1)
            .build();
        stream.inject(n, &mut g);
        g.run_until(Time::from_millis(400));
        let steady = g.metrics().sent_matching(|k| !k.starts_with("fd/"));
        let before = g.metrics().clone();
        g.crash_at(Time::from_millis(400), p(0));
        g.abcast_at(Time::from_millis(401), p(1), b"probe".to_vec());
        g.run_until(Time::from_millis(900));
        let delta = g.metrics().delta_since(&before);
        let recovery = delta.sent_matching(|k| !k.starts_with("fd/"));
        let views: usize = g.views().iter().map(|v| v.len()).sum();
        println!(
            "| new (AB-GB) | 1 (consensus-based abcast) | {steady} | {recovery} | {} |",
            if views == 0 { "no" } else { "yes" }
        );
    }

    // -- Isis --------------------------------------------------------------
    {
        let mut sim = Group::builder()
            .members(n)
            .stack(StackKind::Isis)
            .seed(1)
            .build();
        stream.inject(n, &mut sim);
        sim.run_until(Time::from_millis(400));
        let steady = sim.metrics().sent_matching(|k| !k.contains("heartbeat"));
        let before = sim.metrics().clone();
        sim.crash_at(Time::from_millis(400), p(0));
        sim.abcast_at(Time::from_millis(401), p(1), b"probe".to_vec());
        sim.run_until(Time::from_millis(900));
        let delta = sim.metrics().delta_since(&before);
        let recovery = delta.sent_matching(|k| !k.contains("heartbeat"));
        println!(
            "| Isis (GM-VS) | 3 (membership views + VS flush + sequencer) | {steady} | {recovery} | yes |"
        );
    }

    // -- token ring ---------------------------------------------------------
    {
        let mut sim = Group::builder()
            .members(n)
            .stack(StackKind::Token)
            .seed(1)
            .build();
        stream.inject(n, &mut sim);
        sim.run_until(Time::from_millis(400));
        let steady = sim.metrics().sent_matching(|k| k != "token/token");
        let token_steady = sim.metrics().sent_of_kind("token/token");
        let before = sim.metrics().clone();
        sim.crash_at(Time::from_millis(400), p(0));
        sim.abcast_at(Time::from_millis(401), p(1), b"probe".to_vec());
        sim.run_until(Time::from_millis(900));
        let delta = sim.metrics().delta_since(&before);
        let recovery = delta.sent_matching(|k| k != "token/token");
        println!(
            "| Token (RMP/Totem) | 2 (token order + reformation/recovery) | {steady} (+{token_steady} token) | {recovery} | yes |"
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// E2 — §4.2 bank account: thrifty generic broadcast vs atomic broadcast
// ---------------------------------------------------------------------------

/// E2: latency and message cost as a function of the withdrawal (conflict)
/// percentage, for thrifty GB, naive GB (all-conflict) and pure abcast.
pub fn e2_generic_vs_atomic() {
    println!("## E2 — §4.2 bank account: thrifty GB vs abcast (n=4, 40 ops)\n");
    println!("| withdraw % | GB-thrifty lat (ms) | GB-naive lat (ms) | abcast lat (ms) | GB-thrifty ct-msgs | GB-naive ct-msgs | abcast ct-msgs |");
    println!("|---|---|---|---|---|---|---|");

    let n = 4usize;
    let ops_count = 40u32;
    for withdraw_pct in [0u32, 10, 25, 50, 75, 100] {
        let ops: Vec<BankOp> = (0..ops_count)
            .map(|i| {
                // Deterministic mix with the requested withdrawal share.
                if (i * 100 / ops_count.max(1)) % 100 < withdraw_pct
                    && i % (100 / withdraw_pct.max(1)).max(1) == 0
                    || (withdraw_pct > 0 && i % (100 / withdraw_pct).max(1) == 0)
                {
                    BankOp::Withdraw(1)
                } else {
                    BankOp::Deposit(1)
                }
            })
            .collect();

        let run = |mode: u8| -> (f64, u64) {
            let mut cfg = StackConfig::default();
            cfg.conflict = match mode {
                0 => bank_conflicts(),
                1 => ConflictRelation::all(10),
                _ => bank_conflicts(), // unused for abcast mode
            };
            let mut g = Group::builder()
                .members(n)
                .stack_config(cfg)
                .seed(42 + withdraw_pct as u64)
                .build();
            let mut inject_times = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                let t = Time::from_millis(5 + 3 * i as u64);
                inject_times.push(t);
                let mut payload = vec![i as u8];
                payload.extend_from_slice(&op.encode());
                let sender = p((i % n) as u32);
                match mode {
                    2 => g.abcast_at(t, sender, payload),
                    _ => {
                        let class = match op {
                            BankOp::Deposit(_) => CLASS_DEPOSIT,
                            BankOp::Withdraw(_) => CLASS_WITHDRAW,
                        };
                        g.gbcast_at(t, sender, class, payload);
                    }
                }
            }
            g.run_until(Time::from_secs(5));
            let deliveries: Vec<(Time, usize)> = g
                .delivery_trace()
                .into_iter()
                .map(|d| (d.time, g.resolve(d.payload)[0] as usize))
                .collect();
            let (lat, cnt) = mean_latency(&inject_times, &deliveries);
            assert_eq!(cnt, ops_count as usize * n, "all ops delivered everywhere");
            (lat, g.metrics().sent_matching(|k| k.starts_with("ct/")))
        };

        let (gb_lat, gb_ct) = run(0);
        let (naive_lat, naive_ct) = run(1);
        let (ab_lat, ab_ct) = run(2);
        println!(
            "| {withdraw_pct} | {gb_lat:.2} | {naive_lat:.2} | {ab_lat:.2} | {gb_ct} | {naive_ct} | {ab_ct} |"
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// E3 — §4.3 responsiveness: failover latency vs FD timeout; false suspicion
// ---------------------------------------------------------------------------

/// E3a: latency of a broadcast issued right after the coordinator/sequencer
/// crashes, as a function of the failure-detection timeout.
pub fn e3_failover_latency() {
    println!("## E3a — §4.3 failover: probe latency vs FD timeout (n=3, crash at 100ms, probe at 105ms)\n");
    println!("| FD timeout (ms) | new arch (ms) | Isis (ms) |");
    println!("|---|---|---|");
    for timeout_ms in [12u64, 25, 50, 100, 200, 400, 800, 1600, 3200] {
        // New architecture: the crash of the round-0 coordinator delays the
        // decision by the consensus-class timeout, nothing more.
        let new_lat = {
            let mut cfg = StackConfig::default();
            cfg.consensus_timeout = TimeDelta::from_millis(timeout_ms);
            cfg.monitoring_timeout = TimeDelta::from_secs(3600);
            let mut g = Group::builder()
                .members(3)
                .stack_config(cfg)
                .seed(3)
                .build();
            g.crash_at(Time::from_millis(100), p(0));
            g.abcast_at(Time::from_millis(105), p(1), b"probe".to_vec());
            g.run_until(Time::from_millis(100 + timeout_ms * 4 + 2000));
            g.delivery_trace()
                .iter()
                .find(|d| g.resolve(d.payload).as_ref() == b"probe")
                .map(|d| d.time.since(Time::from_millis(105)).as_millis_f64())
        };
        let isis_lat = {
            let mut cfg = IsisConfig::default();
            cfg.fd_timeout = TimeDelta::from_millis(timeout_ms);
            let mut sim = Group::builder()
                .members(3)
                .stack(StackKind::Isis)
                .isis_config(cfg)
                .seed(3)
                .build();
            sim.crash_at(Time::from_millis(100), p(0));
            sim.abcast_at(Time::from_millis(105), p(1), b"probe".to_vec());
            sim.run_until(Time::from_millis(100 + timeout_ms * 4 + 2000));
            sim.delivery_trace()
                .iter()
                .find(|d| sim.resolve(d.payload).as_ref() == b"probe")
                .map(|d| d.time.since(Time::from_millis(105)).as_millis_f64())
        };
        println!(
            "| {timeout_ms} | {} | {} |",
            new_lat.map_or("stuck".into(), |l| format!("{l:.1}")),
            isis_lat.map_or("stuck".into(), |l| format!("{l:.1}")),
        );
    }
    println!();
}

/// E3b: the cost of a *false* suspicion — the victim is merely partitioned
/// for 300 ms. The new stack shrugs; Isis kills it and pays exclusion +
/// re-join + state transfer.
pub fn e3_false_suspicion_cost() {
    println!(
        "## E3b — §4.3 false-suspicion cost (n=3, p2 unreachable 50–350ms, FD timeout 100ms)\n"
    );
    println!("| architecture | state size | victim disrupted (ms) | extra msgs | extra bytes |");
    println!("|---|---|---|---|---|");
    for state_size in [0usize, 64 * 1024, 1024 * 1024] {
        // New architecture: consensus-class suspicions come and go; the
        // monitoring timeout (larger than the outage) never fires, so the
        // membership never changes and p2 is back instantly after the heal.
        {
            let mut cfg = StackConfig::default();
            cfg.consensus_timeout = TimeDelta::from_millis(100);
            cfg.monitoring_timeout = TimeDelta::from_millis(800);
            cfg.state_size = state_size;
            let mut g = Group::builder()
                .members(3)
                .stack_config(cfg)
                .seed(9)
                .build();
            let baseline = {
                let mut b = g.metrics().clone();
                b = b.delta_since(&b); // zero
                b
            };
            let _ = baseline;
            let before = g.metrics().clone();
            g.partition_at(Time::from_millis(50), vec![vec![p(0), p(1)], vec![p(2)]]);
            g.heal_at(Time::from_millis(350));
            // p2 proves it is functional again by broadcasting after heal.
            g.abcast_at(Time::from_millis(360), p(2), b"back".to_vec());
            g.run_until(Time::from_secs(3));
            let back_at = g
                .delivery_trace()
                .iter()
                .find(|d| g.resolve(d.payload).as_ref() == b"back")
                .map(|d| d.time);
            let disrupted =
                back_at.map_or(f64::NAN, |t| t.since(Time::from_millis(50)).as_millis_f64());
            let delta = g.metrics().delta_since(&before);
            let excluded = g.views().iter().any(|v| !v.is_empty());
            println!(
                "| new (AB-GB){} | {state_size} | {disrupted:.1} | {} | {} |",
                if excluded { " (excluded!)" } else { "" },
                delta.total_sent(),
                delta.total_bytes()
            );
        }
        // Isis: exclusion + kill + re-join + state transfer.
        {
            let mut cfg = IsisConfig::default();
            cfg.fd_timeout = TimeDelta::from_millis(100);
            cfg.state_size = state_size;
            let mut sim = Group::builder()
                .members(3)
                .stack(StackKind::Isis)
                .isis_config(cfg)
                .seed(9)
                .build();
            let before = sim.metrics().clone();
            sim.partition_at(Time::from_millis(50), vec![vec![p(0), p(1)], vec![p(2)]]);
            sim.heal_at(Time::from_millis(350));
            sim.run_until(Time::from_secs(3));
            let (_killed, rejoined) = sim
                .as_isis()
                .expect("isis stack")
                .kill_and_rejoin_times(p(2));
            let disrupted =
                rejoined.map_or(f64::NAN, |t| t.since(Time::from_millis(50)).as_millis_f64());
            let delta = sim.metrics().delta_since(&before);
            println!(
                "| Isis (GM-VS) | {state_size} | {disrupted:.1} | {} | {} |",
                delta.total_sent(),
                delta.total_bytes()
            );
        }
    }
    println!();
}

// ---------------------------------------------------------------------------
// E4 — §4.4 sending view delivery vs same view delivery
// ---------------------------------------------------------------------------

/// E4: a join lands in the middle of a continuous sender's stream; measure
/// the sender's blocking window and the worst inter-delivery gap.
pub fn e4_view_change_blocking() {
    println!(
        "## E4 — §4.4 view-change blocking (n=3 + 1 joiner at 100ms, sender streams every 2ms)\n"
    );
    println!("| architecture | send-blocked (ms) | max delivery gap (ms) | join msgs |");
    println!("|---|---|---|---|");

    // One continuous single-sender stream drives both architectures; the
    // 2-byte tagged payloads identify stream deliveries in the traces.
    let stream = UniformWorkload {
        msgs: 150,
        start: Time::from_millis(1),
        interval: TimeDelta::from_millis(2),
        payload: 2,
        senders: Senders::One(p(0)),
    };

    // -- new architecture ----------------------------------------------------
    {
        let mut g = Group::builder().members(3).joiners(1).seed(4).build();
        stream.inject(3, &mut g);
        let before = g.metrics().clone();
        g.join_at(Time::from_millis(100), p(3), p(1));
        g.run_until(Time::from_secs(3));
        let deliveries: Vec<Time> = g
            .delivery_trace()
            .iter()
            .filter(|d| d.proc == p(1) && d.payload.len() == 2)
            .map(|d| d.time)
            .collect();
        let max_gap = deliveries
            .windows(2)
            .map(|w| w[1].since(w[0]).as_millis_f64())
            .fold(0.0f64, f64::max);
        let join_msgs = g
            .metrics()
            .delta_since(&before)
            .sent_matching(|k| k.starts_with("mb/"));
        // The new stack never blocks senders: same view delivery (§4.4).
        println!("| new (AB-GB) | 0.0 | {max_gap:.1} | {join_msgs} |");
    }

    // -- Isis -----------------------------------------------------------------
    {
        let mut sim = Group::builder()
            .members(3)
            .joiners(1)
            .stack(StackKind::Isis)
            .seed(4)
            .build();
        stream.inject(3, &mut sim);
        let before = sim.metrics().clone();
        sim.join_at(Time::from_millis(100), p(3), p(0));
        sim.run_until(Time::from_secs(3));
        let blocked: f64 = sim
            .as_isis()
            .expect("isis stack")
            .blocked_windows(p(0))
            .iter()
            .map(|(s, e)| e.since(*s).as_millis_f64())
            .sum();
        let deliveries: Vec<Time> = sim
            .delivery_trace()
            .iter()
            .filter(|d| d.proc == p(1) && d.payload.len() == 2)
            .map(|d| d.time)
            .collect();
        let max_gap = deliveries
            .windows(2)
            .map(|w| w[1].since(w[0]).as_millis_f64())
            .fold(0.0f64, f64::max);
        let join_msgs = sim.metrics().delta_since(&before).sent_matching(|k| {
            k.contains("view") || k.contains("flush") || k.contains("join") || k.contains("state")
        });
        println!("| Isis (GM-VS) | {blocked:.1} | {max_gap:.1} | {join_msgs} |");
    }
    println!();
}

// ---------------------------------------------------------------------------
// A1 — consensus ablation: Chandra-Toueg vs Paxos
// ---------------------------------------------------------------------------

/// A1: message cost per decision, failure-free and with a crashed
/// first coordinator/proposer.
pub fn a1_consensus_ablation() {
    use gcs_consensus::paxos::{PaxosConsensus, PaxosMsg, PaxosOut};
    use gcs_consensus::{CtConsensus, CtMsg, CtOut};
    use std::collections::{HashSet, VecDeque};

    println!("## A1 — consensus ablation: messages per decision\n");
    println!("| n | scenario | Chandra-Toueg | Paxos |");
    println!("|---|---|---|---|");

    for n in [3u32, 5, 7] {
        for crash0 in [false, true] {
            let ids: Vec<ProcessId> = (0..n).map(p).collect();

            // Chandra-Toueg.
            let ct_msgs = {
                let mut insts: Vec<CtConsensus<u32>> = ids
                    .iter()
                    .map(|&q| CtConsensus::new(q, ids.clone()))
                    .collect();
                let mut queue: VecDeque<(ProcessId, ProcessId, CtMsg<u32>)> = VecDeque::new();
                let mut crashed: HashSet<ProcessId> = HashSet::new();
                if crash0 {
                    crashed.insert(p(0));
                }
                let mut sent = 0u64;
                let apply = |from: ProcessId,
                             outs: Vec<CtOut<u32>>,
                             queue: &mut VecDeque<(ProcessId, ProcessId, CtMsg<u32>)>,
                             sent: &mut u64| {
                    for o in outs {
                        if let CtOut::Send { to, msg } = o {
                            *sent += 1;
                            queue.push_back((from, to, msg));
                        }
                    }
                };
                for (i, inst) in insts.iter_mut().enumerate() {
                    if !crashed.contains(&p(i as u32)) {
                        let outs = inst.propose(i as u32);
                        apply(p(i as u32), outs, &mut queue, &mut sent);
                    }
                }
                if crash0 {
                    for (i, inst) in insts.iter_mut().enumerate() {
                        if !crashed.contains(&p(i as u32)) {
                            let outs = inst.suspect(p(0));
                            apply(p(i as u32), outs, &mut queue, &mut sent);
                        }
                    }
                }
                while let Some((from, to, msg)) = queue.pop_front() {
                    if crashed.contains(&from) || crashed.contains(&to) {
                        continue;
                    }
                    let outs = insts[to.index()].on_msg(from, msg);
                    apply(to, outs, &mut queue, &mut sent);
                }
                sent
            };

            // Paxos.
            let paxos_msgs = {
                let mut insts: Vec<PaxosConsensus<u32>> = ids
                    .iter()
                    .map(|&q| PaxosConsensus::new(q, ids.clone()))
                    .collect();
                let mut queue: VecDeque<(ProcessId, ProcessId, PaxosMsg<u32>)> = VecDeque::new();
                let mut crashed: HashSet<ProcessId> = HashSet::new();
                if crash0 {
                    crashed.insert(p(0));
                }
                let mut sent = 0u64;
                let apply = |from: ProcessId,
                             outs: Vec<PaxosOut<u32>>,
                             queue: &mut VecDeque<(ProcessId, ProcessId, PaxosMsg<u32>)>,
                             sent: &mut u64| {
                    for o in outs {
                        if let PaxosOut::Send { to, msg } = o {
                            *sent += 1;
                            queue.push_back((from, to, msg));
                        }
                    }
                };
                for (i, inst) in insts.iter_mut().enumerate() {
                    if !crashed.contains(&p(i as u32)) {
                        let outs = inst.propose(i as u32);
                        apply(p(i as u32), outs, &mut queue, &mut sent);
                    }
                }
                if crash0 {
                    for (i, inst) in insts.iter_mut().enumerate() {
                        if !crashed.contains(&p(i as u32)) {
                            let outs = inst.suspect(p(0));
                            apply(p(i as u32), outs, &mut queue, &mut sent);
                        }
                    }
                }
                while let Some((from, to, msg)) = queue.pop_front() {
                    if crashed.contains(&from) || crashed.contains(&to) {
                        continue;
                    }
                    let outs = insts[to.index()].on_msg(from, msg);
                    apply(to, outs, &mut queue, &mut sent);
                }
                sent
            };

            println!(
                "| {n} | {} | {ct_msgs} | {paxos_msgs} |",
                if crash0 {
                    "coordinator crash"
                } else {
                    "failure-free"
                }
            );
        }
    }
    println!();
}

// ---------------------------------------------------------------------------
// A2 — failure-detector quality (motivates §4.3)
// ---------------------------------------------------------------------------

/// A miniature component exposing [`gcs_fd::HeartbeatFd`] in the simulator.
struct FdProbe {
    fd: gcs_fd::HeartbeatFd,
}

#[derive(Clone, Debug)]
enum ProbeEv {
    Hb,
    Suspect(ProcessId),
    // The restored peer is carried for trace readability only.
    Restore(#[allow(dead_code)] ProcessId),
}
impl Event for ProbeEv {
    fn kind(&self) -> &'static str {
        match self {
            ProbeEv::Hb => "fd/heartbeat",
            ProbeEv::Suspect(_) => "out/suspect",
            ProbeEv::Restore(_) => "out/restore",
        }
    }
}

impl Component<ProbeEv> for FdProbe {
    fn name(&self) -> &'static str {
        "fd"
    }
    fn on_start(&mut self, ctx: &mut Context<'_, ProbeEv>) {
        ctx.set_timer(self.fd.interval());
    }
    fn on_message(&mut self, from: ProcessId, _ev: ProbeEv, ctx: &mut Context<'_, ProbeEv>) {
        for o in self.fd.on_heartbeat(from, ctx.now()) {
            if let gcs_fd::FdOut::Restore { peer, .. } = o {
                ctx.output(ProbeEv::Restore(peer));
            }
        }
    }
    fn on_timer(&mut self, _t: TimerId, ctx: &mut Context<'_, ProbeEv>) {
        for o in self.fd.on_tick(ctx.now()) {
            match o {
                gcs_fd::FdOut::SendHeartbeat { to } => ctx.send(to, "fd", ProbeEv::Hb),
                gcs_fd::FdOut::Suspect { peer, .. } => ctx.output(ProbeEv::Suspect(peer)),
                gcs_fd::FdOut::Restore { peer, .. } => ctx.output(ProbeEv::Restore(peer)),
            }
        }
        ctx.set_timer(self.fd.interval());
    }
    fn on_event(&mut self, _ev: ProbeEv, _ctx: &mut Context<'_, ProbeEv>) {}
}

/// A2: crash-detection time and wrong-suspicion rate vs FD timeout, under a
/// jittery lossy link (heartbeats every 10 ms; crash at 5 s; 15 s horizon).
pub fn a2_fd_quality() {
    println!("## A2 — failure-detector quality vs timeout (hb 10ms, 2% loss + jitter)\n");
    println!("| timeout (ms) | detection time (ms) | wrong suspicions (per 10s) |");
    println!("|---|---|---|");
    for timeout_ms in [15u64, 25, 50, 100, 200, 400] {
        let sim = SimConfig::lan(7).with_link(LinkModel {
            delay_min: TimeDelta::from_micros(200),
            delay_max: TimeDelta::from_millis(12), // heavy jitter
            drop_prob: 0.02,
            dup_prob: 0.0,
            bandwidth: 0,
        });
        let mut world: SimWorld<ProbeEv> = SimWorld::new(sim);
        for _ in 0..2 {
            world.add_node(|id| {
                let mut fd = gcs_fd::HeartbeatFd::new(id, TimeDelta::from_millis(10));
                fd.register_class(
                    gcs_fd::MonitorClass::CONSENSUS,
                    TimeDelta::from_millis(timeout_ms),
                );
                fd.set_peers((0..2).map(p).filter(|&q| q != id), Time::ZERO);
                Process::builder(id).with(FdProbe { fd }).build()
            });
        }
        world.crash_at(Time::from_secs(5), p(1));
        world.run_until(Time::from_secs(15));
        // Wrong suspicions: suspicions of p1 at p0 before the crash.
        let wrong = world
            .trace()
            .entries()
            .iter()
            .filter(|e| {
                e.proc == p(0)
                    && e.time < Time::from_secs(5)
                    && matches!(e.event, ProbeEv::Suspect(q) if q == p(1))
            })
            .count();
        let detection = world
            .trace()
            .entries()
            .iter()
            .find(|e| {
                e.proc == p(0)
                    && e.time >= Time::from_secs(5)
                    && matches!(e.event, ProbeEv::Suspect(q) if q == p(1))
            })
            .map(|e| e.time.since(Time::from_secs(5)).as_millis_f64());
        println!(
            "| {timeout_ms} | {} | {} |",
            detection.map_or("—".into(), |d| format!("{d:.1}")),
            wrong as f64 / 0.5
        );
    }
    println!();
}

/// Runs every experiment in order.
pub fn run_all() {
    e1_ordering_complexity();
    e2_generic_vs_atomic();
    e3_failover_latency();
    e3_false_suspicion_cost();
    e4_view_change_blocking();
    a1_consensus_ablation();
    a2_fd_quality();
}

#[cfg(test)]
mod tests {
    #[test]
    fn mean_latency_computes() {
        use super::*;
        let injects = vec![Time::from_millis(10)];
        let deliveries = vec![(Time::from_millis(14), 0), (Time::from_millis(16), 0)];
        let (m, n) = mean_latency(&injects, &deliveries);
        assert_eq!(n, 2);
        assert!((m - 5.0).abs() < 1e-9);
    }
}
