//! Named scenarios: workload × topology × schedule, the full experiment
//! matrix as first-class values.
//!
//! A [`Scenario`] bundles everything a run needs — group size, a
//! [`Topology`], a [`Workload`] and a [`Schedule`] — so `repro`, the
//! criterion benches and the determinism tests all execute the *same*
//! definition. The built-in matrix lives in [`catalog`]; run one with
//! [`Scenario::run`].

use gcs_core::{DeliveryKind, Ev, GroupSim, StackConfig};
use gcs_kernel::{Time, TimeDelta};
use gcs_sim::{Schedule, SimConfig, Topology, TraceMode};

use crate::workload::{
    decode_op_index, ChurnWorkload, LargePayloadWorkload, SkewedWorkload, UniformWorkload, Workload,
};

/// One named experiment scenario over the new-architecture stack.
pub struct Scenario {
    /// Stable name (CLI handle: `repro scenario <name>`).
    pub name: &'static str,
    /// One-line description for `repro list`.
    pub about: &'static str,
    /// Founding members.
    pub n: usize,
    /// Processes started outside the group (churn joiners).
    pub joiners: usize,
    /// The network topology.
    pub topology: Topology,
    /// The broadcast stream.
    pub workload: Box<dyn Workload>,
    /// Scenario-level fault steps (merged with the workload's own schedule).
    pub schedule: Schedule,
    /// Virtual-time horizon the run executes to.
    pub horizon: Time,
}

/// What one scenario run produced.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// The scenario name.
    pub name: &'static str,
    /// The seed the run used.
    pub seed: u64,
    /// Ops injected by the workload.
    pub injected: usize,
    /// Atomic deliveries observed across all processes.
    pub deliveries: u64,
    /// Simulation events executed (events/sec numerator).
    pub events: u64,
    /// Total messages handed to the network.
    pub msgs: u64,
    /// Total wire bytes handed to the network.
    pub bytes: u64,
    /// Mean injection → delivery latency over (op, replica) pairs, in
    /// virtual milliseconds (NaN when the trace mode records no entries).
    pub mean_latency_ms: f64,
    /// 99th-percentile latency, in virtual milliseconds (NaN without
    /// entries).
    pub p99_latency_ms: f64,
    /// Order-sensitive digest of the run: folds every atomic delivery
    /// (time, process, payload) and the event count, so two runs are
    /// bit-identical iff their fingerprints match.
    pub fingerprint: u64,
}

impl Scenario {
    /// The combined fault/membership timeline (scenario steps plus the
    /// workload's own churn steps).
    pub fn full_schedule(&self) -> Schedule {
        self.schedule
            .clone()
            .merge(self.workload.schedule(self.n, self.joiners))
    }

    /// Runs the scenario with the given network seed and trace sink,
    /// returning the report. Deterministic: equal `(scenario, seed)` pairs
    /// produce equal reports, including the fingerprint.
    pub fn run(&self, seed: u64, trace: TraceMode) -> ScenarioReport {
        let mut cfg = StackConfig::default();
        // Exclusions are driven by the schedule, not wall-clock monitoring:
        // an FD-triggered exclusion racing the scripted membership steps
        // would make scenario comparisons measure the monitor, not the
        // scenario.
        cfg.monitoring_timeout = TimeDelta::from_secs(3600);
        let sim = SimConfig::lan(seed)
            .with_topology(self.topology.clone())
            .with_trace(trace);
        let mut g = GroupSim::with_sim(self.n, self.joiners, cfg, sim);
        g.apply_schedule(&self.full_schedule());
        let inject_times = self.workload.inject(self.n, &mut g);
        g.run_until(self.horizon);

        // Latencies from tagged payloads (Full trace mode only).
        let mut latencies: Vec<f64> = Vec::new();
        let mut fingerprint: u64 = 0xcbf29ce484222325; // FNV-1a offset basis
        let mut fnv = |byte: u8| {
            fingerprint ^= byte as u64;
            fingerprint = fingerprint.wrapping_mul(0x100000001b3);
        };
        for e in g.trace().entries() {
            if let Ev::Deliver(d) = &e.event {
                if d.kind != DeliveryKind::Atomic {
                    continue;
                }
                for b in e.time.as_nanos().to_le_bytes() {
                    fnv(b);
                }
                for b in (e.proc.index() as u32).to_le_bytes() {
                    fnv(b);
                }
                for &b in d.payload.as_ref() {
                    fnv(b);
                }
                if let Some(op) = decode_op_index(&d.payload) {
                    if op < inject_times.len() {
                        latencies.push(e.time.since(inject_times[op]).as_millis_f64());
                    }
                }
            }
        }
        for b in g.world().events_executed().to_le_bytes() {
            fnv(b);
        }

        let mean = if latencies.is_empty() {
            f64::NAN
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        let p99 = if latencies.is_empty() {
            f64::NAN
        } else {
            let mut sorted = latencies.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            sorted[(sorted.len() - 1) * 99 / 100]
        };

        ScenarioReport {
            name: self.name,
            seed,
            injected: inject_times.len(),
            deliveries: g.trace().delivery_count(),
            events: g.world().events_executed(),
            msgs: g.metrics().total_sent(),
            bytes: g.metrics().total_bytes(),
            mean_latency_ms: mean,
            p99_latency_ms: p99,
            fingerprint,
        }
    }
}

/// The built-in scenario matrix: every workload shape crossed with the
/// topology presets plus the fault timelines ROADMAP calls for.
pub fn catalog() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "uniform-lan",
            about: "baseline: uniform round-robin stream on a flat LAN",
            n: 8,
            joiners: 0,
            topology: Topology::lan(),
            workload: Box::new(UniformWorkload::steady(200, 2)),
            schedule: Schedule::new(),
            horizon: Time::from_secs(1),
        },
        Scenario {
            name: "skewed-lan",
            about: "zipf(1.2) senders: one hot publisher dominates",
            n: 8,
            joiners: 0,
            topology: Topology::lan(),
            workload: Box::new(SkewedWorkload::steady(200, 2)),
            schedule: Schedule::new(),
            horizon: Time::from_secs(1),
        },
        Scenario {
            name: "large-payload-lan",
            about: "64 KiB payloads on a 125 MB/s LAN: serialization delay",
            n: 8,
            joiners: 0,
            topology: Topology::uniform(
                "lan-125MBps",
                gcs_sim::LinkModel::lan().with_bandwidth(125_000_000),
            ),
            workload: Box::new(LargePayloadWorkload::steady(60, 5, 64 * 1024)),
            schedule: Schedule::new(),
            horizon: Time::from_secs(2),
        },
        Scenario {
            name: "uniform-wan2dc",
            about: "two data centers, bandwidth-limited WAN link between",
            n: 8,
            joiners: 0,
            topology: Topology::wan_2dc(),
            workload: Box::new(UniformWorkload::steady(150, 4)),
            schedule: Schedule::new(),
            horizon: Time::from_secs(3),
        },
        Scenario {
            name: "uniform-wan3",
            about: "three regions, asymmetric lossy long-haul links",
            n: 9,
            joiners: 0,
            topology: Topology::wan_3region(),
            workload: Box::new(UniformWorkload::steady(150, 4)),
            schedule: Schedule::new(),
            horizon: Time::from_secs(5),
        },
        Scenario {
            name: "lossy-lan",
            about: "2% random loss: retransmission machinery under stress",
            n: 8,
            joiners: 0,
            topology: Topology::lossy(),
            workload: Box::new(UniformWorkload::steady(150, 3)),
            schedule: Schedule::new(),
            horizon: Time::from_secs(3),
        },
        Scenario {
            name: "churn-lan",
            about: "join + removal mid-stream on a LAN (§4.4 under load)",
            n: 4,
            joiners: 1,
            topology: Topology::lan(),
            workload: Box::new(ChurnWorkload::steady(150, 2, 100, 200)),
            schedule: Schedule::new(),
            horizon: Time::from_secs(2),
        },
        Scenario {
            name: "churn-wan2dc",
            about: "membership churn while crossing a WAN link",
            n: 4,
            joiners: 1,
            topology: Topology::wan_2dc(),
            workload: Box::new(ChurnWorkload::steady(100, 5, 150, 300)),
            schedule: Schedule::new(),
            horizon: Time::from_secs(4),
        },
        Scenario {
            name: "partition-heal-wan3",
            about: "region partition at 200ms, heal at 600ms, stream on",
            n: 9,
            joiners: 0,
            topology: Topology::wan_3region(),
            workload: Box::new(UniformWorkload::steady(100, 4)),
            schedule: Schedule::new()
                .partition_regions(Time::from_millis(200))
                .heal(Time::from_millis(600)),
            horizon: Time::from_secs(8),
        },
    ]
}

/// Looks a built-in scenario up by name.
pub fn by_name(name: &str) -> Option<Scenario> {
    catalog().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_resolvable() {
        let names: Vec<&str> = catalog().iter().map(|s| s.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len(), "duplicate scenario name");
        for n in names {
            assert!(by_name(n).is_some());
        }
        assert!(by_name("no-such-scenario").is_none());
    }

    #[test]
    fn uniform_lan_delivers_everything() {
        let s = by_name("uniform-lan").unwrap();
        let r = s.run(1, TraceMode::Full);
        assert_eq!(r.injected, 200);
        // Every op delivered at every member.
        assert!(r.deliveries >= (r.injected * s.n) as u64, "{r:?}");
        assert!(r.mean_latency_ms.is_finite());
        assert!(r.p99_latency_ms >= r.mean_latency_ms * 0.5);
    }

    #[test]
    fn wan_latency_exceeds_lan_latency() {
        let lan = by_name("uniform-lan").unwrap().run(2, TraceMode::Full);
        let wan = by_name("uniform-wan3").unwrap().run(2, TraceMode::Full);
        assert!(
            wan.mean_latency_ms > lan.mean_latency_ms * 5.0,
            "wan {} vs lan {}",
            wan.mean_latency_ms,
            lan.mean_latency_ms
        );
    }

    #[test]
    fn churn_scenario_stays_live() {
        let s = by_name("churn-lan").unwrap();
        let r = s.run(3, TraceMode::Full);
        // All stream ops delivered at the surviving founding members.
        assert!(
            r.deliveries >= (r.injected * 3) as u64,
            "stream live through churn: {r:?}"
        );
    }

    #[test]
    fn fingerprint_distinguishes_seeds() {
        let s = by_name("uniform-lan").unwrap();
        let a = s.run(7, TraceMode::Full);
        let b = s.run(8, TraceMode::Full);
        assert_ne!(a.fingerprint, b.fingerprint);
    }
}
