//! Named scenarios: stack × workload × topology × schedule, the full
//! experiment matrix as first-class values.
//!
//! A [`Scenario`] bundles everything a run needs — the [`StackKind`] to
//! drive, group size, a [`Topology`], a [`Workload`] and a [`Schedule`] —
//! so `repro`, the criterion benches and the determinism tests all execute
//! the *same* definition, through the [`GroupTransport`] façade. The
//! built-in matrix lives in [`catalog`]; run one with [`Scenario::run`].
//!
//! Every full-trace run passes through the
//! [`InvariantChecker`]: the report carries the
//! number (and rendering) of protocol-invariant violations, so the catalog
//! is a *checked* matrix — fingerprints say a run changed, the oracle says
//! whether it was correct.

use gcs_api::{Group, GroupTransport, InvariantChecker, StackKind};
use gcs_core::{DeliveryKind, StackConfig};
use gcs_kernel::{ProcessId, Time, TimeDelta};
use gcs_sim::{Schedule, Topology, TraceMode};

use crate::workload::{
    decode_op_index, ChurnWorkload, LargePayloadWorkload, SkewedWorkload, UniformWorkload, Workload,
};

/// One named experiment scenario over one of the three stacks.
pub struct Scenario {
    /// Stable name (CLI handle: `repro scenario <name>`).
    pub name: &'static str,
    /// One-line description for `repro list`.
    pub about: &'static str,
    /// Which protocol stack the scenario drives.
    pub stack: StackKind,
    /// Founding members.
    pub n: usize,
    /// Processes started outside the group (churn joiners).
    pub joiners: usize,
    /// The network topology.
    pub topology: Topology,
    /// The broadcast stream.
    pub workload: Box<dyn Workload>,
    /// Scenario-level fault steps (merged with the workload's own schedule).
    pub schedule: Schedule,
    /// Record consensus-class suspicion transitions in the trace (the
    /// crash-detection-latency scenarios turn this on).
    pub trace_suspicions: bool,
    /// Virtual-time horizon the run executes to.
    pub horizon: Time,
}

/// What one scenario run produced.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// The scenario name.
    pub name: &'static str,
    /// The seed the run used.
    pub seed: u64,
    /// Ops injected by the workload.
    pub injected: usize,
    /// Atomic deliveries observed across all processes.
    pub deliveries: u64,
    /// Simulation events executed (events/sec numerator).
    pub events: u64,
    /// Total messages handed to the network.
    pub msgs: u64,
    /// Total wire bytes handed to the network.
    pub bytes: u64,
    /// Mean injection → delivery latency over (op, replica) pairs, in
    /// virtual milliseconds (NaN when the trace mode records no entries).
    pub mean_latency_ms: f64,
    /// 99th-percentile latency, in virtual milliseconds (NaN without
    /// entries).
    pub p99_latency_ms: f64,
    /// Order-sensitive digest of the run: folds every atomic delivery
    /// (time, process, payload) and the event count, so two runs are
    /// bit-identical iff their fingerprints match.
    pub fingerprint: u64,
    /// Per-region-pair one-way link latency (empty on single-region
    /// topologies): the log2-histogram summaries of every pair that saw
    /// traffic.
    pub region_latency: Vec<RegionPairLatency>,
    /// Protocol-invariant violations found by the
    /// [`InvariantChecker`], rendered. Empty on a
    /// correct run — and empty vacuously under counting-only trace modes,
    /// where there is no delivery trace to check (see
    /// [`oracle_ran`](Self::oracle_ran)).
    pub violations: Vec<String>,
    /// Whether the invariant oracle actually ran (it needs
    /// [`TraceMode::Full`]).
    pub oracle_ran: bool,
    /// Crash-detection latency in virtual milliseconds: time from the first
    /// scripted `Crash` step to the moment *every* correct process has a
    /// consensus-class suspicion of the crashed peer recorded in the trace.
    /// `None` when the scenario crashes nobody, suspicions are not traced,
    /// or some correct process never suspected within the horizon.
    pub crash_detect_ms: Option<f64>,
    /// Payloads live in the group's arena at the end of the run.
    pub arena_live: usize,
    /// Arena slot high-water mark (the slab grows with the run until
    /// reclamation lands; this metric is the groundwork for it).
    pub arena_high_water: usize,
}

/// Summary of one directed region pair's link-latency histogram.
#[derive(Clone, Debug)]
pub struct RegionPairLatency {
    /// Source region index.
    pub from: usize,
    /// Destination region index.
    pub to: usize,
    /// Messages scheduled over this pair.
    pub count: u64,
    /// Mean one-way latency in virtual milliseconds.
    pub mean_ms: f64,
    /// Approximate median (log2-bucket upper edge), in milliseconds.
    pub p50_ms: f64,
    /// Approximate 99th percentile (log2-bucket upper edge), in
    /// milliseconds.
    pub p99_ms: f64,
}

impl Scenario {
    /// The combined fault/membership timeline (scenario steps plus the
    /// workload's own churn steps).
    pub fn full_schedule(&self) -> Schedule {
        self.schedule
            .clone()
            .merge(self.workload.schedule(self.n, self.joiners))
    }

    /// Runs the scenario with the given network seed and trace sink,
    /// returning the report. Deterministic: equal `(scenario, seed)` pairs
    /// produce equal reports, including the fingerprint.
    pub fn run(&self, seed: u64, trace: TraceMode) -> ScenarioReport {
        let mut cfg = StackConfig::default();
        // Exclusions are driven by the schedule, not wall-clock monitoring:
        // an FD-triggered exclusion racing the scripted membership steps
        // would make scenario comparisons measure the monitor, not the
        // scenario. (Only the new architecture reads this config; the
        // baselines keep their stack defaults.)
        cfg.monitoring_timeout = TimeDelta::from_secs(3600);
        cfg.trace_suspicions = self.trace_suspicions;
        let mut g = Group::builder()
            .members(self.n)
            .joiners(self.joiners)
            .stack(self.stack)
            .topology(self.topology.clone())
            .schedule(self.full_schedule())
            .trace(trace)
            .stack_config(cfg)
            .seed(seed)
            .build();
        let inject_times = self.workload.inject(self.n, &mut g);
        g.run_until(self.horizon);

        // Latencies from tagged payloads (Full trace mode only).
        let mut latencies: Vec<f64> = Vec::new();
        let mut fingerprint: u64 = 0xcbf29ce484222325; // FNV-1a offset basis
        let mut fnv = |byte: u8| {
            fingerprint ^= byte as u64;
            fingerprint = fingerprint.wrapping_mul(0x100000001b3);
        };
        for d in g.delivery_trace() {
            if d.kind != DeliveryKind::Atomic {
                continue;
            }
            for b in d.time.as_nanos().to_le_bytes() {
                fnv(b);
            }
            for b in (d.proc.index() as u32).to_le_bytes() {
                fnv(b);
            }
            let payload = g.resolve(d.payload);
            for &b in payload.as_ref() {
                fnv(b);
            }
            if let Some(op) = decode_op_index(&payload) {
                if op < inject_times.len() {
                    latencies.push(d.time.since(inject_times[op]).as_millis_f64());
                }
            }
        }
        for b in g.events_executed().to_le_bytes() {
            fnv(b);
        }

        let mean = if latencies.is_empty() {
            f64::NAN
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        let p99 = if latencies.is_empty() {
            f64::NAN
        } else {
            let mut sorted = latencies.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            sorted[(sorted.len() - 1) * 99 / 100]
        };

        let region_latency = g
            .metrics()
            .region_pairs()
            .map(|(from, to, h)| RegionPairLatency {
                from,
                to,
                count: h.count(),
                mean_ms: h.mean_ns() as f64 / 1e6,
                p50_ms: h.quantile_ns(0.5) as f64 / 1e6,
                p99_ms: h.quantile_ns(0.99) as f64 / 1e6,
            })
            .collect();

        // The invariant oracle: machine-check agreement, total order, view
        // synchrony, FIFO, gap-freedom and no-duplication on the run's full
        // delivery trace (counting-only modes have nothing to check).
        let oracle_ran = trace == TraceMode::Full;
        let violations = if oracle_ran {
            InvariantChecker::check(&g, self.n)
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect()
        } else {
            Vec::new()
        };

        let crash_detect_ms = self.crash_detect_ms(&g);

        ScenarioReport {
            name: self.name,
            seed,
            injected: inject_times.len(),
            deliveries: g.delivery_count(),
            events: g.events_executed(),
            msgs: g.metrics().total_sent(),
            bytes: g.metrics().total_bytes(),
            mean_latency_ms: mean,
            p99_latency_ms: p99,
            fingerprint,
            region_latency,
            violations,
            oracle_ran,
            crash_detect_ms,
            arena_live: g.arena().live(),
            arena_high_water: g.arena().capacity(),
        }
    }

    /// Crash-detection latency of the first scripted crash (see
    /// [`ScenarioReport::crash_detect_ms`]): the time until the *last*
    /// correct process's first suspicion of the crashed peer, measured via
    /// [`GroupTransport::suspicion_trace`].
    fn crash_detect_ms(&self, g: &Group) -> Option<f64> {
        let (crash_at, victim) =
            self.full_schedule()
                .steps()
                .iter()
                .find_map(|(t, a)| match a {
                    gcs_sim::ScheduleAction::Crash(p) => Some((*t, *p)),
                    _ => None,
                })?;
        let suspicions = g.suspicion_trace();
        if suspicions.is_empty() {
            return None;
        }
        // Every process alive at the end of the run (except the victim)
        // must have suspected the victim after the crash instant.
        let alive = g.alive_flags();
        let mut worst = Time::ZERO;
        for (i, &is_alive) in alive.iter().enumerate() {
            let observer = ProcessId::new(i as u32);
            if !is_alive || observer == victim {
                continue;
            }
            let first = suspicions
                .iter()
                .find(|&&(t, o, s)| o == observer && s == victim && t >= crash_at)
                .map(|&(t, _, _)| t)?;
            worst = worst.max(first);
        }
        Some(worst.since(crash_at).as_millis_f64())
    }
}

/// The built-in scenario matrix: every workload shape crossed with the
/// topology presets plus the fault timelines ROADMAP calls for.
pub fn catalog() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "uniform-lan",
            about: "baseline: uniform round-robin stream on a flat LAN",
            stack: StackKind::NewArch,
            n: 8,
            joiners: 0,
            topology: Topology::lan(),
            workload: Box::new(UniformWorkload::steady(200, 2)),
            schedule: Schedule::new(),
            trace_suspicions: false,
            horizon: Time::from_secs(1),
        },
        Scenario {
            name: "skewed-lan",
            about: "zipf(1.2) senders: one hot publisher dominates",
            stack: StackKind::NewArch,
            n: 8,
            joiners: 0,
            topology: Topology::lan(),
            workload: Box::new(SkewedWorkload::steady(200, 2)),
            schedule: Schedule::new(),
            trace_suspicions: false,
            horizon: Time::from_secs(1),
        },
        Scenario {
            name: "large-payload-lan",
            about: "64 KiB payloads on a 125 MB/s LAN: serialization delay",
            stack: StackKind::NewArch,
            n: 8,
            joiners: 0,
            topology: Topology::uniform(
                "lan-125MBps",
                gcs_sim::LinkModel::lan().with_bandwidth(125_000_000),
            ),
            workload: Box::new(LargePayloadWorkload::steady(60, 5, 64 * 1024)),
            schedule: Schedule::new(),
            trace_suspicions: false,
            horizon: Time::from_secs(2),
        },
        Scenario {
            name: "uniform-wan2dc",
            about: "two data centers, bandwidth-limited WAN link between",
            stack: StackKind::NewArch,
            n: 8,
            joiners: 0,
            topology: Topology::wan_2dc(),
            workload: Box::new(UniformWorkload::steady(150, 4)),
            schedule: Schedule::new(),
            trace_suspicions: false,
            horizon: Time::from_secs(3),
        },
        Scenario {
            name: "uniform-wan3",
            about: "three regions, asymmetric lossy long-haul links",
            stack: StackKind::NewArch,
            n: 9,
            joiners: 0,
            topology: Topology::wan_3region(),
            workload: Box::new(UniformWorkload::steady(150, 4)),
            schedule: Schedule::new(),
            trace_suspicions: false,
            horizon: Time::from_secs(5),
        },
        Scenario {
            name: "lossy-lan",
            about: "2% random loss: retransmission machinery under stress",
            stack: StackKind::NewArch,
            n: 8,
            joiners: 0,
            topology: Topology::lossy(),
            workload: Box::new(UniformWorkload::steady(150, 3)),
            schedule: Schedule::new(),
            trace_suspicions: false,
            horizon: Time::from_secs(3),
        },
        Scenario {
            name: "churn-lan",
            about: "join + removal mid-stream on a LAN (§4.4 under load)",
            stack: StackKind::NewArch,
            n: 4,
            joiners: 1,
            topology: Topology::lan(),
            workload: Box::new(ChurnWorkload::steady(150, 2, 100, 200)),
            schedule: Schedule::new(),
            trace_suspicions: false,
            horizon: Time::from_secs(2),
        },
        Scenario {
            name: "churn-wan2dc",
            about: "membership churn while crossing a WAN link",
            stack: StackKind::NewArch,
            n: 4,
            joiners: 1,
            topology: Topology::wan_2dc(),
            workload: Box::new(ChurnWorkload::steady(100, 5, 150, 300)),
            schedule: Schedule::new(),
            trace_suspicions: false,
            horizon: Time::from_secs(4),
        },
        Scenario {
            name: "flaky-churn",
            about: "2% lossy links × join/remove churn, plus a loss burst",
            stack: StackKind::NewArch,
            n: 4,
            joiners: 1,
            topology: Topology::lossy(),
            workload: Box::new(ChurnWorkload::steady(120, 3, 120, 260)),
            schedule: Schedule::new().loss_burst(
                Time::from_millis(400),
                TimeDelta::from_millis(150),
                0.25,
            ),
            trace_suspicions: false,
            horizon: Time::from_secs(4),
        },
        Scenario {
            name: "rolling-restart-wan3",
            about: "sequenced region outages (partition+heal) across all 3 regions",
            stack: StackKind::NewArch,
            n: 9,
            joiners: 0,
            topology: Topology::wan_3region(),
            workload: Box::new(UniformWorkload::steady(90, 6)),
            // One region at a time drops off the WAN and comes back — the
            // crash-stop model cannot restart a process, so a rolling
            // restart is modeled as a rolling partition: each region is
            // unreachable for 300 ms, regions in sequence (round-robin
            // assignment: region r = {r, r+3, r+6}).
            schedule: {
                let mut s = Schedule::new();
                for r in 0..3u32 {
                    let isolated: Vec<ProcessId> =
                        (0..3).map(|k| ProcessId::new(r + 3 * k)).collect();
                    let rest: Vec<ProcessId> = (0..9)
                        .map(ProcessId::new)
                        .filter(|p| !isolated.contains(p))
                        .collect();
                    let start = Time::from_millis(150 + 500 * r as u64);
                    s = s
                        .partition(start, vec![isolated, rest])
                        .heal(start + TimeDelta::from_millis(300));
                }
                s
            },
            trace_suspicions: false,
            horizon: Time::from_secs(10),
        },
        Scenario {
            name: "partition-heal-wan3",
            about: "region partition at 200ms, heal at 600ms, stream on",
            stack: StackKind::NewArch,
            n: 9,
            joiners: 0,
            topology: Topology::wan_3region(),
            workload: Box::new(UniformWorkload::steady(100, 4)),
            schedule: Schedule::new()
                .partition_regions(Time::from_millis(200))
                .heal(Time::from_millis(600)),
            trace_suspicions: false,
            horizon: Time::from_secs(8),
        },
        // Cross-stack comparison points: the same uniform stream on the
        // traditional baselines (loss-free LAN — the substrate they assume),
        // so sweeps diff all three architectures under one workload.
        Scenario {
            name: "uniform-lan-isis",
            about: "the uniform-lan stream on the Isis GM-VS baseline",
            stack: StackKind::Isis,
            n: 8,
            joiners: 0,
            topology: Topology::lan(),
            workload: Box::new(UniformWorkload::steady(200, 2)),
            schedule: Schedule::new(),
            trace_suspicions: false,
            horizon: Time::from_secs(1),
        },
        Scenario {
            name: "uniform-lan-token",
            about: "the uniform-lan stream on the token-ring baseline",
            stack: StackKind::Token,
            n: 8,
            joiners: 0,
            topology: Topology::lan(),
            workload: Box::new(UniformWorkload::steady(200, 2)),
            schedule: Schedule::new(),
            trace_suspicions: false,
            horizon: Time::from_secs(1),
        },
        // Scripted churn on the baselines: both traditional stacks now
        // execute schedule `remove` steps (Isis through the exclusion flush,
        // the ring through a sequenced leave), so the §4.4 churn point runs
        // on every architecture.
        Scenario {
            name: "churn-lan-isis",
            about: "join + removal mid-stream on the Isis baseline",
            stack: StackKind::Isis,
            n: 4,
            joiners: 1,
            topology: Topology::lan(),
            workload: Box::new(ChurnWorkload::steady(150, 2, 100, 200)),
            schedule: Schedule::new(),
            trace_suspicions: false,
            horizon: Time::from_secs(2),
        },
        Scenario {
            name: "churn-lan-token",
            about: "join + removal mid-stream on the token-ring baseline",
            stack: StackKind::Token,
            n: 4,
            joiners: 1,
            topology: Topology::lan(),
            workload: Box::new(ChurnWorkload::steady(150, 2, 100, 200)),
            schedule: Schedule::new(),
            trace_suspicions: false,
            horizon: Time::from_secs(2),
        },
        // WAN baselines: the topology-derived timeout profiles keep the
        // perfect-FD emulation (Isis) and token-loss detection (ring) from
        // mistaking long-haul latency for death, and the loss-repair paths
        // stand in for the reliable links the original systems assumed.
        Scenario {
            name: "uniform-wan3-isis",
            about: "the uniform-wan3 stream on the Isis baseline (tuned timeouts)",
            stack: StackKind::Isis,
            n: 9,
            joiners: 0,
            topology: Topology::wan_3region(),
            workload: Box::new(UniformWorkload::steady(150, 4)),
            schedule: Schedule::new(),
            trace_suspicions: false,
            horizon: Time::from_secs(5),
        },
        Scenario {
            name: "uniform-wan3-token",
            about: "the uniform-wan3 stream on the token-ring baseline (tuned timeouts)",
            stack: StackKind::Token,
            n: 9,
            joiners: 0,
            topology: Topology::wan_3region(),
            workload: Box::new(UniformWorkload::steady(150, 4)),
            schedule: Schedule::new(),
            trace_suspicions: false,
            horizon: Time::from_secs(8),
        },
        Scenario {
            name: "partition-heal-wan3-isis",
            about: "region 2 partitioned off at 200ms, healed at 2.5s, on Isis",
            stack: StackKind::Isis,
            n: 9,
            joiners: 0,
            topology: Topology::wan_3region(),
            workload: Box::new(UniformWorkload::steady(90, 6)),
            // Region 2 ({2,5,8} under round-robin assignment) drops off the
            // WAN for longer than the tuned exclusion timeout: the majority
            // expels it (perfect-FD emulation), the minority blocks
            // (primary-partition rule), and after the heal the killed
            // members re-join with a state transfer — §4.3 at scenario
            // scale, machine-checked by the oracle across incarnations.
            schedule: {
                let isolated: Vec<ProcessId> = [2u32, 5, 8].map(ProcessId::new).to_vec();
                let rest: Vec<ProcessId> = (0..9)
                    .map(ProcessId::new)
                    .filter(|p| !isolated.contains(p))
                    .collect();
                Schedule::new()
                    .partition(Time::from_millis(200), vec![isolated, rest])
                    .heal(Time::from_millis(2_500))
            },
            trace_suspicions: false,
            horizon: Time::from_secs(10),
        },
        Scenario {
            name: "uniform-lan-256",
            about: "scale point: 256 members, gossip FD, bounded relay, one crash",
            stack: StackKind::NewArch,
            n: 256,
            joiners: 0,
            topology: Topology::lan(),
            workload: Box::new(UniformWorkload::steady(50, 4)),
            // A non-sender crashes mid-stream; trace_suspicions records the
            // consensus-class suspicion wavefront, and the report's
            // crash_detect_ms must come in under the gossip-mode suspicion
            // bound (timeout + rotation cycle + interval + LAN delay).
            schedule: Schedule::new().crash(Time::from_millis(150), ProcessId::new(200)),
            trace_suspicions: true,
            horizon: Time::from_secs(1),
        },
        Scenario {
            name: "uniform-lan-1024",
            about: "scale point: 1024 members crossing the all-pairs wall",
            stack: StackKind::NewArch,
            n: 1024,
            joiners: 0,
            topology: Topology::lan(),
            workload: Box::new(UniformWorkload::steady(50, 4)),
            schedule: Schedule::new().crash(Time::from_millis(150), ProcessId::new(800)),
            trace_suspicions: true,
            horizon: Time::from_secs(1),
        },
    ]
}

/// Per-scenario aggregate of a sweep: mean and population σ across the
/// seeds each scenario ran with.
#[derive(Clone, Debug)]
pub struct SweepAggregate {
    /// The scenario name.
    pub name: &'static str,
    /// Number of runs (seeds) aggregated.
    pub runs: usize,
    /// Mean over seeds of the per-run mean latency (virtual ms).
    pub mean_latency_ms: f64,
    /// Population σ of the per-run mean latency across seeds.
    pub latency_stddev_ms: f64,
    /// Mean over seeds of the per-run p99 latency (virtual ms).
    pub mean_p99_ms: f64,
    /// Mean executed-event count across seeds.
    pub mean_events: f64,
    /// Population σ of the executed-event count across seeds.
    pub events_stddev: f64,
    /// Mean message count across seeds.
    pub mean_msgs: f64,
    /// Distinct fingerprints across seeds (== runs unless two seeds
    /// coincidentally collide — a sanity signal, not an error).
    pub distinct_fingerprints: usize,
}

fn mean_stddev(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
    (mean, var.sqrt())
}

/// Aggregates sweep reports per scenario (first-appearance order): mean/σ
/// across seeds of the latency and event figures — the cross-seed summary
/// `repro sweep` prints and embeds in its JSON output.
pub fn aggregate(reports: &[ScenarioReport]) -> Vec<SweepAggregate> {
    let mut order: Vec<&'static str> = Vec::new();
    for r in reports {
        if !order.contains(&r.name) {
            order.push(r.name);
        }
    }
    order
        .into_iter()
        .map(|name| {
            let runs: Vec<&ScenarioReport> = reports.iter().filter(|r| r.name == name).collect();
            let lat: Vec<f64> = runs.iter().map(|r| r.mean_latency_ms).collect();
            let p99: Vec<f64> = runs.iter().map(|r| r.p99_latency_ms).collect();
            let events: Vec<f64> = runs.iter().map(|r| r.events as f64).collect();
            let msgs: Vec<f64> = runs.iter().map(|r| r.msgs as f64).collect();
            let mut fps: Vec<u64> = runs.iter().map(|r| r.fingerprint).collect();
            fps.sort_unstable();
            fps.dedup();
            let (mean_latency_ms, latency_stddev_ms) = mean_stddev(&lat);
            let (mean_p99_ms, _) = mean_stddev(&p99);
            let (mean_events, events_stddev) = mean_stddev(&events);
            let (mean_msgs, _) = mean_stddev(&msgs);
            SweepAggregate {
                name,
                runs: runs.len(),
                mean_latency_ms,
                latency_stddev_ms,
                mean_p99_ms,
                mean_events,
                events_stddev,
                mean_msgs,
                distinct_fingerprints: fps.len(),
            }
        })
        .collect()
}

/// Runs `(name, seed)` tasks across `threads` worker threads, one fully
/// independent deterministic simulation per task, returning reports in task
/// order. Each worker constructs its own [`Scenario`] from the catalog, so
/// nothing is shared between runs and per-run determinism is untouched —
/// this is the experiment-sweep parallelism the simulator's single-threaded
/// design deliberately leaves to the harness.
pub fn run_sweep(
    tasks: &[(&'static str, u64)],
    threads: usize,
    trace: TraceMode,
) -> Vec<ScenarioReport> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let threads = threads.clamp(1, tasks.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, ScenarioReport)>> = Mutex::new(Vec::with_capacity(tasks.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(name, seed)) = tasks.get(i) else {
                    break;
                };
                let s = by_name(name).unwrap_or_else(|| panic!("unknown scenario {name:?}"));
                let report = s.run(seed, trace);
                results.lock().expect("sweep poisoned").push((i, report));
            });
        }
    });
    let mut results = results.into_inner().expect("sweep poisoned");
    results.sort_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, r)| r).collect()
}

/// Looks a built-in scenario up by name.
pub fn by_name(name: &str) -> Option<Scenario> {
    catalog().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_resolvable() {
        let names: Vec<&str> = catalog().iter().map(|s| s.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len(), "duplicate scenario name");
        for n in names {
            assert!(by_name(n).is_some());
        }
        assert!(by_name("no-such-scenario").is_none());
    }

    #[test]
    fn uniform_lan_delivers_everything() {
        let s = by_name("uniform-lan").unwrap();
        let r = s.run(1, TraceMode::Full);
        assert_eq!(r.injected, 200);
        // Every op delivered at every member.
        assert!(r.deliveries >= (r.injected * s.n) as u64, "{r:?}");
        assert!(r.mean_latency_ms.is_finite());
        assert!(r.p99_latency_ms >= r.mean_latency_ms * 0.5);
    }

    #[test]
    fn wan_latency_exceeds_lan_latency() {
        let lan = by_name("uniform-lan").unwrap().run(2, TraceMode::Full);
        let wan = by_name("uniform-wan3").unwrap().run(2, TraceMode::Full);
        assert!(
            wan.mean_latency_ms > lan.mean_latency_ms * 5.0,
            "wan {} vs lan {}",
            wan.mean_latency_ms,
            lan.mean_latency_ms
        );
    }

    #[test]
    fn churn_scenario_stays_live() {
        let s = by_name("churn-lan").unwrap();
        let r = s.run(3, TraceMode::Full);
        // All stream ops delivered at the surviving founding members.
        assert!(
            r.deliveries >= (r.injected * 3) as u64,
            "stream live through churn: {r:?}"
        );
    }

    #[test]
    fn flaky_churn_survives_loss_and_churn() {
        let s = by_name("flaky-churn").unwrap();
        let r = s.run(5, TraceMode::Full);
        // The stream stays live at the three surviving founding members
        // despite 2% loss, a 25% loss burst, a join and a removal.
        assert!(
            r.deliveries >= (r.injected * 3) as u64,
            "stream live through flaky churn: {r:?}"
        );
    }

    #[test]
    fn rolling_restart_wan3_delivers_everywhere_after_heals() {
        let s = by_name("rolling-restart-wan3").unwrap();
        let r = s.run(4, TraceMode::Full);
        // Every region outage heals, so all 9 members eventually deliver
        // the full stream (retransmissions catch the isolated region up).
        assert_eq!(r.injected, 90);
        assert!(
            r.deliveries >= (r.injected * 9) as u64,
            "all members caught up after rolling outages: {r:?}"
        );
    }

    #[test]
    fn wan_reports_carry_region_pair_latency() {
        let wan = by_name("uniform-wan3").unwrap().run(2, TraceMode::Full);
        assert!(!wan.region_latency.is_empty());
        let get = |f: usize, t: usize| {
            wan.region_latency
                .iter()
                .find(|p| p.from == f && p.to == t)
                .unwrap_or_else(|| panic!("pair r{f}->r{t} missing"))
        };
        // Long-haul r0->r2 is slower than intra-region r0->r0, and the
        // asymmetric return path r2->r0 is slower still (topology preset).
        assert!(get(0, 2).mean_ms > get(0, 0).mean_ms * 5.0);
        assert!(get(2, 0).mean_ms > get(0, 2).mean_ms);
        // LAN runs record nothing.
        let lan = by_name("uniform-lan").unwrap().run(2, TraceMode::Full);
        assert!(lan.region_latency.is_empty());
    }

    #[test]
    fn sweep_across_threads_matches_serial_fingerprints() {
        let tasks: &[(&'static str, u64)] =
            &[("uniform-lan", 7), ("churn-lan", 7), ("uniform-lan", 8)];
        let parallel = run_sweep(tasks, 3, TraceMode::Full);
        let serial: Vec<ScenarioReport> = tasks
            .iter()
            .map(|&(n, seed)| by_name(n).unwrap().run(seed, TraceMode::Full))
            .collect();
        assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.name, s.name);
            assert_eq!(p.seed, s.seed);
            assert_eq!(
                p.fingerprint, s.fingerprint,
                "{}@{}: thread fan-out changed the run",
                p.name, p.seed
            );
            assert_eq!(p.events, s.events);
        }
    }

    #[test]
    fn fingerprint_distinguishes_seeds() {
        let s = by_name("uniform-lan").unwrap();
        let a = s.run(7, TraceMode::Full);
        let b = s.run(8, TraceMode::Full);
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn cross_stack_scenarios_deliver_the_full_stream() {
        // The same uniform-lan workload definition drives all three stacks;
        // every member of each architecture delivers the whole stream.
        for name in ["uniform-lan", "uniform-lan-isis", "uniform-lan-token"] {
            let s = by_name(name).unwrap();
            let r = s.run(3, TraceMode::Full);
            assert_eq!(r.injected, 200, "{name}");
            assert!(
                r.deliveries >= (r.injected * s.n) as u64,
                "{name}: all members deliver everything: {r:?}"
            );
            assert!(r.mean_latency_ms.is_finite(), "{name}");
        }
    }

    #[test]
    fn entire_catalog_runs_clean_under_the_oracle() {
        // The acceptance bar of the invariant oracle: every cataloged
        // scenario — all stacks, all topologies, churn, partitions, loss —
        // satisfies the paper's properties on every run. The at-scale
        // points (n > 64) are excluded from this debug-mode loop: CI's
        // release smoke runs `repro scenario uniform-lan-256` (which exits
        // nonzero on violations), and the 1024 point runs behind bench-pr7.
        for s in catalog() {
            if s.n > 64 {
                eprintln!("skipping {} (n={}) in the debug oracle loop", s.name, s.n);
                continue;
            }
            let r = s.run(7, TraceMode::Full);
            assert!(r.oracle_ran, "{}", s.name);
            assert!(
                r.violations.is_empty(),
                "{}: invariant violations: {:#?}",
                s.name,
                r.violations
            );
        }
    }

    #[test]
    fn baseline_churn_scenarios_stay_live() {
        for name in ["churn-lan-isis", "churn-lan-token"] {
            let s = by_name(name).unwrap();
            let r = s.run(3, TraceMode::Full);
            // The three surviving founding members deliver the whole stream
            // through the join and the removal.
            assert!(
                r.deliveries >= (r.injected * 3) as u64,
                "{name}: stream live through churn: {r:?}"
            );
            assert!(r.violations.is_empty(), "{name}: {:?}", r.violations);
        }
    }

    #[test]
    fn wan_baselines_converge_with_tuned_profiles() {
        for name in ["uniform-wan3-isis", "uniform-wan3-token"] {
            let s = by_name(name).unwrap();
            let r = s.run(7, TraceMode::Full);
            assert_eq!(r.injected, 150, "{name}");
            // Every member delivers the whole stream: the tuned timeout
            // profiles prevent spurious exclusions and the repair paths
            // cover WAN loss.
            assert!(
                r.deliveries >= (r.injected * s.n) as u64,
                "{name}: WAN convergence: {r:?}"
            );
            assert!(r.violations.is_empty(), "{name}: {:?}", r.violations);
        }
    }

    #[test]
    fn partition_heal_isis_recovers_through_kill_and_rejoin() {
        let s = by_name("partition-heal-wan3-isis").unwrap();
        let r = s.run(7, TraceMode::Full);
        // The majority (6 of 9) stays live through the outage; the expelled
        // region catches up after healing. Some messages injected by the
        // isolated minority during the outage may be lost with their
        // killed senders — agreement is about delivered messages.
        assert!(
            r.deliveries >= (r.injected * 4) as u64,
            "majority stream live: {r:?}"
        );
        assert!(r.violations.is_empty(), "{:#?}", r.violations);
    }

    #[test]
    fn arena_occupancy_is_reported_and_pinned() {
        // Groundwork for payload reclamation (ROADMAP): every injected
        // payload is interned exactly once and stays live to the end of the
        // run — the slab's high-water mark equals its live count. When
        // reclamation lands, `arena_live` drops below `arena_high_water`
        // and this pin moves.
        for name in ["uniform-lan", "uniform-lan-isis", "uniform-lan-token"] {
            let r = by_name(name).unwrap().run(2, TraceMode::Full);
            assert_eq!(r.arena_live, r.injected, "{name}: one slot per op");
            assert_eq!(
                r.arena_high_water, r.arena_live,
                "{name}: no reclamation yet — slab grows with the run"
            );
        }
    }

    #[test]
    fn aggregate_summarizes_across_seeds() {
        let s = by_name("uniform-lan").unwrap();
        let reports: Vec<ScenarioReport> =
            (7..10).map(|seed| s.run(seed, TraceMode::Full)).collect();
        let aggs = aggregate(&reports);
        assert_eq!(aggs.len(), 1);
        let a = &aggs[0];
        assert_eq!(a.name, "uniform-lan");
        assert_eq!(a.runs, 3);
        // Mean of means sits inside the per-seed range; sigma is finite and
        // small relative to the mean on this steady workload.
        let lats: Vec<f64> = reports.iter().map(|r| r.mean_latency_ms).collect();
        let lo = lats.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = lats.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(a.mean_latency_ms >= lo && a.mean_latency_ms <= hi);
        assert!(a.latency_stddev_ms.is_finite() && a.latency_stddev_ms >= 0.0);
        assert!(a.latency_stddev_ms <= a.mean_latency_ms);
        assert_eq!(a.distinct_fingerprints, 3, "three seeds, three orders");
        // Same-seed repeats collapse to one fingerprint.
        let twice = vec![reports[0].clone(), reports[0].clone()];
        assert_eq!(aggregate(&twice)[0].distinct_fingerprints, 1);
    }
}
