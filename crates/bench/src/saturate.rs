//! Saturation sweeps: offered load vs goodput, per stack.
//!
//! The PR-8 measurement: drive each stack with an *open-loop* stream
//! ([`OpenLoopWorkload`]) whose offered rate does not wait for the group,
//! sweep the rate past the protocol's capacity, and record
//! goodput-vs-offered-load and latency-vs-throughput curves. The knee —
//! the largest offered rate the protocol still sustains — is a protocol
//! property in virtual time, not a machine property: the sequential
//! new-architecture pipeline caps at one batch (`max_msgs`) per consensus
//! instance latency, the token ring at one hold budget (`max_hold_bytes`)
//! per rotation, and pipelining multiplies the consensus cap by the window
//! depth. Every figure here is deterministic given the seed.
//!
//! The Isis baseline has no virtual-time capacity cap (its sequencer
//! stamps on arrival, and the simulator's links delay but never queue),
//! so its curve tracks the offered load across the whole sweep and its
//! knee reports as not reached — recorded honestly rather than forced.

use gcs_api::{BatchPolicy, Group, GroupTransport, StackKind};
use gcs_core::{DeliveryKind, StackConfig};
use gcs_kernel::{Time, TimeDelta};
use gcs_sim::TraceMode;
use gcs_traditional::TokenConfig;

use crate::workload::{decode_op_index, write_payload, OpenLoopWorkload};

/// Group size of every saturation run.
pub const GROUP: usize = 5;

/// Fraction of the offered rate a point must deliver to count as
/// sustained (the knee is the largest sustained rate).
pub const SUSTAIN_FRACTION: f64 = 0.95;

/// One configured stack variant the sweep drives.
#[derive(Clone, Debug)]
pub struct Variant {
    /// Stable name (JSON key in `BENCH_PR8.json`).
    pub name: &'static str,
    /// The stack to run.
    pub stack: StackKind,
    /// Consensus pipeline depth (new architecture only).
    pub pipeline_depth: usize,
    /// Batch-closing policy (new architecture only).
    pub batch: BatchPolicy,
    /// Per-hold payload byte budget (token ring only).
    pub max_hold_bytes: usize,
}

/// The PR-8 variant set: the sequential new architecture (the pre-PR
/// behavior, reproduced by depth 1), the pipelined new architecture at
/// depth 8 over the same batch caps, and the two baselines — the token
/// ring with a per-hold byte budget so a saturated sender cannot stall
/// the rotation, Isis unmodified.
pub fn variants() -> Vec<Variant> {
    // One consensus instance carries at most 16 messages: the knee of the
    // sequential pipeline is ~16 / instance-latency, low enough to sit
    // inside a sweep whose op count must fit the u16 payload tag.
    let batch = BatchPolicy {
        max_msgs: 16,
        max_bytes: 4096,
        max_delay: TimeDelta::from_micros(500),
    };
    vec![
        Variant {
            name: "new-arch-seq",
            stack: StackKind::NewArch,
            pipeline_depth: 1,
            batch,
            max_hold_bytes: usize::MAX,
        },
        Variant {
            name: "new-arch-pipelined",
            stack: StackKind::NewArch,
            pipeline_depth: 8,
            batch,
            max_hold_bytes: usize::MAX,
        },
        Variant {
            name: "isis",
            stack: StackKind::Isis,
            pipeline_depth: 1,
            batch: BatchPolicy::default(),
            max_hold_bytes: usize::MAX,
        },
        Variant {
            name: "token",
            stack: StackKind::Token,
            pipeline_depth: 1,
            batch: BatchPolicy::default(),
            // 16 payload bytes = 8 two-byte messages per hold.
            max_hold_bytes: 16,
        },
    ]
}

/// One measured point of a variant's curve.
#[derive(Clone, Debug)]
pub struct Point {
    /// Offered load, messages per second.
    pub rate: u64,
    /// Ops the arrival clock offered inside the window.
    pub offered: usize,
    /// Ops accepted (equal to `offered` without a queue bound).
    pub accepted: usize,
    /// Ops delivered at *every* process before the injection window
    /// closed, per second of window — the saturation metric.
    pub goodput: f64,
    /// Mean arrival → delivered-everywhere latency over completed ops, in
    /// virtual milliseconds (including the post-window drain).
    pub mean_ms: f64,
    /// 99th-percentile arrival → delivered-everywhere latency, virtual ms.
    pub p99_ms: f64,
    /// Highest sender backlog observed at an accepted injection.
    pub high_water: usize,
}

/// What a backpressure run adds on top of a [`Point`].
#[derive(Clone, Debug)]
pub struct BackpressureReport {
    /// The queue bound the run enforced.
    pub capacity: usize,
    /// The measured point (its `accepted` < `offered` when load was shed).
    pub point: Point,
    /// Ops refused by the bound.
    pub shed: usize,
}

fn build_group(v: &Variant, seed: u64, capacity: Option<usize>) -> Group {
    let mut builder = Group::builder()
        .members(GROUP)
        .stack(v.stack)
        .seed(seed)
        .trace(TraceMode::Full);
    match v.stack {
        StackKind::NewArch => {
            let mut cfg = StackConfig::default();
            // As in the scenario engine: exclusions come from the script
            // (here: nobody), not from wall-clock monitoring racing the
            // measurement.
            cfg.monitoring_timeout = TimeDelta::from_secs(3600);
            cfg.pipeline_depth = Some(v.pipeline_depth);
            cfg.batch = Some(v.batch);
            builder = builder.stack_config(cfg);
        }
        StackKind::Token => {
            builder = builder.token_config(TokenConfig {
                max_hold_bytes: v.max_hold_bytes,
                ..TokenConfig::default()
            });
        }
        StackKind::Isis => {}
    }
    if let Some(cap) = capacity {
        builder = builder.abcast_capacity(cap);
    }
    builder.build()
}

/// Measures the run: per-op completion (delivered at all [`GROUP`]
/// processes), goodput inside the window, latency over completed ops.
fn measure(
    g: &Group,
    arrivals: &[(Time, gcs_kernel::ProcessId)],
    window_end: Time,
    window: TimeDelta,
) -> (f64, f64, f64) {
    // completion[op] = (processes seen, latest delivery time).
    let mut completion: Vec<(usize, Time)> = vec![(0, Time::ZERO); arrivals.len()];
    for d in g.delivery_trace() {
        if d.kind != DeliveryKind::Atomic {
            continue;
        }
        let payload = g.resolve(d.payload);
        let Some(op) = decode_op_index(&payload) else {
            continue;
        };
        if let Some(c) = completion.get_mut(op) {
            c.0 += 1;
            c.1 = c.1.max(d.time);
        }
    }
    let mut in_window = 0usize;
    let mut latencies: Vec<f64> = Vec::new();
    for (op, &(procs, done)) in completion.iter().enumerate() {
        if procs < GROUP {
            continue;
        }
        if done <= window_end {
            in_window += 1;
        }
        latencies.push(done.since(arrivals[op].0).as_millis_f64());
    }
    let goodput = in_window as f64 / (window.as_nanos() as f64 / 1e9);
    let (mean, p99) = if latencies.is_empty() {
        (f64::NAN, f64::NAN)
    } else {
        let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
        let mut sorted = latencies;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (mean, sorted[(sorted.len() - 1) * 99 / 100])
    };
    (goodput, mean, p99)
}

/// Runs one closed-schedule point: the whole open-loop stream is scheduled
/// up front (nothing is shed), then the run drains past the window.
pub fn run_point(v: &Variant, rate: u64, window_ms: u64, drain_ms: u64, seed: u64) -> Point {
    let w = OpenLoopWorkload::per_second(rate, window_ms);
    let arrivals = w.arrivals(GROUP);
    let mut g = build_group(v, seed, None);
    for (i, &(t, sender)) in arrivals.iter().enumerate() {
        g.abcast_build_at(t, sender, &mut |buf| write_payload(i, w.payload, buf));
    }
    let window_end = w.start + w.duration;
    g.run_until(window_end.saturating_add(TimeDelta::from_millis(drain_ms)));
    let (goodput, mean_ms, p99_ms) = measure(&g, &arrivals, window_end, w.duration);
    Point {
        rate,
        offered: arrivals.len(),
        accepted: arrivals.len(),
        goodput,
        mean_ms,
        p99_ms,
        high_water: g.queue_high_water(),
    }
}

/// Runs one bounded point: the arrival clock is walked in lockstep with
/// the simulation and every op is offered through the backpressure gate —
/// refusals are shed, and the queue high-water must stay at the bound.
pub fn run_backpressure(
    v: &Variant,
    rate: u64,
    window_ms: u64,
    drain_ms: u64,
    capacity: usize,
    seed: u64,
) -> BackpressureReport {
    let w = OpenLoopWorkload::per_second(rate, window_ms);
    let arrivals = w.arrivals(GROUP);
    let mut g = build_group(v, seed, Some(capacity));
    let mut accepted_ops: Vec<usize> = Vec::new();
    let mut shed = 0usize;
    for (i, &(t, sender)) in arrivals.iter().enumerate() {
        g.run_until(t);
        let ok = g
            .try_abcast_build_at(t, sender, &mut |buf| write_payload(i, w.payload, buf))
            .is_ok();
        if ok {
            accepted_ops.push(i);
        } else {
            shed += 1;
        }
    }
    let window_end = w.start + w.duration;
    g.run_until(window_end.saturating_add(TimeDelta::from_millis(drain_ms)));
    let (goodput, mean_ms, p99_ms) = measure(&g, &arrivals, window_end, w.duration);
    BackpressureReport {
        capacity,
        shed,
        point: Point {
            rate,
            offered: arrivals.len(),
            accepted: accepted_ops.len(),
            goodput,
            mean_ms,
            p99_ms,
            high_water: g.queue_high_water(),
        },
    }
}

/// Sweeps one variant over the offered rates.
pub fn sweep(v: &Variant, rates: &[u64], window_ms: u64, drain_ms: u64, seed: u64) -> Vec<Point> {
    rates
        .iter()
        .map(|&rate| run_point(v, rate, window_ms, drain_ms, seed))
        .collect()
}

/// The knee of a curve: the largest offered rate whose goodput still
/// reaches [`SUSTAIN_FRACTION`] of it. `None` when even the top of the
/// sweep is sustained (the knee lies beyond the sweep).
pub fn knee(curve: &[Point]) -> Option<u64> {
    let sustained: Vec<&Point> = curve
        .iter()
        .filter(|p| p.goodput >= SUSTAIN_FRACTION * p.rate as f64)
        .collect();
    let best = sustained.iter().map(|p| p.rate).max()?;
    if best == curve.iter().map(|p| p.rate).max()? {
        None
    } else {
        Some(best)
    }
}

/// The best goodput any point of the curve achieved.
pub fn sustained_goodput(curve: &[Point]) -> f64 {
    curve.iter().map(|p| p.goodput).fold(0.0, f64::max)
}

/// Why a variant's knee is *expected* to lie beyond any sweep, when that
/// is a protocol property rather than a sweep that stopped too early.
/// Isis is the one such variant: its fixed sequencer stamps messages on
/// arrival and the simulator's links delay but never queue, so no offered
/// rate exceeds its virtual-time capacity. The report carries this note
/// explicitly instead of a bare `null` that reads like a measurement gap.
pub fn uncapped_note(v: &Variant) -> Option<&'static str> {
    (v.stack == StackKind::Isis).then_some("knee not reached (arrival-stamping sequencer uncapped)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_new_arch_saturates_and_pipelining_lifts_the_cap() {
        // A short window keeps the test fast; the rates straddle the
        // sequential knee (~16 msgs per ~1.5 ms LAN instance ≈ 10 k/s).
        let vs = variants();
        let seq = &vs[0];
        let pipe = &vs[1];
        let over = 24_000; // well past the sequential cap
        let s = run_point(seq, over, 250, 1500, 7);
        let p = run_point(pipe, over, 250, 1500, 7);
        assert!(
            s.goodput < 0.9 * over as f64,
            "sequential must saturate below the offered {over}/s: {s:?}"
        );
        assert!(
            p.goodput > 1.3 * s.goodput,
            "depth-8 pipelining must lift goodput: {} vs {}",
            p.goodput,
            s.goodput
        );
    }

    #[test]
    fn backpressure_bounds_the_queue_and_sheds_overload() {
        let vs = variants();
        let r = run_backpressure(&vs[0], 24_000, 250, 1500, 64, 7);
        assert!(r.shed > 0, "overload at a 64-deep bound must shed: {r:?}");
        assert!(
            r.point.high_water <= 64,
            "high water {} exceeds the bound",
            r.point.high_water
        );
        assert_eq!(r.point.accepted + r.shed, r.point.offered);
    }

    #[test]
    fn knee_detection_reads_the_curve() {
        let mk = |rate: u64, goodput: f64| Point {
            rate,
            offered: 0,
            accepted: 0,
            goodput,
            mean_ms: 0.0,
            p99_ms: 0.0,
            high_water: 0,
        };
        let curve = [mk(1000, 1000.0), mk(2000, 1990.0), mk(4000, 2100.0)];
        assert_eq!(knee(&curve), Some(2000));
        assert_eq!(sustained_goodput(&curve), 2100.0);
        // Everything sustained: the knee lies beyond the sweep.
        let flat = [mk(1000, 1000.0), mk(2000, 2000.0)];
        assert_eq!(knee(&flat), None);
    }
}
