//! Wall-clock perf trajectory: the workloads tracked across PRs.
//!
//! Criterion (see `benches/broadcast.rs`) is for interactive runs; this
//! module is the *recorded* trajectory — `repro bench-pr1` times the same
//! workloads with a plain `Instant` loop and emits `BENCH_PR1.json`, so
//! future PRs can diff hot-path performance against committed numbers.

use std::time::Instant;

use gcs_api::{Group, GroupTransport, StackKind};
use gcs_core::StackConfig;
use gcs_kernel::{Time, TimeDelta};
use gcs_sim::TraceMode;

use crate::scenario;
use crate::workload::{UniformWorkload, Workload};

/// One measured workload.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Workload name (matches the criterion bench id).
    pub name: &'static str,
    /// Median wall-clock nanoseconds per workload run.
    pub median_ns: u64,
    /// Minimum wall-clock nanoseconds per workload run.
    pub min_ns: u64,
    /// Simulated events executed per wall-clock second (0 when the workload
    /// does not expose an event counter).
    pub events_per_sec: u64,
}

/// What one steady-state workload run executed and delivered — the
/// denominators of the perf trajectory (events/sec) and the alloc
/// trajectory (allocations per adelivery).
#[derive(Clone, Copy, Debug)]
pub struct RunStats {
    /// Simulation events executed.
    pub events: u64,
    /// Total payload deliveries across all processes.
    pub deliveries: u64,
}

/// The `abcast_steady/5` workload: 20 abcasts across 5 processes on the new
/// architecture, run for 300 simulated milliseconds.
pub fn abcast_steady_5() -> u64 {
    abcast_steady_5_stats().events
}

/// [`abcast_steady_5`] with the per-process delivery total (the
/// allocations-per-adelivery denominator: 20 messages × 5 processes).
pub fn abcast_steady_5_stats() -> RunStats {
    let mut cfg = StackConfig::default();
    cfg.monitoring_timeout = TimeDelta::from_secs(3600);
    let mut g = Group::builder()
        .members(5)
        .stack_config(cfg)
        .seed(1)
        .build();
    UniformWorkload::steady(20, 2).inject(5, &mut g);
    g.run_until(Time::from_millis(300));
    let delivered = g.adelivered_payloads();
    assert_eq!(delivered[0].len(), 20);
    RunStats {
        events: g.events_executed(),
        deliveries: delivered.iter().map(|s| s.len() as u64).sum(),
    }
}

/// The `isis_steady/5` workload: the same 20-abcast steady state on the
/// Isis-style baseline.
pub fn isis_steady_5() -> u64 {
    isis_steady_5_stats().events
}

/// [`isis_steady_5`] with the delivery total.
pub fn isis_steady_5_stats() -> RunStats {
    let mut sim = Group::builder()
        .members(5)
        .stack(StackKind::Isis)
        .seed(1)
        .build();
    UniformWorkload::steady(20, 2).inject(5, &mut sim);
    sim.run_until(Time::from_millis(300));
    let delivered = sim.adelivered_payloads();
    assert_eq!(delivered[0].len(), 20);
    let deliveries = delivered.iter().map(|s| s.len() as u64).sum();
    RunStats {
        events: sim.events_executed(),
        deliveries,
    }
}

/// The `token_steady/5` workload on the token-ring baseline.
pub fn token_steady_5() -> u64 {
    token_steady_5_stats().events
}

/// [`token_steady_5`] with the delivery total.
pub fn token_steady_5_stats() -> RunStats {
    let mut sim = Group::builder()
        .members(5)
        .stack(StackKind::Token)
        .seed(1)
        .build();
    UniformWorkload::steady(20, 2).inject(5, &mut sim);
    sim.run_until(Time::from_millis(300));
    let delivered = sim.adelivered_payloads();
    assert_eq!(delivered[0].len(), 20);
    let deliveries = delivered.iter().map(|s| s.len() as u64).sum();
    RunStats {
        events: sim.events_executed(),
        deliveries,
    }
}

/// The `sim_throughput/n` workload: a saturated steady state (heartbeats,
/// reliable-channel ticks, a rolling abcast load) at group size `n`, run for
/// one simulated second. Returns events executed.
pub fn sim_throughput(n: usize) -> u64 {
    let mut cfg = StackConfig::default();
    cfg.monitoring_timeout = TimeDelta::from_secs(3600);
    let mut g = Group::builder()
        .members(n)
        .stack_config(cfg)
        .seed(7)
        .build();
    UniformWorkload::steady(50, 4).inject(n, &mut g);
    g.run_until(Time::from_secs(1));
    assert_eq!(g.adelivered_payloads()[0].len(), 50);
    g.events_executed()
}

/// The criterion-group variant of [`sim_throughput`]: counts-only trace sink
/// (the configuration long throughput runs should use — the full sink would
/// accumulate an unbounded entry `Vec`) and a configurable horizon so the
/// `n = 64` and `n = 256` points stay CI-friendly. Returns events executed.
pub fn sim_throughput_counts(n: usize, horizon_ms: u64) -> u64 {
    let mut cfg = StackConfig::default();
    cfg.monitoring_timeout = TimeDelta::from_secs(3600);
    let mut g = Group::builder()
        .members(n)
        .stack_config(cfg)
        .trace(TraceMode::CountsOnly)
        .seed(7)
        .build();
    UniformWorkload::steady(50, 4).inject(n, &mut g);
    g.run_until(Time::from_millis(horizon_ms));
    assert!(g.delivery_count() >= 50, "deliveries happened");
    g.events_executed()
}

/// Times `workload` (which returns its executed-event count) over `reps`
/// runs (at least one) after one warm-up, reporting median/min and
/// events-per-second.
pub fn measure(name: &'static str, reps: usize, workload: impl Fn() -> u64) -> Measurement {
    let events = workload(); // warm-up, and capture the event count
    let mut samples_ns: Vec<u64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(workload());
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples_ns.sort_unstable();
    let median_ns = samples_ns[samples_ns.len() / 2];
    let min_ns = samples_ns[0];
    let events_per_sec = events
        .saturating_mul(1_000_000_000)
        .checked_div(median_ns)
        .unwrap_or(0);
    Measurement {
        name,
        median_ns,
        min_ns,
        events_per_sec,
    }
}

/// Runs the full PR-1 measurement set.
pub fn run_all(reps: usize) -> Vec<Measurement> {
    vec![
        measure("abcast_steady/5", reps, abcast_steady_5),
        measure("isis_steady/5", reps, isis_steady_5),
        measure("token_steady/5", reps, token_steady_5),
        measure("sim_throughput/16", reps.min(10), || sim_throughput(16)),
        measure("sim_throughput/64", reps.clamp(1, 3), || sim_throughput(64)),
    ]
}

/// The scenario names tracked by the PR-2 trajectory (`repro bench-pr2`).
pub const PR2_SCENARIOS: &[&str] = &[
    "uniform-lan",
    "skewed-lan",
    "large-payload-lan",
    "uniform-wan3",
    "churn-lan",
];

/// Runs the PR-2 measurement set: the scenario-engine matrix (counts-only
/// trace sink, seed 7) plus the `sim_throughput/64` hot-path guard, which
/// must stay within noise of the `BENCH_PR1.json` figure.
pub fn run_pr2(reps: usize) -> Vec<Measurement> {
    let mut out: Vec<Measurement> = PR2_SCENARIOS
        .iter()
        .map(|&name| {
            let s = scenario::by_name(name).expect("tracked scenario exists");
            measure(name, reps.min(7), || s.run(7, TraceMode::CountsOnly).events)
        })
        .collect();
    out.push(measure("sim_throughput/64", reps.clamp(1, 3), || {
        sim_throughput(64)
    }));
    out
}

/// The scenario names tracked by the PR-3 trajectory — the same five as
/// PR 2, so `BENCH_PR3.json` diffs directly against `BENCH_PR2.json`.
pub const PR3_SCENARIOS: &[&str] = PR2_SCENARIOS;

/// Runs the PR-3 measurement set: the tracked scenario matrix plus both
/// hot-path guard points (`sim_throughput/64` must stay within noise of
/// `BENCH_PR2.json`; `sim_throughput/256` is the profiling target, measured
/// with the counts-only sink over a short horizon).
pub fn run_pr3(reps: usize) -> Vec<Measurement> {
    let mut out: Vec<Measurement> = PR3_SCENARIOS
        .iter()
        .map(|&name| {
            let s = scenario::by_name(name).expect("tracked scenario exists");
            measure(name, reps.min(7), || s.run(7, TraceMode::CountsOnly).events)
        })
        .collect();
    out.push(measure("sim_throughput/64", reps.clamp(1, 3), || {
        sim_throughput(64)
    }));
    out.push(measure("sim_throughput/256", 1, || {
        sim_throughput_counts(256, 10)
    }));
    out
}

/// The scenario names tracked by the PR-7 trajectory: the PR-3 five (so
/// `BENCH_PR7.json` diffs directly against `BENCH_PR3.json`) plus the new
/// 256-member scale point with gossip failure detection and bounded relay.
/// The 1024-member point is tracked as a `sim_throughput` figure, not a
/// scenario: a full-trace 1024 run is oracle material, not bench material.
pub const PR7_SCENARIOS: &[&str] = &[
    "uniform-lan",
    "skewed-lan",
    "large-payload-lan",
    "uniform-wan3",
    "churn-lan",
    "uniform-lan-256",
];

/// Runs the PR-7 measurement set: the tracked scenario matrix plus the
/// three `sim_throughput` scale points, every one over the **full simulated
/// second** — feasible at n = 256 and n = 1024 for the first time, which is
/// the point of the PR. `sim_throughput/64` is the wall-clock regression
/// guard against `BENCH_PR3.json`: above `SCALE_THRESHOLD` the stack now
/// runs gossip monitoring and bounded relay, so the 64-member *event
/// stream shrinks* several-fold and events/sec would conflate that
/// event-count reduction with per-event cost — wall time for the same
/// simulated second is the comparable number, and it must not regress.
pub fn run_pr7(reps: usize) -> Vec<Measurement> {
    let mut out: Vec<Measurement> = PR7_SCENARIOS
        .iter()
        .map(|&name| {
            let s = scenario::by_name(name).expect("tracked scenario exists");
            let r = if s.n > 64 { 1 } else { reps.min(7) };
            measure(name, r, || s.run(7, TraceMode::CountsOnly).events)
        })
        .collect();
    out.push(measure("sim_throughput/64", reps.clamp(1, 3), || {
        sim_throughput(64)
    }));
    out.push(measure("sim_throughput/256", reps.clamp(1, 3), || {
        sim_throughput_counts(256, 1000)
    }));
    out.push(measure("sim_throughput/1024", 1, || {
        sim_throughput_counts(1024, 1000)
    }));
    out
}

/// One steady-state allocation measurement (meaningful only in binaries
/// that install [`CountingAlloc`](crate::alloccount::CountingAlloc) as the
/// global allocator — elsewhere every counter reads zero).
#[derive(Clone, Debug)]
pub struct AllocMeasurement {
    /// Workload name.
    pub name: &'static str,
    /// Allocations during the measured (post-warm-up) run.
    pub allocs: u64,
    /// Bytes allocated during the measured run.
    pub bytes: u64,
    /// Simulation events executed.
    pub events: u64,
    /// Payload deliveries across all processes.
    pub deliveries: u64,
}

impl AllocMeasurement {
    /// Allocations per payload delivery — the tracked metric.
    pub fn allocs_per_delivery(&self) -> f64 {
        self.allocs as f64 / self.deliveries.max(1) as f64
    }

    /// Allocations per simulated event.
    pub fn allocs_per_event(&self) -> f64 {
        self.allocs as f64 / self.events.max(1) as f64
    }
}

/// Measures `workload` under the instrumented allocator: one warm-up run
/// (populating lazy statics and caches), then one counted run.
pub fn measure_allocs(name: &'static str, workload: impl Fn() -> RunStats) -> AllocMeasurement {
    let _ = workload(); // warm-up
    let before = crate::alloccount::snapshot();
    let stats = workload();
    let delta = crate::alloccount::snapshot().since(before);
    AllocMeasurement {
        name,
        allocs: delta.allocs,
        bytes: delta.bytes,
        events: stats.events,
        deliveries: stats.deliveries,
    }
}

/// Renders alloc measurements as a JSON object.
pub fn allocs_to_json(measurements: &[AllocMeasurement]) -> String {
    let mut s = String::from("{\n");
    for (i, m) in measurements.iter().enumerate() {
        s.push_str(&format!(
            "    \"{}\": {{\"allocs\": {}, \"bytes\": {}, \"events\": {}, \"deliveries\": {}, \
\"allocs_per_delivery\": {:.3}, \"allocs_per_event\": {:.3}}}{}\n",
            m.name,
            m.allocs,
            m.bytes,
            m.events,
            m.deliveries,
            m.allocs_per_delivery(),
            m.allocs_per_event(),
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    s.push_str("  }");
    s
}

/// Renders measurements as a JSON object (no external JSON dependency).
pub fn to_json(measurements: &[Measurement]) -> String {
    let mut s = String::from("{\n");
    for (i, m) in measurements.iter().enumerate() {
        s.push_str(&format!(
            "    \"{}\": {{\"median_ns\": {}, \"min_ns\": {}, \"events_per_sec\": {}}}{}\n",
            m.name,
            m.median_ns,
            m.min_ns,
            m.events_per_sec,
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    s.push_str("  }");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_run_and_count_events() {
        assert!(abcast_steady_5() > 100);
        assert!(isis_steady_5() > 100);
        assert!(token_steady_5() > 100);
    }

    #[test]
    fn json_shape() {
        let m = Measurement {
            name: "x/1",
            median_ns: 10,
            min_ns: 9,
            events_per_sec: 100,
        };
        let j = to_json(&[m]);
        assert!(j.contains("\"x/1\""));
        assert!(j.contains("\"median_ns\": 10"));
    }
}
