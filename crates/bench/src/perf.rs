//! Wall-clock perf trajectory: the workloads tracked across PRs.
//!
//! Criterion (see `benches/broadcast.rs`) is for interactive runs; this
//! module is the *recorded* trajectory — `repro bench-pr1` times the same
//! workloads with a plain `Instant` loop and emits `BENCH_PR1.json`, so
//! future PRs can diff hot-path performance against committed numbers.

use std::time::Instant;

use gcs_core::{GroupSim, StackConfig};
use gcs_kernel::{Time, TimeDelta};
use gcs_sim::{SimConfig, TraceMode};
use gcs_traditional::{IsisConfig, IsisSim, TokenConfig, TokenSim};

use crate::scenario;
use crate::workload::{UniformWorkload, Workload};

/// One measured workload.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Workload name (matches the criterion bench id).
    pub name: &'static str,
    /// Median wall-clock nanoseconds per workload run.
    pub median_ns: u64,
    /// Minimum wall-clock nanoseconds per workload run.
    pub min_ns: u64,
    /// Simulated events executed per wall-clock second (0 when the workload
    /// does not expose an event counter).
    pub events_per_sec: u64,
}

/// The `abcast_steady/5` workload: 20 abcasts across 5 processes on the new
/// architecture, run for 300 simulated milliseconds.
pub fn abcast_steady_5() -> u64 {
    let mut cfg = StackConfig::default();
    cfg.monitoring_timeout = TimeDelta::from_secs(3600);
    let mut g = GroupSim::new(5, cfg, 1);
    UniformWorkload::steady(20, 2).inject(5, &mut g);
    g.run_until(Time::from_millis(300));
    assert_eq!(g.adelivered_payloads()[0].len(), 20);
    g.world().events_executed()
}

/// The `isis_steady/5` workload: the same 20-abcast steady state on the
/// Isis-style baseline.
pub fn isis_steady_5() -> u64 {
    let mut sim = IsisSim::new(5, 0, IsisConfig::default(), 1);
    UniformWorkload::steady(20, 2).inject(5, &mut sim);
    sim.run_until(Time::from_millis(300));
    assert_eq!(sim.delivered_payloads()[0].len(), 20);
    sim.world_mut().events_executed()
}

/// The `token_steady/5` workload on the token-ring baseline.
pub fn token_steady_5() -> u64 {
    let mut sim = TokenSim::new(5, 0, TokenConfig::default(), 1);
    UniformWorkload::steady(20, 2).inject(5, &mut sim);
    sim.run_until(Time::from_millis(300));
    assert_eq!(sim.delivered_payloads()[0].len(), 20);
    sim.world_mut().events_executed()
}

/// The `sim_throughput/n` workload: a saturated steady state (heartbeats,
/// reliable-channel ticks, a rolling abcast load) at group size `n`, run for
/// one simulated second. Returns events executed.
pub fn sim_throughput(n: usize) -> u64 {
    let mut cfg = StackConfig::default();
    cfg.monitoring_timeout = TimeDelta::from_secs(3600);
    let mut g = GroupSim::new(n, cfg, 7);
    UniformWorkload::steady(50, 4).inject(n, &mut g);
    g.run_until(Time::from_secs(1));
    assert_eq!(g.adelivered_payloads()[0].len(), 50);
    g.world().events_executed()
}

/// The criterion-group variant of [`sim_throughput`]: counts-only trace sink
/// (the configuration long throughput runs should use — the full sink would
/// accumulate an unbounded entry `Vec`) and a configurable horizon so the
/// `n = 64` and `n = 256` points stay CI-friendly. Returns events executed.
pub fn sim_throughput_counts(n: usize, horizon_ms: u64) -> u64 {
    let mut cfg = StackConfig::default();
    cfg.monitoring_timeout = TimeDelta::from_secs(3600);
    let sim = SimConfig::lan(7).with_trace(TraceMode::CountsOnly);
    let mut g = GroupSim::with_sim(n, 0, cfg, sim);
    UniformWorkload::steady(50, 4).inject(n, &mut g);
    g.run_until(Time::from_millis(horizon_ms));
    assert!(
        g.world().trace().delivery_count() >= 50,
        "deliveries happened"
    );
    g.world().events_executed()
}

/// Times `workload` (which returns its executed-event count) over `reps`
/// runs (at least one) after one warm-up, reporting median/min and
/// events-per-second.
pub fn measure(name: &'static str, reps: usize, workload: impl Fn() -> u64) -> Measurement {
    let events = workload(); // warm-up, and capture the event count
    let mut samples_ns: Vec<u64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(workload());
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples_ns.sort_unstable();
    let median_ns = samples_ns[samples_ns.len() / 2];
    let min_ns = samples_ns[0];
    let events_per_sec = events
        .saturating_mul(1_000_000_000)
        .checked_div(median_ns)
        .unwrap_or(0);
    Measurement {
        name,
        median_ns,
        min_ns,
        events_per_sec,
    }
}

/// Runs the full PR-1 measurement set.
pub fn run_all(reps: usize) -> Vec<Measurement> {
    vec![
        measure("abcast_steady/5", reps, abcast_steady_5),
        measure("isis_steady/5", reps, isis_steady_5),
        measure("token_steady/5", reps, token_steady_5),
        measure("sim_throughput/16", reps.min(10), || sim_throughput(16)),
        measure("sim_throughput/64", reps.clamp(1, 3), || sim_throughput(64)),
    ]
}

/// The scenario names tracked by the PR-2 trajectory (`repro bench-pr2`).
pub const PR2_SCENARIOS: &[&str] = &[
    "uniform-lan",
    "skewed-lan",
    "large-payload-lan",
    "uniform-wan3",
    "churn-lan",
];

/// Runs the PR-2 measurement set: the scenario-engine matrix (counts-only
/// trace sink, seed 7) plus the `sim_throughput/64` hot-path guard, which
/// must stay within noise of the `BENCH_PR1.json` figure.
pub fn run_pr2(reps: usize) -> Vec<Measurement> {
    let mut out: Vec<Measurement> = PR2_SCENARIOS
        .iter()
        .map(|&name| {
            let s = scenario::by_name(name).expect("tracked scenario exists");
            measure(name, reps.min(7), || s.run(7, TraceMode::CountsOnly).events)
        })
        .collect();
    out.push(measure("sim_throughput/64", reps.clamp(1, 3), || {
        sim_throughput(64)
    }));
    out
}

/// Renders measurements as a JSON object (no external JSON dependency).
pub fn to_json(measurements: &[Measurement]) -> String {
    let mut s = String::from("{\n");
    for (i, m) in measurements.iter().enumerate() {
        s.push_str(&format!(
            "    \"{}\": {{\"median_ns\": {}, \"min_ns\": {}, \"events_per_sec\": {}}}{}\n",
            m.name,
            m.median_ns,
            m.min_ns,
            m.events_per_sec,
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    s.push_str("  }");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_run_and_count_events() {
        assert!(abcast_steady_5() > 100);
        assert!(isis_steady_5() > 100);
        assert!(token_steady_5() > 100);
    }

    #[test]
    fn json_shape() {
        let m = Measurement {
            name: "x/1",
            median_ns: 10,
            min_ns: 9,
            events_per_sec: 100,
        };
        let j = to_json(&[m]);
        assert!(j.contains("\"x/1\""));
        assert!(j.contains("\"median_ns\": 10"));
    }
}
