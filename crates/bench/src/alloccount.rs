//! The instrumented global allocator behind the allocations-per-adelivery
//! metric.
//!
//! [`CountingAlloc`] wraps the system allocator and counts every allocation
//! (and its size) with relaxed atomics. Binaries that want the metric
//! install it as their global allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: gcs_bench::alloccount::CountingAlloc =
//!     gcs_bench::alloccount::CountingAlloc;
//! ```
//!
//! and read deltas with [`snapshot`]. In binaries that do *not* install it
//! the counters simply stay at zero. The counters are process-global, so
//! measurements must run the workload single-threaded (all tracked
//! workloads are deterministic single-threaded simulations).

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A counting wrapper around the system allocator.
pub struct CountingAlloc;

// SAFETY: every call delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the counters are pure side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(l.size() as u64, Ordering::Relaxed);
        System.alloc(l)
    }

    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
}

/// A point-in-time reading of the allocation counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Total allocations since process start.
    pub allocs: u64,
    /// Total allocated bytes since process start.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs - earlier.allocs,
            bytes: self.bytes - earlier.bytes,
        }
    }
}

/// Reads the current counters (zero if [`CountingAlloc`] is not installed
/// as the global allocator).
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}
