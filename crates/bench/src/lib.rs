//! # gcs-bench — the experiment harness
//!
//! The paper is an architecture paper: its evaluation (Section 4) consists
//! of four qualitative claims. This crate quantifies each claim by running
//! the **new architecture** (`gcs-core`) and the **traditional baselines**
//! (`gcs-traditional`) on identical simulated workloads and reporting
//! virtual-time latencies and message counts. See DESIGN.md §3 for the full
//! experiment index and EXPERIMENTS.md for recorded results.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p gcs-bench --release --bin repro -- all
//! ```

// `deny` instead of `forbid`: the allocation-counter module needs one
// carefully scoped `unsafe impl GlobalAlloc` (see `alloccount`).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloccount;
pub mod experiments;
pub mod live;
pub mod perf;
pub mod saturate;
pub mod scenario;
pub mod workload;
