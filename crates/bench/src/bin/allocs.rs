//! Allocation profiler for the perf-trajectory workloads: installs the
//! counting global allocator and reports allocations per simulated event
//! and — the PR-3 tracked metric — allocations per payload delivery.
//!
//! ```text
//! allocs [abcast|isis|token|all] [--json]
//! ```
//!
//! `--json` emits the machine-readable object the alloc-regression guard
//! and `repro bench-pr3` consume.

use gcs_bench::alloccount::CountingAlloc;
use gcs_bench::perf::{self, AllocMeasurement};

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn measure(which: &str) -> AllocMeasurement {
    match which {
        "abcast" => perf::measure_allocs("abcast_steady/5", perf::abcast_steady_5_stats),
        "isis" => perf::measure_allocs("isis_steady/5", perf::isis_steady_5_stats),
        "token" => perf::measure_allocs("token_steady/5", perf::token_steady_5_stats),
        other => {
            eprintln!("allocs: unknown workload {other:?} (want abcast|isis|token|all)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let which = args
        .iter()
        .find(|a| *a != "--json")
        .map(String::as_str)
        .unwrap_or("all");
    let measurements: Vec<AllocMeasurement> = if which == "all" {
        ["abcast", "isis", "token"]
            .iter()
            .map(|w| measure(w))
            .collect()
    } else {
        vec![measure(which)]
    };
    if json {
        println!("{}", perf::allocs_to_json(&measurements));
        return;
    }
    for m in &measurements {
        println!(
            "{}: {} events, {} deliveries, {} allocs ({:.2}/event, {:.2}/delivery), {} bytes",
            m.name,
            m.events,
            m.deliveries,
            m.allocs,
            m.allocs_per_event(),
            m.allocs_per_delivery(),
            m.bytes
        );
    }
}
