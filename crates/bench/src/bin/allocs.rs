//! Allocation counter for the perf-trajectory workloads: wraps the system
//! allocator and reports allocations-per-simulated-event, the metric the
//! PR-1 hot-path work drove down. Usage: `allocs [isis|abcast|token]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates directly to `System`; the counters are side effects.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(l.size() as u64, Ordering::Relaxed);
        System.alloc(l)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
}

#[global_allocator]
static A: Counting = Counting;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "isis".into());
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let events = match which.as_str() {
        "abcast" => gcs_bench::perf::abcast_steady_5(),
        "token" => gcs_bench::perf::token_steady_5(),
        _ => gcs_bench::perf::isis_steady_5(),
    };
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    println!(
        "{which}: {events} events, {allocs} allocs ({:.2}/event), {} bytes",
        allocs as f64 / events as f64,
        BYTES.load(Ordering::Relaxed)
    );
}
