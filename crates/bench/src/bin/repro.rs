//! Regenerates the paper's experiments and runs the scenario matrix.
//!
//! ```text
//! repro [e1|e2|e3|e4|a1|a2|all]        paper experiments (markdown tables)
//! repro list                           enumerate experiments + scenarios
//! repro scenario <name> [seed]         run one named scenario
//! repro sweep [seeds] [base]           whole catalog × seeds across threads
//! repro bench-pr1 [reps]               PR-1 perf trajectory (JSON to stdout)
//! repro bench-pr2 [reps]               PR-2 scenario trajectory → BENCH_PR2.json
//! repro bench-pr3 [reps]               PR-3 trajectory + alloc metric → BENCH_PR3.json
//! repro bench-pr7 [reps]               PR-7 scale ladder (64/256/1024) → BENCH_PR7.json
//! repro saturate [--quick] [--stack <name>]
//!                                      offered-load sweep per stack → BENCH_PR8.json
//! repro live [msgs]                    sim-vs-live latency comparison → BENCH_PR9.json
//! repro throughput [n] [horizon_ms]    one timed steady-state run (profiling probe)
//! ```
//!
//! Experiment output is markdown; EXPERIMENTS.md records a run of
//! `repro all`. The bench-* commands time hot-path workloads with a plain
//! `Instant` loop (run them from a `--release` build); `bench-pr2` also
//! writes `BENCH_PR2.json` in the current directory — the committed
//! trajectory of the scenario engine.

use std::time::Instant;

use gcs_bench::alloccount::CountingAlloc;
use gcs_bench::{experiments, live, perf, saturate, scenario};
use gcs_sim::TraceMode;

// The instrumented allocator behind `bench-pr3`'s allocations-per-adelivery
// metric. Two relaxed atomic adds per allocation; negligible against the
// wall-clock workloads it coexists with.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The paper experiments: one `(CLI name, description)` row per command —
/// the single source `usage()` and `list()` both render.
const EXPERIMENTS: &[(&str, &str)] = &[
    ("e1", "ordering complexity (§4.1)"),
    ("e2", "generic vs atomic broadcast (§4.2)"),
    ("e3", "failover latency + false-suspicion cost (§4.3)"),
    ("e4", "view-change blocking (§4.4)"),
    ("a1", "consensus ablation (Chandra-Toueg vs Paxos)"),
    ("a2", "failure-detector quality"),
];

fn usage() -> String {
    let mut s = String::from("usage: repro <command>\n\npaper experiments (markdown tables):\n");
    for (name, about) in EXPERIMENTS {
        s.push_str(&format!("  {name:<10} {about}\n"));
    }
    s.push_str(
        "  all        every experiment in order

scenario engine:
  list                       enumerate experiments and named scenarios
  scenario <name> [seed]     run one scenario, print its report
  sweep [seeds] [base] [threads]
                             run the whole catalog x seeds across worker
                             threads (default: 3 seeds from 7, all cores);
                             prints per-scenario mean/sigma aggregates
                             across seeds plus a JSON aggregate object

perf trajectories (use a --release build):
  bench-pr1 [reps]           PR-1 workloads, JSON to stdout
  bench-pr2 [reps]           scenario matrix + hot-path guard, writes BENCH_PR2.json
  bench-pr3 [reps]           scenario matrix + sim_throughput/{64,256} + abcast
                             allocations-per-adelivery, writes BENCH_PR3.json
  bench-pr7 [reps]           scenario matrix (incl. uniform-lan-256) + the
                             sim_throughput 64/256/1024 scale ladder over one
                             full simulated second + alloc profile, guarded
                             against BENCH_PR3.json, writes BENCH_PR7.json
  saturate [--quick] [--stack <name>]
                             open-loop offered-load sweep per stack: goodput
                             vs offered load, latency vs throughput, knee
                             detection, plus a bounded-queue backpressure
                             run; all figures are virtual-time-deterministic.
                             Writes BENCH_PR8.json and enforces its guards;
                             --quick runs a 2-rate smoke with loose guards
                             and writes nothing; --stack restricts the sweep
                             to one stack's variants (tables only, no JSON)
  live [msgs]                the same fixed workload per stack on the
                             simulator and on the live thread-per-member
                             backend (real clocks, real wire), side by side;
                             guards that every op delivers on both backends,
                             writes BENCH_PR9.json
",
    );
    s
}

fn usage_error(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    eprintln!("{}", usage());
    std::process::exit(2);
}

/// Parses positional argument `nth` as a number, defaulting when absent and
/// exiting with usage on garbage (`what` labels the error).
fn numeric_arg<T: std::str::FromStr>(nth: usize, what: &str, default: T) -> T {
    std::env::args()
        .nth(nth)
        .map(|s| {
            s.parse()
                .unwrap_or_else(|_| usage_error(&format!("bad {what} {s:?}")))
        })
        .unwrap_or(default)
}

fn bench_pr1() {
    let measurements = perf::run_all(numeric_arg(2, "reps", 15usize));
    println!("{}", perf::to_json(&measurements));
}

fn bench_pr2() {
    let reps = numeric_arg(2, "reps", 7usize);
    let measurements = perf::run_pr2(reps);
    let body = perf::to_json(&measurements);
    let json = format!(
        "{{\n  \"description\": \"PR 2 scenario engine: wall-clock trajectory of the \
workload × topology × schedule matrix (seed 7, counts-only trace). \
sim_throughput/64 is the hot-path guard and must stay within noise of \
BENCH_PR1.json. Regenerate with: cargo run --release -p gcs-bench --bin repro -- bench-pr2 [reps].\",\n  \
\"measurements\": {body}\n}}"
    );
    println!("{json}");
    match std::fs::write("BENCH_PR2.json", format!("{json}\n")) {
        Ok(()) => eprintln!("wrote BENCH_PR2.json"),
        Err(e) => {
            eprintln!("repro: cannot write BENCH_PR2.json: {e}");
            std::process::exit(1);
        }
    }
}

fn bench_pr3() {
    let reps = numeric_arg(2, "reps", 7usize);
    let measurements = perf::run_pr3(reps);
    let body = perf::to_json(&measurements);
    let allocs = vec![perf::measure_allocs(
        "abcast_steady/5",
        perf::abcast_steady_5_stats,
    )];
    let alloc_body = perf::allocs_to_json(&allocs);
    let json = format!(
        "{{\n  \"description\": \"PR 3 zero-copy message plane: wall-clock trajectory of the \
tracked scenarios plus both sim_throughput guard points (seed 7, counts-only trace), and the \
abcast steady-state allocation profile from the instrumented global allocator. \
sim_throughput/64 must stay within noise of BENCH_PR2.json; allocs_per_delivery must stay \
under the alloc_guard budget (pre-PR baseline: 33.4). Regenerate with: cargo run --release \
-p gcs-bench --bin repro -- bench-pr3 [reps].\",\n  \
\"measurements\": {body},\n  \"allocations\": {alloc_body}\n}}"
    );
    println!("{json}");
    match std::fs::write("BENCH_PR3.json", format!("{json}\n")) {
        Ok(()) => eprintln!("wrote BENCH_PR3.json"),
        Err(e) => {
            eprintln!("repro: cannot write BENCH_PR3.json: {e}");
            std::process::exit(1);
        }
    }
}

/// Reads `field` of the `"<name>": {...}` measurement object in a
/// `BENCH_PR*.json` file written by this binary (no JSON dependency — the
/// files are machine-written with a fixed shape).
fn read_bench_field(json: &str, name: &str, field: &str) -> Option<u64> {
    let obj = &json[json.find(&format!("\"{name}\""))?..];
    let obj = &obj[..obj.find('}')?];
    let v = &obj[obj.find(&format!("\"{field}\""))? + field.len() + 3..];
    let digits: String = v
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn bench_pr7() {
    let reps = numeric_arg(2, "reps", 5usize);
    let measurements = perf::run_pr7(reps);
    let allocs = vec![perf::measure_allocs(
        "abcast_steady/5",
        perf::abcast_steady_5_stats,
    )];

    // Regression guards against the PR-3 trajectory. The 64-point guard is
    // on wall time (the gossip/bounded-relay stack executes a several-fold
    // smaller event stream for the same simulated second, so events/sec is
    // not comparable across the two trajectories); the 256-point guard is
    // the PR's acceptance figure.
    let mut failures = Vec::new();
    match std::fs::read_to_string("BENCH_PR3.json") {
        Ok(pr3) => {
            let pr3_64 = read_bench_field(&pr3, "sim_throughput/64", "median_ns");
            let new_64 = measurements
                .iter()
                .find(|m| m.name == "sim_throughput/64")
                .map(|m| m.median_ns);
            match (pr3_64, new_64) {
                (Some(old), Some(new)) => {
                    // 1.25× headroom for machine noise; the PR lands ~4×
                    // under the old figure.
                    if new * 4 > old * 5 {
                        failures.push(format!(
                            "sim_throughput/64 wall regressed: {new} ns vs PR-3 {old} ns"
                        ));
                    } else {
                        eprintln!("guard ok: sim_throughput/64 wall {new} ns vs PR-3 {old} ns");
                    }
                }
                _ => {
                    eprintln!("warning: sim_throughput/64 missing from a trajectory; guard skipped")
                }
            }
        }
        Err(e) => eprintln!("warning: BENCH_PR3.json unreadable ({e}); 64-point guard skipped"),
    }
    if let Some(m) = measurements.iter().find(|m| m.name == "sim_throughput/256") {
        if m.events_per_sec < 840_000 {
            failures.push(format!(
                "sim_throughput/256 below the 10x acceptance bar: {} events/sec < 840000",
                m.events_per_sec
            ));
        } else {
            eprintln!(
                "guard ok: sim_throughput/256 at {} events/sec",
                m.events_per_sec
            );
        }
    }

    let body = perf::to_json(&measurements);
    let alloc_body = perf::allocs_to_json(&allocs);
    let json = format!(
        "{{\n  \"description\": \"PR 7 scalable monitoring and dissemination: wall-clock \
trajectory of the tracked scenarios (now including the 256-member gossip-FD scale point) \
plus the sim_throughput scale ladder 64/256/1024, each over one full simulated second \
(seed 7, counts-only trace), and the abcast steady-state allocation profile. Guards: \
sim_throughput/64 wall time must stay within 1.25x of BENCH_PR3.json (the event stream \
shrank several-fold, so events/sec is not comparable); sim_throughput/256 must reach \
840000 events/sec (10x the PR-3 figure). Regenerate with: cargo run --release -p gcs-bench \
--bin repro -- bench-pr7 [reps].\",\n  \
\"measurements\": {body},\n  \"allocations\": {alloc_body}\n}}"
    );
    println!("{json}");
    match std::fs::write("BENCH_PR7.json", format!("{json}\n")) {
        Ok(()) => eprintln!("wrote BENCH_PR7.json"),
        Err(e) => {
            eprintln!("repro: cannot write BENCH_PR7.json: {e}");
            std::process::exit(1);
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("repro: GUARD FAILED: {f}");
        }
        std::process::exit(1);
    }
}

/// Renders one variant's saturation curve as a JSON object.
fn curve_json(v: &saturate::Variant, curve: &[saturate::Point]) -> String {
    let mut s = String::from("{\n      \"knee_rate\": ");
    match saturate::knee(curve) {
        Some(k) => s.push_str(&k.to_string()),
        None => s.push_str("null"),
    }
    // An expected-uncapped variant reports *why* its knee is null, so the
    // committed JSON cannot be misread as a sweep that stopped too early.
    if saturate::knee(curve).is_none() {
        if let Some(note) = saturate::uncapped_note(v) {
            s.push_str(&format!(",\n      \"knee_note\": \"{note}\""));
        }
    }
    s.push_str(&format!(
        ",\n      \"sustained_goodput\": {:.1},\n      \"points\": [\n",
        saturate::sustained_goodput(curve)
    ));
    for (i, p) in curve.iter().enumerate() {
        s.push_str(&format!(
            "        {{\"rate\": {}, \"offered\": {}, \"accepted\": {}, \"goodput\": {:.1}, \
\"mean_ms\": {}, \"p99_ms\": {}}}{}\n",
            p.rate,
            p.offered,
            p.accepted,
            p.goodput,
            json_f64(p.mean_ms, 2),
            json_f64(p.p99_ms, 2),
            if i + 1 == curve.len() { "" } else { "," }
        ));
    }
    s.push_str("      ]\n    }");
    s
}

/// `saturate [--quick] [--stack <name>]`: the PR-8 offered-load sweep.
/// Every figure is virtual-time-deterministic (seed 7), so the emitted
/// BENCH_PR8.json is reproducible bit for bit and the guards are exact,
/// not noise-tolerant. `--stack` restricts the sweep to the variants of
/// one stack (by `StackKind` name or exact variant name) — a filtered run
/// prints its tables but skips the cross-variant guards and writes no
/// JSON, so the committed file always covers the full variant set.
fn saturate_cmd() {
    let args: Vec<String> = std::env::args().skip(2).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let stack_filter: Option<String> = args.iter().position(|a| a == "--stack").map(|i| {
        args.get(i + 1)
            .cloned()
            .unwrap_or_else(|| usage_error("--stack needs a name (new-arch, isis, token)"))
    });
    let (rates, window_ms, drain_ms): (&[u64], u64, u64) = if quick {
        (&[4_000, 16_000], 200, 1500)
    } else {
        (
            &[1_000, 2_000, 4_000, 6_000, 8_000, 10_000, 12_000, 16_000],
            1_000,
            2_000,
        )
    };
    const SEED: u64 = 7;
    const CAPACITY: usize = 64;
    let bp_rate = *rates.last().unwrap();

    let t0 = Instant::now();
    let vs: Vec<saturate::Variant> = match &stack_filter {
        None => saturate::variants(),
        Some(f) => {
            let vs: Vec<saturate::Variant> = saturate::variants()
                .into_iter()
                .filter(|v| v.stack.name() == f.as_str() || v.name == f.as_str())
                .collect();
            if vs.is_empty() {
                usage_error(&format!(
                    "unknown stack {f:?} (stacks: new-arch, isis, token; variants: {})",
                    saturate::variants()
                        .iter()
                        .map(|v| v.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            vs
        }
    };
    let full_set = stack_filter.is_none();
    let curves: Vec<(&'static str, Vec<saturate::Point>)> = vs
        .iter()
        .map(|v| (v.name, saturate::sweep(v, rates, window_ms, drain_ms, SEED)))
        .collect();
    // The backpressure run bounds the *sequential* stack — the variant that
    // saturates hardest — at the top of the sweep (skipped when the filter
    // excludes it).
    let bp_variant = vs.iter().find(|v| v.name == "new-arch-seq");
    let bp = bp_variant
        .map(|v| saturate::run_backpressure(v, bp_rate, window_ms, drain_ms, CAPACITY, SEED));

    println!(
        "## saturation sweep (n={}, window {window_ms} ms, drain {drain_ms} ms, seed {SEED})\n",
        saturate::GROUP
    );
    for (v, (name, curve)) in vs.iter().zip(&curves) {
        println!("### {name}\n");
        println!("| offered (msg/s) | goodput (msg/s) | mean lat (ms) | p99 (ms) |");
        println!("|---|---|---|---|");
        for p in curve {
            println!(
                "| {} | {:.0} | {:.2} | {:.2} |",
                p.rate, p.goodput, p.mean_ms, p.p99_ms
            );
        }
        match saturate::knee(curve) {
            Some(k) => println!(
                "\nknee: {k} msg/s sustained (goodput plateau {:.0} msg/s)\n",
                saturate::sustained_goodput(curve)
            ),
            None => match saturate::uncapped_note(v) {
                Some(note) => println!("\n{note}\n"),
                None => println!("\nknee: not reached within the sweep\n"),
            },
        }
    }
    if let (Some(v), Some(bp)) = (bp_variant, &bp) {
        println!(
            "### backpressure ({} at {bp_rate} msg/s, queue bound {CAPACITY})\n",
            v.name
        );
        println!(
            "offered {} accepted {} shed {} | queue high-water {} | goodput {:.0} msg/s | p99 {:.2} ms\n",
            bp.point.offered,
            bp.point.accepted,
            bp.shed,
            bp.point.high_water,
            bp.point.goodput,
            bp.point.p99_ms
        );
    }

    // Guards. The sweep is deterministic, so these are exact protocol
    // properties, not machine-noise tolerances. A filtered run is a probe,
    // not the recorded measurement: the cross-variant guards need both
    // new-arch variants, so they only run on the full set.
    let mut failures = Vec::new();
    if let Some(bp) = &bp {
        if bp.point.high_water > CAPACITY {
            failures.push(format!(
                "backpressure queue high-water {} exceeds the bound {CAPACITY}",
                bp.point.high_water
            ));
        }
        if bp.shed == 0 {
            failures.push(format!(
                "backpressure run at {bp_rate} msg/s shed nothing — the bound never engaged"
            ));
        }
    }
    if !full_set {
        eprintln!(
            "saturate --stack {} finished in {:.2}s wall-clock (guards and JSON skipped: \
filtered run)",
            stack_filter.as_deref().unwrap_or(""),
            t0.elapsed().as_secs_f64()
        );
        report_saturate_failures(&failures);
        return;
    }
    let seq = &curves[0].1;
    let pipe = &curves[1].1;
    let seq_sustained = saturate::sustained_goodput(seq);
    if quick {
        // Smoke guards: pipelining must still beat sequential at the
        // overloaded top rate.
        let (s_top, p_top) = (seq.last().unwrap(), pipe.last().unwrap());
        if p_top.goodput < 1.2 * s_top.goodput {
            failures.push(format!(
                "pipelined goodput {:.0} is not >= 1.2x sequential {:.0} at {bp_rate} msg/s",
                p_top.goodput, s_top.goodput
            ));
        }
    } else {
        let Some(seq_knee) = saturate::knee(seq) else {
            failures.push("the sequential stack never saturated within the sweep".into());
            report_saturate_failures(&failures);
            return;
        };
        // The acceptance figure: at twice the sequential knee, the
        // pipelined stack must carry >= 1.5x the sequential plateau.
        let target_rate = 2 * seq_knee;
        let at_2x = pipe
            .iter()
            .min_by_key(|p| p.rate.abs_diff(target_rate))
            .unwrap();
        if at_2x.goodput < 1.5 * seq_sustained {
            failures.push(format!(
                "pipelined goodput {:.0} at {} msg/s (2x seq knee) is not >= 1.5x the \
sequential plateau {:.0}",
                at_2x.goodput, at_2x.rate, seq_sustained
            ));
        }
        if at_2x.p99_ms >= 50.0 {
            failures.push(format!(
                "pipelined p99 {:.2} ms at {} msg/s is not bounded under 50 ms",
                at_2x.p99_ms, at_2x.rate
            ));
        }

        let mut s = String::from(
            "{\n  \"description\": \"PR 8 saturation: open-loop offered-load sweep per stack \
(n=5, flat LAN, seed 7, 1 s injection window + 2 s drain). goodput = ops delivered at every \
process inside the window; latencies are arrival -> delivered-everywhere, virtual time. The \
new-arch knee is a protocol cap (16-msg batches x consensus instance latency); depth-8 \
pipelining overlaps instances and lifts it past the sweep; the token knee is its per-hold \
byte budget (16 B) x rotation; Isis has no virtual-time cap (its sequencer stamps on \
arrival), so its knee honestly reports not reached -- its curve carries an explicit \
knee_note instead of a bare null. All figures are deterministic -- the \
guards are exact. Guards: pipelined goodput at 2x the sequential knee >= 1.5x the sequential \
plateau with p99 < 50 ms; the bounded-queue run keeps its high-water <= the 64-op bound and \
sheds the excess. Regenerate with: cargo run --release -p gcs-bench --bin repro -- \
saturate.\",\n  \"config\": {",
        );
        s.push_str(&format!(
            "\"group\": {}, \"window_ms\": {window_ms}, \"drain_ms\": {drain_ms}, \
\"seed\": {SEED}, \"sustain_fraction\": {}, \"rates\": {rates:?}}},\n  \"curves\": {{\n",
            saturate::GROUP,
            saturate::SUSTAIN_FRACTION
        ));
        for (i, (v, (name, curve))) in vs.iter().zip(&curves).enumerate() {
            s.push_str(&format!("    \"{name}\": {}", curve_json(v, curve)));
            s.push_str(if i + 1 == curves.len() { "\n" } else { ",\n" });
        }
        let bp = bp.as_ref().expect("full variant set includes new-arch-seq");
        s.push_str(&format!(
            "  }},\n  \"backpressure\": {{\"variant\": \"new-arch-seq\", \"rate\": {bp_rate}, \
\"capacity\": {CAPACITY}, \"offered\": {}, \"accepted\": {}, \"shed\": {}, \
\"high_water\": {}, \"goodput\": {:.1}, \"p99_ms\": {}}}\n}}",
            bp.point.offered,
            bp.point.accepted,
            bp.shed,
            bp.point.high_water,
            bp.point.goodput,
            json_f64(bp.point.p99_ms, 2)
        ));
        println!("```json\n{s}\n```");
        match std::fs::write("BENCH_PR8.json", format!("{s}\n")) {
            Ok(()) => eprintln!("wrote BENCH_PR8.json"),
            Err(e) => {
                eprintln!("repro: cannot write BENCH_PR8.json: {e}");
                std::process::exit(1);
            }
        }
    }
    eprintln!(
        "saturate{} finished in {:.2}s wall-clock",
        if quick { " --quick" } else { "" },
        t0.elapsed().as_secs_f64()
    );
    report_saturate_failures(&failures);
}

/// `live [msgs]`: the PR-9 sim-vs-live comparison — the same fixed
/// workload per stack on both backends, a markdown table, BENCH_PR9.json,
/// and hard completion guards (an op lost on the live backend is a bug in
/// the runtime, not noise).
fn live_cmd() {
    let msgs: usize = numeric_arg(2, "messages", 48);
    const SEED: u64 = 7;
    let gap = gcs_kernel::TimeDelta::from_millis(2);
    let t0 = Instant::now();
    let rows = live::run_matrix(msgs, gap, SEED);

    println!(
        "## sim vs live (n={}, {msgs} msgs at one per {} ms, seed {SEED})\n",
        live::GROUP,
        gap.as_millis()
    );
    println!("| stack | backend | completed | mean lat (ms) | p99 (ms) | wall (s) |");
    println!("|---|---|---|---|---|---|");
    for r in &rows {
        println!(
            "| {} | {:?} | {}/{} | {} | {} | {:.2} |",
            r.stack.name(),
            r.backend,
            r.completed,
            r.msgs,
            json_f64(r.mean_ms, 2),
            json_f64(r.p99_ms, 2),
            r.wall_s
        );
    }

    let mut failures = Vec::new();
    for r in &rows {
        if r.completed != r.msgs {
            failures.push(format!(
                "{:?}/{}: only {}/{} ops delivered at every member",
                r.backend,
                r.stack.name(),
                r.completed,
                r.msgs
            ));
        }
    }

    let mut s = String::from(
        "{\n  \"description\": \"PR 9 live backend: the same fixed workload (n=4, flat LAN, \
round-robin senders) per stack on the deterministic simulator and on the live \
thread-per-member runtime. Sim latency is virtual time (modeled network delay, computation \
free); live latency is wall time on OS threads (scheduling + channel hand-off + the timer \
wheel for emulated delays), so the columns document the cost of reality rather than being \
expected to match. Live figures vary run to run -- the committed numbers are one recorded \
run; the guard (every op delivered at every member on both backends) is the reproducible \
part. Regenerate with: cargo run --release -p gcs-bench --bin repro -- live.\",\n  \
\"config\": {",
    );
    s.push_str(&format!(
        "\"group\": {}, \"msgs\": {msgs}, \"gap_ms\": {}, \"seed\": {SEED}}},\n  \"rows\": [\n",
        live::GROUP,
        gap.as_millis()
    ));
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"stack\": \"{}\", \"backend\": \"{:?}\", \"msgs\": {}, \"completed\": {}, \
\"mean_ms\": {}, \"p99_ms\": {}, \"wall_s\": {:.3}}}{}\n",
            r.stack.name(),
            r.backend,
            r.msgs,
            r.completed,
            json_f64(r.mean_ms, 3),
            json_f64(r.p99_ms, 3),
            r.wall_s,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}");
    println!("\n```json\n{s}\n```");
    match std::fs::write("BENCH_PR9.json", format!("{s}\n")) {
        Ok(()) => eprintln!("wrote BENCH_PR9.json"),
        Err(e) => {
            eprintln!("repro: cannot write BENCH_PR9.json: {e}");
            std::process::exit(1);
        }
    }
    eprintln!(
        "live finished in {:.2}s wall-clock",
        t0.elapsed().as_secs_f64()
    );
    report_saturate_failures(&failures);
}

fn report_saturate_failures(failures: &[String]) {
    if !failures.is_empty() {
        for f in failures {
            eprintln!("repro: GUARD FAILED: {f}");
        }
        std::process::exit(1);
    }
}

/// `throughput [n] [horizon_ms]`: one timed run of the saturated
/// steady-state workload at group size `n` — the quick profiling probe for
/// scaling work (the recorded trajectory points live in the bench-pr*
/// commands).
fn throughput() {
    let n: usize = numeric_arg(2, "group size", 256);
    let horizon_ms: u64 = numeric_arg(3, "horizon", 10);
    let t0 = Instant::now();
    let events = perf::sim_throughput_counts(n, horizon_ms);
    let wall = t0.elapsed();
    let eps = (events as f64 / wall.as_secs_f64()) as u64;
    println!(
        "sim_throughput/{n}: {events} events over {horizon_ms} sim-ms in {:.3}s wall = {eps} events/sec",
        wall.as_secs_f64()
    );
}

/// Renders an f64 as a JSON value: numbers stay numbers, non-finite
/// figures (NaN latency when a run records no samples) become `null`
/// rather than invalid JSON.
fn json_f64(v: f64, precision: usize) -> String {
    if v.is_finite() {
        format!("{v:.precision$}")
    } else {
        "null".to_string()
    }
}

/// Renders the cross-seed aggregates as a JSON object (no external JSON
/// dependency), keyed by scenario name.
fn sweep_aggregates_json(aggregates: &[gcs_bench::scenario::SweepAggregate]) -> String {
    let mut s = String::from("{\n");
    for (i, a) in aggregates.iter().enumerate() {
        s.push_str(&format!(
            "  \"{}\": {{\"runs\": {}, \"mean_latency_ms\": {}, \"latency_stddev_ms\": {}, \
\"mean_p99_ms\": {}, \"mean_events\": {:.1}, \"events_stddev\": {:.1}, \"mean_msgs\": {:.1}, \
\"distinct_fingerprints\": {}}}{}\n",
            a.name,
            a.runs,
            json_f64(a.mean_latency_ms, 4),
            json_f64(a.latency_stddev_ms, 4),
            json_f64(a.mean_p99_ms, 4),
            a.mean_events,
            a.events_stddev,
            a.mean_msgs,
            a.distinct_fingerprints,
            if i + 1 == aggregates.len() { "" } else { "," }
        ));
    }
    s.push('}');
    s
}

/// `sweep [seeds] [base] [threads]`: run every cataloged scenario at
/// `seeds` consecutive seeds starting from `base`, fanned out across
/// worker threads (defaults to the machine's parallelism), and print one
/// merged table in deterministic task order, the per-scenario mean/σ
/// aggregates across seeds, and the aggregate JSON object.
fn sweep() {
    // At least one seed: `sweep 0` would otherwise underflow the header
    // range and run nothing.
    let seeds: u64 = numeric_arg(2, "seeds", 3u64).max(1);
    let base: u64 = numeric_arg(3, "base seed", 7u64);
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads: usize = numeric_arg(4, "threads", default_threads);
    // The 1024-member scale point stays behind `bench-pr7` and the
    // explicit `scenario` command: at sweep multiplicities (seeds x full
    // trace) it would dominate the whole sweep's wall time.
    let names: Vec<&'static str> = scenario::catalog()
        .iter()
        .filter(|s| s.n < 1024)
        .map(|s| s.name)
        .collect();
    println!(
        "(scenarios with n >= 1024 excluded from sweeps; run them via `scenario` or bench-pr7)"
    );
    let tasks: Vec<(&'static str, u64)> = names
        .iter()
        .flat_map(|&n| (0..seeds).map(move |k| (n, base + k)))
        .collect();

    let t0 = Instant::now();
    let results = scenario::run_sweep(&tasks, threads, TraceMode::Full);
    let wall = t0.elapsed();

    println!(
        "## scenario sweep: {} scenarios x {seeds} seeds ({base}..{}) on {threads} threads\n",
        names.len(),
        base + seeds - 1
    );
    println!("| scenario | seed | injected | deliveries | mean lat (ms) | p99 (ms) | msgs | events | viol | fingerprint |");
    println!("|---|---|---|---|---|---|---|---|---|---|");
    for r in &results {
        println!(
            "| {} | {} | {} | {} | {:.2} | {:.2} | {} | {} | {} | {:016x} |",
            r.name,
            r.seed,
            r.injected,
            r.deliveries,
            r.mean_latency_ms,
            r.p99_latency_ms,
            r.msgs,
            r.events,
            r.violations.len(),
            r.fingerprint
        );
    }
    let total_violations: usize = results.iter().map(|r| r.violations.len()).sum();
    if total_violations > 0 {
        println!("\n**{total_violations} invariant violations found:**\n");
        for r in results.iter().filter(|r| !r.violations.is_empty()) {
            for v in &r.violations {
                println!("- {}@{}: {v}", r.name, r.seed);
            }
        }
    }
    let aggregates = scenario::aggregate(&results);
    println!("\n### cross-seed aggregates (mean ± σ over {seeds} seeds)\n");
    println!("| scenario | runs | mean lat (ms) | σ lat (ms) | mean p99 (ms) | mean events | σ events | distinct fingerprints |");
    println!("|---|---|---|---|---|---|---|---|");
    for a in &aggregates {
        println!(
            "| {} | {} | {:.2} | {:.2} | {:.2} | {:.0} | {:.1} | {} |",
            a.name,
            a.runs,
            a.mean_latency_ms,
            a.latency_stddev_ms,
            a.mean_p99_ms,
            a.mean_events,
            a.events_stddev,
            a.distinct_fingerprints
        );
    }
    println!("\n```json\n{}\n```", sweep_aggregates_json(&aggregates));
    println!(
        "\n{} runs in {:.2}s wall-clock on {threads} threads",
        results.len(),
        wall.as_secs_f64()
    );
}

fn list() {
    println!("experiments:");
    for (name, about) in EXPERIMENTS {
        println!("  {name:<22} {about}");
    }
    println!("\nscenarios (workload × topology × schedule):");
    for s in scenario::catalog() {
        println!(
            "  {:<22} [{}] n={}{} on {:<12} {}",
            s.name,
            s.stack.name(),
            s.n,
            if s.joiners > 0 {
                format!("+{}", s.joiners)
            } else {
                String::new()
            },
            s.topology.name(),
            s.about
        );
    }
    println!(
        "\ntopology presets: {}",
        gcs_sim::TOPOLOGY_PRESETS.join(", ")
    );
}

fn run_scenario() {
    let name = std::env::args()
        .nth(2)
        .unwrap_or_else(|| usage_error("scenario needs a name (see `repro list`)"));
    let seed: u64 = numeric_arg(3, "seed", 7);
    let Some(s) = scenario::by_name(&name) else {
        usage_error(&format!("unknown scenario {name:?} (see `repro list`)"));
    };
    let r = s.run(seed, TraceMode::Full);
    println!("## scenario {} (seed {seed})\n", s.name);
    println!("{}", s.about);
    println!();
    println!("| metric | value |");
    println!("|---|---|");
    println!(
        "| group | n={} joiners={} on {} |",
        s.n,
        s.joiners,
        s.topology.name()
    );
    println!("| injected ops | {} |", r.injected);
    println!("| atomic deliveries | {} |", r.deliveries);
    println!("| mean latency (virtual ms) | {:.2} |", r.mean_latency_ms);
    println!("| p99 latency (virtual ms) | {:.2} |", r.p99_latency_ms);
    println!("| messages sent | {} |", r.msgs);
    println!("| wire bytes | {} |", r.bytes);
    println!("| sim events executed | {} |", r.events);
    println!("| run fingerprint | {:016x} |", r.fingerprint);
    if let Some(ms) = r.crash_detect_ms {
        println!("| crash detected by all correct (virtual ms) | {ms:.2} |");
    }
    println!(
        "| payload arena live / high-water | {} / {} |",
        r.arena_live, r.arena_high_water
    );
    println!(
        "| invariant violations | {}{} |",
        r.violations.len(),
        if r.oracle_ran {
            ""
        } else {
            " (oracle skipped)"
        }
    );
    if !r.violations.is_empty() {
        println!("\n### invariant violations\n");
        for v in &r.violations {
            println!("- {v}");
        }
    }
    if !r.region_latency.is_empty() {
        println!("\n### one-way link latency by region pair (log2 histograms)\n");
        println!("| src region | dst region | msgs | mean (ms) | ~p50 (ms) | ~p99 (ms) |");
        println!("|---|---|---|---|---|---|");
        for p in &r.region_latency {
            println!(
                "| r{} | r{} | {} | {:.2} | {:.2} | {:.2} |",
                p.from, p.to, p.count, p.mean_ms, p.p50_ms, p.p99_ms
            );
        }
    }
    // A scenario run that violates the paper's invariants is a failure,
    // not a report footnote — the CI smoke steps rely on the exit code.
    if !r.violations.is_empty() {
        std::process::exit(1);
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "e1" => experiments::e1_ordering_complexity(),
        "e2" => experiments::e2_generic_vs_atomic(),
        "e3" => {
            experiments::e3_failover_latency();
            experiments::e3_false_suspicion_cost();
        }
        "e4" => experiments::e4_view_change_blocking(),
        "a1" => experiments::a1_consensus_ablation(),
        "a2" => experiments::a2_fd_quality(),
        "all" => experiments::run_all(),
        "list" => list(),
        "scenario" => run_scenario(),
        "sweep" => sweep(),
        "bench-pr1" => bench_pr1(),
        "bench-pr2" => bench_pr2(),
        "bench-pr3" => bench_pr3(),
        "bench-pr7" => bench_pr7(),
        "saturate" => saturate_cmd(),
        "live" => live_cmd(),
        "throughput" => throughput(),
        "help" | "--help" | "-h" => println!("{}", usage()),
        other => usage_error(&format!("unknown command {other:?}")),
    }
}
