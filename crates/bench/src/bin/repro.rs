//! Regenerates the paper's experiments. Usage:
//!
//! ```text
//! repro [e1|e2|e3|e4|a1|a2|all|bench-pr1]
//! ```
//!
//! Output is markdown; EXPERIMENTS.md records a run of `repro all`.
//!
//! `bench-pr1` times the hot-path workloads tracked since PR 1 and prints
//! the measurement block of `BENCH_PR1.json` (see that file for the
//! committed before/after trajectory). Run it from a `--release` build.

use gcs_bench::{experiments, perf};

fn bench_pr1() {
    let reps = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15usize);
    let measurements = perf::run_all(reps);
    println!("{}", perf::to_json(&measurements));
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "e1" => experiments::e1_ordering_complexity(),
        "e2" => experiments::e2_generic_vs_atomic(),
        "e3" => {
            experiments::e3_failover_latency();
            experiments::e3_false_suspicion_cost();
        }
        "e4" => experiments::e4_view_change_blocking(),
        "a1" => experiments::a1_consensus_ablation(),
        "a2" => experiments::a2_fd_quality(),
        "all" => experiments::run_all(),
        "bench-pr1" => bench_pr1(),
        other => {
            eprintln!("unknown experiment {other:?}; use e1|e2|e3|e4|a1|a2|all|bench-pr1");
            std::process::exit(2);
        }
    }
}
