//! Regenerates the paper's experiments and runs the scenario matrix.
//!
//! ```text
//! repro [e1|e2|e3|e4|a1|a2|all]        paper experiments (markdown tables)
//! repro list                           enumerate experiments + scenarios
//! repro scenario <name> [seed]         run one named scenario
//! repro bench-pr1 [reps]               PR-1 perf trajectory (JSON to stdout)
//! repro bench-pr2 [reps]               PR-2 scenario trajectory → BENCH_PR2.json
//! ```
//!
//! Experiment output is markdown; EXPERIMENTS.md records a run of
//! `repro all`. The bench-* commands time hot-path workloads with a plain
//! `Instant` loop (run them from a `--release` build); `bench-pr2` also
//! writes `BENCH_PR2.json` in the current directory — the committed
//! trajectory of the scenario engine.

use gcs_bench::{experiments, perf, scenario};
use gcs_sim::TraceMode;

/// The paper experiments: one `(CLI name, description)` row per command —
/// the single source `usage()` and `list()` both render.
const EXPERIMENTS: &[(&str, &str)] = &[
    ("e1", "ordering complexity (§4.1)"),
    ("e2", "generic vs atomic broadcast (§4.2)"),
    ("e3", "failover latency + false-suspicion cost (§4.3)"),
    ("e4", "view-change blocking (§4.4)"),
    ("a1", "consensus ablation (Chandra-Toueg vs Paxos)"),
    ("a2", "failure-detector quality"),
];

fn usage() -> String {
    let mut s = String::from("usage: repro <command>\n\npaper experiments (markdown tables):\n");
    for (name, about) in EXPERIMENTS {
        s.push_str(&format!("  {name:<10} {about}\n"));
    }
    s.push_str(
        "  all        every experiment in order

scenario engine:
  list                       enumerate experiments and named scenarios
  scenario <name> [seed]     run one scenario, print its report

perf trajectories (use a --release build):
  bench-pr1 [reps]           PR-1 workloads, JSON to stdout
  bench-pr2 [reps]           scenario matrix + hot-path guard, writes BENCH_PR2.json
",
    );
    s
}

fn usage_error(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    eprintln!("{}", usage());
    std::process::exit(2);
}

/// Parses positional argument `nth` as a number, defaulting when absent and
/// exiting with usage on garbage (`what` labels the error).
fn numeric_arg<T: std::str::FromStr>(nth: usize, what: &str, default: T) -> T {
    std::env::args()
        .nth(nth)
        .map(|s| {
            s.parse()
                .unwrap_or_else(|_| usage_error(&format!("bad {what} {s:?}")))
        })
        .unwrap_or(default)
}

fn bench_pr1() {
    let measurements = perf::run_all(numeric_arg(2, "reps", 15usize));
    println!("{}", perf::to_json(&measurements));
}

fn bench_pr2() {
    let reps = numeric_arg(2, "reps", 7usize);
    let measurements = perf::run_pr2(reps);
    let body = perf::to_json(&measurements);
    let json = format!(
        "{{\n  \"description\": \"PR 2 scenario engine: wall-clock trajectory of the \
workload × topology × schedule matrix (seed 7, counts-only trace). \
sim_throughput/64 is the hot-path guard and must stay within noise of \
BENCH_PR1.json. Regenerate with: cargo run --release -p gcs-bench --bin repro -- bench-pr2 [reps].\",\n  \
\"measurements\": {body}\n}}"
    );
    println!("{json}");
    match std::fs::write("BENCH_PR2.json", format!("{json}\n")) {
        Ok(()) => eprintln!("wrote BENCH_PR2.json"),
        Err(e) => {
            eprintln!("repro: cannot write BENCH_PR2.json: {e}");
            std::process::exit(1);
        }
    }
}

fn list() {
    println!("experiments:");
    for (name, about) in EXPERIMENTS {
        println!("  {name:<22} {about}");
    }
    println!("\nscenarios (workload × topology × schedule):");
    for s in scenario::catalog() {
        println!(
            "  {:<22} n={}{} on {:<12} {}",
            s.name,
            s.n,
            if s.joiners > 0 {
                format!("+{}", s.joiners)
            } else {
                String::new()
            },
            s.topology.name(),
            s.about
        );
    }
    println!(
        "\ntopology presets: {}",
        gcs_sim::TOPOLOGY_PRESETS.join(", ")
    );
}

fn run_scenario() {
    let name = std::env::args()
        .nth(2)
        .unwrap_or_else(|| usage_error("scenario needs a name (see `repro list`)"));
    let seed: u64 = numeric_arg(3, "seed", 7);
    let Some(s) = scenario::by_name(&name) else {
        usage_error(&format!("unknown scenario {name:?} (see `repro list`)"));
    };
    let r = s.run(seed, TraceMode::Full);
    println!("## scenario {} (seed {seed})\n", s.name);
    println!("{}", s.about);
    println!();
    println!("| metric | value |");
    println!("|---|---|");
    println!(
        "| group | n={} joiners={} on {} |",
        s.n,
        s.joiners,
        s.topology.name()
    );
    println!("| injected ops | {} |", r.injected);
    println!("| atomic deliveries | {} |", r.deliveries);
    println!("| mean latency (virtual ms) | {:.2} |", r.mean_latency_ms);
    println!("| p99 latency (virtual ms) | {:.2} |", r.p99_latency_ms);
    println!("| messages sent | {} |", r.msgs);
    println!("| wire bytes | {} |", r.bytes);
    println!("| sim events executed | {} |", r.events);
    println!("| run fingerprint | {:016x} |", r.fingerprint);
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "e1" => experiments::e1_ordering_complexity(),
        "e2" => experiments::e2_generic_vs_atomic(),
        "e3" => {
            experiments::e3_failover_latency();
            experiments::e3_false_suspicion_cost();
        }
        "e4" => experiments::e4_view_change_blocking(),
        "a1" => experiments::a1_consensus_ablation(),
        "a2" => experiments::a2_fd_quality(),
        "all" => experiments::run_all(),
        "list" => list(),
        "scenario" => run_scenario(),
        "bench-pr1" => bench_pr1(),
        "bench-pr2" => bench_pr2(),
        "help" | "--help" | "-h" => println!("{}", usage()),
        other => usage_error(&format!("unknown command {other:?}")),
    }
}
