//! Criterion wall-clock benchmarks of whole simulated scenarios.
//!
//! These measure the *cost of simulating* each protocol configuration —
//! useful for tracking implementation regressions. The paper-facing
//! virtual-time results come from the `repro` binary (see EXPERIMENTS.md);
//! each bench here corresponds to one experiment's inner loop:
//!
//! * `abcast_steady/n`       — E1's steady state (new architecture).
//! * `isis_steady/n`         — E1's steady state (Isis baseline).
//! * `token_steady/n`        — E1's steady state (token baseline).
//! * `gb_fast_path`          — E2's 0%-conflict point (no consensus).
//! * `gb_escalation`         — E2's 100%-conflict point.
//! * `failover_new/isis`     — E3's crash-recovery scenario.
//! * `consensus_instance/n`  — A1's single-decision cost (CT, in-memory).
//! * `sim_throughput/n`      — raw simulator speed (events/sec) at n=16, 64,
//!   256 and 1024, with the counts-only trace sink (the long-run
//!   configuration); the two large points run gossip monitoring and
//!   bounded relay (`SCALE_THRESHOLD`).
//! * `scenario/<name>`       — scenario-engine variants (WAN topology,
//!   skewed senders, churn) from the `gcs_bench::scenario` catalog.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcs_core::{ConflictRelation, GroupSim, MessageClass, StackConfig};
use gcs_kernel::{ProcessId, Time, TimeDelta};
use gcs_traditional::{IsisConfig, IsisSim, TokenConfig, TokenSim};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

fn abcast_steady(c: &mut Criterion) {
    let mut group = c.benchmark_group("abcast_steady");
    for n in [3usize, 5, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut cfg = StackConfig::default();
                cfg.monitoring_timeout = TimeDelta::from_secs(3600);
                let mut g = GroupSim::new(n, cfg, 1);
                for i in 0..20u32 {
                    g.abcast_at(
                        Time::from_millis(1 + i as u64 * 2),
                        p(i % n as u32),
                        vec![i as u8],
                    );
                }
                g.run_until(Time::from_millis(300));
                assert_eq!(g.adelivered_payloads()[0].len(), 20);
            });
        });
    }
    group.finish();
}

fn traditional_steady(c: &mut Criterion) {
    c.bench_function("isis_steady/5", |b| {
        b.iter(|| {
            let mut sim = IsisSim::new(5, IsisConfig::default(), 1);
            for i in 0..20u32 {
                sim.abcast_at(Time::from_millis(1 + i as u64 * 2), p(i % 5), vec![i as u8]);
            }
            sim.run_until(Time::from_millis(300));
            assert_eq!(sim.delivered_payloads()[0].len(), 20);
        });
    });
    c.bench_function("token_steady/5", |b| {
        b.iter(|| {
            let mut sim = TokenSim::new(5, TokenConfig::default(), 1);
            for i in 0..20u32 {
                sim.abcast_at(Time::from_millis(1 + i as u64 * 2), p(i % 5), vec![i as u8]);
            }
            sim.run_until(Time::from_millis(300));
            assert_eq!(sim.delivered_payloads()[0].len(), 20);
        });
    });
}

fn generic_broadcast(c: &mut Criterion) {
    c.bench_function("gb_fast_path", |b| {
        b.iter(|| {
            let mut cfg = StackConfig::default();
            cfg.conflict = ConflictRelation::none(4);
            let mut g = GroupSim::new(4, cfg, 2);
            for i in 0..20u32 {
                g.gbcast_at(
                    Time::from_millis(1 + i as u64),
                    p(i % 4),
                    MessageClass(0),
                    vec![i as u8],
                );
            }
            g.run_until(Time::from_millis(300));
            assert_eq!(g.metrics().sent_matching(|k| k.starts_with("ct/")), 0);
        });
    });
    c.bench_function("gb_escalation", |b| {
        b.iter(|| {
            let mut cfg = StackConfig::default();
            cfg.conflict = ConflictRelation::all(4);
            let mut g = GroupSim::new(4, cfg, 2);
            for i in 0..20u32 {
                g.gbcast_at(
                    Time::from_millis(1 + i as u64),
                    p(i % 4),
                    MessageClass(0),
                    vec![i as u8],
                );
            }
            g.run_until(Time::from_secs(2));
        });
    });
}

fn failover(c: &mut Criterion) {
    c.bench_function("failover_new", |b| {
        b.iter(|| {
            let mut cfg = StackConfig::default();
            cfg.monitoring_timeout = TimeDelta::from_secs(3600);
            let mut g = GroupSim::new(3, cfg, 3);
            g.crash_at(Time::from_millis(100), p(0));
            g.abcast_at(Time::from_millis(105), p(1), b"probe".to_vec());
            g.run_until(Time::from_millis(600));
        });
    });
    c.bench_function("failover_isis", |b| {
        b.iter(|| {
            let mut sim = IsisSim::new(3, IsisConfig::default(), 3);
            sim.crash_at(Time::from_millis(100), p(0));
            sim.abcast_at(Time::from_millis(105), p(1), b"probe".to_vec());
            sim.run_until(Time::from_millis(600));
        });
    });
}

fn consensus_instance(c: &mut Criterion) {
    use gcs_consensus::{CtConsensus, CtMsg, CtOut};
    use std::collections::VecDeque;
    let mut group = c.benchmark_group("consensus_instance");
    for n in [3u32, 5, 9] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let ids: Vec<ProcessId> = (0..n).map(p).collect();
                let mut insts: Vec<CtConsensus<u64>> = ids
                    .iter()
                    .map(|&q| CtConsensus::new(q, ids.clone()))
                    .collect();
                let mut queue: VecDeque<(ProcessId, ProcessId, CtMsg<u64>)> = VecDeque::new();
                for (i, inst) in insts.iter_mut().enumerate() {
                    for o in inst.propose(i as u64) {
                        if let CtOut::Send { to, msg } = o {
                            queue.push_back((p(i as u32), to, msg));
                        }
                    }
                }
                let mut decided = 0u32;
                while let Some((from, to, msg)) = queue.pop_front() {
                    for o in insts[to.index()].on_msg(from, msg) {
                        match o {
                            CtOut::Send { to: t, msg } => queue.push_back((to, t, msg)),
                            CtOut::Decided(_) => decided += 1,
                        }
                    }
                }
                assert_eq!(decided, n);
            });
        });
    }
    group.finish();
}

fn sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    // Horizons chosen so one iteration stays well under a second even at
    // n = 64 (the repro binary's bench-pr1 runs the full one-second form).
    for (n, horizon_ms) in [(16usize, 500u64), (64, 150)] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| gcs_bench::perf::sim_throughput_counts(n, horizon_ms));
        });
    }
    group.finish();
}

fn sim_throughput_large(c: &mut Criterion) {
    // The at-scale points, gossip monitoring and bounded relay: one full
    // simulated second at n = 256 (~0.7 s/iteration) and a shorter horizon
    // at n = 1024 (~1 s/iteration) — both live in their own group with a
    // minimal sampling budget (see the `big` group config), keeping the
    // whole group in CI-friendly minutes.
    let mut group = c.benchmark_group("sim_throughput");
    group.bench_with_input(BenchmarkId::from_parameter(256usize), &256usize, |b, &n| {
        b.iter(|| gcs_bench::perf::sim_throughput_counts(n, 1000));
    });
    group.bench_with_input(
        BenchmarkId::from_parameter(1024usize),
        &1024usize,
        |b, &n| {
            b.iter(|| gcs_bench::perf::sim_throughput_counts(n, 200));
        },
    );
    group.finish();
}

fn scenarios(c: &mut Criterion) {
    // The scenario-engine variants of the throughput story: the same stack
    // under WAN topologies and skewed senders (counts-only sink, like every
    // long run).
    use gcs_bench::scenario::by_name;
    use gcs_sim::TraceMode;
    let mut group = c.benchmark_group("scenario");
    for name in ["uniform-wan3", "skewed-lan", "churn-lan"] {
        let s = by_name(name).expect("tracked scenario");
        group.bench_function(name, |b| {
            b.iter(|| s.run(7, TraceMode::CountsOnly));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Each iteration simulates a whole distributed scenario; keep sampling
    // modest so `cargo bench` stays in CI-friendly territory.
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = abcast_steady, traditional_steady, generic_broadcast, failover, consensus_instance,
        sim_throughput, scenarios
}
criterion_group! {
    name = big;
    // Seconds-per-iteration workloads: minimal sampling.
    config = Criterion::default()
        .sample_size(3)
        .warm_up_time(std::time::Duration::from_millis(100))
        .measurement_time(std::time::Duration::from_millis(500));
    targets = sim_throughput_large
}
criterion_main!(benches, big);
