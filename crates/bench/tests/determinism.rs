//! Scenario determinism: the same seed + the same `Schedule`/`Topology`
//! must yield bit-identical event counts and delivery orders across runs.
//!
//! The scenario report's fingerprint folds every atomic delivery
//! (virtual time, process, full payload) plus the executed-event count, so
//! equal fingerprints mean equal delivery orders, not just equal totals.

use gcs_api::StackKind;
use gcs_bench::scenario::{catalog, Scenario};
use gcs_bench::workload::UniformWorkload;
use gcs_kernel::{ProcessId, Time};
use gcs_sim::{Schedule, Topology, TraceMode, TOPOLOGY_PRESETS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arbitrary (seed, topology preset, crash/partition schedule): two runs
    /// of the same scenario are indistinguishable.
    #[test]
    fn same_seed_schedule_topology_is_bit_identical(
        seed in any::<u64>(),
        preset in 0usize..TOPOLOGY_PRESETS.len(),
        crash_ms in proptest::option::of(20u64..150),
        partition in proptest::option::of((20u64..100, 60u64..200)),
    ) {
        let topology = Topology::by_name(TOPOLOGY_PRESETS[preset]).unwrap();
        let mut schedule = Schedule::new();
        if let Some(c) = crash_ms {
            schedule = schedule.crash(Time::from_millis(c), ProcessId::new(3));
        }
        if let Some((start, extra)) = partition {
            schedule = schedule
                .partition_regions(Time::from_millis(start))
                .heal(Time::from_millis(start + extra));
        }
        let scenario = Scenario {
            name: "prop",
            about: "randomized determinism case",
            stack: StackKind::NewArch,
            n: 4,
            joiners: 0,
            topology,
            workload: Box::new(UniformWorkload::steady(30, 3)),
            schedule,
            trace_suspicions: false,
            horizon: Time::from_secs(2),
        };
        let a = scenario.run(seed, TraceMode::Full);
        let b = scenario.run(seed, TraceMode::Full);
        prop_assert_eq!(a.fingerprint, b.fingerprint, "delivery orders differ");
        prop_assert_eq!(a.events, b.events, "event counts differ");
        prop_assert_eq!(a.deliveries, b.deliveries);
        prop_assert_eq!(a.msgs, b.msgs);
        prop_assert_eq!(a.bytes, b.bytes);
    }

    /// Churn schedules (join + remove under load) are deterministic too —
    /// the membership path goes through consensus, which must not leak any
    /// nondeterminism into the trace.
    #[test]
    fn churn_schedule_is_deterministic(seed in any::<u64>()) {
        let make = || Scenario {
            name: "prop-churn",
            about: "randomized churn determinism case",
            stack: StackKind::NewArch,
            n: 4,
            joiners: 1,
            topology: Topology::lan(),
            workload: Box::new(UniformWorkload::steady(30, 3)),
            schedule: Schedule::new()
                .join(Time::from_millis(30), ProcessId::new(4), ProcessId::new(1))
                .remove(Time::from_millis(60), ProcessId::new(0), ProcessId::new(3)),
            trace_suspicions: false,
            horizon: Time::from_secs(2),
        };
        let a = make().run(seed, TraceMode::Full);
        let b = make().run(seed, TraceMode::Full);
        prop_assert_eq!(a.fingerprint, b.fingerprint);
        prop_assert_eq!(a.events, b.events);
    }
}

/// Every cataloged scenario is reproducible at a fixed seed (the cheap,
/// non-randomized guard the CI smoke relies on). Uses the counts-only sink:
/// the fingerprint then reduces to the event count, while `deliveries` and
/// `msgs` still pin the outcome.
#[test]
fn catalog_scenarios_reproduce_at_fixed_seed() {
    for s in catalog() {
        // The at-scale points (n > 64) cost seconds per run even with the
        // counting sink; their reproducibility is pinned by the recorded
        // fingerprints (release smoke + bench-pr7), not this debug loop.
        if s.n > 64 {
            continue;
        }
        let a = s.run(11, TraceMode::CountsOnly);
        let b = s.run(11, TraceMode::CountsOnly);
        assert_eq!(a.events, b.events, "{}: event counts differ", s.name);
        assert_eq!(a.deliveries, b.deliveries, "{}", s.name);
        assert_eq!(a.msgs, b.msgs, "{}", s.name);
        assert_eq!(a.bytes, b.bytes, "{}", s.name);
    }
}
