//! Property-based cross-stack fault fuzzing: random scripted timelines
//! (crash / partition+heal / join / remove, within safe bounds) run against
//! **all three** stacks, with the invariant oracle asserting zero violations
//! for every seed.
//!
//! "Safe bounds" means the timeline windows are chosen so that a majority
//! always exists (or is restored by a heal well before the horizon) and
//! membership changes do not deliberately overlap reformation windows —
//! overlapping those exercises the full Totem membership-merge protocol,
//! which the baselines intentionally do not implement. Within these bounds
//! the paper's properties must hold on every architecture, every time.

use gcs_api::StackKind;
use gcs_bench::scenario::Scenario;
use gcs_bench::workload::UniformWorkload;
use gcs_kernel::{ProcessId, Time};
use gcs_sim::{Schedule, Topology, TraceMode};
use proptest::prelude::*;

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arbitrary (seed, join?, remove?, crash?, partition?) timelines are
    /// invariant-clean on every stack.
    #[test]
    fn random_fault_timelines_are_invariant_clean(
        seed in any::<u64>(),
        join_ms in proptest::option::of(20u64..60),
        remove_ms in proptest::option::of(80u64..120),
        crash_ms in proptest::option::of(150u64..200),
        partition in proptest::option::of((250u64..350, 150u64..300)),
    ) {
        let mut schedule = Schedule::new();
        if let Some(t) = join_ms {
            // The joiner (p4) starts outside the group and joins via p1.
            schedule = schedule.join(Time::from_millis(t), p(4), p(1));
        }
        if let Some(t) = remove_ms {
            // p0 requests the removal of p3 (never the coordinator).
            schedule = schedule.remove(Time::from_millis(t), p(0), p(3));
        }
        if let Some(t) = crash_ms {
            schedule = schedule.crash(Time::from_millis(t), p(2));
        }
        if let Some((start, dur)) = partition {
            // {0,1} plus the joiner on one side: whichever memberships the
            // earlier steps produced, one side holds (or regains) a
            // majority, and the heal lands long before the horizon.
            schedule = schedule
                .partition(
                    Time::from_millis(start),
                    vec![vec![p(0), p(1), p(4)], vec![p(2), p(3)]],
                )
                .heal(Time::from_millis(start + dur));
        }

        for stack in StackKind::ALL {
            let scenario = Scenario {
                name: "oracle-fuzz",
                about: "randomized fault timeline",
                stack,
                n: 4,
                joiners: 1,
                topology: Topology::lan(),
                workload: Box::new(UniformWorkload::steady(40, 5)),
                schedule: schedule.clone(),
                trace_suspicions: false,
                horizon: Time::from_secs(3),
            };
            let r = scenario.run(seed, TraceMode::Full);
            prop_assert!(r.oracle_ran);
            prop_assert!(
                r.violations.is_empty(),
                "{}@{seed}: {:#?} (schedule {:?})",
                stack.name(),
                r.violations,
                schedule,
            );
            // Liveness floor: the group made progress in every timeline.
            prop_assert!(r.deliveries > 0, "{}@{seed}: no deliveries", stack.name());
        }
    }
}
