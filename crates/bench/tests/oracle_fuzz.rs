//! Property-based cross-stack fault fuzzing: random scripted timelines
//! (crash / partition+heal / join / remove, within safe bounds) run against
//! **all three** stacks, with the invariant oracle asserting zero violations
//! for every seed.
//!
//! "Safe bounds" means the timeline windows are chosen so that a majority
//! always exists (or is restored by a heal well before the horizon) and
//! membership changes do not deliberately overlap reformation windows —
//! overlapping those exercises the full Totem membership-merge protocol,
//! which the baselines intentionally do not implement. Within these bounds
//! the paper's properties must hold on every architecture, every time.

use gcs_api::{BatchPolicy, Group, GroupTransport, InvariantChecker, StackKind};
use gcs_bench::scenario::Scenario;
use gcs_bench::workload::{UniformWorkload, Workload};
use gcs_core::StackConfig;
use gcs_kernel::{ProcessId, Time, TimeDelta};
use gcs_sim::{Schedule, Topology, TraceMode};
use proptest::prelude::*;

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

/// Runs a 4-member group of `stack` under `schedule` with the given
/// pipeline depth (and, when `Some`, real batch caps so pipelining has
/// batch boundaries to move), returning per-process delivered payloads and
/// rendered invariant violations.
fn run_at_depth(
    stack: StackKind,
    depth: Option<usize>,
    batched: bool,
    schedule: &Schedule,
    seed: u64,
) -> (Vec<Vec<Vec<u8>>>, Vec<String>) {
    let mut cfg = StackConfig::default();
    // As in the scenario engine: exclusions come from the script, not from
    // wall-clock monitoring racing the timeline.
    cfg.monitoring_timeout = TimeDelta::from_secs(3600);
    cfg.pipeline_depth = depth;
    if batched {
        cfg.batch = Some(BatchPolicy {
            max_msgs: 4,
            max_bytes: 64,
            max_delay: TimeDelta::from_millis(1),
        });
    }
    let mut g = Group::builder()
        .members(4)
        .stack(stack)
        .schedule(schedule.clone())
        .stack_config(cfg)
        .seed(seed)
        .build();
    UniformWorkload::steady(40, 5).inject(4, &mut g);
    g.run_until(Time::from_secs(3));
    let violations = InvariantChecker::check(&g, 4)
        .violations
        .iter()
        .map(|v| v.to_string())
        .collect();
    (g.adelivered_payloads(), violations)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arbitrary (seed, join?, remove?, crash?, partition?) timelines are
    /// invariant-clean on every stack.
    #[test]
    fn random_fault_timelines_are_invariant_clean(
        seed in any::<u64>(),
        join_ms in proptest::option::of(20u64..60),
        remove_ms in proptest::option::of(80u64..120),
        crash_ms in proptest::option::of(150u64..200),
        partition in proptest::option::of((250u64..350, 150u64..300)),
    ) {
        let mut schedule = Schedule::new();
        if let Some(t) = join_ms {
            // The joiner (p4) starts outside the group and joins via p1.
            schedule = schedule.join(Time::from_millis(t), p(4), p(1));
        }
        if let Some(t) = remove_ms {
            // p0 requests the removal of p3 (never the coordinator).
            schedule = schedule.remove(Time::from_millis(t), p(0), p(3));
        }
        if let Some(t) = crash_ms {
            schedule = schedule.crash(Time::from_millis(t), p(2));
        }
        if let Some((start, dur)) = partition {
            // {0,1} plus the joiner on one side: whichever memberships the
            // earlier steps produced, one side holds (or regains) a
            // majority, and the heal lands long before the horizon.
            schedule = schedule
                .partition(
                    Time::from_millis(start),
                    vec![vec![p(0), p(1), p(4)], vec![p(2), p(3)]],
                )
                .heal(Time::from_millis(start + dur));
        }

        for stack in StackKind::ALL {
            let scenario = Scenario {
                name: "oracle-fuzz",
                about: "randomized fault timeline",
                stack,
                n: 4,
                joiners: 1,
                topology: Topology::lan(),
                workload: Box::new(UniformWorkload::steady(40, 5)),
                schedule: schedule.clone(),
                trace_suspicions: false,
                horizon: Time::from_secs(3),
            };
            let r = scenario.run(seed, TraceMode::Full);
            prop_assert!(r.oracle_ran);
            prop_assert!(
                r.violations.is_empty(),
                "{}@{seed}: {:#?} (schedule {:?})",
                stack.name(),
                r.violations,
                schedule,
            );
            // Liveness floor: the group made progress in every timeline.
            prop_assert!(r.deliveries > 0, "{}@{seed}: no deliveries", stack.name());
        }
    }

    /// Consensus pipelining is order-safe under faults: at every depth the
    /// oracle is clean and the survivors deliver the same message *set*
    /// (batch boundaries shift with decide timing, so the cross-depth
    /// interleaving may legitimately differ — the per-depth total order is
    /// what the oracle enforces). Depth `Some(1)` must reproduce the
    /// unconfigured (`None`) run exactly, per-process and in order — the
    /// bit-parity contract the recorded catalog fingerprints rely on. The
    /// baselines ignore the knob and must stay clean with it set.
    #[test]
    fn pipeline_depths_are_fault_equivalent(
        seed in any::<u64>(),
        crash_ms in proptest::option::of(150u64..200),
        partition in proptest::option::of((250u64..350, 150u64..300)),
    ) {
        let mut schedule = Schedule::new();
        if let Some(t) = crash_ms {
            schedule = schedule.crash(Time::from_millis(t), p(2));
        }
        if let Some((start, dur)) = partition {
            // p2 (possibly already crashed) isolated; {0,1,3} keep quorum.
            schedule = schedule
                .partition(
                    Time::from_millis(start),
                    vec![vec![p(0), p(1), p(3)], vec![p(2)]],
                )
                .heal(Time::from_millis(start + dur));
        }

        // Bit-parity: an explicit depth of 1 is the unconfigured pipeline.
        let baseline = run_at_depth(StackKind::NewArch, None, false, &schedule, seed);
        let explicit = run_at_depth(StackKind::NewArch, Some(1), false, &schedule, seed);
        prop_assert_eq!(&baseline.0, &explicit.0, "depth Some(1) != None @{}", seed);

        // Depth sweep under real batch caps: clean, live, same survivor set.
        let mut reference: Option<Vec<Vec<Vec<u8>>>> = None;
        for depth in [1usize, 2, 4, 8] {
            let (delivered, violations) =
                run_at_depth(StackKind::NewArch, Some(depth), true, &schedule, seed);
            prop_assert!(
                violations.is_empty(),
                "depth {depth}@{seed}: {violations:#?} (schedule {schedule:?})"
            );
            let survivors: Vec<Vec<Vec<u8>>> = [0usize, 1, 3]
                .iter()
                .map(|&i| {
                    let mut set = delivered[i].clone();
                    set.sort();
                    set
                })
                .collect();
            prop_assert!(
                survivors.iter().all(|s| !s.is_empty()),
                "depth {depth}@{seed}: a survivor delivered nothing"
            );
            match &reference {
                None => reference = Some(survivors),
                Some(r) => prop_assert_eq!(
                    r,
                    &survivors,
                    "depth {} delivers a different set @{} (schedule {:?})",
                    depth,
                    seed,
                    schedule
                ),
            }
        }

        // The baselines ignore the knob entirely.
        for stack in [StackKind::Isis, StackKind::Token] {
            let (delivered, violations) = run_at_depth(stack, Some(8), true, &schedule, seed);
            prop_assert!(
                violations.is_empty(),
                "{}@{seed}: {violations:#?}",
                stack.name()
            );
            prop_assert!(!delivered[0].is_empty(), "{}@{seed}: no deliveries", stack.name());
        }
    }
}
