//! Alloc-regression guard: abcast steady-state allocations per adelivery
//! must stay under a committed budget.
//!
//! This test binary installs the counting global allocator itself (a
//! `#[global_allocator]` must live in the final crate, and integration
//! tests are their own crates), so it holds exactly one test: concurrent
//! tests in the same binary would pollute the process-global counters.

use gcs_bench::alloccount::CountingAlloc;
use gcs_bench::perf;

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// The committed budget. History of the tracked metric:
///
/// * pre-PR-3 baseline: **33.4** allocs/adelivery
/// * PR 3 (arena-backed payload handles + scratch-buffer dispatch): **15.0**
///
/// The budget sits between the two with headroom for toolchain noise; a
/// breach means a change re-introduced per-delivery allocations on the
/// abcast hot path (per-call output `Vec`s, batch copies, payload clones).
const BUDGET_ALLOCS_PER_ADELIVERY: f64 = 20.0;

#[test]
fn abcast_steady_state_allocs_per_adelivery_stay_under_budget() {
    let m = perf::measure_allocs("abcast_steady/5", perf::abcast_steady_5_stats);
    assert!(m.deliveries >= 100, "workload delivered: {m:?}");
    let per_delivery = m.allocs_per_delivery();
    assert!(
        per_delivery <= BUDGET_ALLOCS_PER_ADELIVERY,
        "abcast steady state allocates {per_delivery:.2} per adelivery \
         (budget {BUDGET_ALLOCS_PER_ADELIVERY}); the zero-copy message plane regressed: {m:?}"
    );
}
