//! Repeated consensus: the service atomic broadcast is built on.

use std::collections::BTreeMap;

use gcs_kernel::{FxHashSet, ProcessId};

use crate::chandra_toueg::{CtConsensus, CtMsg, CtOut};
use crate::Value;

/// Identifies one consensus instance (atomic broadcast runs instance
/// `0, 1, 2, …` — one per delivered batch).
pub type InstanceId = u64;

/// An instruction produced by the [`ConsensusManager`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ManagerOut<V> {
    /// Send an instance-tagged message over the reliable channel.
    Send {
        /// Destination participant.
        to: ProcessId,
        /// The instance the message belongs to.
        instance: InstanceId,
        /// The protocol message.
        msg: CtMsg<V>,
    },
    /// Instance `instance` decided `value` (emitted once per instance).
    Decided {
        /// The deciding instance.
        instance: InstanceId,
        /// The decided value.
        value: V,
    },
}

/// Manages a sequence of consensus instances: creation on proposal,
/// decision caching, catch-up replies for lagging peers, and propagation of
/// the failure-detector suspicion set to every live instance.
#[derive(Debug)]
pub struct ConsensusManager<V> {
    me: ProcessId,
    instances: BTreeMap<InstanceId, CtConsensus<V>>,
    decisions: BTreeMap<InstanceId, V>,
    suspected: FxHashSet<ProcessId>,
    /// Decisions below this instance were pruned: messages for them are
    /// dropped (not buffered) — a peer that far behind recovers via state
    /// transfer, not per-instance catch-up.
    pruned_below: InstanceId,
    /// Reused buffer for instance outputs: steady-state message handling
    /// allocates no per-call `Vec`.
    ct_scratch: Vec<CtOut<V>>,
    /// Decide-echo fan-out handed to every created instance (see
    /// [`CtConsensus::with_echo_fanout`]).
    echo_fanout: Option<usize>,
}

impl<V: Value> ConsensusManager<V> {
    /// Creates a manager for process `me`.
    pub fn new(me: ProcessId) -> Self {
        Self::with_echo_fanout(me, None)
    }

    /// Creates a manager whose instances echo decisions with the given
    /// bounded fan-out (`None` = echo to every participant).
    pub fn with_echo_fanout(me: ProcessId, echo_fanout: Option<usize>) -> Self {
        ConsensusManager {
            me,
            instances: BTreeMap::new(),
            decisions: BTreeMap::new(),
            suspected: FxHashSet::default(),
            pruned_below: 0,
            ct_scratch: Vec::new(),
            echo_fanout,
        }
    }

    /// Whether `instance` exists locally (running or decided).
    pub fn has_instance(&self, instance: InstanceId) -> bool {
        self.instances.contains_key(&instance) || self.decisions.contains_key(&instance)
    }

    /// The cached decision of `instance`, if it decided locally.
    pub fn decision(&self, instance: InstanceId) -> Option<&V> {
        self.decisions.get(&instance)
    }

    /// Proposes `value` for `instance` among `participants`.
    ///
    /// Creates the instance if needed (idempotent otherwise; the
    /// participant slice is only copied on creation) and seeds it with the
    /// current suspicion set.
    pub fn propose(
        &mut self,
        instance: InstanceId,
        value: V,
        participants: &[ProcessId],
    ) -> Vec<ManagerOut<V>> {
        let mut out = Vec::new();
        self.propose_into(instance, value, participants, &mut out);
        out
    }

    /// [`propose`](Self::propose), appending into a caller-owned buffer
    /// (the hot-path entry point).
    pub fn propose_into(
        &mut self,
        instance: InstanceId,
        value: V,
        participants: &[ProcessId],
        out: &mut Vec<ManagerOut<V>>,
    ) {
        if self.decisions.contains_key(&instance) {
            return;
        }
        let me = self.me;
        let mut suspected: Vec<ProcessId> = self.suspected.iter().copied().collect();
        suspected.sort_unstable(); // deterministic seeding order
        let echo_fanout = self.echo_fanout;
        let inst = self.instances.entry(instance).or_insert_with(|| {
            let mut c = CtConsensus::with_echo_fanout(me, participants.to_vec(), echo_fanout);
            for &s in &suspected {
                let _ = c.suspect(s);
            }
            c
        });
        let mut scratch = std::mem::take(&mut self.ct_scratch);
        inst.propose_into(value, &mut scratch);
        self.collect(instance, &mut scratch, out);
        self.ct_scratch = scratch;
    }

    /// Handles an instance-tagged message.
    ///
    /// Messages for unknown instances are answered with the cached decision
    /// when available; otherwise they must be buffered by the caller until
    /// it proposes for that instance (the caller — atomic broadcast — knows
    /// the participant set, the manager does not). In that buffering case
    /// the message is handed back, so the caller does not have to clone
    /// defensively up front.
    pub fn on_msg(
        &mut self,
        instance: InstanceId,
        from: ProcessId,
        msg: CtMsg<V>,
    ) -> (Vec<ManagerOut<V>>, Option<CtMsg<V>>) {
        let mut out = Vec::new();
        let rejected = self.on_msg_into(instance, from, msg, &mut out);
        (out, rejected)
    }

    /// [`on_msg`](Self::on_msg), appending into a caller-owned buffer (the
    /// hot-path entry point). Returns the message back when it must be
    /// buffered by the caller.
    pub fn on_msg_into(
        &mut self,
        instance: InstanceId,
        from: ProcessId,
        msg: CtMsg<V>,
        out: &mut Vec<ManagerOut<V>>,
    ) -> Option<CtMsg<V>> {
        if let Some(v) = self.decisions.get(&instance) {
            if !matches!(msg, CtMsg::Decide { .. }) {
                out.push(ManagerOut::Send {
                    to: from,
                    instance,
                    msg: CtMsg::Decide { est: v.clone() },
                });
            }
            return None;
        }
        if instance < self.pruned_below {
            // The decision existed once but was pruned: buffering would
            // leak forever (atomic broadcast never starts instances behind
            // its cursor), so drop — the sender is beyond the catch-up
            // window and recovers by state transfer.
            return None;
        }
        let Some(inst) = self.instances.get_mut(&instance) else {
            return Some(msg);
        };
        let mut scratch = std::mem::take(&mut self.ct_scratch);
        inst.on_msg_into(from, msg, &mut scratch);
        self.collect(instance, &mut scratch, out);
        self.ct_scratch = scratch;
        None
    }

    /// Records a suspicion and forwards it to every running instance.
    pub fn suspect(&mut self, p: ProcessId) -> Vec<ManagerOut<V>> {
        let mut out = Vec::new();
        self.suspect_into(p, &mut out);
        out
    }

    /// [`suspect`](Self::suspect), appending into a caller-owned buffer.
    pub fn suspect_into(&mut self, p: ProcessId, out: &mut Vec<ManagerOut<V>>) {
        self.suspected.insert(p);
        let ids: Vec<InstanceId> = self.instances.keys().copied().collect();
        let mut scratch = std::mem::take(&mut self.ct_scratch);
        for id in ids {
            self.instances
                .get_mut(&id)
                .expect("listed")
                .suspect_into(p, &mut scratch);
            self.collect(id, &mut scratch, out);
        }
        self.ct_scratch = scratch;
    }

    /// Clears a suspicion (future instances start without it; running
    /// instances stop nacking its rounds).
    pub fn restore(&mut self, p: ProcessId) {
        self.suspected.remove(&p);
        for inst in self.instances.values_mut() {
            inst.restore(p);
        }
    }

    /// Drops state of decided instances below `floor` and records the floor
    /// (monotonic): later messages for pruned instances are dropped rather
    /// than handed back for buffering. The caller guarantees peers that far
    /// behind recover some other way (state transfer), keeping decision
    /// memory bounded on long pipelined runs.
    pub fn prune_below(&mut self, floor: InstanceId) {
        if floor <= self.pruned_below {
            return;
        }
        self.pruned_below = floor;
        self.decisions = self.decisions.split_off(&floor);
    }

    /// The current prune floor (0 when nothing was ever pruned).
    pub fn pruned_below(&self) -> InstanceId {
        self.pruned_below
    }

    /// Drains instance outputs (leaving `outs` empty for reuse) into
    /// manager outputs, caching decisions.
    fn collect(
        &mut self,
        instance: InstanceId,
        outs: &mut Vec<CtOut<V>>,
        res: &mut Vec<ManagerOut<V>>,
    ) {
        for o in outs.drain(..) {
            match o {
                CtOut::Send { to, msg } => res.push(ManagerOut::Send { to, instance, msg }),
                CtOut::Decided(v) => {
                    self.decisions.insert(instance, v.clone());
                    self.instances.remove(&instance);
                    res.push(ManagerOut::Decided { instance, value: v });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn drive(managers: &mut [ConsensusManager<u32>]) -> BTreeMap<(usize, InstanceId), u32> {
        let mut queue: std::collections::VecDeque<(ProcessId, ProcessId, InstanceId, CtMsg<u32>)> =
            Default::default();
        let mut decided = BTreeMap::new();
        // Kick off: everyone proposes for instance 0 and 1.
        let ids: Vec<ProcessId> = (0..managers.len() as u32).map(pid).collect();
        for (i, m) in managers.iter_mut().enumerate() {
            for inst in 0..2 {
                for o in m.propose(inst, (10 * (inst + 1)) as u32 + i as u32, &ids) {
                    match o {
                        ManagerOut::Send { to, instance, msg } => {
                            queue.push_back((pid(i as u32), to, instance, msg))
                        }
                        ManagerOut::Decided { instance, value } => {
                            decided.insert((i, instance), value);
                        }
                    }
                }
            }
        }
        let mut steps = 0;
        while let Some((from, to, instance, msg)) = queue.pop_front() {
            steps += 1;
            assert!(steps < 100_000);
            let (outs, rejected) = managers[to.index()].on_msg(instance, from, msg);
            assert!(rejected.is_none(), "nothing should need buffering here");
            for o in outs {
                match o {
                    ManagerOut::Send {
                        to: t,
                        instance,
                        msg,
                    } => queue.push_back((to, t, instance, msg)),
                    ManagerOut::Decided { instance, value } => {
                        decided.insert((to.index(), instance), value);
                    }
                }
            }
        }
        decided
    }

    #[test]
    fn independent_instances_decide_independently() {
        let mut managers: Vec<ConsensusManager<u32>> =
            (0..3).map(|i| ConsensusManager::new(pid(i))).collect();
        let decided = drive(&mut managers);
        // Every process decided both instances.
        assert_eq!(decided.len(), 6);
        for inst in 0..2u64 {
            let vals: std::collections::HashSet<u32> = (0..3)
                .map(|p| *decided.get(&(p, inst)).expect("decided"))
                .collect();
            assert_eq!(vals.len(), 1, "instance {inst} disagreement");
        }
        // Decisions are cached.
        assert!(managers[0].decision(0).is_some());
        assert!(managers[0].has_instance(1));
    }

    #[test]
    fn unknown_instance_requests_buffering() {
        let mut m: ConsensusManager<u32> = ConsensusManager::new(pid(0));
        let (outs, rejected) = m.on_msg(
            7,
            pid(1),
            CtMsg::Estimate {
                round: 0,
                est: 1,
                ts: 0,
            },
        );
        assert!(outs.is_empty());
        assert!(matches!(rejected, Some(CtMsg::Estimate { .. })));
    }

    #[test]
    fn decided_instance_answers_with_decision() {
        let mut managers: Vec<ConsensusManager<u32>> =
            (0..3).map(|i| ConsensusManager::new(pid(i))).collect();
        drive(&mut managers);
        let (outs, rejected) = managers[0].on_msg(
            0,
            pid(2),
            CtMsg::Estimate {
                round: 5,
                est: 9,
                ts: 0,
            },
        );
        assert!(rejected.is_none());
        assert!(matches!(
            outs.as_slice(),
            [ManagerOut::Send { to, msg: CtMsg::Decide { .. }, .. }] if *to == pid(2)
        ));
    }

    #[test]
    fn prune_drops_old_decisions() {
        let mut managers: Vec<ConsensusManager<u32>> =
            (0..3).map(|i| ConsensusManager::new(pid(i))).collect();
        drive(&mut managers);
        managers[0].prune_below(1);
        assert!(managers[0].decision(0).is_none());
        assert!(managers[0].decision(1).is_some());
        assert_eq!(managers[0].pruned_below(), 1);
    }

    #[test]
    fn messages_below_the_prune_floor_are_dropped_not_buffered() {
        let mut managers: Vec<ConsensusManager<u32>> =
            (0..3).map(|i| ConsensusManager::new(pid(i))).collect();
        drive(&mut managers);
        managers[0].prune_below(1);
        let (outs, rejected) = managers[0].on_msg(
            0,
            pid(2),
            CtMsg::Estimate {
                round: 0,
                est: 9,
                ts: 0,
            },
        );
        assert!(outs.is_empty(), "no catch-up reply for a pruned instance");
        assert!(rejected.is_none(), "pruned-instance traffic is dropped");
        // The floor is monotonic: lowering it is a no-op.
        managers[0].prune_below(0);
        assert_eq!(managers[0].pruned_below(), 1);
    }

    #[test]
    fn suspicion_applies_to_running_and_future_instances() {
        let ids: Vec<ProcessId> = (0..3).map(pid).collect();
        let mut m: ConsensusManager<u32> = ConsensusManager::new(pid(1));
        let _ = m.suspect(pid(0));
        // New instance: round 0's coordinator (p0) is pre-suspected, so the
        // propose immediately nacks round 0 and sends the round-1 estimate
        // to p1 (itself).
        let outs = m.propose(0, 42, &ids);
        let sends_to_self_round1 = outs.iter().any(|o| {
            matches!(o, ManagerOut::Send { to, msg: CtMsg::Estimate { round: 1, .. }, .. } if *to == pid(1))
        });
        assert!(
            sends_to_self_round1,
            "expected immediate round advance: {outs:?}"
        );
    }
}
