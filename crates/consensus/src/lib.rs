//! # gcs-consensus — the consensus component (Fig 9, bottom of the stack)
//!
//! The paper's key architectural move (§3.1.1) is to base atomic broadcast on
//! an algorithm that needs only an *unreliable* failure detector — Chandra &
//! Toueg's ◇S rotating-coordinator consensus \[10\] — instead of the perfect
//! failure detector that traditional architectures emulate by killing
//! suspected processes. This crate provides:
//!
//! * [`CtConsensus`] — one instance of the Chandra-Toueg algorithm,
//!   tolerating `f < n/2` crashes, sans-I/O;
//! * [`ConsensusManager`] — the repeated-consensus service used by atomic
//!   broadcast: instance creation, decision caching, and catch-up replies
//!   for processes that lag behind;
//! * [`paxos::PaxosConsensus`] — a single-decree Paxos with the same
//!   interface, used by the ablation experiment A1 to show the architecture
//!   is agnostic to the consensus algorithm beneath it.
//!
//! Messages must be exchanged over reliable FIFO channels
//! (`gcs-net`'s [`ReliableChannel`](../gcs_net/struct.ReliableChannel.html)
//! in the full stack); suspicions come from any ◇S-compatible source
//! (`gcs-fd` in the full stack).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chandra_toueg;
mod manager;
pub mod paxos;

pub use chandra_toueg::{CtConsensus, CtMsg, CtOut};
pub use manager::{ConsensusManager, InstanceId, ManagerOut};

/// The trait a consensus value must satisfy.
///
/// Blanket-implemented; exists to name the bound once.
pub trait Value: Clone + Eq + std::fmt::Debug + 'static {}
impl<T: Clone + Eq + std::fmt::Debug + 'static> Value for T {}
