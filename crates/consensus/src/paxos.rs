//! Single-decree Paxos with rotating proposers — the consensus ablation.
//!
//! Experiment A1 swaps this in for Chandra-Toueg to show the new
//! architecture is agnostic to its consensus component. The mapping of
//! roles: every participant is proposer, acceptor and learner; the proposer
//! of ballot `b` is `participants[b mod n]`, and a process starts its own
//! ballot when the failure detector suspects the current proposer (the same
//! ◇S-style leader demotion CT uses for coordinator rotation).

use std::collections::{HashMap, HashSet};

use gcs_kernel::ProcessId;

use crate::Value;

/// A message of the Paxos protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PaxosMsg<V> {
    /// Phase 1a: proposer of ballot `b` solicits promises.
    Prepare {
        /// The ballot number.
        b: u64,
    },
    /// Phase 1b: acceptor promises not to accept ballots below `b` and
    /// reports its most recently accepted value.
    Promise {
        /// The promised ballot.
        b: u64,
        /// The acceptor's highest accepted `(ballot, value)`, if any.
        accepted: Option<(u64, V)>,
    },
    /// Phase 2a: proposer asks acceptors to accept `v` at ballot `b`.
    Accept {
        /// The ballot number.
        b: u64,
        /// The value (highest-ballot reported value, or the proposer's own).
        v: V,
    },
    /// Phase 2b: acceptor accepted ballot `b`.
    Accepted {
        /// The accepted ballot.
        b: u64,
    },
    /// An acceptor already promised a higher ballot.
    Reject {
        /// The rejected ballot.
        b: u64,
        /// The ballot the acceptor has promised.
        promised: u64,
    },
    /// The decision, spread by echo.
    Decide {
        /// The decided value.
        v: V,
    },
}

impl<V> PaxosMsg<V> {
    /// Short label of the message family (for metrics).
    pub fn kind(&self) -> &'static str {
        match self {
            PaxosMsg::Prepare { .. } => "paxos/prepare",
            PaxosMsg::Promise { .. } => "paxos/promise",
            PaxosMsg::Accept { .. } => "paxos/accept",
            PaxosMsg::Accepted { .. } => "paxos/accepted",
            PaxosMsg::Reject { .. } => "paxos/reject",
            PaxosMsg::Decide { .. } => "paxos/decide",
        }
    }
}

/// An instruction produced by a Paxos instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PaxosOut<V> {
    /// Send `msg` to `to` over the reliable channel.
    Send {
        /// Destination participant.
        to: ProcessId,
        /// The protocol message.
        msg: PaxosMsg<V>,
    },
    /// This instance decided (emitted exactly once).
    Decided(V),
}

/// One instance of single-decree Paxos with ◇S-driven proposer rotation.
#[derive(Debug)]
pub struct PaxosConsensus<V> {
    me: ProcessId,
    participants: Vec<ProcessId>,
    majority: usize,

    started: bool,
    initial: Option<V>,
    decided: bool,

    /// Acceptor: highest promised ballot (None = none yet).
    promised: Option<u64>,
    /// Acceptor: highest accepted (ballot, value).
    accepted: Option<(u64, V)>,

    /// The ballot this process believes is current.
    current: u64,
    /// Proposer: promises gathered for my in-flight ballot.
    promises: HashMap<u64, HashMap<ProcessId, Option<(u64, V)>>>,
    /// Proposer: accepts gathered for my in-flight ballot.
    accepts: HashMap<u64, HashSet<ProcessId>>,
    /// Proposer: the value sent in phase 2a of my ballot.
    chosen_for: HashMap<u64, V>,
    suspected: HashSet<ProcessId>,
}

impl<V: Value> PaxosConsensus<V> {
    /// Creates an instance for `me` among `participants`.
    ///
    /// # Panics
    ///
    /// Panics if `participants` does not contain `me`.
    pub fn new(me: ProcessId, mut participants: Vec<ProcessId>) -> Self {
        participants.sort_unstable();
        participants.dedup();
        assert!(participants.contains(&me), "{me:?} not among participants");
        let majority = participants.len() / 2 + 1;
        PaxosConsensus {
            me,
            participants,
            majority,
            started: false,
            initial: None,
            decided: false,
            promised: None,
            accepted: None,
            current: 0,
            promises: HashMap::new(),
            accepts: HashMap::new(),
            chosen_for: HashMap::new(),
            suspected: HashSet::new(),
        }
    }

    /// Whether this instance has decided.
    pub fn is_decided(&self) -> bool {
        self.decided
    }

    fn proposer(&self, b: u64) -> ProcessId {
        self.participants[(b % self.participants.len() as u64) as usize]
    }

    /// Proposes an initial value. Idempotent.
    pub fn propose(&mut self, v: V) -> Vec<PaxosOut<V>> {
        if self.started {
            return Vec::new();
        }
        self.started = true;
        self.initial = Some(v);
        let mut out = Vec::new();
        self.advance_if_needed(&mut out);
        if self.proposer(self.current) == self.me {
            self.start_ballot(self.current, &mut out);
        }
        out
    }

    /// Records a suspicion; may rotate the proposer.
    pub fn suspect(&mut self, p: ProcessId) -> Vec<PaxosOut<V>> {
        self.suspected.insert(p);
        let mut out = Vec::new();
        if self.started && !self.decided {
            self.advance_if_needed(&mut out);
        }
        out
    }

    /// Clears a suspicion.
    pub fn restore(&mut self, p: ProcessId) {
        self.suspected.remove(&p);
    }

    /// While the current ballot's proposer is suspected, move to the next;
    /// start it if it is ours.
    fn advance_if_needed(&mut self, out: &mut Vec<PaxosOut<V>>) {
        while self.suspected.contains(&self.proposer(self.current)) {
            self.current += 1;
        }
        if self.proposer(self.current) == self.me {
            self.start_ballot(self.current, out);
        }
    }

    fn start_ballot(&mut self, b: u64, out: &mut Vec<PaxosOut<V>>) {
        if self.promises.contains_key(&b) || self.decided {
            return; // already running (or done)
        }
        self.promises.insert(b, HashMap::new());
        for &p in &self.participants {
            out.push(PaxosOut::Send {
                to: p,
                msg: PaxosMsg::Prepare { b },
            });
        }
    }

    /// Handles a protocol message from `from`.
    pub fn on_msg(&mut self, from: ProcessId, msg: PaxosMsg<V>) -> Vec<PaxosOut<V>> {
        let mut out = Vec::new();
        if self.decided {
            if !matches!(msg, PaxosMsg::Decide { .. }) {
                if let Some((_, v)) = &self.accepted {
                    out.push(PaxosOut::Send {
                        to: from,
                        msg: PaxosMsg::Decide { v: v.clone() },
                    });
                }
            }
            return out;
        }
        match msg {
            PaxosMsg::Prepare { b } => {
                self.current = self.current.max(b);
                if self.promised.is_none_or(|p| b >= p) {
                    self.promised = Some(b);
                    out.push(PaxosOut::Send {
                        to: from,
                        msg: PaxosMsg::Promise {
                            b,
                            accepted: self.accepted.clone(),
                        },
                    });
                } else {
                    out.push(PaxosOut::Send {
                        to: from,
                        msg: PaxosMsg::Reject {
                            b,
                            promised: self.promised.unwrap_or(0),
                        },
                    });
                }
            }
            PaxosMsg::Promise { b, accepted } => {
                if self.proposer(b) == self.me && !self.chosen_for.contains_key(&b) {
                    if let Some(set) = self.promises.get_mut(&b) {
                        set.insert(from, accepted);
                        if set.len() >= self.majority {
                            let v = set
                                .values()
                                .flatten()
                                .max_by_key(|(ab, _)| *ab)
                                .map(|(_, v)| v.clone())
                                .or_else(|| self.initial.clone())
                                .expect("started proposer has an initial value");
                            self.chosen_for.insert(b, v.clone());
                            for &p in &self.participants {
                                out.push(PaxosOut::Send {
                                    to: p,
                                    msg: PaxosMsg::Accept { b, v: v.clone() },
                                });
                            }
                        }
                    }
                }
            }
            PaxosMsg::Accept { b, v } => {
                self.current = self.current.max(b);
                if self.promised.is_none_or(|p| b >= p) {
                    self.promised = Some(b);
                    self.accepted = Some((b, v));
                    out.push(PaxosOut::Send {
                        to: from,
                        msg: PaxosMsg::Accepted { b },
                    });
                } else {
                    out.push(PaxosOut::Send {
                        to: from,
                        msg: PaxosMsg::Reject {
                            b,
                            promised: self.promised.unwrap_or(0),
                        },
                    });
                }
            }
            PaxosMsg::Accepted { b } => {
                if self.proposer(b) == self.me {
                    let acc = self.accepts.entry(b).or_default();
                    acc.insert(from);
                    if acc.len() >= self.majority {
                        if let Some(v) = self.chosen_for.get(&b).cloned() {
                            self.decide(v, &mut out);
                        }
                    }
                }
            }
            PaxosMsg::Reject { b, promised } => {
                if self.proposer(b) == self.me {
                    // Someone promised higher; catch up and retry when it is
                    // our turn again.
                    self.current = self.current.max(promised);
                    let n = self.participants.len() as u64;
                    let mut next = self.current;
                    while self.proposer(next) != self.me {
                        next += 1;
                        if next > self.current + n {
                            break;
                        }
                    }
                    if self.proposer(next) == self.me && next > b {
                        self.current = next;
                        self.start_ballot(next, &mut out);
                    }
                }
            }
            PaxosMsg::Decide { v } => self.decide(v, &mut out),
        }
        out
    }

    fn decide(&mut self, v: V, out: &mut Vec<PaxosOut<V>>) {
        if self.decided {
            return;
        }
        self.decided = true;
        self.accepted = Some((u64::MAX, v.clone()));
        for &p in &self.participants {
            if p != self.me {
                out.push(PaxosOut::Send {
                    to: p,
                    msg: PaxosMsg::Decide { v: v.clone() },
                });
            }
        }
        out.push(PaxosOut::Decided(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    struct Net {
        instances: Vec<PaxosConsensus<u32>>,
        queue: std::collections::VecDeque<(ProcessId, ProcessId, PaxosMsg<u32>)>,
        crashed: HashSet<ProcessId>,
        decisions: HashMap<ProcessId, u32>,
    }

    impl Net {
        fn new(n: u32) -> Self {
            let ids: Vec<ProcessId> = (0..n).map(pid).collect();
            Net {
                instances: ids
                    .iter()
                    .map(|&p| PaxosConsensus::new(p, ids.clone()))
                    .collect(),
                queue: Default::default(),
                crashed: HashSet::new(),
                decisions: HashMap::new(),
            }
        }

        fn apply(&mut self, from: ProcessId, outs: Vec<PaxosOut<u32>>) {
            for o in outs {
                match o {
                    PaxosOut::Send { to, msg } => self.queue.push_back((from, to, msg)),
                    PaxosOut::Decided(v) => {
                        let prev = self.decisions.insert(from, v);
                        assert!(prev.is_none(), "{from:?} decided twice");
                    }
                }
            }
        }

        fn run(&mut self) {
            let mut steps = 0;
            while let Some((from, to, msg)) = self.queue.pop_front() {
                steps += 1;
                assert!(steps < 100_000, "no quiescence");
                if self.crashed.contains(&from) || self.crashed.contains(&to) {
                    continue;
                }
                let outs = self.instances[to.index()].on_msg(from, msg);
                self.apply(to, outs);
            }
        }

        fn check_agreement(&self) -> u32 {
            let vals: HashSet<u32> = self.decisions.values().copied().collect();
            assert_eq!(vals.len(), 1, "disagreement: {:?}", self.decisions);
            *vals.iter().next().unwrap()
        }
    }

    #[test]
    fn failure_free_decides_proposer0_value() {
        let mut net = Net::new(3);
        for i in 0..3 {
            let outs = net.instances[i].propose(50 + i as u32);
            net.apply(pid(i as u32), outs);
        }
        net.run();
        assert_eq!(net.decisions.len(), 3);
        assert_eq!(net.check_agreement(), 50, "ballot-0 proposer's value wins");
    }

    #[test]
    fn proposer_crash_rotates() {
        let mut net = Net::new(3);
        net.crashed.insert(pid(0));
        for i in 1..3 {
            let outs = net.instances[i].propose(60 + i as u32);
            net.apply(pid(i as u32), outs);
        }
        net.run();
        assert!(net.decisions.is_empty());
        for i in 1..3usize {
            let outs = net.instances[i].suspect(pid(0));
            net.apply(pid(i as u32), outs);
        }
        net.run();
        assert_eq!(net.decisions.len(), 2);
        let v = net.check_agreement();
        assert!(v == 61 || v == 62);
    }

    #[test]
    fn five_processes_two_crashes() {
        let mut net = Net::new(5);
        net.crashed.insert(pid(0));
        net.crashed.insert(pid(1));
        for i in 2..5 {
            let outs = net.instances[i].propose(i as u32);
            net.apply(pid(i as u32), outs);
        }
        for q in 0..2 {
            for i in 2..5usize {
                let outs = net.instances[i].suspect(pid(q));
                net.apply(pid(i as u32), outs);
            }
        }
        net.run();
        assert_eq!(net.decisions.len(), 3);
        net.check_agreement();
    }
}
