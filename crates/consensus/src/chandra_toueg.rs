//! One instance of Chandra-Toueg ◇S consensus.
//!
//! The algorithm proceeds in asynchronous rounds; round `r` is coordinated
//! by `participants[r mod n]`:
//!
//! 1. every process sends its `(estimate, ts)` to the coordinator;
//! 2. the coordinator gathers a majority of estimates, selects one with the
//!    greatest timestamp and proposes it;
//! 3. each process waits for the proposal *or* for its failure detector to
//!    suspect the coordinator; it then acks (adopting the proposal and
//!    stamping it with the round number) or nacks, and moves to round `r+1`;
//! 4. the coordinator decides once a majority acks, and spreads the decision
//!    with an echo broadcast (each process forwards the first `Decide` it
//!    sees), which makes the decision reliable among correct processes.
//!
//! Safety (uniform agreement, validity) holds with an arbitrary failure
//! detector; termination needs ◇S and `f < n/2`. Messages must travel on
//! reliable FIFO links.

use std::collections::BTreeMap;

use gcs_kernel::{FxHashMap, FxHashSet};

use gcs_kernel::ProcessId;

use crate::Value;

/// A message of the Chandra-Toueg protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtMsg<V> {
    /// Phase 1: a participant's current estimate, stamped with the round in
    /// which it was last adopted (0 = initial value).
    Estimate {
        /// Round this estimate is sent for.
        round: u64,
        /// The estimate.
        est: V,
        /// Adoption stamp (0 for an initial value, `r+1` after adopting the
        /// round-`r` proposal).
        ts: u64,
    },
    /// Phase 2: the coordinator's proposal for `round`.
    Propose {
        /// Round being coordinated.
        round: u64,
        /// The proposed value (a majority-supported, max-timestamp estimate).
        est: V,
    },
    /// Phase 3 positive reply: the sender adopted the round's proposal.
    Ack {
        /// The acknowledged round.
        round: u64,
    },
    /// Phase 3 negative reply: the sender suspected the coordinator.
    Nack {
        /// The refused round.
        round: u64,
    },
    /// Phase 4: the decision, spread by echo.
    Decide {
        /// The decided value.
        est: V,
    },
}

impl<V> CtMsg<V> {
    /// Short label of the message family (for metrics).
    pub fn kind(&self) -> &'static str {
        match self {
            CtMsg::Estimate { .. } => "ct/estimate",
            CtMsg::Propose { .. } => "ct/propose",
            CtMsg::Ack { .. } => "ct/ack",
            CtMsg::Nack { .. } => "ct/nack",
            CtMsg::Decide { .. } => "ct/decide",
        }
    }
}

/// An instruction produced by a consensus instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtOut<V> {
    /// Send `msg` to `to` over the reliable channel.
    Send {
        /// Destination participant (may be `self`; loop it back).
        to: ProcessId,
        /// The protocol message.
        msg: CtMsg<V>,
    },
    /// This instance decided `V` (emitted exactly once).
    Decided(V),
}

/// One instance of Chandra-Toueg consensus.
#[derive(Debug)]
pub struct CtConsensus<V> {
    me: ProcessId,
    participants: Vec<ProcessId>,
    majority: usize,

    started: bool,
    estimate: Option<V>,
    ts: u64,
    round: u64,
    decided: bool,

    /// Rounds for which this process already sent its phase-3 reply.
    answered: FxHashSet<u64>,
    /// Buffered proposals by round (may arrive before we enter the round).
    proposals: FxHashMap<u64, V>,
    /// Coordinator side: estimates gathered per round (ordered by sender for
    /// deterministic tie-breaking).
    estimates: FxHashMap<u64, BTreeMap<ProcessId, (V, u64)>>,
    /// Coordinator side: value proposed per round.
    proposed: FxHashMap<u64, V>,
    /// Coordinator side: ack senders per round.
    acks: FxHashMap<u64, FxHashSet<ProcessId>>,
    /// Current failure-detector suspicion set.
    suspected: FxHashSet<ProcessId>,
    /// Decide-echo policy: `None` echoes a received decision to every
    /// participant (classic diffusion, O(n²) messages per instance);
    /// `Some(k)` echoes to only the `k` ring successors in participant
    /// order. The *deciding coordinator* always sends to everyone, so
    /// bounded echo keeps the two-hop spread of diffusion at O(n·k) cost;
    /// coverage survives coordinator crash by contiguous segment extension
    /// (as in bounded reliable-broadcast relay), and any process the echo
    /// chain misses still learns the decision through the round protocol's
    /// decided-instance catch-up replies.
    echo_fanout: Option<usize>,
}

impl<V: Value> CtConsensus<V> {
    /// Creates an instance for `me` among `participants`.
    ///
    /// # Panics
    ///
    /// Panics if `participants` does not contain `me` or is empty.
    pub fn new(me: ProcessId, participants: Vec<ProcessId>) -> Self {
        Self::with_echo_fanout(me, participants, None)
    }

    /// Creates an instance with an explicit decide-echo fan-out (see the
    /// `echo_fanout` field).
    ///
    /// # Panics
    ///
    /// Panics if `participants` does not contain `me` or is empty.
    pub fn with_echo_fanout(
        me: ProcessId,
        mut participants: Vec<ProcessId>,
        echo_fanout: Option<usize>,
    ) -> Self {
        participants.sort_unstable();
        participants.dedup();
        assert!(participants.contains(&me), "{me:?} not among participants");
        let majority = participants.len() / 2 + 1;
        CtConsensus {
            me,
            participants,
            majority,
            started: false,
            estimate: None,
            ts: 0,
            round: 0,
            decided: false,
            answered: FxHashSet::default(),
            proposals: FxHashMap::default(),
            estimates: FxHashMap::default(),
            proposed: FxHashMap::default(),
            acks: FxHashMap::default(),
            suspected: FxHashSet::default(),
            echo_fanout,
        }
    }

    /// The participants of this instance.
    pub fn participants(&self) -> &[ProcessId] {
        &self.participants
    }

    /// Whether this instance has decided.
    pub fn is_decided(&self) -> bool {
        self.decided
    }

    /// The current round (diagnostics).
    pub fn round(&self) -> u64 {
        self.round
    }

    fn coordinator(&self, round: u64) -> ProcessId {
        self.participants[(round % self.participants.len() as u64) as usize]
    }

    /// Proposes an initial value and starts round 0. Idempotent: only the
    /// first proposal takes effect, and proposing after the decision was
    /// already learned (by echo) is a no-op.
    pub fn propose(&mut self, v: V) -> Vec<CtOut<V>> {
        let mut out = Vec::new();
        self.propose_into(v, &mut out);
        out
    }

    /// [`propose`](Self::propose), appending into a caller-owned buffer
    /// (the hot-path entry point).
    pub fn propose_into(&mut self, v: V, out: &mut Vec<CtOut<V>>) {
        if self.started || self.decided {
            return;
        }
        self.started = true;
        self.estimate = Some(v);
        self.ts = 0;
        self.enter_round(0, out);
    }

    /// Updates the suspicion set with a new suspicion.
    pub fn suspect(&mut self, p: ProcessId) -> Vec<CtOut<V>> {
        let mut out = Vec::new();
        self.suspect_into(p, &mut out);
        out
    }

    /// [`suspect`](Self::suspect), appending into a caller-owned buffer.
    pub fn suspect_into(&mut self, p: ProcessId, out: &mut Vec<CtOut<V>>) {
        self.suspected.insert(p);
        if self.started && !self.decided {
            self.try_answer_current_round(out);
        }
    }

    /// Removes a suspicion.
    pub fn restore(&mut self, p: ProcessId) {
        self.suspected.remove(&p);
    }

    /// Handles a protocol message from `from`.
    pub fn on_msg(&mut self, from: ProcessId, msg: CtMsg<V>) -> Vec<CtOut<V>> {
        let mut out = Vec::new();
        self.on_msg_into(from, msg, &mut out);
        out
    }

    /// [`on_msg`](Self::on_msg), appending into a caller-owned buffer (the
    /// hot-path entry point).
    pub fn on_msg_into(&mut self, from: ProcessId, msg: CtMsg<V>, out: &mut Vec<CtOut<V>>) {
        if self.decided {
            // Help laggards: everything after a decision is answered with it.
            if !matches!(msg, CtMsg::Decide { .. }) {
                if let Some(est) = self.estimate.clone() {
                    out.push(CtOut::Send {
                        to: from,
                        msg: CtMsg::Decide { est },
                    });
                }
            }
            return;
        }
        match msg {
            CtMsg::Estimate { round, est, ts } => {
                if self.coordinator(round) == self.me {
                    self.estimates
                        .entry(round)
                        .or_default()
                        .entry(from)
                        .or_insert((est, ts));
                    self.maybe_propose(round, out);
                }
            }
            CtMsg::Propose { round, est } => {
                self.proposals.entry(round).or_insert(est);
                if self.started {
                    self.try_answer_current_round(out);
                }
            }
            CtMsg::Ack { round } => {
                if self.coordinator(round) == self.me && self.proposed.contains_key(&round) {
                    let acks = self.acks.entry(round).or_default();
                    acks.insert(from);
                    if acks.len() >= self.majority {
                        let est = self.proposed[&round].clone();
                        self.decide(est, true, out);
                    }
                }
            }
            CtMsg::Nack { .. } => {
                // Nacks only mean the round will not decide; the coordinator
                // moves on through the normal round progression.
            }
            CtMsg::Decide { est } => {
                self.decide(est, false, out);
            }
        }
    }

    /// Enters `round` and keeps advancing while the phase-3 answer is
    /// already determined (proposal buffered, or coordinator suspected).
    fn enter_round(&mut self, round: u64, out: &mut Vec<CtOut<V>>) {
        self.round = round;
        loop {
            let r = self.round;
            let coord = self.coordinator(r);
            let est = self
                .estimate
                .clone()
                .expect("started instance has an estimate");
            out.push(CtOut::Send {
                to: coord,
                msg: CtMsg::Estimate {
                    round: r,
                    est,
                    ts: self.ts,
                },
            });
            if !self.answer_round(r, out) {
                break; // phase 3: wait for proposal or suspicion
            }
            self.round = r + 1;
        }
    }

    /// Attempts the phase-3 answer for the *current* round, advancing rounds
    /// as long as answers are determined.
    fn try_answer_current_round(&mut self, out: &mut Vec<CtOut<V>>) {
        while !self.decided && self.answer_round(self.round, out) {
            let next = self.round + 1;
            self.round = next;
            let coord = self.coordinator(next);
            let est = self
                .estimate
                .clone()
                .expect("started instance has an estimate");
            out.push(CtOut::Send {
                to: coord,
                msg: CtMsg::Estimate {
                    round: next,
                    est,
                    ts: self.ts,
                },
            });
        }
    }

    /// If the phase-3 answer for `round` is determined, sends it and returns
    /// `true`.
    fn answer_round(&mut self, round: u64, out: &mut Vec<CtOut<V>>) -> bool {
        if self.answered.contains(&round) {
            return false;
        }
        let coord = self.coordinator(round);
        if let Some(est) = self.proposals.get(&round).cloned() {
            self.estimate = Some(est);
            self.ts = round + 1;
            self.answered.insert(round);
            out.push(CtOut::Send {
                to: coord,
                msg: CtMsg::Ack { round },
            });
            true
        } else if self.suspected.contains(&coord) {
            self.answered.insert(round);
            out.push(CtOut::Send {
                to: coord,
                msg: CtMsg::Nack { round },
            });
            true
        } else {
            false
        }
    }

    /// Coordinator phase 2: propose once a majority of estimates arrived.
    fn maybe_propose(&mut self, round: u64, out: &mut Vec<CtOut<V>>) {
        if self.proposed.contains_key(&round) {
            return;
        }
        let Some(ests) = self.estimates.get(&round) else {
            return;
        };
        if ests.len() < self.majority {
            return;
        }
        // Greatest timestamp wins; ties break toward the smallest sender id
        // (the BTreeMap makes this deterministic).
        let (est, _) = ests
            .iter()
            .max_by(|(pa, (_, ta)), (pb, (_, tb))| ta.cmp(tb).then(pb.cmp(pa)))
            .map(|(_, v)| v.clone())
            .expect("majority reached, set non-empty");
        self.proposed.insert(round, est.clone());
        for &p in &self.participants {
            out.push(CtOut::Send {
                to: p,
                msg: CtMsg::Propose {
                    round,
                    est: est.clone(),
                },
            });
        }
    }

    fn decide(&mut self, est: V, origin: bool, out: &mut Vec<CtOut<V>>) {
        if self.decided {
            return;
        }
        self.decided = true;
        self.estimate = Some(est.clone());
        // Echo the decision so it reaches every correct participant even if
        // we crash right after deciding (reliable broadcast by diffusion).
        // The deciding coordinator (`origin`) always addresses everyone;
        // echoers follow the configured fan-out (participants are sorted,
        // so they double as the echo ring).
        match self.echo_fanout {
            Some(k) if !origin => {
                let m = self.participants.len();
                // `me` is a participant, so its partition point is its own
                // index; successors start one past it.
                let start = self.participants.partition_point(|&p| p < self.me);
                for j in 1..=k.min(m.saturating_sub(1)) {
                    let p = self.participants[(start + j) % m];
                    out.push(CtOut::Send {
                        to: p,
                        msg: CtMsg::Decide { est: est.clone() },
                    });
                }
            }
            _ => {
                for &p in &self.participants {
                    if p != self.me {
                        out.push(CtOut::Send {
                            to: p,
                            msg: CtMsg::Decide { est: est.clone() },
                        });
                    }
                }
            }
        }
        out.push(CtOut::Decided(est));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// A lock-step network for driving instances directly in tests: messages
    /// are delivered in FIFO order; crashed processes drop in and out-bound
    /// traffic.
    struct Net {
        instances: Vec<CtConsensus<u32>>,
        queue: std::collections::VecDeque<(ProcessId, ProcessId, CtMsg<u32>)>,
        crashed: HashSet<ProcessId>,
        decisions: HashMap<ProcessId, u32>,
    }

    impl Net {
        fn new(n: u32) -> Self {
            let ids: Vec<ProcessId> = (0..n).map(pid).collect();
            Net {
                instances: ids
                    .iter()
                    .map(|&p| CtConsensus::new(p, ids.clone()))
                    .collect(),
                queue: Default::default(),
                crashed: HashSet::new(),
                decisions: HashMap::new(),
            }
        }

        fn apply(&mut self, from: ProcessId, outs: Vec<CtOut<u32>>) {
            for o in outs {
                match o {
                    CtOut::Send { to, msg } => self.queue.push_back((from, to, msg)),
                    CtOut::Decided(v) => {
                        let prev = self.decisions.insert(from, v);
                        assert!(prev.is_none(), "{from:?} decided twice");
                    }
                }
            }
        }

        fn propose(&mut self, p: ProcessId, v: u32) {
            let outs = self.instances[p.index()].propose(v);
            self.apply(p, outs);
        }

        fn suspect_everywhere(&mut self, q: ProcessId) {
            for i in 0..self.instances.len() {
                let p = pid(i as u32);
                if self.crashed.contains(&p) {
                    continue;
                }
                let outs = self.instances[i].suspect(q);
                self.apply(p, outs);
            }
        }

        fn crash(&mut self, p: ProcessId) {
            self.crashed.insert(p);
        }

        fn run(&mut self) {
            let mut steps = 0;
            while let Some((from, to, msg)) = self.queue.pop_front() {
                steps += 1;
                assert!(steps < 100_000, "no quiescence");
                if self.crashed.contains(&from) || self.crashed.contains(&to) {
                    continue;
                }
                let outs = self.instances[to.index()].on_msg(from, msg);
                self.apply(to, outs);
            }
        }

        fn check_agreement(&self) -> u32 {
            let mut vals: Vec<u32> = self.decisions.values().copied().collect();
            vals.dedup();
            assert_eq!(vals.len(), 1, "disagreement: {:?}", self.decisions);
            vals[0]
        }
    }

    #[test]
    fn all_propose_failure_free_all_decide() {
        let mut net = Net::new(3);
        for i in 0..3 {
            net.propose(pid(i), 10 + i);
        }
        net.run();
        assert_eq!(net.decisions.len(), 3);
        let v = net.check_agreement();
        assert!((10..13).contains(&v), "validity: decided {v}");
    }

    #[test]
    fn decision_is_coordinators_round0_pick() {
        // With everyone proposing and no failures, round 0's coordinator
        // (p0) picks a majority estimate — all have ts 0, so any proposed
        // value is valid; agreement is the key property.
        let mut net = Net::new(5);
        for i in 0..5 {
            net.propose(pid(i), i);
        }
        net.run();
        assert_eq!(net.decisions.len(), 5);
        net.check_agreement();
    }

    #[test]
    fn coordinator_crash_before_propose_next_round_decides() {
        let mut net = Net::new(3);
        net.crash(pid(0)); // round-0 coordinator dead from the start
        net.propose(pid(1), 7);
        net.propose(pid(2), 9);
        net.run(); // blocks in phase 3 (no suspicion yet)
        assert!(net.decisions.is_empty());
        net.suspect_everywhere(pid(0));
        net.run();
        assert_eq!(net.decisions.len(), 2);
        let v = net.check_agreement();
        assert!(v == 7 || v == 9);
    }

    #[test]
    fn partial_propose_crash_locks_value() {
        // p0 proposes to p1 only, then crashes: if anyone decided/adopted,
        // the locked estimate must survive into later rounds.
        let mut net = Net::new(3);
        net.propose(pid(0), 1);
        net.propose(pid(1), 2);
        net.propose(pid(2), 3);
        // Deliver only messages to/from p1 and p0 first; emulate by running
        // a few steps then crashing p0. Simplest adversary: crash p0 after
        // its proposal is queued, deliver everything else.
        // (Full adversarial interleavings are exercised by the proptest.)
        net.crash(pid(0));
        net.suspect_everywhere(pid(0));
        net.run();
        assert_eq!(net.decisions.len(), 2);
        net.check_agreement();
    }

    #[test]
    fn wrong_suspicion_is_harmless() {
        // p0 is alive but suspected by everyone: some round > 0 decides and
        // p0 still learns the decision (no exclusion, unlike traditional
        // architectures).
        let mut net = Net::new(3);
        net.suspect_everywhere(pid(0));
        for i in 0..3 {
            net.propose(pid(i), 40 + i);
        }
        net.run();
        assert_eq!(
            net.decisions.len(),
            3,
            "wrongly suspected process still decides"
        );
        net.check_agreement();
    }

    #[test]
    fn late_participant_learns_decision_via_echo() {
        let mut net = Net::new(3);
        net.propose(pid(0), 5);
        net.propose(pid(1), 5);
        net.run();
        // p2 never proposed, but the decision echo still reaches it: every
        // participant learns the outcome.
        assert_eq!(net.decisions.len(), 3);
        assert_eq!(net.check_agreement(), 5);
        // Proposing after having learned the decision is a no-op.
        let outs = net.instances[2].propose(6);
        assert!(outs.is_empty());
    }

    #[test]
    fn minority_of_crashes_does_not_block() {
        let mut net = Net::new(5);
        net.crash(pid(0));
        net.crash(pid(1));
        for i in 2..5 {
            net.propose(pid(i), i);
        }
        net.suspect_everywhere(pid(0));
        net.suspect_everywhere(pid(1));
        net.run();
        assert_eq!(net.decisions.len(), 3);
        net.check_agreement();
    }

    #[test]
    #[should_panic(expected = "not among participants")]
    fn must_be_participant() {
        let _ = CtConsensus::<u32>::new(pid(9), vec![pid(0), pid(1)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::{HashMap, HashSet};

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// Adversarial scheduler: random interleavings of message deliveries,
    /// crashes (up to a minority) and suspicions. Checks uniform agreement
    /// and validity on every schedule; checks termination when every
    /// crashed process is eventually suspected by all.
    fn run_adversarial(n: u32, crashes: Vec<u32>, schedule: Vec<u16>) -> Result<(), TestCaseError> {
        let ids: Vec<ProcessId> = (0..n).map(pid).collect();
        let mut insts: Vec<CtConsensus<u32>> = ids
            .iter()
            .map(|&p| CtConsensus::new(p, ids.clone()))
            .collect();
        let mut queue: Vec<(ProcessId, ProcessId, CtMsg<u32>)> = Vec::new();
        let mut crashed: HashSet<ProcessId> = HashSet::new();
        let mut decisions: HashMap<ProcessId, u32> = HashMap::new();

        let apply = |from: ProcessId,
                     outs: Vec<CtOut<u32>>,
                     queue: &mut Vec<(ProcessId, ProcessId, CtMsg<u32>)>,
                     decisions: &mut HashMap<ProcessId, u32>| {
            for o in outs {
                match o {
                    CtOut::Send { to, msg } => queue.push((from, to, msg)),
                    CtOut::Decided(v) => {
                        let prev = decisions.insert(from, v);
                        prop_assert!(prev.is_none(), "double decision at {:?}", from);
                    }
                }
            }
            Ok(())
        };

        for (i, inst) in insts.iter_mut().enumerate() {
            let outs = inst.propose(100 + i as u32);
            apply(pid(i as u32), outs, &mut queue, &mut decisions)?;
        }

        // Phase A: adversarial interleaving driven by the schedule.
        let mut crash_iter = crashes.into_iter();
        for step in schedule {
            match step % 4 {
                // Deliver a pseudo-randomly chosen queued message.
                0..=2 => {
                    if queue.is_empty() {
                        continue;
                    }
                    let k = (step as usize) % queue.len();
                    let (from, to, msg) = queue.swap_remove(k);
                    if crashed.contains(&to) || crashed.contains(&from) {
                        continue;
                    }
                    let outs = insts[to.index()].on_msg(from, msg);
                    apply(to, outs, &mut queue, &mut decisions)?;
                }
                // Crash the next scheduled victim (minority only).
                _ => {
                    if let Some(v) = crash_iter.next() {
                        crashed.insert(pid(v));
                    }
                }
            }
        }

        // Phase B: stabilize — suspect all crashed everywhere, drain queue.
        for i in 0..insts.len() {
            let p = pid(i as u32);
            if crashed.contains(&p) {
                continue;
            }
            for &q in crashed.clone().iter() {
                let outs = insts[i].suspect(q);
                apply(p, outs, &mut queue, &mut decisions)?;
            }
        }
        // Fair (FIFO) drain: liveness of ◇S consensus assumes fair message
        // delivery; an adversarial LIFO drain can starve acknowledgements
        // behind an unbounded stream of round-advancing messages.
        let mut steps = 0;
        while !queue.is_empty() {
            let (from, to, msg) = queue.remove(0);
            steps += 1;
            prop_assert!(steps < 200_000, "no quiescence");
            if crashed.contains(&to) || crashed.contains(&from) {
                continue;
            }
            let outs = insts[to.index()].on_msg(from, msg);
            apply(to, outs, &mut queue, &mut decisions)?;
        }

        // Agreement (uniform: includes decisions by now-crashed processes).
        let vals: HashSet<u32> = decisions.values().copied().collect();
        prop_assert!(vals.len() <= 1, "disagreement: {:?}", decisions);
        // Validity.
        for v in vals.iter() {
            prop_assert!((100..100 + n).contains(v), "invalid decision {v}");
        }
        // Termination: every correct process decided.
        for i in 0..n {
            if !crashed.contains(&pid(i)) {
                prop_assert!(
                    decisions.contains_key(&pid(i)),
                    "correct {:?} did not decide",
                    pid(i)
                );
            }
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ct_safe_and_live_n3(schedule in proptest::collection::vec(any::<u16>(), 0..400),
                               crash in proptest::option::of(0u32..3)) {
            run_adversarial(3, crash.into_iter().collect(), schedule)?;
        }

        #[test]
        fn ct_safe_and_live_n5(schedule in proptest::collection::vec(any::<u16>(), 0..600),
                               crashes in proptest::collection::vec(0u32..5, 0..2)) {
            let mut cs = crashes;
            cs.dedup();
            run_adversarial(5, cs, schedule)?;
        }
    }
}
