//! # gcs-kernel — protocol composition framework
//!
//! This crate is the Rust counterpart of the protocol composition frameworks
//! (Appia, Cactus) that the paper *A Step Towards a New Generation of Group
//! Communication Systems* (Mena, Schiper, Wojciechowski, Middleware 2003)
//! used for its two reference implementations (§5 of the paper).
//!
//! It provides:
//!
//! * [`Component`] — an event-driven protocol module with timers,
//! * [`Process`] — a named-component *graph* hosted by one process
//!   (used for the paper's new architecture, Fig 9),
//! * [`Layer`] / [`StackComponent`] — Ensemble-style *linear stacks* where
//!   events travel up and down through ordered layers (Fig 5),
//! * [`Effects`] — the externally visible actions of a dispatch step
//!   (network sends, timer requests, application outputs), which makes every
//!   protocol sans-I/O and lets the same code run under the deterministic
//!   simulator (`gcs-sim`) or any other scheduler.
//!
//! Dispatch within a process is synchronous and deterministic: an input event
//! is routed to its target component; locally emitted events cascade in FIFO
//! order until quiescence; everything destined outside the process is
//! collected into [`Effects`].
//!
//! ```
//! use gcs_kernel::{Component, Context, Event, Process, ProcessId, Time};
//!
//! #[derive(Clone, Debug)]
//! enum Ping { Hello, World }
//! impl Event for Ping {
//!     fn kind(&self) -> &'static str {
//!         match self { Ping::Hello => "hello", Ping::World => "world" }
//!     }
//! }
//!
//! struct Echo;
//! impl Component<Ping> for Echo {
//!     fn name(&self) -> &'static str { "echo" }
//!     fn on_event(&mut self, ev: Ping, ctx: &mut Context<'_, Ping>) {
//!         if matches!(ev, Ping::Hello) { ctx.output(Ping::World); }
//!     }
//! }
//!
//! let mut p = Process::builder(ProcessId::new(0)).with(Echo).build();
//! let fx = p.deliver("echo", Ping::Hello, Time::ZERO);
//! assert_eq!(fx.outputs.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod component;
mod event;
mod hash;
mod ids;
mod payload;
mod process;
mod smallvec;
mod stack;
mod time;

pub use component::{Action, Component, Context};
pub use event::Event;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{ProcessId, TimerId};
pub use payload::{PayloadArena, PayloadRef, SharedArena};
pub use process::{Effects, Envelope, Multicast, Process, ProcessBuilder, TimerRequest};
pub use smallvec::SmallVec;
pub use stack::{Direction, Layer, LayerContext, StackBuilder, StackComponent};
pub use time::{ManualClock, Time, TimeDelta, TimeSource};
