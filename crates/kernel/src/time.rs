//! Virtual time used by the whole protocol suite.
//!
//! The simulator advances a [`Time`] in nanoseconds; protocols only ever see
//! these opaque instants and [`TimeDelta`] durations, which keeps them
//! runtime-agnostic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant of virtual time, in nanoseconds since simulation start.
///
/// `Time` is totally ordered and only meaningful relative to other instants
/// from the same run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The origin of virtual time.
    pub const ZERO: Time = Time(0);
    /// The greatest representable instant.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Time(us * 1_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// This instant expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: Time) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a delta.
    pub fn saturating_add(self, d: TimeDelta) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl Add<TimeDelta> for Time {
    type Output = Time;
    fn add(self, rhs: TimeDelta) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for Time {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = TimeDelta;
    fn sub(self, rhs: Time) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeDelta(u64);

impl TimeDelta {
    /// The zero-length span.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Creates a delta from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        TimeDelta(ns)
    }

    /// Creates a delta from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        TimeDelta(us * 1_000)
    }

    /// Creates a delta from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        TimeDelta(ms * 1_000_000)
    }

    /// Creates a delta from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        TimeDelta(s * 1_000_000_000)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span expressed in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// This span expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the span by an integer factor, saturating.
    pub const fn saturating_mul(self, k: u64) -> TimeDelta {
        TimeDelta(self.0.saturating_mul(k))
    }

    /// Integer division of the span.
    pub const fn div(self, k: u64) -> TimeDelta {
        TimeDelta(self.0 / k)
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// A source of the suite's [`Time`] — the seam between protocol code (which
/// only ever consumes instants and deltas) and the runtime that produces
/// them.
///
/// Two runtimes implement it today: the discrete-event simulator advances a
/// virtual clock under its own control, and the live backend
/// (`gcs-live::WallClock`) maps `Time` onto real wall-clock nanoseconds
/// since an epoch `Instant`. Because every protocol entry point takes `now`
/// as an argument, components never call a clock directly; the trait exists
/// for *runtimes* and harness edges (workload pacing, deadline computation)
/// that must ask "what time is it" without knowing which backend is
/// underneath.
pub trait TimeSource: Send + Sync {
    /// The current instant.
    fn now(&self) -> Time;
}

/// A manually advanced [`TimeSource`] (an atomic nanosecond counter):
/// deterministic tests and single-threaded drivers set it explicitly.
#[derive(Debug, Default)]
pub struct ManualClock(std::sync::atomic::AtomicU64);

impl ManualClock {
    /// A clock starting at [`Time::ZERO`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock already advanced to `t`.
    pub fn at(t: Time) -> Self {
        ManualClock(std::sync::atomic::AtomicU64::new(t.as_nanos()))
    }

    /// Sets the clock to `t`. Monotonicity is the caller's contract — the
    /// clock itself accepts any value.
    pub fn set(&self, t: Time) {
        self.0
            .store(t.as_nanos(), std::sync::atomic::Ordering::Release);
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: TimeDelta) {
        self.0
            .fetch_add(d.as_nanos(), std::sync::atomic::Ordering::AcqRel);
    }
}

impl TimeSource for ManualClock {
    fn now(&self) -> Time {
        Time::from_nanos(self.0.load(std::sync::atomic::Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Time::ZERO);
        c.advance(TimeDelta::from_millis(5));
        assert_eq!(c.now(), Time::from_millis(5));
        c.set(Time::from_secs(1));
        assert_eq!(c.now(), Time::from_secs(1));
        let boxed: Box<dyn TimeSource> = Box::new(ManualClock::at(Time::from_millis(7)));
        assert_eq!(boxed.now(), Time::from_millis(7));
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Time::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(Time::from_secs(2).as_millis(), 2_000);
        assert_eq!(TimeDelta::from_micros(1_500).as_nanos(), 1_500_000);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_millis(10) + TimeDelta::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!((t - Time::from_millis(5)).as_millis(), 10);
        // Saturating subtraction of a later instant yields zero.
        assert_eq!((Time::from_millis(1) - Time::from_millis(9)).as_nanos(), 0);
    }

    #[test]
    fn since_saturates() {
        let early = Time::from_millis(1);
        let late = Time::from_millis(4);
        assert_eq!(late.since(early).as_millis(), 3);
        assert_eq!(early.since(late), TimeDelta::ZERO);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{:?}", Time::ZERO).is_empty());
        assert!(!format!("{}", TimeDelta::from_millis(7)).is_empty());
    }
}
