//! Ensemble-style linear protocol stacks (paper Fig 5).
//!
//! A [`StackComponent`] hosts an ordered list of [`Layer`]s. Events entering
//! from the network start at the *bottom* layer travelling [`Direction::Up`];
//! events injected locally (by the application or by a sibling component)
//! start at the *top* layer travelling [`Direction::Down`]. Each layer may
//! consume, transform, forward, or multiply events — exactly the event
//! routing model of Ensemble and Appia that the paper's §2.2 describes.

use std::collections::{HashMap, VecDeque};

use crate::component::{Component, Context};
use crate::event::Event;
use crate::ids::{ProcessId, TimerId};
use crate::time::{Time, TimeDelta};

/// Direction an event travels through a stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// From the network toward the application.
    Up,
    /// From the application toward the network.
    Down,
}

/// One layer of a linear protocol stack.
pub trait Layer<E: Event> {
    /// Stable layer name (for diagnostics and complexity accounting).
    fn name(&self) -> &'static str;

    /// Called once when the hosting process starts.
    fn on_start(&mut self, _ctx: &mut LayerContext<'_, '_, E>) {}

    /// Handles an event passing through this layer in direction `dir`.
    ///
    /// A layer that simply forwards calls `ctx.pass(dir, ev)`.
    fn on_event(&mut self, event: E, dir: Direction, ctx: &mut LayerContext<'_, '_, E>);

    /// Handles expiry of a timer previously set by this layer.
    fn on_timer(&mut self, _timer: TimerId, _ctx: &mut LayerContext<'_, '_, E>) {}
}

enum LayerOp<E> {
    Up(E),
    Down(E),
    Send { to: ProcessId, event: E },
    Multicast { targets: Vec<ProcessId>, event: E },
    Output(E),
    OwnTimer(TimerId),
    Cancel(TimerId),
}

/// Context handed to a [`Layer`] while it handles an event.
///
/// The first lifetime is the borrow of the per-dispatch op buffer; the second
/// is the borrow of the outer component [`Context`].
pub struct LayerContext<'a, 'b, E: Event> {
    now: Time,
    me: ProcessId,
    sender: Option<ProcessId>,
    ops: &'a mut Vec<LayerOp<E>>,
    // Timer ids must be allocated eagerly (callers want the id back), so the
    // outer context is threaded through rather than buffered.
    outer: &'a mut Context<'b, E>,
    issued: &'a mut Vec<TimerId>,
}

impl<'a, 'b, E: Event> LayerContext<'a, 'b, E> {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The identity of the hosting process.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Transport-level sender, when the current event entered from the
    /// network.
    pub fn sender(&self) -> Option<ProcessId> {
        self.sender
    }

    /// Passes an event to the next layer above (or to the application when
    /// invoked by the top layer).
    pub fn up(&mut self, event: E) {
        self.ops.push(LayerOp::Up(event));
    }

    /// Passes an event to the next layer below.
    ///
    /// # Panics
    ///
    /// The stack panics during dispatch if the *bottom* layer passes down:
    /// the bottom layer owns the network and must use [`send`](Self::send).
    pub fn down(&mut self, event: E) {
        self.ops.push(LayerOp::Down(event));
    }

    /// Forwards the event unchanged in the given direction.
    pub fn pass(&mut self, dir: Direction, event: E) {
        match dir {
            Direction::Up => self.up(event),
            Direction::Down => self.down(event),
        }
    }

    /// Sends an event to the same stack on process `to`.
    pub fn send(&mut self, to: ProcessId, event: E) {
        self.ops.push(LayerOp::Send { to, event });
    }

    /// Sends `event` to the same stack on every process in `targets`, as a
    /// single broadcast envelope (no per-destination clone here).
    pub fn send_to_all<I>(&mut self, targets: I, event: E)
    where
        I: IntoIterator<Item = ProcessId>,
    {
        let targets: Vec<ProcessId> = targets.into_iter().collect();
        if targets.is_empty() {
            return;
        }
        self.ops.push(LayerOp::Multicast { targets, event });
    }

    /// Delivers an event to the application observer directly (bypassing the
    /// layers above; used for control notifications such as block/unblock).
    pub fn output(&mut self, event: E) {
        self.ops.push(LayerOp::Output(event));
    }

    /// Requests a one-shot timer for this layer; returns its id.
    pub fn set_timer(&mut self, after: TimeDelta) -> TimerId {
        let id = self.outer.set_timer(after);
        self.issued.push(id);
        self.ops.push(LayerOp::OwnTimer(id));
        id
    }

    /// Cancels a pending timer. No-op if already fired or cancelled.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.ops.push(LayerOp::Cancel(id));
    }
}

/// Builder for a [`StackComponent`]. Layers are added **top first**, matching
/// the order in which architecture diagrams are usually read.
pub struct StackBuilder<E: Event> {
    name: &'static str,
    top_first: Vec<Box<dyn Layer<E>>>,
}

impl<E: Event> StackBuilder<E> {
    /// Starts a stack that will register under `name`.
    pub fn new(name: &'static str) -> Self {
        StackBuilder {
            name,
            top_first: Vec::new(),
        }
    }

    /// Adds the next layer *below* all previously added layers.
    pub fn layer<L: Layer<E> + 'static>(mut self, layer: L) -> Self {
        self.top_first.push(Box::new(layer));
        self
    }

    /// Finalizes the stack.
    ///
    /// # Panics
    ///
    /// Panics if the stack has no layers.
    pub fn build(self) -> StackComponent<E> {
        assert!(
            !self.top_first.is_empty(),
            "a stack needs at least one layer"
        );
        let mut layers = self.top_first;
        layers.reverse(); // store bottom-first
        StackComponent {
            name: self.name,
            layers,
            timer_owner: HashMap::new(),
            scratch_ops: Vec::new(),
            scratch_issued: Vec::new(),
            scratch_queue: VecDeque::new(),
        }
    }
}

/// A linear protocol stack packaged as a single [`Component`].
///
/// Sends issued by any layer are addressed to the *same component name* on
/// the destination process, so symmetric processes interoperate naturally.
pub struct StackComponent<E: Event> {
    name: &'static str,
    layers: Vec<Box<dyn Layer<E>>>, // index 0 = bottom
    timer_owner: HashMap<TimerId, usize>,
    // Per-dispatch op buffers, reused across dispatches so steady-state
    // traversals do not allocate.
    scratch_ops: Vec<LayerOp<E>>,
    scratch_issued: Vec<TimerId>,
    scratch_queue: VecDeque<(usize, Direction, E)>,
}

impl<E: Event> StackComponent<E> {
    /// Layer names from bottom to top (for complexity accounting).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    fn dispatch(
        &mut self,
        mut queue: VecDeque<(usize, Direction, E)>,
        sender: Option<ProcessId>,
        ctx: &mut Context<'_, E>,
    ) {
        let mut ops = std::mem::take(&mut self.scratch_ops);
        let mut issued = std::mem::take(&mut self.scratch_issued);
        let mut steps = 0usize;
        while let Some((idx, dir, ev)) = queue.pop_front() {
            steps += 1;
            assert!(
                steps < 1_000_000,
                "stack {:?}: runaway layer cascade",
                self.name
            );
            {
                let mut lctx = LayerContext {
                    now: ctx.now(),
                    me: ctx.me(),
                    sender,
                    ops: &mut ops,
                    outer: ctx,
                    issued: &mut issued,
                };
                self.layers[idx].on_event(ev, dir, &mut lctx);
            }
            self.apply_ops(idx, &mut ops, &mut issued, &mut queue, ctx);
        }
        ops.clear();
        issued.clear();
        queue.clear();
        self.scratch_ops = ops;
        self.scratch_issued = issued;
        self.scratch_queue = queue;
    }

    /// Takes the reusable entry queue (empty) for a dispatch.
    fn take_queue(&mut self) -> VecDeque<(usize, Direction, E)> {
        std::mem::take(&mut self.scratch_queue)
    }

    fn apply_ops(
        &mut self,
        idx: usize,
        ops: &mut Vec<LayerOp<E>>,
        issued: &mut Vec<TimerId>,
        queue: &mut VecDeque<(usize, Direction, E)>,
        ctx: &mut Context<'_, E>,
    ) {
        for op in ops.drain(..) {
            match op {
                LayerOp::Up(ev) => {
                    if idx + 1 == self.layers.len() {
                        ctx.output(ev);
                    } else {
                        queue.push_back((idx + 1, Direction::Up, ev));
                    }
                }
                LayerOp::Down(ev) => {
                    assert!(
                        idx > 0,
                        "stack {:?}: bottom layer passed down; use send",
                        self.name
                    );
                    queue.push_back((idx - 1, Direction::Down, ev));
                }
                LayerOp::Send { to, event } => ctx.send(to, self.name, event),
                LayerOp::Multicast { targets, event } => ctx.send_to_all(targets, self.name, event),
                LayerOp::Output(ev) => ctx.output(ev),
                LayerOp::OwnTimer(id) => {
                    self.timer_owner.insert(id, idx);
                }
                LayerOp::Cancel(id) => {
                    self.timer_owner.remove(&id);
                    ctx.cancel_timer(id);
                }
            }
        }
        issued.clear();
    }
}

impl<E: Event> Component<E> for StackComponent<E> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_start(&mut self, ctx: &mut Context<'_, E>) {
        let mut ops: Vec<LayerOp<E>> = Vec::new();
        let mut issued: Vec<TimerId> = Vec::new();
        let mut queue: VecDeque<(usize, Direction, E)> = VecDeque::new();
        for idx in 0..self.layers.len() {
            {
                let mut lctx = LayerContext {
                    now: ctx.now(),
                    me: ctx.me(),
                    sender: None,
                    ops: &mut ops,
                    outer: ctx,
                    issued: &mut issued,
                };
                self.layers[idx].on_start(&mut lctx);
            }
            self.apply_ops(idx, &mut ops, &mut issued, &mut queue, ctx);
        }
        self.dispatch(queue, None, ctx);
    }

    /// Local events enter at the **top**, travelling down.
    fn on_event(&mut self, event: E, ctx: &mut Context<'_, E>) {
        let top = self.layers.len() - 1;
        let mut q = self.take_queue();
        q.push_back((top, Direction::Down, event));
        self.dispatch(q, None, ctx);
    }

    /// Network messages enter at the **bottom**, travelling up.
    fn on_message(&mut self, from: ProcessId, event: E, ctx: &mut Context<'_, E>) {
        let mut q = self.take_queue();
        q.push_back((0, Direction::Up, event));
        self.dispatch(q, Some(from), ctx);
    }

    fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<'_, E>) {
        let Some(idx) = self.timer_owner.remove(&timer) else {
            return;
        };
        let mut ops: Vec<LayerOp<E>> = Vec::new();
        let mut issued: Vec<TimerId> = Vec::new();
        let mut queue: VecDeque<(usize, Direction, E)> = VecDeque::new();
        {
            let mut lctx = LayerContext {
                now: ctx.now(),
                me: ctx.me(),
                sender: None,
                ops: &mut ops,
                outer: ctx,
                issued: &mut issued,
            };
            self.layers[idx].on_timer(timer, &mut lctx);
        }
        self.apply_ops(idx, &mut ops, &mut issued, &mut queue, ctx);
        self.dispatch(queue, None, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Process;

    #[derive(Clone, Debug, PartialEq)]
    struct Tagged(Vec<&'static str>);
    impl Event for Tagged {
        fn kind(&self) -> &'static str {
            "tagged"
        }
    }

    /// Appends its name on the way through, in both directions.
    struct Tag(&'static str);
    impl Layer<Tagged> for Tag {
        fn name(&self) -> &'static str {
            self.0
        }
        fn on_event(
            &mut self,
            mut ev: Tagged,
            dir: Direction,
            ctx: &mut LayerContext<'_, '_, Tagged>,
        ) {
            ev.0.push(self.0);
            ctx.pass(dir, ev);
        }
    }

    /// Bottom layer: sends downward traffic to process 1, passes up inbound.
    struct Net;
    impl Layer<Tagged> for Net {
        fn name(&self) -> &'static str {
            "net"
        }
        fn on_event(
            &mut self,
            mut ev: Tagged,
            dir: Direction,
            ctx: &mut LayerContext<'_, '_, Tagged>,
        ) {
            ev.0.push("net");
            match dir {
                Direction::Down => ctx.send(ProcessId::new(1), ev),
                Direction::Up => ctx.up(ev),
            }
        }
    }

    fn stack_proc() -> Process<Tagged> {
        let stack = StackBuilder::new("stack")
            .layer(Tag("a"))
            .layer(Tag("b"))
            .layer(Net)
            .build();
        Process::builder(ProcessId::new(0)).with(stack).build()
    }

    #[test]
    fn downward_traversal_visits_top_to_bottom() {
        let mut p = stack_proc();
        let fx = p.deliver("stack", Tagged(vec![]), Time::ZERO);
        assert_eq!(fx.sends.len(), 1);
        assert_eq!(fx.sends[0].event.0, vec!["a", "b", "net"]);
        assert_eq!(fx.sends[0].component, "stack");
    }

    #[test]
    fn upward_traversal_visits_bottom_to_top_and_outputs() {
        let mut p = stack_proc();
        let fx = p.deliver_net(ProcessId::new(9), "stack", Tagged(vec![]), Time::ZERO);
        assert_eq!(fx.outputs.len(), 1);
        assert_eq!(fx.outputs[0].0, vec!["net", "b", "a"]);
    }

    #[test]
    fn layer_names_are_bottom_first() {
        let stack = StackBuilder::<Tagged>::new("s")
            .layer(Tag("top"))
            .layer(Tag("bottom"))
            .build();
        assert_eq!(stack.layer_names(), vec!["bottom", "top"]);
        assert_eq!(stack.depth(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_stack_panics() {
        let _ = StackBuilder::<Tagged>::new("s").build();
    }
}
