//! The event abstraction routed between components.

use std::fmt;

/// A typed event exchanged between protocol components.
///
/// Protocol suites define one closed enum implementing `Event` that covers
/// every interface of their architecture (for the paper's new architecture,
/// the variants correspond to the arrows of Fig 9: `abcast`, `adeliver`,
/// `rbcast`, `rdeliver`, `suspect`, `join`, `remove`, `new_view`, …).
///
/// The two methods exist for the benefit of the simulator's metrics: events
/// sent over the network are counted per [`kind`](Event::kind) and their
/// [`wire_size`](Event::wire_size) is accumulated, so experiments can report
/// message and byte counts per protocol.
pub trait Event: Clone + fmt::Debug + 'static {
    /// A short, stable label identifying the event family (for metrics).
    fn kind(&self) -> &'static str;

    /// Approximate serialized size in bytes when sent over the network.
    ///
    /// The default of 64 bytes stands in for a small protocol header; events
    /// carrying payloads should add the payload length.
    fn wire_size(&self) -> usize {
        64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Unit;
    impl Event for Unit {
        fn kind(&self) -> &'static str {
            "unit"
        }
    }

    #[test]
    fn default_wire_size_is_header_sized() {
        assert_eq!(Unit.wire_size(), 64);
        assert_eq!(Unit.kind(), "unit");
    }
}
