//! A process hosting a graph of components, with deterministic dispatch.

use std::collections::VecDeque;

use crate::component::{Action, Component, Context};
use crate::event::Event;
use crate::ids::{ProcessId, TimerId};
use crate::smallvec::SmallVec;
use crate::time::{Time, TimeDelta};

/// A network message produced by a dispatch step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<E> {
    /// Sending process.
    pub from: ProcessId,
    /// Destination process.
    pub to: ProcessId,
    /// Destination component name within the destination process.
    pub component: &'static str,
    /// The event carried by this message.
    pub event: E,
}

/// A broadcast envelope produced by a dispatch step: one event destined for
/// the same component of many processes. The runtime expands the fan-out,
/// cloning the event only where delivery demands it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Multicast<E> {
    /// Sending process.
    pub from: ProcessId,
    /// Destination processes.
    pub to: SmallVec<ProcessId, 8>,
    /// Destination component name within each destination process.
    pub component: &'static str,
    /// The event carried to every destination.
    pub event: E,
}

/// A timer requested by a dispatch step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerRequest {
    /// Timer id (unique within the process).
    pub id: TimerId,
    /// Delay until expiry, relative to the time of the dispatch step.
    pub after: TimeDelta,
}

/// Externally visible results of one dispatch step of a [`Process`].
///
/// The hosting runtime (simulator or threaded runtime) is responsible for
/// carrying these out: scheduling sends and timers and recording outputs.
///
/// The buffers are [`SmallVec`]s: the common dispatch produces only a
/// handful of effects, which then never touch the allocator. Runtimes on the
/// hot path should keep one `Effects` alive and use the `*_into` entry
/// points of [`Process`] ([`deliver_into`](Process::deliver_into) et al.),
/// which reuse the buffers across dispatches.
#[derive(Debug)]
pub struct Effects<E> {
    /// Messages to transmit over the network.
    pub sends: SmallVec<Envelope<E>, 4>,
    /// Broadcast envelopes to expand and transmit.
    pub casts: SmallVec<Multicast<E>, 1>,
    /// Timers to schedule.
    pub timers: SmallVec<TimerRequest, 2>,
    /// Events delivered to the application observer.
    pub outputs: SmallVec<E, 2>,
    /// True if the process halted itself during this step.
    pub halted: bool,
}

impl<E> Effects<E> {
    /// Creates an empty effects buffer.
    pub fn new() -> Self {
        Effects {
            sends: SmallVec::new(),
            casts: SmallVec::new(),
            timers: SmallVec::new(),
            outputs: SmallVec::new(),
            halted: false,
        }
    }

    /// True when the step produced no externally visible effect at all.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
            && self.casts.is_empty()
            && self.timers.is_empty()
            && self.outputs.is_empty()
            && !self.halted
    }

    /// Empties all buffers (retaining spill capacity) for reuse.
    pub fn clear(&mut self) {
        self.sends.clear();
        self.casts.clear();
        self.timers.clear();
        self.outputs.clear();
        self.halted = false;
    }
}

impl<E> Default for Effects<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Builder for a [`Process`]; register components, then [`build`](Self::build).
#[derive(Debug)]
pub struct ProcessBuilder<E: Event> {
    id: ProcessId,
    components: Vec<Box<dyn Component<E>>>,
}

impl<E: Event> std::fmt::Debug for Box<dyn Component<E>> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Component({})", self.name())
    }
}

impl<E: Event> ProcessBuilder<E> {
    /// Registers a component. Later lookups use [`Component::name`].
    ///
    /// # Panics
    ///
    /// [`build`](Self::build) panics if two components share a name.
    pub fn with<C: Component<E> + 'static>(mut self, component: C) -> Self {
        self.components.push(Box::new(component));
        self
    }

    /// Registers an already boxed component.
    pub fn with_boxed(mut self, component: Box<dyn Component<E>>) -> Self {
        self.components.push(component);
        self
    }

    /// Finalizes the process graph.
    pub fn build(self) -> Process<E> {
        let mut index: Vec<(&'static str, usize)> = Vec::new();
        for (i, c) in self.components.iter().enumerate() {
            assert!(
                index.iter().all(|&(n, _)| n != c.name()),
                "duplicate component name {:?}",
                c.name()
            );
            index.push((c.name(), i));
        }
        Process {
            id: self.id,
            components: self.components,
            index,
            next_timer: 0,
            timer_owner: Vec::new(),
            halted: false,
            scratch_actions: Vec::new(),
            scratch_pending: VecDeque::new(),
        }
    }
}

/// One process of the distributed system: a named-component graph plus the
/// deterministic dispatch loop that routes events between the components.
///
/// `Process` is runtime-agnostic: each entry point returns the [`Effects`]
/// the runtime must apply. Once a process halts (crash injection or
/// [`Context::halt`]) every entry point returns empty effects.
#[derive(Debug)]
pub struct Process<E: Event> {
    id: ProcessId,
    components: Vec<Box<dyn Component<E>>>,
    // Component-name routing table. A process has a handful of components
    // and names are `'static` literals, so a pointer-first linear scan beats
    // hashing on every emit of the dispatch cascade.
    index: Vec<(&'static str, usize)>,
    next_timer: u64,
    // Live timers are few; linear scan + swap_remove beats a hash map.
    timer_owner: Vec<(TimerId, usize)>,
    halted: bool,
    // Dispatch scratch buffers, reused across steps so a steady-state event
    // dispatch performs no allocation.
    scratch_actions: Vec<(usize, Action<E>)>,
    scratch_pending: VecDeque<(usize, E)>,
}

impl<E: Event> Process<E> {
    /// Starts building a process with the given identity.
    pub fn builder(id: ProcessId) -> ProcessBuilder<E> {
        ProcessBuilder {
            id,
            components: Vec::new(),
        }
    }

    /// The identity of this process.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Whether the process has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Names of the registered components, in registration order.
    pub fn component_names(&self) -> Vec<&'static str> {
        self.components.iter().map(|c| c.name()).collect()
    }

    /// Marks the process as crashed; all subsequent inputs are ignored.
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// Invokes `on_start` on every component, in registration order.
    pub fn start(&mut self, now: Time) -> Effects<E> {
        let mut fx = Effects::new();
        self.start_into(now, &mut fx);
        fx
    }

    /// Like [`start`](Self::start), appending into a caller-owned buffer.
    pub fn start_into(&mut self, now: Time, fx: &mut Effects<E>) {
        self.run(now, fx, |this, actions, next_timer| {
            for i in 0..this.components.len() {
                let mut ctx = Context::new(now, this.id, i, actions, next_timer);
                this.components[i].on_start(&mut ctx);
            }
        })
    }

    /// Delivers a local event (application injection) to the named component
    /// and runs the cascade.
    ///
    /// # Panics
    ///
    /// Panics if no component is registered under `component` — a miswired
    /// graph is a programming error, not a runtime condition.
    pub fn deliver(&mut self, component: &str, event: E, now: Time) -> Effects<E> {
        let mut fx = Effects::new();
        self.deliver_into(component, event, now, &mut fx);
        fx
    }

    /// Like [`deliver`](Self::deliver), appending into a caller-owned
    /// buffer — the hot-path entry point: reusing one `Effects` across
    /// dispatches keeps the buffers allocation-free.
    pub fn deliver_into(&mut self, component: &str, event: E, now: Time, fx: &mut Effects<E>) {
        let target = self.lookup(component);
        self.run(now, fx, |this, actions, next_timer| {
            let mut ctx = Context::new(now, this.id, target, actions, next_timer);
            this.components[target].on_event(event, &mut ctx);
        })
    }

    /// Delivers a network message from `from` to the named component and
    /// runs the cascade.
    ///
    /// # Panics
    ///
    /// Panics if no component is registered under `component`.
    pub fn deliver_net(
        &mut self,
        from: ProcessId,
        component: &str,
        event: E,
        now: Time,
    ) -> Effects<E> {
        let mut fx = Effects::new();
        self.deliver_net_into(from, component, event, now, &mut fx);
        fx
    }

    /// Like [`deliver_net`](Self::deliver_net), appending into a
    /// caller-owned buffer.
    pub fn deliver_net_into(
        &mut self,
        from: ProcessId,
        component: &str,
        event: E,
        now: Time,
        fx: &mut Effects<E>,
    ) {
        let target = self.lookup(component);
        self.run(now, fx, |this, actions, next_timer| {
            let mut ctx = Context::new(now, this.id, target, actions, next_timer);
            this.components[target].on_message(from, event, &mut ctx);
        })
    }

    fn lookup(&self, component: &str) -> usize {
        self.index
            .iter()
            .find(|&&(n, _)| std::ptr::eq(n, component) || n == component)
            .map(|&(_, i)| i)
            .unwrap_or_else(|| panic!("{:?}: no component named {component:?}", self.id))
    }

    fn take_timer_owner(&mut self, id: TimerId) -> Option<usize> {
        let pos = self.timer_owner.iter().position(|&(t, _)| t == id)?;
        Some(self.timer_owner.swap_remove(pos).1)
    }

    /// Fires a timer. Unknown (fired or cancelled) ids are ignored.
    pub fn fire_timer(&mut self, id: TimerId, now: Time) -> Effects<E> {
        let mut fx = Effects::new();
        self.fire_timer_into(id, now, &mut fx);
        fx
    }

    /// Like [`fire_timer`](Self::fire_timer), appending into a caller-owned
    /// buffer.
    pub fn fire_timer_into(&mut self, id: TimerId, now: Time, fx: &mut Effects<E>) {
        let Some(owner) = self.take_timer_owner(id) else {
            return;
        };
        self.run(now, fx, |this, actions, next_timer| {
            let mut ctx = Context::new(now, this.id, owner, actions, next_timer);
            this.components[owner].on_timer(id, &mut ctx);
        })
    }

    /// Runs `seed` and then the cascade of locally emitted events until
    /// quiescence, in FIFO order, collecting external effects into `fx`.
    ///
    /// The action and cascade queues are scratch buffers owned by the
    /// process, so steady-state dispatch does not allocate.
    fn run(
        &mut self,
        now: Time,
        fx: &mut Effects<E>,
        seed: impl FnOnce(&mut Self, &mut Vec<(usize, Action<E>)>, &mut u64),
    ) {
        if self.halted {
            return;
        }
        let mut pending = std::mem::take(&mut self.scratch_pending);
        let mut actions = std::mem::take(&mut self.scratch_actions);
        debug_assert!(pending.is_empty() && actions.is_empty());
        let mut next_timer = self.next_timer;

        seed(self, &mut actions, &mut next_timer);
        self.drain_actions(&mut actions, &mut pending, fx);

        // A generous bound on cascade length catches accidental emit loops.
        let mut steps = 0usize;
        while let Some((target, event)) = pending.pop_front() {
            steps += 1;
            assert!(
                steps < 1_000_000,
                "{:?}: runaway local event cascade",
                self.id
            );
            if fx.halted {
                break;
            }
            let mut ctx = Context::new(now, self.id, target, &mut actions, &mut next_timer);
            self.components[target].on_event(event, &mut ctx);
            self.drain_actions(&mut actions, &mut pending, fx);
        }

        self.next_timer = next_timer;
        if fx.halted {
            self.halted = true;
        }
        pending.clear();
        actions.clear();
        self.scratch_pending = pending;
        self.scratch_actions = actions;
    }

    fn drain_actions(
        &mut self,
        actions: &mut Vec<(usize, Action<E>)>,
        pending: &mut VecDeque<(usize, E)>,
        fx: &mut Effects<E>,
    ) {
        for (owner, action) in actions.drain(..) {
            match action {
                Action::Emit { to, event } => {
                    let target = self
                        .index
                        .iter()
                        .find(|&&(n, _)| std::ptr::eq(n, to) || n == to)
                        .map(|&(_, i)| i)
                        .unwrap_or_else(|| {
                            panic!("{:?}: emit to unknown component {to:?}", self.id)
                        });
                    pending.push_back((target, event));
                }
                Action::Send {
                    to,
                    component,
                    event,
                } => {
                    fx.sends.push(Envelope {
                        from: self.id,
                        to,
                        component,
                        event,
                    });
                }
                Action::Multicast {
                    targets,
                    component,
                    event,
                } => {
                    fx.casts.push(Multicast {
                        from: self.id,
                        to: targets,
                        component,
                        event,
                    });
                }
                Action::SetTimer { id, after } => {
                    self.timer_owner.push((id, owner));
                    fx.timers.push(TimerRequest { id, after });
                }
                Action::CancelTimer(id) => {
                    let _ = self.take_timer_owner(id);
                }
                Action::Output(event) => fx.outputs.push(event),
                Action::Halt => fx.halted = true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Ev {
        Ping(u32),
        Pong(u32),
        Kick,
    }
    impl Event for Ev {
        fn kind(&self) -> &'static str {
            match self {
                Ev::Ping(_) => "ping",
                Ev::Pong(_) => "pong",
                Ev::Kick => "kick",
            }
        }
    }

    /// Forwards pings to "replier", outputs pongs.
    struct Gateway;
    impl Component<Ev> for Gateway {
        fn name(&self) -> &'static str {
            "gateway"
        }
        fn on_event(&mut self, ev: Ev, ctx: &mut Context<'_, Ev>) {
            match ev {
                Ev::Ping(n) => ctx.emit("replier", Ev::Ping(n)),
                Ev::Pong(n) => ctx.output(Ev::Pong(n)),
                Ev::Kick => {}
            }
        }
    }

    struct Replier {
        timer: Option<TimerId>,
    }
    impl Component<Ev> for Replier {
        fn name(&self) -> &'static str {
            "replier"
        }
        fn on_event(&mut self, ev: Ev, ctx: &mut Context<'_, Ev>) {
            match ev {
                Ev::Ping(n) => {
                    ctx.emit("gateway", Ev::Pong(n + 1));
                    self.timer = Some(ctx.set_timer(TimeDelta::from_millis(10)));
                }
                Ev::Kick => {
                    if let Some(t) = self.timer.take() {
                        ctx.cancel_timer(t);
                    }
                }
                Ev::Pong(_) => {}
            }
        }
        fn on_timer(&mut self, _t: TimerId, ctx: &mut Context<'_, Ev>) {
            ctx.send(ProcessId::new(1), "gateway", Ev::Ping(0));
        }
    }

    fn proc() -> Process<Ev> {
        Process::builder(ProcessId::new(0))
            .with(Gateway)
            .with(Replier { timer: None })
            .build()
    }

    #[test]
    fn cascade_routes_between_components() {
        let mut p = proc();
        let fx = p.deliver("gateway", Ev::Ping(1), Time::ZERO);
        assert_eq!(fx.outputs, vec![Ev::Pong(2)]);
        assert_eq!(fx.timers.len(), 1);
    }

    #[test]
    fn timer_fires_to_owner_and_only_once() {
        let mut p = proc();
        let fx = p.deliver("gateway", Ev::Ping(1), Time::ZERO);
        let id = fx.timers[0].id;
        let fx2 = p.fire_timer(id, Time::from_millis(10));
        assert_eq!(fx2.sends.len(), 1);
        assert_eq!(fx2.sends[0].component, "gateway");
        // Second fire of the same id is ignored.
        assert!(p.fire_timer(id, Time::from_millis(11)).is_empty());
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let mut p = proc();
        let fx = p.deliver("gateway", Ev::Ping(1), Time::ZERO);
        let id = fx.timers[0].id;
        p.deliver("replier", Ev::Kick, Time::from_millis(1));
        assert!(p.fire_timer(id, Time::from_millis(10)).is_empty());
    }

    #[test]
    fn halted_process_ignores_everything() {
        let mut p = proc();
        p.halt();
        assert!(p.deliver("gateway", Ev::Ping(1), Time::ZERO).is_empty());
        assert!(p.is_halted());
    }

    #[test]
    #[should_panic(expected = "no component named")]
    fn unknown_component_panics() {
        let mut p = proc();
        let _ = p.deliver("nope", Ev::Kick, Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "duplicate component name")]
    fn duplicate_names_panic() {
        let _ = Process::builder(ProcessId::new(0))
            .with(Gateway)
            .with(Gateway)
            .build();
    }

    #[test]
    fn timer_ids_are_unique_across_steps() {
        let mut p = proc();
        let a = p.deliver("gateway", Ev::Ping(1), Time::ZERO).timers[0].id;
        let b = p.deliver("gateway", Ev::Ping(2), Time::ZERO).timers[0].id;
        assert_ne!(a, b);
    }
}
