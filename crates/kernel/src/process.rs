//! A process hosting a graph of components, with deterministic dispatch.

use std::collections::{HashMap, VecDeque};

use crate::component::{Action, Component, Context};
use crate::event::Event;
use crate::ids::{ProcessId, TimerId};
use crate::time::{Time, TimeDelta};

/// A network message produced by a dispatch step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<E> {
    /// Sending process.
    pub from: ProcessId,
    /// Destination process.
    pub to: ProcessId,
    /// Destination component name within the destination process.
    pub component: &'static str,
    /// The event carried by this message.
    pub event: E,
}

/// A timer requested by a dispatch step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerRequest {
    /// Timer id (unique within the process).
    pub id: TimerId,
    /// Delay until expiry, relative to the time of the dispatch step.
    pub after: TimeDelta,
}

/// Externally visible results of one dispatch step of a [`Process`].
///
/// The hosting runtime (simulator or threaded runtime) is responsible for
/// carrying these out: scheduling sends and timers and recording outputs.
#[derive(Debug)]
pub struct Effects<E> {
    /// Messages to transmit over the network.
    pub sends: Vec<Envelope<E>>,
    /// Timers to schedule.
    pub timers: Vec<TimerRequest>,
    /// Events delivered to the application observer.
    pub outputs: Vec<E>,
    /// True if the process halted itself during this step.
    pub halted: bool,
}

impl<E> Effects<E> {
    fn new() -> Self {
        Effects { sends: Vec::new(), timers: Vec::new(), outputs: Vec::new(), halted: false }
    }

    /// True when the step produced no externally visible effect at all.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.timers.is_empty() && self.outputs.is_empty() && !self.halted
    }
}

/// Builder for a [`Process`]; register components, then [`build`](Self::build).
#[derive(Debug)]
pub struct ProcessBuilder<E: Event> {
    id: ProcessId,
    components: Vec<Box<dyn Component<E>>>,
}

impl<E: Event> std::fmt::Debug for Box<dyn Component<E>> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Component({})", self.name())
    }
}

impl<E: Event> ProcessBuilder<E> {
    /// Registers a component. Later lookups use [`Component::name`].
    ///
    /// # Panics
    ///
    /// [`build`](Self::build) panics if two components share a name.
    pub fn with<C: Component<E> + 'static>(mut self, component: C) -> Self {
        self.components.push(Box::new(component));
        self
    }

    /// Registers an already boxed component.
    pub fn with_boxed(mut self, component: Box<dyn Component<E>>) -> Self {
        self.components.push(component);
        self
    }

    /// Finalizes the process graph.
    pub fn build(self) -> Process<E> {
        let mut index = HashMap::new();
        for (i, c) in self.components.iter().enumerate() {
            let prev = index.insert(c.name(), i);
            assert!(prev.is_none(), "duplicate component name {:?}", c.name());
        }
        Process {
            id: self.id,
            components: self.components,
            index,
            next_timer: 0,
            timer_owner: HashMap::new(),
            halted: false,
        }
    }
}

/// One process of the distributed system: a named-component graph plus the
/// deterministic dispatch loop that routes events between the components.
///
/// `Process` is runtime-agnostic: each entry point returns the [`Effects`]
/// the runtime must apply. Once a process halts (crash injection or
/// [`Context::halt`]) every entry point returns empty effects.
#[derive(Debug)]
pub struct Process<E: Event> {
    id: ProcessId,
    components: Vec<Box<dyn Component<E>>>,
    index: HashMap<&'static str, usize>,
    next_timer: u64,
    timer_owner: HashMap<TimerId, usize>,
    halted: bool,
}

impl<E: Event> Process<E> {
    /// Starts building a process with the given identity.
    pub fn builder(id: ProcessId) -> ProcessBuilder<E> {
        ProcessBuilder { id, components: Vec::new() }
    }

    /// The identity of this process.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Whether the process has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Names of the registered components, in registration order.
    pub fn component_names(&self) -> Vec<&'static str> {
        self.components.iter().map(|c| c.name()).collect()
    }

    /// Marks the process as crashed; all subsequent inputs are ignored.
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// Invokes `on_start` on every component, in registration order.
    pub fn start(&mut self, now: Time) -> Effects<E> {
        self.run(now, |this, actions, next_timer| {
            for i in 0..this.components.len() {
                let mut ctx = Context::new(now, this.id, i, actions, next_timer);
                this.components[i].on_start(&mut ctx);
            }
        })
    }

    /// Delivers a local event (application injection) to the named component
    /// and runs the cascade.
    ///
    /// # Panics
    ///
    /// Panics if no component is registered under `component` — a miswired
    /// graph is a programming error, not a runtime condition.
    pub fn deliver(&mut self, component: &str, event: E, now: Time) -> Effects<E> {
        let target = self.lookup(component);
        self.run(now, |this, actions, next_timer| {
            let mut ctx = Context::new(now, this.id, target, actions, next_timer);
            this.components[target].on_event(event, &mut ctx);
        })
    }

    /// Delivers a network message from `from` to the named component and
    /// runs the cascade.
    ///
    /// # Panics
    ///
    /// Panics if no component is registered under `component`.
    pub fn deliver_net(
        &mut self,
        from: ProcessId,
        component: &str,
        event: E,
        now: Time,
    ) -> Effects<E> {
        let target = self.lookup(component);
        self.run(now, |this, actions, next_timer| {
            let mut ctx = Context::new(now, this.id, target, actions, next_timer);
            this.components[target].on_message(from, event, &mut ctx);
        })
    }

    fn lookup(&self, component: &str) -> usize {
        *self
            .index
            .get(component)
            .unwrap_or_else(|| panic!("{:?}: no component named {component:?}", self.id))
    }

    /// Fires a timer. Unknown (fired or cancelled) ids are ignored.
    pub fn fire_timer(&mut self, id: TimerId, now: Time) -> Effects<E> {
        let Some(owner) = self.timer_owner.remove(&id) else {
            return Effects::new();
        };
        self.run(now, |this, actions, next_timer| {
            let mut ctx = Context::new(now, this.id, owner, actions, next_timer);
            this.components[owner].on_timer(id, &mut ctx);
        })
    }

    /// Runs `seed` and then the cascade of locally emitted events until
    /// quiescence, in FIFO order, collecting external effects.
    fn run(
        &mut self,
        now: Time,
        seed: impl FnOnce(&mut Self, &mut Vec<(usize, Action<E>)>, &mut u64),
    ) -> Effects<E> {
        if self.halted {
            return Effects::new();
        }
        let mut fx = Effects::new();
        let mut pending: VecDeque<(usize, E)> = VecDeque::new();
        let mut actions: Vec<(usize, Action<E>)> = Vec::new();
        let mut next_timer = self.next_timer;

        seed(self, &mut actions, &mut next_timer);
        self.drain_actions(&mut actions, &mut pending, &mut fx);

        // A generous bound on cascade length catches accidental emit loops.
        let mut steps = 0usize;
        while let Some((target, event)) = pending.pop_front() {
            steps += 1;
            assert!(steps < 1_000_000, "{:?}: runaway local event cascade", self.id);
            if fx.halted {
                break;
            }
            let mut ctx = Context::new(now, self.id, target, &mut actions, &mut next_timer);
            self.components[target].on_event(event, &mut ctx);
            self.drain_actions(&mut actions, &mut pending, &mut fx);
        }

        self.next_timer = next_timer;
        if fx.halted {
            self.halted = true;
        }
        fx
    }

    fn drain_actions(
        &mut self,
        actions: &mut Vec<(usize, Action<E>)>,
        pending: &mut VecDeque<(usize, E)>,
        fx: &mut Effects<E>,
    ) {
        for (owner, action) in actions.drain(..) {
            match action {
                Action::Emit { to, event } => {
                    let target = *self
                        .index
                        .get(to)
                        .unwrap_or_else(|| panic!("{:?}: emit to unknown component {to:?}", self.id));
                    pending.push_back((target, event));
                }
                Action::Send { to, component, event } => {
                    fx.sends.push(Envelope { from: self.id, to, component, event });
                }
                Action::SetTimer { id, after } => {
                    self.timer_owner.insert(id, owner);
                    fx.timers.push(TimerRequest { id, after });
                }
                Action::CancelTimer(id) => {
                    self.timer_owner.remove(&id);
                }
                Action::Output(event) => fx.outputs.push(event),
                Action::Halt => fx.halted = true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Ev {
        Ping(u32),
        Pong(u32),
        Kick,
    }
    impl Event for Ev {
        fn kind(&self) -> &'static str {
            match self {
                Ev::Ping(_) => "ping",
                Ev::Pong(_) => "pong",
                Ev::Kick => "kick",
            }
        }
    }

    /// Forwards pings to "replier", outputs pongs.
    struct Gateway;
    impl Component<Ev> for Gateway {
        fn name(&self) -> &'static str {
            "gateway"
        }
        fn on_event(&mut self, ev: Ev, ctx: &mut Context<'_, Ev>) {
            match ev {
                Ev::Ping(n) => ctx.emit("replier", Ev::Ping(n)),
                Ev::Pong(n) => ctx.output(Ev::Pong(n)),
                Ev::Kick => {}
            }
        }
    }

    struct Replier {
        timer: Option<TimerId>,
    }
    impl Component<Ev> for Replier {
        fn name(&self) -> &'static str {
            "replier"
        }
        fn on_event(&mut self, ev: Ev, ctx: &mut Context<'_, Ev>) {
            match ev {
                Ev::Ping(n) => {
                    ctx.emit("gateway", Ev::Pong(n + 1));
                    self.timer = Some(ctx.set_timer(TimeDelta::from_millis(10)));
                }
                Ev::Kick => {
                    if let Some(t) = self.timer.take() {
                        ctx.cancel_timer(t);
                    }
                }
                Ev::Pong(_) => {}
            }
        }
        fn on_timer(&mut self, _t: TimerId, ctx: &mut Context<'_, Ev>) {
            ctx.send(ProcessId::new(1), "gateway", Ev::Ping(0));
        }
    }

    fn proc() -> Process<Ev> {
        Process::builder(ProcessId::new(0)).with(Gateway).with(Replier { timer: None }).build()
    }

    #[test]
    fn cascade_routes_between_components() {
        let mut p = proc();
        let fx = p.deliver("gateway", Ev::Ping(1), Time::ZERO);
        assert_eq!(fx.outputs, vec![Ev::Pong(2)]);
        assert_eq!(fx.timers.len(), 1);
    }

    #[test]
    fn timer_fires_to_owner_and_only_once() {
        let mut p = proc();
        let fx = p.deliver("gateway", Ev::Ping(1), Time::ZERO);
        let id = fx.timers[0].id;
        let fx2 = p.fire_timer(id, Time::from_millis(10));
        assert_eq!(fx2.sends.len(), 1);
        assert_eq!(fx2.sends[0].component, "gateway");
        // Second fire of the same id is ignored.
        assert!(p.fire_timer(id, Time::from_millis(11)).is_empty());
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let mut p = proc();
        let fx = p.deliver("gateway", Ev::Ping(1), Time::ZERO);
        let id = fx.timers[0].id;
        p.deliver("replier", Ev::Kick, Time::from_millis(1));
        assert!(p.fire_timer(id, Time::from_millis(10)).is_empty());
    }

    #[test]
    fn halted_process_ignores_everything() {
        let mut p = proc();
        p.halt();
        assert!(p.deliver("gateway", Ev::Ping(1), Time::ZERO).is_empty());
        assert!(p.is_halted());
    }

    #[test]
    #[should_panic(expected = "no component named")]
    fn unknown_component_panics() {
        let mut p = proc();
        let _ = p.deliver("nope", Ev::Kick, Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "duplicate component name")]
    fn duplicate_names_panic() {
        let _ = Process::builder(ProcessId::new(0)).with(Gateway).with(Gateway).build();
    }

    #[test]
    fn timer_ids_are_unique_across_steps() {
        let mut p = proc();
        let a = p.deliver("gateway", Ev::Ping(1), Time::ZERO).timers[0].id;
        let b = p.deliver("gateway", Ev::Ping(2), Time::ZERO).timers[0].id;
        assert_ne!(a, b);
    }
}
