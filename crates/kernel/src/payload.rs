//! The zero-copy message plane: an arena of interned payloads addressed by
//! generation-checked [`PayloadRef`] handles.
//!
//! A broadcast payload crosses every layer of the stack — batch assembly,
//! consensus proposal, decision fan-out, wire packet, simulated delivery —
//! and each boundary used to hand over an owned byte container. The arena
//! replaces all of that with one interned allocation per *logical* payload:
//! every layer moves a 12-byte `Copy` handle, and only the edges (workload
//! injection, trace observation) ever touch the bytes.
//!
//! * [`PayloadArena`] — a slab of [`Bytes`] slots with a free list. Slots
//!   are recycled on [`release`](PayloadArena::release); each reuse bumps
//!   the slot's generation so stale handles are detected, not misread.
//! * [`PayloadRef`] — `Copy` handle `(slot, generation, length)`. The length
//!   rides in the handle so wire-size accounting never needs the arena.
//! * [`SharedArena`] — the cheaply cloneable owner handed to a simulation
//!   harness and its observers (`Arc<Mutex<_>>`; the simulator itself is
//!   single-threaded, the lock is for the multi-threaded experiment sweeps
//!   where each sim owns its own arena).
//!
//! The arena also keeps a scratch pool of byte buffers
//! ([`PayloadArena::build`]) so in-flight envelope construction — e.g. a
//! workload stamping op tags into fresh payloads — reuses buffers instead of
//! allocating per message.

use std::sync::{Arc, Mutex};

use bytes::Bytes;

/// A `Copy` handle to a payload interned in a [`PayloadArena`].
///
/// Handles are meaningful only against the arena that issued them; resolving
/// a handle after its slot was [released](PayloadArena::release) and reused
/// fails the generation check instead of silently yielding another payload's
/// bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PayloadRef {
    slot: u32,
    gen: u32,
    len: u32,
}

impl PayloadRef {
    /// The canonical empty payload: resolves to zero bytes in every arena
    /// without occupying a slot.
    pub const EMPTY: PayloadRef = PayloadRef {
        slot: u32::MAX,
        gen: 0,
        len: 0,
    };

    /// Payload length in bytes (carried inline: size accounting along the
    /// message plane never dereferences the arena).
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True for zero-length payloads.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::fmt::Debug for PayloadRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == PayloadRef::EMPTY {
            write!(f, "payload:empty")
        } else {
            write!(f, "payload:{}.{}({}B)", self.slot, self.gen, self.len)
        }
    }
}

#[derive(Debug)]
struct Slot {
    gen: u32,
    data: Bytes,
}

/// A slab of interned payloads with generation-checked handles and a scratch
/// pool for envelope construction.
#[derive(Debug, Default)]
pub struct PayloadArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    scratch: Vec<Vec<u8>>,
}

impl PayloadArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (interned, unreleased) payloads.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slots ever created (high-water mark of simultaneous payloads).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Interns an owned payload, returning its handle. Zero-length payloads
    /// collapse to [`PayloadRef::EMPTY`] and occupy no slot.
    pub fn intern(&mut self, data: Bytes) -> PayloadRef {
        if data.is_empty() {
            return PayloadRef::EMPTY;
        }
        let len = u32::try_from(data.len()).expect("payload exceeds u32::MAX bytes");
        match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                s.data = data;
                PayloadRef {
                    slot,
                    gen: s.gen,
                    len,
                }
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("arena slot overflow");
                assert!(slot != u32::MAX, "arena slot overflow");
                self.slots.push(Slot { gen: 0, data });
                PayloadRef { slot, gen: 0, len }
            }
        }
    }

    /// Builds a payload through a pooled scratch buffer: `fill` writes into
    /// a reused `Vec<u8>`, the result is copied into one exact-size shared
    /// allocation and interned. Steady-state envelope construction touches
    /// the allocator exactly once (for the interned bytes themselves).
    pub fn build(&mut self, fill: impl FnOnce(&mut Vec<u8>)) -> PayloadRef {
        let mut buf = self.scratch.pop().unwrap_or_default();
        buf.clear();
        fill(&mut buf);
        let r = self.intern_slice(&buf);
        self.scratch.push(buf);
        r
    }

    /// Interns a copy of `data`.
    pub fn intern_slice(&mut self, data: &[u8]) -> PayloadRef {
        if data.is_empty() {
            return PayloadRef::EMPTY;
        }
        self.intern(Bytes::copy_from_slice(data))
    }

    /// Resolves a handle to its payload (an O(1) shared-pointer clone), or
    /// `None` if the handle is stale (its slot was released/reused) or from
    /// another arena.
    pub fn resolve(&self, r: PayloadRef) -> Option<Bytes> {
        if r == PayloadRef::EMPTY {
            return Some(Bytes::new());
        }
        let s = self.slots.get(r.slot as usize)?;
        (s.gen == r.gen && s.data.len() == r.len as usize).then(|| s.data.clone())
    }

    /// Like [`resolve`](Self::resolve), panicking on a stale handle — for
    /// observers that own the arena and know the handle is live.
    pub fn get(&self, r: PayloadRef) -> Bytes {
        self.resolve(r)
            .unwrap_or_else(|| panic!("stale or foreign {r:?}"))
    }

    /// Releases a slot back to the free list, bumping its generation so
    /// outstanding copies of the handle turn stale. Returns `false` if the
    /// handle was already stale. Releasing [`PayloadRef::EMPTY`] is a no-op
    /// (returns `true`).
    pub fn release(&mut self, r: PayloadRef) -> bool {
        if r == PayloadRef::EMPTY {
            return true;
        }
        let Some(s) = self.slots.get_mut(r.slot as usize) else {
            return false;
        };
        if s.gen != r.gen {
            return false;
        }
        s.gen = s.gen.wrapping_add(1);
        s.data = Bytes::new();
        self.free.push(r.slot);
        true
    }
}

/// Cheaply cloneable shared ownership of a [`PayloadArena`].
///
/// One `SharedArena` per simulation: the harness interns at injection, the
/// protocol layers move handles, and trace observers resolve at the end.
#[derive(Clone, Debug, Default)]
pub struct SharedArena(Arc<Mutex<PayloadArena>>);

impl SharedArena {
    /// Creates a fresh empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an owned payload. See [`PayloadArena::intern`].
    pub fn intern(&self, data: Bytes) -> PayloadRef {
        self.lock().intern(data)
    }

    /// Interns a copy of `data`. See [`PayloadArena::intern_slice`].
    pub fn intern_slice(&self, data: &[u8]) -> PayloadRef {
        self.lock().intern_slice(data)
    }

    /// Builds a payload through the scratch pool. See
    /// [`PayloadArena::build`].
    pub fn build(&self, fill: impl FnOnce(&mut Vec<u8>)) -> PayloadRef {
        self.lock().build(fill)
    }

    /// Resolves a handle; `None` when stale. See [`PayloadArena::resolve`].
    pub fn resolve(&self, r: PayloadRef) -> Option<Bytes> {
        self.lock().resolve(r)
    }

    /// Resolves a handle, panicking when stale. See [`PayloadArena::get`].
    pub fn get(&self, r: PayloadRef) -> Bytes {
        self.lock().get(r)
    }

    /// Releases a slot for reuse. See [`PayloadArena::release`].
    pub fn release(&self, r: PayloadRef) -> bool {
        self.lock().release(r)
    }

    /// Number of live payloads.
    pub fn live(&self) -> usize {
        self.lock().live()
    }

    /// Slot high-water mark.
    pub fn capacity(&self) -> usize {
        self.lock().capacity()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PayloadArena> {
        self.0.lock().expect("payload arena poisoned")
    }
}

const _: () = assert!(
    std::mem::size_of::<PayloadRef>() == 12,
    "PayloadRef must stay a 12-byte Copy handle"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_resolve_roundtrip() {
        let mut a = PayloadArena::new();
        let r = a.intern_slice(b"hello");
        assert_eq!(r.len(), 5);
        assert_eq!(a.get(r), b"hello"[..]);
        assert_eq!(a.live(), 1);
    }

    #[test]
    fn empty_payloads_share_the_sentinel() {
        let mut a = PayloadArena::new();
        let r = a.intern_slice(b"");
        assert_eq!(r, PayloadRef::EMPTY);
        assert!(r.is_empty());
        assert_eq!(a.live(), 0);
        assert_eq!(a.resolve(r).unwrap().len(), 0);
        assert!(a.release(r), "releasing EMPTY is a harmless no-op");
    }

    #[test]
    fn release_recycles_slot_and_stales_old_handles() {
        let mut a = PayloadArena::new();
        let r1 = a.intern_slice(b"first");
        assert!(a.release(r1));
        assert_eq!(a.live(), 0);
        // The slot is recycled under a new generation.
        let r2 = a.intern_slice(b"second");
        assert_eq!(a.capacity(), 1, "slot reused, not grown");
        assert_ne!(r1, r2);
        // The stale handle fails the generation check.
        assert_eq!(a.resolve(r1), None);
        assert!(!a.release(r1), "double release detected");
        assert_eq!(a.get(r2), b"second"[..]);
    }

    #[test]
    #[should_panic(expected = "stale or foreign")]
    fn get_panics_on_stale_handle() {
        let mut a = PayloadArena::new();
        let r = a.intern_slice(b"x");
        a.release(r);
        let _ = a.intern_slice(b"y");
        let _ = a.get(r);
    }

    #[test]
    fn build_reuses_scratch_buffers() {
        let mut a = PayloadArena::new();
        let r1 = a.build(|b| b.extend_from_slice(b"op-1"));
        let r2 = a.build(|b| b.extend_from_slice(b"op-2!"));
        assert_eq!(a.get(r1), b"op-1"[..]);
        assert_eq!(a.get(r2), b"op-2!"[..]);
        assert_eq!(r2.len(), 5);
        assert_eq!(a.scratch.len(), 1, "one pooled buffer serves all builds");
    }

    #[test]
    fn handles_are_copy_and_stable_across_clones() {
        let a = SharedArena::new();
        let r = a.intern_slice(b"shared");
        let b = a.clone();
        // A cloned SharedArena resolves handles issued by the original: the
        // "dedup by handle" property duplicated sim deliveries rely on.
        assert_eq!(b.get(r), b"shared"[..]);
        let copy = r;
        assert_eq!(copy, r);
    }

    #[test]
    fn resolving_against_a_different_arena_fails_cleanly() {
        let mut a = PayloadArena::new();
        let mut other = PayloadArena::new();
        let _ = a.intern_slice(b"aaaa");
        let r = a.intern_slice(b"bbbbbbbb");
        // `other` has no slot 1 at all.
        assert_eq!(other.resolve(r), None);
        // Same slot index but mismatched length is also rejected.
        let _ = other.intern_slice(b"xxxx");
        let _ = other.intern_slice(b"yy");
        assert_eq!(other.resolve(r), None);
    }
}
