//! A fast, deterministic hasher for the protocol hot paths.
//!
//! The standard library's default `RandomState` (SipHash-1-3) costs tens of
//! nanoseconds per lookup — measurable when every disseminated message does
//! several set membership checks. Protocol state never iterates hash
//! collections in an order-dependent way (ordered state lives in `BTreeMap`s),
//! so a fixed-seed multiply-xor hash is safe *and* makes runs independent of
//! the process's hash seed. Keys are small trusted identifiers (message ids,
//! process ids, instance numbers), not attacker-controlled input, so HashDoS
//! resistance is not needed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher in the Firefox `FxHasher` family: each written word
/// is folded in with a rotate, xor, and multiply by a mixing constant.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s (zero-sized, fixed seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashSet` using the fast fixed-seed hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// A `HashMap` using the fast fixed-seed hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_map_work() {
        let mut s: FxHashSet<(u32, u64)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
        assert!(s.contains(&(1, 2)));
        let mut m: FxHashMap<u64, &'static str> = FxHashMap::default();
        m.insert(7, "x");
        assert_eq!(m.get(&7), Some(&"x"));
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let hash = |k: u64| b.hash_one(k);
        let mut seen = std::collections::HashSet::new();
        for k in 0..10_000u64 {
            assert!(seen.insert(hash(k)), "collision at {k}");
        }
    }
}
