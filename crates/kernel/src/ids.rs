//! Identifier newtypes shared by every protocol crate.

use std::fmt;

/// Identity of a process (a member, or prospective member, of a group).
///
/// Process identifiers are assigned by the hosting runtime (the simulator
/// assigns them densely from zero) and are totally ordered; several protocols
/// (ring formation, deterministic tie-breaking) rely on that order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates a process id from its raw index.
    pub const fn new(raw: u32) -> Self {
        ProcessId(raw)
    }

    /// The raw index of this process id.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The raw index as a `usize`, convenient for dense tables.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Handle to a pending timer, unique within one process for one run.
///
/// Timers are one-shot: after [`crate::Process::fire_timer`] delivers the
/// expiry to the owning component, the id is dead. Cancelling a timer that
/// already fired is a no-op.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(u64);

impl TimerId {
    pub(crate) const fn new(raw: u64) -> Self {
        TimerId(raw)
    }

    /// The raw counter value of this timer id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_ids_are_ordered_by_raw_value() {
        assert!(ProcessId::new(1) < ProcessId::new(2));
        assert_eq!(ProcessId::new(7).index(), 7);
        assert_eq!(format!("{}", ProcessId::new(3)), "p3");
    }

    #[test]
    fn timer_ids_format() {
        assert_eq!(format!("{:?}", TimerId::new(9)), "timer#9");
    }
}
