//! The [`Component`] trait and the [`Context`] through which components act.

use crate::event::Event;
use crate::ids::{ProcessId, TimerId};
use crate::time::{Time, TimeDelta};

/// An action requested by a component during one dispatch step.
///
/// Actions are collected by the [`Context`] and either executed locally by
/// the hosting [`Process`](crate::Process) (`Emit`) or surfaced to the
/// runtime in [`Effects`](crate::Effects).
#[derive(Debug)]
pub enum Action<E> {
    /// Route an event to the named component of the same process.
    Emit {
        /// Destination component name.
        to: &'static str,
        /// The event to route.
        event: E,
    },
    /// Send an event over the network to a component of another process.
    Send {
        /// Destination process.
        to: ProcessId,
        /// Destination component name within that process.
        component: &'static str,
        /// The event to send.
        event: E,
    },
    /// Send one event to the same component of many processes — the
    /// broadcast envelope: the event is carried **once** and fanned out by
    /// the runtime, instead of being cloned per destination here.
    Multicast {
        /// Destination processes (inline up to typical group sizes).
        targets: crate::smallvec::SmallVec<ProcessId, 8>,
        /// Destination component name within each target.
        component: &'static str,
        /// The event to send (shared across all targets).
        event: E,
    },
    /// Request a one-shot timer.
    SetTimer {
        /// Id handed back to the requesting component on expiry.
        id: TimerId,
        /// Delay until expiry.
        after: TimeDelta,
    },
    /// Cancel a pending timer owned by this component.
    CancelTimer(TimerId),
    /// Deliver an event to the application / trace observer.
    Output(E),
    /// Stop this process entirely (used e.g. by Isis-style membership to
    /// kill a process that discovers it was wrongly excluded).
    Halt,
}

/// Execution context handed to a component while it handles an event.
///
/// All interaction with the outside world goes through the context; this is
/// what keeps components sans-I/O and deterministic.
#[derive(Debug)]
pub struct Context<'a, E> {
    now: Time,
    me: ProcessId,
    component: usize,
    actions: &'a mut Vec<(usize, Action<E>)>,
    next_timer: &'a mut u64,
}

impl<'a, E: Event> Context<'a, E> {
    pub(crate) fn new(
        now: Time,
        me: ProcessId,
        component: usize,
        actions: &'a mut Vec<(usize, Action<E>)>,
        next_timer: &'a mut u64,
    ) -> Self {
        Context {
            now,
            me,
            component,
            actions,
            next_timer,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The identity of the hosting process.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Routes `event` to the component named `to` within this process.
    ///
    /// # Panics
    ///
    /// The hosting process panics during dispatch if no component with that
    /// name exists — a miswired graph is a programming error.
    pub fn emit(&mut self, to: &'static str, event: E) {
        self.actions
            .push((self.component, Action::Emit { to, event }));
    }

    /// Sends `event` to component `component` of process `to`.
    pub fn send(&mut self, to: ProcessId, component: &'static str, event: E) {
        self.actions.push((
            self.component,
            Action::Send {
                to,
                component,
                event,
            },
        ));
    }

    /// Sends `event` to the same component of every process in `targets`
    /// (including `self` if listed; self-sends loop through the network like
    /// any other message).
    ///
    /// The event travels as a single broadcast envelope: it is **not**
    /// cloned per destination here — the hosting runtime expands the fan-out
    /// (cloning only where delivery demands it).
    pub fn send_to_all<I>(&mut self, targets: I, component: &'static str, event: E)
    where
        I: IntoIterator<Item = ProcessId>,
    {
        let targets: crate::smallvec::SmallVec<ProcessId, 8> = targets.into_iter().collect();
        if targets.is_empty() {
            return;
        }
        self.actions.push((
            self.component,
            Action::Multicast {
                targets,
                component,
                event,
            },
        ));
    }

    /// Requests a one-shot timer firing `after` from now; returns its id.
    pub fn set_timer(&mut self, after: TimeDelta) -> TimerId {
        let id = TimerId::new(*self.next_timer);
        *self.next_timer += 1;
        self.actions
            .push((self.component, Action::SetTimer { id, after }));
        id
    }

    /// Cancels a pending timer. No-op if it already fired or was cancelled.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push((self.component, Action::CancelTimer(id)));
    }

    /// Delivers `event` to the application observer (the simulator trace).
    pub fn output(&mut self, event: E) {
        self.actions.push((self.component, Action::Output(event)));
    }

    /// Halts the entire process after this dispatch step completes.
    pub fn halt(&mut self) {
        self.actions.push((self.component, Action::Halt));
    }
}

/// A protocol module: one box of an architecture diagram.
///
/// Components are registered with a [`Process`](crate::Process) under their
/// [`name`](Component::name) and receive the events other components `emit`
/// or `send` to that name, plus the expiries of timers they set.
pub trait Component<E: Event> {
    /// Stable component name used for routing (e.g. `"consensus"`).
    fn name(&self) -> &'static str;

    /// Called once when the hosting process starts.
    fn on_start(&mut self, _ctx: &mut Context<'_, E>) {}

    /// Handles an event routed to this component from within the process
    /// (another component's `emit`, or an application injection).
    fn on_event(&mut self, event: E, ctx: &mut Context<'_, E>);

    /// Handles an event that arrived over the network from process `from`.
    ///
    /// Defaults to [`on_event`](Component::on_event); components that care
    /// about the transport-level sender (or, like
    /// [`StackComponent`](crate::StackComponent), about the entry direction)
    /// override this.
    fn on_message(&mut self, from: ProcessId, event: E, ctx: &mut Context<'_, E>) {
        let _ = from;
        self.on_event(event, ctx);
    }

    /// Handles expiry of a timer previously set by this component.
    fn on_timer(&mut self, _timer: TimerId, _ctx: &mut Context<'_, E>) {}
}
