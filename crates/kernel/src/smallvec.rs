//! A small-vector: inline storage for the first `N` elements, heap spill
//! beyond — used for the per-dispatch effect and op buffers so the common
//! case (a handful of effects per event) never touches the allocator.
//!
//! Implemented without `unsafe` (this crate forbids it): the inline region
//! is an array of `Option<T>`. The `Option` discriminants cost a few bytes
//! per slot, which is irrelevant next to the allocation they avoid.

use std::fmt;
use std::ops::Index;

/// A vector storing up to `N` elements inline and the rest on the heap.
pub struct SmallVec<T, const N: usize> {
    inline: [Option<T>; N],
    spill: Vec<T>,
    len: usize,
}

impl<T, const N: usize> SmallVec<T, N> {
    /// Creates an empty small-vector (no allocation).
    pub fn new() -> Self {
        SmallVec {
            inline: [const { None }; N],
            spill: Vec::new(),
            len: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends an element.
    pub fn push(&mut self, value: T) {
        if self.len < N {
            self.inline[self.len] = Some(value);
        } else {
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Removes all elements, keeping the spill buffer's capacity.
    pub fn clear(&mut self) {
        for slot in &mut self.inline[..self.len.min(N)] {
            *slot = None;
        }
        self.spill.clear();
        self.len = 0;
    }

    /// The element at `index`, if in bounds.
    pub fn get(&self, index: usize) -> Option<&T> {
        if index >= self.len {
            None
        } else if index < N {
            self.inline[index].as_ref()
        } else {
            self.spill.get(index - N)
        }
    }

    /// Iterates over the elements by reference.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.inline[..self.len.min(N)]
            .iter()
            .map(|s| s.as_ref().expect("slot below len is filled"))
            .chain(self.spill.iter())
    }

    /// Removes and yields every element, leaving the vector empty (spill
    /// capacity is retained for reuse). Elements not consumed before the
    /// iterator is dropped are dropped with it, like `Vec::drain`.
    pub fn drain(&mut self) -> Drain<'_, T, N> {
        let filled = self.len.min(N);
        self.len = 0;
        Drain {
            inline: self.inline[..filled].iter_mut(),
            spill: self.spill.drain(..),
        }
    }
}

/// Draining iterator over a [`SmallVec`] (see [`SmallVec::drain`]).
pub struct Drain<'a, T, const N: usize> {
    inline: std::slice::IterMut<'a, Option<T>>,
    spill: std::vec::Drain<'a, T>,
}

impl<T, const N: usize> Iterator for Drain<'_, T, N> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        match self.inline.next() {
            Some(slot) => Some(slot.take().expect("slot below len is filled")),
            None => self.spill.next(),
        }
    }
}

impl<T, const N: usize> Drop for Drain<'_, T, N> {
    fn drop(&mut self) {
        // Release unconsumed inline elements (the spill `Drain` handles its
        // own remainder), so an early-dropped iterator leaks nothing.
        for slot in &mut self.inline {
            *slot = None;
        }
    }
}

impl<T, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> Index<usize> for SmallVec<T, N> {
    type Output = T;
    fn index(&self, index: usize) -> &T {
        self.get(index)
            .unwrap_or_else(|| panic!("index {index} out of bounds (len {})", self.len))
    }
}

impl<T, const N: usize> IntoIterator for SmallVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;
    fn into_iter(self) -> IntoIter<T, N> {
        IntoIter {
            inner: self.inline.into_iter().flatten().chain(self.spill),
        }
    }
}

/// Owning iterator over a [`SmallVec`].
pub struct IntoIter<T, const N: usize> {
    inner: std::iter::Chain<
        std::iter::Flatten<std::array::IntoIter<Option<T>, N>>,
        std::vec::IntoIter<T>,
    >,
}

impl<T, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.inner.next()
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = Box<dyn Iterator<Item = &'a T> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl<T, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        for x in iter {
            v.push(x);
        }
        v
    }
}

impl<T: Clone, const N: usize> Clone for SmallVec<T, N> {
    fn clone(&self) -> Self {
        self.iter().cloned().collect()
    }
}

impl<T: PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}
impl<T: Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: PartialEq, const N: usize> PartialEq<Vec<T>> for SmallVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.len == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_then_spill() {
        let mut v: SmallVec<u32, 2> = SmallVec::new();
        assert!(v.is_empty());
        for i in 0..5 {
            v.push(i);
        }
        assert_eq!(v.len(), 5);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(v[0], 0);
        assert_eq!(v[4], 4);
        assert_eq!(v.get(5), None);
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drain_and_reuse() {
        let mut v: SmallVec<String, 2> = SmallVec::new();
        v.push("a".into());
        v.push("b".into());
        v.push("c".into());
        let drained: Vec<String> = v.drain().collect();
        assert_eq!(drained, vec!["a", "b", "c"]);
        assert!(v.is_empty());
        v.push("d".into());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0], "d");
    }

    #[test]
    fn partially_consumed_drain_drops_the_rest() {
        use std::rc::Rc;
        let probe = Rc::new(());
        let mut v: SmallVec<Rc<()>, 2> = SmallVec::new();
        for _ in 0..4 {
            v.push(Rc::clone(&probe));
        }
        assert_eq!(Rc::strong_count(&probe), 5);
        {
            let mut d = v.drain();
            let _first = d.next();
            // Iterator dropped here with three elements unconsumed.
        }
        assert_eq!(Rc::strong_count(&probe), 1, "all drained elements released");
        assert!(v.is_empty());
    }

    #[test]
    fn into_iter_owns() {
        let mut v: SmallVec<u32, 2> = SmallVec::new();
        v.push(7);
        v.push(8);
        v.push(9);
        let owned: Vec<u32> = v.into_iter().collect();
        assert_eq!(owned, vec![7, 8, 9]);
    }

    #[test]
    fn clear_resets() {
        let mut v: SmallVec<u32, 2> = SmallVec::new();
        v.push(1);
        v.push(2);
        v.push(3);
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let v: SmallVec<u32, 2> = SmallVec::new();
        let _ = v[0];
    }
}
