//! # gcs-traditional — the GM-VS baselines (paper §2)
//!
//! The traditional architecture the paper argues against: **group membership
//! and view synchrony are the basic components**, atomic broadcast sits on
//! top of them, and the failure detector is fused into the membership
//! service, which emulates a *perfect* failure detector by excluding (and in
//! Isis killing) every suspected process.
//!
//! [`isis`] implements the Isis/Phoenix family (Figs 1–2): heartbeat failure
//! detection integrated with a coordinator-driven membership, a **flush**
//! protocol providing view synchrony with *sending view delivery* — senders
//! are blocked for the whole view change (§4.4) — and atomic broadcast by a
//! fixed sequencer (the view head). A wrongly excluded process is killed and
//! must re-join with a full state transfer (§4.3's false-suspicion cost).
//!
//! [`token`] implements the RMP/Totem family (Figs 3–4): a rotating token
//! carries the global sequence; token loss triggers a ring reformation and
//! recovery.
//!
//! Both stacks expose the same simulation harness shape as
//! `gcs_core::GroupSim` so experiments can swap architectures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod isis;
pub mod token;

pub use isis::{IsisConfig, IsisEvent, IsisSim, NewViewData};
pub use token::{NewRingData, TokenConfig, TokenEvent, TokenSim};
