//! The token-ring stack (Figs 3–4, RMP/Totem family).
//!
//! A token rotates around a logical ring of the members; the holder stamps
//! its pending broadcasts with consecutive sequence numbers taken from the
//! token (total order) and passes the token on. Structural properties
//! reproduced from the paper's description:
//!
//! * **ordering rides the token** — no sequencer process, but ordering still
//!   depends on membership: if the ring breaks, ordering stops;
//! * **token-loss detection → ring reformation** (the Totem membership
//!   protocol): a member that has not seen the token for a timeout starts a
//!   reformation; non-responding members are excluded;
//! * **recovery layer**: reformation exchanges undelivered sequenced
//!   messages so survivors agree on the delivered set ((extended) view
//!   synchrony, Fig 4's "Recovery" box);
//! * **fault-free membership over the total order** (RMP, Fig 3): joins are
//!   ordinary sequenced messages, handled without the fault-tolerant
//!   reformation path.

use std::collections::{BTreeMap, HashSet, VecDeque};

use bytes::Bytes;
use gcs_kernel::{
    Component, Context, Event, PayloadRef, Process, ProcessId, SharedArena, Time, TimeDelta,
    TimerId,
};
use gcs_sim::{Metrics, SimConfig, SimWorld, Topology, Trace};

/// Configuration of a token-ring process.
#[derive(Clone, Copy, Debug)]
pub struct TokenConfig {
    /// How long a holder keeps the token before passing it on.
    pub hold: TimeDelta,
    /// Token-loss timeout: a member that has not seen the token for this
    /// long starts a reformation.
    pub token_timeout: TimeDelta,
    /// How long a reformer waits for reports before excluding silents.
    pub reform_timeout: TimeDelta,
    /// Scan period of the gap-repair path: a member whose delivery cursor is
    /// stuck behind sequenced messages it has seen asks the ring to re-send
    /// the missing ones (Totem carries the same request on the token's
    /// retransmission list).
    pub retrans_interval: TimeDelta,
    /// Whether a member excluded by a reformation it missed (wrong
    /// suspicion, healed partition) automatically re-joins through the
    /// fault-free membership path. Scripted removals stay out regardless.
    pub auto_rejoin: bool,
    /// Payload-piggyback byte budget per token hold: a holder stops
    /// stamping queued application payloads once this many bytes went out
    /// (always at least one message, however fat) so one loaded sender
    /// cannot starve the rotation. Membership changes are never budgeted.
    /// The default (`usize::MAX`) drains the whole outbox per hold — the
    /// pre-limit behavior, bit-identical on recorded runs.
    pub max_hold_bytes: usize,
}

impl Default for TokenConfig {
    fn default() -> Self {
        TokenConfig {
            hold: TimeDelta::from_micros(300),
            token_timeout: TimeDelta::from_millis(50),
            reform_timeout: TimeDelta::from_millis(20),
            retrans_interval: TimeDelta::from_millis(10),
            auto_rejoin: true,
            max_hold_bytes: usize::MAX,
        }
    }
}

impl TokenConfig {
    /// A timeout profile derived from the topology's RTT bound for a ring of
    /// `n` members: on a LAN the defaults are returned unchanged (every
    /// derived value floors at its default), while on WAN topologies the
    /// token-loss timeout clears several full rotations — a rotation takes
    /// roughly `n × (hold + one-way delay)`, and a timeout below that
    /// declares the token lost while it is merely in transit, so the ring
    /// thrashes through reformations instead of converging.
    pub fn for_topology(topology: &Topology, n: usize) -> Self {
        let d = topology.max_one_way_delay();
        let defaults = Self::default();
        let rotation = (defaults.hold + d).saturating_mul(n.max(1) as u64);
        TokenConfig {
            token_timeout: defaults.token_timeout.max(rotation.saturating_mul(3)),
            reform_timeout: defaults.reform_timeout.max(d.saturating_mul(4)),
            retrans_interval: defaults.retrans_interval.max(d.saturating_mul(3)),
            ..defaults
        }
    }
}

/// A membership change riding the total order (RMP-style fault-free
/// membership): joins and scripted removals are ordinary sequenced messages,
/// so every member updates the ring at the same point of the stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RingChange {
    /// Add a process to the ring.
    Join(ProcessId),
    /// Remove a process from the ring (scripted removal; the target stays
    /// out).
    Leave(ProcessId),
}

/// One sequenced message as the recovery layer moves it around: reform
/// reports and `NewRing` recovery sets carry these.
#[derive(Clone, Copy, Debug)]
pub struct SeqMsg {
    /// Global sequence number.
    pub seq: u64,
    /// Originating process.
    pub origin: ProcessId,
    /// Payload handle.
    pub payload: PayloadRef,
    /// Membership change, if this is one.
    pub change: Option<RingChange>,
    /// Ring generation the message was stamped in.
    pub vid: u64,
}

/// Wire + local events of the token stack.
#[derive(Clone, Debug)]
pub enum TokenEvent {
    // -- wire --
    /// The rotating token.
    Token {
        /// Ring generation.
        vid: u64,
        /// Next unassigned global sequence number.
        next_seq: u64,
    },
    /// A sequenced broadcast (possibly a membership message, RMP-style).
    Data {
        /// Global sequence number stamped by the token holder.
        seq: u64,
        /// Originating process.
        origin: ProcessId,
        /// Payload handle; membership data carries the change instead.
        payload: PayloadRef,
        /// RMP fault-free membership: this message joins or removes a
        /// member at this point of the total order.
        change: Option<RingChange>,
        /// Ring generation the stamper held when sequencing this message:
        /// the message *belongs* to that generation, and every member tags
        /// its delivery with it — the ring's (extended) view synchrony, where
        /// a recovered message may be delivered after a reformation but is
        /// still attributed to the generation that sent it.
        vid: u64,
    },
    /// Gap repair: the sender's delivery cursor is stuck at `need` while
    /// higher-sequenced messages have arrived — any member holding the
    /// missing range re-sends it (Totem's retransmission-list mechanism).
    Nack {
        /// First sequence number the sender is missing.
        need: u64,
    },
    /// Reformation probe by the reformer.
    Reform {
        /// Proposed ring generation.
        vid: u64,
    },
    /// A member's recovery report.
    ReformReport {
        /// Generation this report answers (the probe's proposal).
        vid: u64,
        /// The reporter's *current* generation: the commit is numbered above
        /// every reporter's, so no member ignores it as stale.
        current: u64,
        /// Sequenced messages the reporter holds (delivered or not),
        /// including membership changes — recovery must not strip a
        /// join/leave out of the total order.
        known: Vec<SeqMsg>,
    },
    /// The reformer commits the new ring. Boxed: this rare, fat variant
    /// (two vectors) must not widen the hot event enum past the cache-line
    /// budget.
    NewRing(Box<NewRingData>),
    /// An outsider asks a member to sponsor its (fault-free) join.
    JoinRequest,
    /// Ring bootstrap information for a joiner.
    RingInfo {
        /// Generation.
        vid: u64,
        /// The ring including the joiner.
        ring: Vec<ProcessId>,
        /// First sequence number the joiner will see.
        next_deliver: u64,
    },

    // -- ops --
    /// Broadcast `payload` in total order.
    Abcast(PayloadRef),
    /// Ask to join the ring via process 0.
    Join,
    /// Ask the ring to remove a member (sequenced like a join).
    Remove(ProcessId),

    // -- outputs --
    /// An ordered delivery.
    Deliver {
        /// Global sequence number.
        seq: u64,
        /// Originating process.
        origin: ProcessId,
        /// Payload handle (resolve via [`TokenSim::resolve`]).
        payload: PayloadRef,
        /// Ring generation current at delivery (recovery deliveries of a
        /// reformation are tagged with the generation they were sent in).
        vid: u64,
    },
    /// A ring (view) installation.
    RingInstalled {
        /// Generation.
        vid: u64,
        /// Members in token order.
        ring: Vec<ProcessId>,
    },
    /// This process learned it was excluded by a reformation it missed: it
    /// stops delivering and (unless it was removed by request) re-joins
    /// through the fault-free membership path.
    Excluded,
}

// Events are moved through every scheduler slot and dispatch; boxing the
// reformation-time fat variants keeps the enum inside one cache line.
const _: () = assert!(
    std::mem::size_of::<TokenEvent>() <= 64,
    "TokenEvent outgrew one cache line; box the offending variant"
);

/// The payload of a [`TokenEvent::NewRing`] commit.
#[derive(Clone, Debug)]
pub struct NewRingData {
    /// New generation.
    pub vid: u64,
    /// The surviving ring, in token order.
    pub ring: Vec<ProcessId>,
    /// Recovery set: all known sequenced messages (membership changes
    /// included).
    pub recovery: Vec<SeqMsg>,
    /// Sequence numbering continues from here.
    pub next_seq: u64,
    /// Whether the ring head re-injects the token on install. `true` on
    /// real reformation commits; `false` when a member *teaches* the ring to
    /// a process holding a stale generation — the teach must never spawn a
    /// second token (`next_seq` is a lower bound there, and double stamping
    /// would fork the sequence space).
    pub reinject: bool,
}

impl Event for TokenEvent {
    fn kind(&self) -> &'static str {
        match self {
            TokenEvent::Token { .. } => "token/token",
            TokenEvent::Data { .. } => "token/data",
            TokenEvent::Nack { .. } => "token/nack",
            TokenEvent::Reform { .. } => "token/reform",
            TokenEvent::ReformReport { .. } => "token/reform-report",
            TokenEvent::NewRing { .. } => "token/new-ring",
            TokenEvent::JoinRequest => "token/join-request",
            TokenEvent::RingInfo { .. } => "token/ring-info",
            TokenEvent::Abcast(_) => "op/abcast",
            TokenEvent::Join => "op/join",
            TokenEvent::Remove(_) => "op/remove",
            TokenEvent::Deliver { .. } => "out/deliver",
            TokenEvent::RingInstalled { .. } => "out/ring",
            TokenEvent::Excluded => "out/excluded",
        }
    }

    fn wire_size(&self) -> usize {
        match self {
            TokenEvent::Token { .. } => 24,
            TokenEvent::Data { payload, .. } => 40 + payload.len(),
            TokenEvent::Nack { .. } => 16,
            TokenEvent::Reform { .. } => 16,
            TokenEvent::ReformReport { known, .. } => {
                32 + known.iter().map(|m| 24 + m.payload.len()).sum::<usize>()
            }
            TokenEvent::NewRing(nr) => {
                24 + nr
                    .recovery
                    .iter()
                    .map(|m| 24 + m.payload.len())
                    .sum::<usize>()
            }
            TokenEvent::JoinRequest => 16,
            TokenEvent::RingInfo { ring, .. } => 24 + 4 * ring.len(),
            _ => 64,
        }
    }
}

/// The wire [`TokenEvent::Data`] for a sequenced message.
fn data_of(m: SeqMsg) -> TokenEvent {
    TokenEvent::Data {
        seq: m.seq,
        origin: m.origin,
        payload: m.payload,
        change: m.change,
        vid: m.vid,
    }
}

/// One process of the token-ring stack.
pub struct TokenStack {
    me: ProcessId,
    config: TokenConfig,
    vid: u64,
    ring: Vec<ProcessId>,
    member: bool,
    /// This process delivered its own scripted removal: stay out even if
    /// `auto_rejoin` is set.
    removed: bool,
    /// Outbound queue, stamped when we hold the token.
    outbox: VecDeque<PayloadRef>,
    /// Sequenced messages by seq (delivered or buffered).
    known: BTreeMap<u64, SeqMsg>,
    next_deliver: u64,
    last_token_seen: Time,
    /// Reformer state.
    reforming: Option<(u64, Time)>,
    /// Per reporter: its current generation and its known messages.
    reports: BTreeMap<ProcessId, (u64, Vec<SeqMsg>)>,
    /// Pending membership announcements (sponsored joins, requested
    /// removals) to stamp when we next hold the token.
    change_queue: VecDeque<RingChange>,
    holding_token: bool,
    /// Gap-repair scan state: the cursor as of the previous scan, and
    /// whether it was already stuck behind sequenced messages then.
    nack_cursor: u64,
    nack_stalled: bool,
    last_nack_scan: Time,
    /// Rotates the Nack target across repair scans.
    nack_round: u64,
    /// Highest `next_seq` any token showed us: proof that every lower
    /// sequence number exists (tail-gap evidence for the repair path).
    expected_seq: u64,
    /// A token that arrived one ring generation ahead of the membership
    /// Data that bumps our `vid` (links are not FIFO): parked until the
    /// change is delivered instead of being dropped.
    pending_token: Option<(u64, u64)>,
}

impl TokenStack {
    /// Creates a stack; founding members pass the ring, joiners `None`.
    pub fn new(me: ProcessId, ring: Option<Vec<ProcessId>>, config: TokenConfig) -> Self {
        let (ring, member) = match ring {
            Some(mut r) => {
                r.sort_unstable();
                let m = r.contains(&me);
                (r, m)
            }
            None => (Vec::new(), false),
        };
        TokenStack {
            me,
            config,
            vid: 0,
            ring,
            member,
            removed: false,
            outbox: VecDeque::new(),
            known: BTreeMap::new(),
            next_deliver: 0,
            last_token_seen: Time::ZERO,
            reforming: None,
            reports: BTreeMap::new(),
            change_queue: VecDeque::new(),
            holding_token: false,
            nack_cursor: 0,
            nack_stalled: false,
            last_nack_scan: Time::ZERO,
            nack_round: 0,
            expected_seq: 0,
            pending_token: None,
        }
    }

    fn successor(&self) -> Option<ProcessId> {
        let idx = self.ring.iter().position(|&p| p == self.me)?;
        Some(self.ring[(idx + 1) % self.ring.len()])
    }

    fn broadcast(&self, ev: TokenEvent, ctx: &mut Context<'_, TokenEvent>) {
        // One broadcast envelope instead of a per-peer clone loop.
        ctx.send_to_all(
            self.ring.iter().copied().filter(|&p| p != self.me),
            "token",
            ev,
        );
    }

    /// Token in hand: stamp and broadcast everything queued, pass it on.
    fn work_token(&mut self, vid: u64, mut next_seq: u64, ctx: &mut Context<'_, TokenEvent>) {
        if !self.member {
            return;
        }
        if vid > self.vid {
            // The token outran the membership Data that bumps our
            // generation (links are not FIFO): park it instead of dropping
            // it — try_deliver services it the moment the change lands,
            // saving a token-loss timeout + reformation on a healthy ring.
            self.pending_token = Some((vid, next_seq));
            self.last_token_seen = ctx.now();
            return;
        }
        if vid < self.vid {
            return; // stale token from a previous ring generation
        }
        // The token's next_seq proves every lower sequence exists: gap
        // evidence for the Nack repair path even when the lost message is
        // the current tail of the stream.
        self.expected_seq = self.expected_seq.max(next_seq);
        self.last_token_seen = ctx.now();
        self.holding_token = true;
        // Payload piggyback budget: stop stamping once the hold has pushed
        // `max_hold_bytes` of payload (checked before each pop, so at least
        // one message always goes out and the default unlimited budget
        // drains the queue exactly as before). Leftovers wait for the next
        // rotation — the ring keeps rotating instead of serving one fat
        // sender to exhaustion.
        let mut stamped = 0usize;
        while stamped < self.config.max_hold_bytes {
            let Some(payload) = self.outbox.pop_front() else {
                break;
            };
            stamped = stamped.saturating_add(payload.len().max(1));
            let m = SeqMsg {
                seq: next_seq,
                origin: self.me,
                payload,
                change: None,
                vid: self.vid,
            };
            next_seq += 1;
            self.broadcast(data_of(m), ctx);
            self.accept_data(m, ctx);
        }
        while let Some(change) = self.change_queue.pop_front() {
            let m = SeqMsg {
                seq: next_seq,
                origin: self.me,
                payload: PayloadRef::EMPTY,
                change: Some(change),
                vid: self.vid,
            };
            next_seq += 1;
            self.broadcast(data_of(m), ctx);
            self.accept_data(m, ctx);
        }
        self.holding_token = false;
        if !self.member {
            return; // we just delivered our own removal: the token dies here
        }
        if let Some(next) = self.successor() {
            if next == self.me {
                // Singleton ring: hold the token by re-arming the timer.
                return;
            }
            // Pass with the *current* generation: a membership change we
            // just stamped bumped `vid`, and the successor (which sees the
            // change first, in sequence order) expects the new one.
            ctx.send(
                next,
                "token",
                TokenEvent::Token {
                    vid: self.vid,
                    next_seq,
                },
            );
        }
    }

    fn accept_data(&mut self, m: SeqMsg, ctx: &mut Context<'_, TokenEvent>) {
        self.known.entry(m.seq).or_insert(m);
        self.try_deliver(ctx);
        // A parked ahead-of-generation token becomes workable once the
        // membership change it waited on has been delivered. Never while
        // already holding a token (reentrancy would fork the stamping).
        if !self.holding_token {
            if let Some((vid, next_seq)) = self.pending_token {
                if vid <= self.vid {
                    self.pending_token = None;
                    if vid == self.vid {
                        self.work_token(vid, next_seq, ctx);
                    }
                }
            }
        }
    }

    fn try_deliver(&mut self, ctx: &mut Context<'_, TokenEvent>) {
        while self.member {
            let Some(&SeqMsg {
                origin,
                payload,
                change,
                vid: stamp_vid,
                ..
            }) = self.known.get(&self.next_deliver)
            else {
                break;
            };
            let seq = self.next_deliver;
            self.next_deliver += 1;
            match change {
                Some(RingChange::Join(j)) => {
                    // RMP fault-free membership: the join is a totally
                    // ordered message; everyone extends the ring at the same
                    // point.
                    if !self.ring.contains(&j) {
                        self.ring.push(j);
                        self.ring.sort_unstable();
                        self.vid += 1;
                        ctx.output(TokenEvent::RingInstalled {
                            vid: self.vid,
                            ring: self.ring.clone(),
                        });
                        if origin == self.me {
                            ctx.send(
                                j,
                                "token",
                                TokenEvent::RingInfo {
                                    vid: self.vid,
                                    ring: self.ring.clone(),
                                    next_deliver: self.next_deliver,
                                },
                            );
                        }
                    }
                }
                Some(RingChange::Leave(target)) => {
                    // A scripted removal rides the total order exactly like
                    // a join: everyone shrinks the ring at the same point,
                    // including the target, which stops delivering here.
                    if self.ring.contains(&target) {
                        self.ring.retain(|&p| p != target);
                        self.vid += 1;
                        if target == self.me {
                            self.member = false;
                            self.removed = true;
                        }
                        ctx.output(TokenEvent::RingInstalled {
                            vid: self.vid,
                            ring: self.ring.clone(),
                        });
                    }
                }
                None => {
                    ctx.output(TokenEvent::Deliver {
                        seq,
                        origin,
                        payload,
                        vid: stamp_vid,
                    });
                }
            }
        }
    }

    /// Gap repair (piggybacked on the hold timer, scanned every
    /// `retrans_interval`): when the delivery cursor has been stuck behind
    /// already-sequenced messages across two consecutive scans, ask the ring
    /// to re-send the missing range. On loss-free links a gap closes within
    /// one scan period, so the path never fires there.
    fn nack_tick(&mut self, now: Time, ctx: &mut Context<'_, TokenEvent>) {
        if now.since(self.last_nack_scan) <= self.config.retrans_interval {
            return;
        }
        self.last_nack_scan = now;
        // Gap evidence: a higher sequence is already known, or a token has
        // shown a `next_seq` above our cursor (the latter catches a lost
        // Data at the very tail, where no higher-seq message exists yet).
        let stalled_now = !self.known.contains_key(&self.next_deliver)
            && (self
                .known
                .keys()
                .next_back()
                .is_some_and(|&last| last >= self.next_deliver)
                || self.next_deliver < self.expected_seq);
        if stalled_now && self.nack_stalled && self.nack_cursor == self.next_deliver {
            // One responder suffices (every member holds the full sequenced
            // history); rotate the target across scans so a peer that lacks
            // the range does not get asked forever.
            let others: Vec<ProcessId> = self
                .ring
                .iter()
                .copied()
                .filter(|&q| q != self.me)
                .collect();
            if !others.is_empty() {
                let target = others[self.nack_round as usize % others.len()];
                self.nack_round += 1;
                ctx.send(
                    target,
                    "token",
                    TokenEvent::Nack {
                        need: self.next_deliver,
                    },
                );
            }
        }
        self.nack_cursor = self.next_deliver;
        self.nack_stalled = stalled_now;
    }

    /// Serve a gap-repair request: re-send every sequenced message we hold
    /// from `need` on (bounded per request; the requester asks again if its
    /// cursor is still stuck).
    fn serve_nack(&mut self, from: ProcessId, need: u64, ctx: &mut Context<'_, TokenEvent>) {
        for (_, &m) in self.known.range(need..).take(64) {
            ctx.send(from, "token", data_of(m));
        }
    }

    fn start_reformation(&mut self, ctx: &mut Context<'_, TokenEvent>) {
        let vid = self.vid + 1;
        self.reforming = Some((vid, ctx.now() + self.config.reform_timeout));
        self.reports.clear();
        self.reports.insert(self.me, (self.vid, self.known_list()));
        self.broadcast(TokenEvent::Reform { vid }, ctx);
    }

    fn known_list(&self) -> Vec<SeqMsg> {
        self.known.values().copied().collect()
    }

    fn finish_reformation(&mut self, ctx: &mut Context<'_, TokenEvent>) {
        let Some((vid, _)) = self.reforming.take() else {
            return;
        };
        // Primary-partition rule (the Isis counterpart of §2.1.1): a
        // minority fragment must not reform its own ring — two fragments
        // stamping the same sequence space is a total-order split brain.
        // Stay in the old ring and retry after another token-loss timeout;
        // a healed partition resolves through the stale-probe teach path.
        if self.reports.len() < self.ring.len() / 2 + 1 {
            self.reports.clear();
            self.last_token_seen = ctx.now();
            return;
        }
        let ring: Vec<ProcessId> = {
            let mut r: Vec<ProcessId> = self.reports.keys().copied().collect();
            r.sort_unstable();
            r
        };
        // Commit above every reporter's current generation: a reporter that
        // delivered a membership change mid-flight may sit above the probe's
        // proposal, and the commit must not look stale to it.
        let vid = self
            .reports
            .values()
            .map(|(v, _)| v + 1)
            .max()
            .unwrap_or(vid)
            .max(vid);
        // Recovery: union of all known sequenced messages.
        let mut recovery: BTreeMap<u64, SeqMsg> = BTreeMap::new();
        for (_, report) in self.reports.values() {
            for &m in report {
                recovery.entry(m.seq).or_insert(m);
            }
        }
        let next_seq = recovery.keys().next_back().map_or(0, |s| s + 1);
        let recovery: Vec<SeqMsg> = recovery.into_values().collect();
        let ev = TokenEvent::NewRing(Box::new(NewRingData {
            vid,
            ring: ring.clone(),
            recovery: recovery.clone(),
            next_seq,
            reinject: true,
        }));
        ctx.send_to_all(ring.iter().copied().filter(|&p| p != self.me), "token", ev);
        self.install_ring(vid, ring, recovery, next_seq, true, ctx);
    }

    fn install_ring(
        &mut self,
        vid: u64,
        ring: Vec<ProcessId>,
        recovery: Vec<SeqMsg>,
        next_seq: u64,
        reinject: bool,
        ctx: &mut Context<'_, TokenEvent>,
    ) {
        for m in recovery {
            self.known.entry(m.seq).or_insert(m);
        }
        let was_member = self.member;
        // Gaps left by crashed holders are skipped: delivery resumes at the
        // first recovered sequence at or above the old cursor. Two guards:
        // the cursor never *regresses* (re-delivery), and only a real
        // reformation commit — whose recovery set is the authoritative
        // union of every survivor's messages — may skip it *forward*. A
        // teach install carries no recovery and a lower-bound `next_seq`,
        // so skipping there would jump over messages the Nack repair path
        // could still fill.
        if reinject {
            let resume = self.known.keys().copied().find(|&s| s >= self.next_deliver);
            if let Some(r) = resume {
                self.next_deliver = self.next_deliver.max(r.min(next_seq));
                // Skip unfillable gaps (sequence numbers nobody reported).
                while !self.known.contains_key(&self.next_deliver) && self.next_deliver < next_seq {
                    self.next_deliver += 1;
                }
            } else {
                self.next_deliver = self.next_deliver.max(next_seq);
            }
            // The reformation recomputed the sequence space from the
            // survivors' union; older tail evidence no longer applies.
            self.expected_seq = next_seq;
        }
        self.pending_token = None;
        self.ring = ring.clone();
        self.member = ring.contains(&self.me);
        self.reforming = None;
        self.last_token_seen = ctx.now();
        // Recovery deliveries happen *before* the generation bump: the
        // recovered messages were sent in the old ring, and survivors that
        // delivered them pre-reformation tagged them with the old `vid` —
        // view synchrony requires both sides to agree.
        self.try_deliver(ctx);
        self.vid = vid;
        ctx.output(TokenEvent::RingInstalled {
            vid,
            ring: ring.clone(),
        });
        if !self.member {
            if was_member {
                // We were expelled by a reformation we missed (wrong
                // suspicion or a healed partition): stop delivering and —
                // unless removed by request — re-join through the ordinary
                // fault-free membership path.
                ctx.output(TokenEvent::Excluded);
                if self.config.auto_rejoin && !self.removed {
                    if let Some(&head) = ring.first() {
                        ctx.send(head, "token", TokenEvent::JoinRequest);
                    }
                }
            }
            return;
        }
        // The reformer (lowest id) re-injects the token; a *teach* install
        // never does (the circulating token is still live).
        if reinject && ring.first() == Some(&self.me) {
            self.work_token(vid, next_seq, ctx);
        }
    }
}

impl Component<TokenEvent> for TokenStack {
    fn name(&self) -> &'static str {
        "token"
    }

    fn on_start(&mut self, ctx: &mut Context<'_, TokenEvent>) {
        self.last_token_seen = ctx.now();
        ctx.set_timer(self.config.hold);
        if self.member && self.ring.first() == Some(&self.me) {
            // The lowest-id member creates the token.
            self.work_token(0, 0, ctx);
        }
        if self.member {
            ctx.output(TokenEvent::RingInstalled {
                vid: 0,
                ring: self.ring.clone(),
            });
        }
    }

    fn on_event(&mut self, event: TokenEvent, ctx: &mut Context<'_, TokenEvent>) {
        match event {
            TokenEvent::Abcast(payload) => self.outbox.push_back(payload),
            TokenEvent::Join if !self.member => {
                ctx.send(ProcessId::new(0), "token", TokenEvent::JoinRequest);
            }
            TokenEvent::Remove(target) if self.member => {
                // A removal is an ordinary sequenced membership message:
                // queue it for our next token hold.
                self.change_queue.push_back(RingChange::Leave(target));
            }
            _ => {}
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        event: TokenEvent,
        ctx: &mut Context<'_, TokenEvent>,
    ) {
        match event {
            TokenEvent::Token { vid, next_seq } => self.work_token(vid, next_seq, ctx),
            TokenEvent::Data {
                seq,
                origin,
                payload,
                change,
                vid,
            } => {
                self.last_token_seen = ctx.now(); // data implies a live ring
                self.accept_data(
                    SeqMsg {
                        seq,
                        origin,
                        payload,
                        change,
                        vid,
                    },
                    ctx,
                )
            }
            TokenEvent::Nack { need } => self.serve_nack(from, need, ctx),
            TokenEvent::Reform { vid } if vid > self.vid && self.member => {
                ctx.send(
                    from,
                    "token",
                    TokenEvent::ReformReport {
                        vid,
                        current: self.vid,
                        known: self.known_list(),
                    },
                );
                self.last_token_seen = ctx.now(); // reformation under way
            }
            TokenEvent::Reform { .. } if self.member => {
                // A probe at or below our generation: the prober missed a
                // reformation (wrong suspicion, healed partition). Teach it
                // the current ring; it will stop delivering and re-join. The
                // teach never re-injects the token — ours is still live.
                ctx.send(
                    from,
                    "token",
                    TokenEvent::NewRing(Box::new(NewRingData {
                        vid: self.vid,
                        ring: self.ring.clone(),
                        recovery: Vec::new(),
                        next_seq: self.next_deliver,
                        reinject: false,
                    })),
                );
            }
            TokenEvent::ReformReport {
                vid,
                current,
                known,
            } => {
                if let Some((rvid, _)) = self.reforming {
                    if vid == rvid {
                        self.reports.insert(from, (current, known));
                        let everyone: HashSet<ProcessId> = self.ring.iter().copied().collect();
                        if self.reports.len() == everyone.len() {
                            self.finish_reformation(ctx);
                        }
                    }
                }
            }
            TokenEvent::NewRing(nr) if nr.vid > self.vid => {
                self.install_ring(nr.vid, nr.ring, nr.recovery, nr.next_seq, nr.reinject, ctx);
            }
            TokenEvent::JoinRequest if self.member => {
                self.change_queue.push_back(RingChange::Join(from));
            }
            TokenEvent::RingInfo {
                vid,
                ring,
                next_deliver,
            } if !self.member && !self.removed => {
                self.vid = vid;
                self.ring = ring.clone();
                self.member = true;
                self.next_deliver = next_deliver;
                ctx.output(TokenEvent::RingInstalled { vid, ring });
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _timer: TimerId, ctx: &mut Context<'_, TokenEvent>) {
        ctx.set_timer(self.config.hold);
        if !self.member {
            return;
        }
        let now = ctx.now();
        if let Some((_, deadline)) = self.reforming {
            if now >= deadline {
                self.finish_reformation(ctx);
            }
            return;
        }
        self.nack_tick(now, ctx);
        // Token-loss detection: the Totem membership trigger.
        if now.since(self.last_token_seen) > self.config.token_timeout {
            let unsuspected_lowest = self.ring.first().copied();
            // The lowest member starts reformation; if the lowest crashed,
            // everyone times out and the lowest *survivor*'s probe wins (the
            // vid guard makes the protocols converge).
            if unsuspected_lowest == Some(self.me)
                || self
                    .ring
                    .iter()
                    .take_while(|&&p| p != self.me)
                    .all(|_| now.since(self.last_token_seen) > self.config.token_timeout)
            {
                self.start_reformation(ctx);
            }
        }
    }
}

/// Simulation harness for token-ring groups.
pub struct TokenSim {
    world: SimWorld<TokenEvent>,
    /// Payload arena: interned at injection, handles everywhere below.
    arena: SharedArena,
    n: usize,
    /// Abcast operations accepted for injection (backpressure ledger).
    offered: u64,
    /// Optional bound on the injection-time backlog (`None` = unbounded).
    queue_capacity: Option<usize>,
    /// Highest backlog observed at an accepted injection.
    queue_high_water: usize,
}

impl TokenSim {
    /// Creates a ring of `n` members on a loss-free LAN, mirroring
    /// `gcs_core::GroupSim::new`.
    pub fn new(n: usize, config: TokenConfig, seed: u64) -> Self {
        Self::with_sim(n, 0, config, SimConfig::lan(seed))
    }

    /// Creates `n` ring members plus `joiners` processes that start outside
    /// the ring (activate them with [`join_at`](Self::join_at)).
    pub fn with_joiners(n: usize, joiners: usize, config: TokenConfig, seed: u64) -> Self {
        Self::with_sim(n, joiners, config, SimConfig::lan(seed))
    }

    /// Full control over the simulation configuration (link model, trace
    /// sink, seed).
    pub fn with_sim(n: usize, joiners: usize, config: TokenConfig, sim: SimConfig) -> Self {
        let ring: Vec<ProcessId> = (0..n as u32).map(ProcessId::new).collect();
        let mut world = SimWorld::new(sim);
        for _ in 0..n {
            let r = ring.clone();
            world.add_node(|id| {
                Process::builder(id)
                    .with(TokenStack::new(id, Some(r), config))
                    .build()
            });
        }
        for _ in 0..joiners {
            world.add_node(|id| {
                Process::builder(id)
                    .with(TokenStack::new(id, None, config))
                    .build()
            });
        }
        TokenSim {
            world,
            arena: SharedArena::new(),
            n: n + joiners,
            offered: 0,
            queue_capacity: None,
            queue_high_water: 0,
        }
    }

    /// Bounds the injection-time backlog for `try_abcast`-style facade
    /// calls; `None` removes the bound.
    pub fn set_queue_capacity(&mut self, cap: Option<usize>) {
        self.queue_capacity = cap;
    }

    /// The configured backlog bound, if any.
    pub fn queue_capacity(&self) -> Option<usize> {
        self.queue_capacity
    }

    /// The abcast backlog as seen from `p`: operations accepted minus trace
    /// outputs observed at `p` (approximate: occasional ring-management
    /// outputs count as drained work). Meaningful for interleaved drivers.
    pub fn queue_depth(&self, p: ProcessId) -> usize {
        self.offered
            .saturating_sub(self.world.trace().deliveries_of(p)) as usize
    }

    /// The highest [`queue_depth`](Self::queue_depth) observed at the
    /// moment an injection was accepted.
    pub fn queue_high_water(&self) -> usize {
        self.queue_high_water
    }

    /// Number of processes (ring members + joiners).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the group has no processes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Schedules an atomic broadcast (the payload is interned in the sim's
    /// arena; the ring moves handles).
    pub fn abcast_at(&mut self, t: Time, p: ProcessId, payload: impl Into<Bytes>) {
        let payload = self.arena.intern(payload.into());
        self.abcast_ref_at(t, p, payload);
    }

    /// Schedules an atomic broadcast of an already-interned payload handle.
    pub fn abcast_ref_at(&mut self, t: Time, p: ProcessId, payload: PayloadRef) {
        self.offered += 1;
        let backlog = self
            .offered
            .saturating_sub(self.world.trace().deliveries_of(p)) as usize;
        if backlog > self.queue_high_water {
            self.queue_high_water = backlog;
        }
        self.world
            .inject_at(t, p, "token", TokenEvent::Abcast(payload));
    }

    /// The payload arena backing this sim's message plane.
    pub fn arena(&self) -> &SharedArena {
        &self.arena
    }

    /// Resolves a delivered payload handle to its bytes.
    pub fn resolve(&self, payload: PayloadRef) -> Bytes {
        self.arena.get(payload)
    }

    /// Schedules an RMP-style fault-free join.
    pub fn join_at(&mut self, t: Time, p: ProcessId) {
        self.world.inject_at(t, p, "token", TokenEvent::Join);
    }

    /// Schedules member `by` to request the removal of `target`: the leave
    /// rides the total order like a join, so every member shrinks the ring
    /// at the same point of the stream. The target stays out.
    pub fn remove_at(&mut self, t: Time, by: ProcessId, target: ProcessId) {
        self.world
            .inject_at(t, by, "token", TokenEvent::Remove(target));
    }

    /// Crashes `p` at `t`.
    pub fn crash_at(&mut self, t: Time, p: ProcessId) {
        self.world.crash_at(t, p);
    }

    /// Runs until `t`.
    pub fn run_until(&mut self, t: Time) {
        self.world.run_until(t);
    }

    /// Runs until the event queue drains or `limit`; returns `true` only if
    /// the system quiesced. A live ring re-arms its hold timer forever, so
    /// this returns `false` unless every process has crashed.
    pub fn run_to_quiescence(&mut self, limit: Time) -> bool {
        self.world.run_to_quiescence(limit)
    }

    /// Direct access to the underlying simulation world.
    pub fn world(&self) -> &SimWorld<TokenEvent> {
        &self.world
    }

    /// Underlying world.
    pub fn world_mut(&mut self) -> &mut SimWorld<TokenEvent> {
        &mut self.world
    }

    /// Liveness flags per process.
    pub fn alive_flags(&self) -> Vec<bool> {
        self.world.alive_flags()
    }

    /// The delivery trace.
    pub fn trace(&self) -> &Trace<TokenEvent> {
        self.world.trace()
    }

    /// Simulation metrics.
    pub fn metrics(&self) -> &Metrics {
        self.world.metrics()
    }

    /// Per-process delivered payload sequences.
    pub fn delivered_payloads(&self) -> Vec<Vec<Vec<u8>>> {
        self.world.trace().per_proc(self.n, |e| match e {
            TokenEvent::Deliver { payload, .. } => Some(self.arena.get(*payload).to_vec()),
            _ => None,
        })
    }

    /// Per-process installed rings.
    pub fn rings(&self) -> Vec<Vec<(u64, Vec<ProcessId>)>> {
        self.world.trace().per_proc(self.n, |e| match e {
            TokenEvent::RingInstalled { vid, ring } => Some((*vid, ring.clone())),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_sim::{check_no_duplicates, check_prefix_consistency};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn token_orders_messages_from_all_senders() {
        let mut sim = TokenSim::new(3, TokenConfig::default(), 1);
        for i in 0..12u32 {
            sim.abcast_at(
                Time::from_millis(1 + (i / 3) as u64),
                p(i % 3),
                vec![i as u8],
            );
        }
        sim.run_until(Time::from_secs(1));
        let seqs = sim.delivered_payloads();
        for s in &seqs {
            assert_eq!(s.len(), 12, "everything delivered: {seqs:?}");
        }
        check_prefix_consistency(&seqs).expect("token total order");
        check_no_duplicates(&seqs).expect("no duplicates");
    }

    #[test]
    fn token_loss_triggers_reformation_and_recovery() {
        let mut sim = TokenSim::new(3, TokenConfig::default(), 2);
        sim.abcast_at(Time::from_millis(1), p(1), b"pre".to_vec());
        sim.crash_at(Time::from_millis(5), p(0));
        sim.abcast_at(Time::from_millis(200), p(2), b"post".to_vec());
        sim.run_until(Time::from_secs(2));
        let rings = sim.rings();
        for i in 1..3 {
            let (_, ring) = rings[i].last().expect("reformation happened");
            assert_eq!(ring, &vec![p(1), p(2)], "p{i} sees the reformed ring");
        }
        let seqs = sim.delivered_payloads();
        assert!(
            seqs[1].contains(&b"post".to_vec()),
            "ordering resumed: {seqs:?}"
        );
        assert_eq!(seqs[1], seqs[2]);
    }

    #[test]
    fn rmp_join_rides_the_total_order() {
        let mut sim = TokenSim::with_joiners(3, 1, TokenConfig::default(), 3);
        sim.join_at(Time::from_millis(5), p(3));
        sim.abcast_at(Time::from_millis(100), p(1), b"hello".to_vec());
        sim.run_until(Time::from_secs(1));
        let rings = sim.rings();
        for i in 0..4 {
            let (_, ring) = rings[i].last().expect("ring installed");
            assert!(ring.contains(&p(3)), "p{i} sees the joiner");
        }
        // The joiner receives post-join traffic.
        let seqs = sim.delivered_payloads();
        assert!(seqs[3].contains(&b"hello".to_vec()));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sim = TokenSim::new(3, TokenConfig::default(), seed);
            for i in 0..6u32 {
                sim.abcast_at(Time::from_millis(1), p(i % 3), vec![i as u8]);
            }
            sim.run_until(Time::from_millis(500));
            (sim.delivered_payloads(), sim.metrics().total_sent())
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn scripted_removal_shrinks_the_ring_without_rejoin() {
        let mut sim = TokenSim::new(4, TokenConfig::default(), 9);
        sim.abcast_at(Time::from_millis(1), p(3), b"pre".to_vec());
        sim.remove_at(Time::from_millis(50), p(1), p(3));
        sim.abcast_at(Time::from_millis(300), p(1), b"post".to_vec());
        sim.run_until(Time::from_secs(2));
        let rings = sim.rings();
        for i in 0..3 {
            let (_, ring) = rings[i].last().expect("ring change").clone();
            assert_eq!(ring, vec![p(0), p(1), p(2)], "p{i} sees p3 leave");
        }
        // The target delivered its own leave (its last installed ring lacks
        // it) and stayed out.
        let (_, last3) = rings[3].last().expect("target saw the leave").clone();
        assert!(!last3.contains(&p(3)));
        let seqs = sim.delivered_payloads();
        for i in 0..3 {
            assert!(seqs[i].contains(&b"pre".to_vec()), "p{i}");
            assert!(seqs[i].contains(&b"post".to_vec()), "p{i}");
        }
        assert_eq!(seqs[0], seqs[1]);
        assert_eq!(seqs[1], seqs[2]);
        // The removed member got the prefix only.
        assert!(seqs[3].contains(&b"pre".to_vec()));
        assert!(!seqs[3].contains(&b"post".to_vec()));
    }

    #[test]
    fn partitioned_minority_does_not_fork_the_sequence_space() {
        let mut sim = TokenSim::new(5, TokenConfig::default(), 11);
        sim.abcast_at(Time::from_millis(1), p(0), b"a".to_vec());
        sim.world_mut().partition_at(
            Time::from_millis(20),
            vec![vec![p(0), p(1), p(2)], vec![p(3), p(4)]],
        );
        // Both sides try to send during the split; only the majority's
        // reformed ring may stamp.
        sim.abcast_at(Time::from_millis(200), p(1), b"maj".to_vec());
        sim.abcast_at(Time::from_millis(200), p(3), b"min".to_vec());
        sim.world_mut().heal_at(Time::from_millis(600));
        sim.run_until(Time::from_secs(4));
        let seqs = sim.delivered_payloads();
        // Total order holds across every pair of processes.
        gcs_sim::check_total_order(&seqs).expect("no split-brain stamping");
        // The majority stream stayed live through the split.
        for i in 0..3 {
            assert!(seqs[i].contains(&b"maj".to_vec()), "p{i}: {seqs:?}");
        }
        // After the heal the excluded members learn the ring and re-join.
        let rings = sim.rings();
        for i in 3..5 {
            let (_, ring) = rings[i].last().expect("rejoined").clone();
            assert!(ring.contains(&p(i as u32)), "p{i} back in the ring");
        }
    }

    #[test]
    fn hold_byte_budget_spreads_fat_payloads_over_rotations() {
        let run = |cfg: TokenConfig| {
            let mut sim = TokenSim::new(3, cfg, 7);
            for i in 0..6u8 {
                sim.abcast_at(Time::from_millis(1), p(0), vec![i; 100]);
            }
            sim.run_until(Time::from_secs(2));
            let seqs = sim.delivered_payloads();
            for s in &seqs {
                assert_eq!(s.len(), 6, "the byte budget must not lose messages");
            }
            check_prefix_consistency(&seqs).expect("total order under byte cap");
            // Distinct stamp times at the origin: one per token hold.
            sim.trace()
                .entries()
                .iter()
                .filter(|e| e.proc == p(0) && matches!(e.event, TokenEvent::Deliver { .. }))
                .map(|e| e.time)
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        };
        let unlimited = run(TokenConfig::default());
        let capped = run(TokenConfig {
            max_hold_bytes: 150,
            ..TokenConfig::default()
        });
        // 100-byte payloads against a 150-byte budget stamp two per hold, so
        // six messages need at least three rotations; unlimited drains in one.
        assert!(capped >= 3, "capped run used {capped} holds");
        assert!(
            capped > unlimited,
            "capped {capped} vs unlimited {unlimited}"
        );
    }

    #[test]
    fn wan_profile_floors_to_defaults_on_lan() {
        let lan = TokenConfig::for_topology(&Topology::lan(), 8);
        let d = TokenConfig::default();
        assert_eq!(lan.token_timeout, d.token_timeout);
        assert_eq!(lan.reform_timeout, d.reform_timeout);
        assert_eq!(lan.retrans_interval, d.retrans_interval);
        // On the 3-region WAN the token-loss timeout clears full rotations.
        let wan = TokenConfig::for_topology(&Topology::wan_3region(), 9);
        assert!(wan.token_timeout >= TimeDelta::from_secs(2));
        assert!(wan.reform_timeout > d.reform_timeout);
    }
}
