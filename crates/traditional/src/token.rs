//! The token-ring stack (Figs 3–4, RMP/Totem family).
//!
//! A token rotates around a logical ring of the members; the holder stamps
//! its pending broadcasts with consecutive sequence numbers taken from the
//! token (total order) and passes the token on. Structural properties
//! reproduced from the paper's description:
//!
//! * **ordering rides the token** — no sequencer process, but ordering still
//!   depends on membership: if the ring breaks, ordering stops;
//! * **token-loss detection → ring reformation** (the Totem membership
//!   protocol): a member that has not seen the token for a timeout starts a
//!   reformation; non-responding members are excluded;
//! * **recovery layer**: reformation exchanges undelivered sequenced
//!   messages so survivors agree on the delivered set ((extended) view
//!   synchrony, Fig 4's "Recovery" box);
//! * **fault-free membership over the total order** (RMP, Fig 3): joins are
//!   ordinary sequenced messages, handled without the fault-tolerant
//!   reformation path.

use std::collections::{BTreeMap, HashSet, VecDeque};

use bytes::Bytes;
use gcs_kernel::{
    Component, Context, Event, PayloadRef, Process, ProcessId, SharedArena, Time, TimeDelta,
    TimerId,
};
use gcs_sim::{Metrics, SimConfig, SimWorld, Trace};

/// Configuration of a token-ring process.
#[derive(Clone, Copy, Debug)]
pub struct TokenConfig {
    /// How long a holder keeps the token before passing it on.
    pub hold: TimeDelta,
    /// Token-loss timeout: a member that has not seen the token for this
    /// long starts a reformation.
    pub token_timeout: TimeDelta,
    /// How long a reformer waits for reports before excluding silents.
    pub reform_timeout: TimeDelta,
}

impl Default for TokenConfig {
    fn default() -> Self {
        TokenConfig {
            hold: TimeDelta::from_micros(300),
            token_timeout: TimeDelta::from_millis(50),
            reform_timeout: TimeDelta::from_millis(20),
        }
    }
}

/// Wire + local events of the token stack.
#[derive(Clone, Debug)]
pub enum TokenEvent {
    // -- wire --
    /// The rotating token.
    Token {
        /// Ring generation.
        vid: u64,
        /// Next unassigned global sequence number.
        next_seq: u64,
    },
    /// A sequenced broadcast (possibly a membership message, RMP-style).
    Data {
        /// Global sequence number stamped by the token holder.
        seq: u64,
        /// Originating process.
        origin: ProcessId,
        /// Payload handle; `join` data carries the joiner instead.
        payload: PayloadRef,
        /// RMP fault-free membership: this message adds `joiner` to the ring.
        joiner: Option<ProcessId>,
    },
    /// Reformation probe by the reformer.
    Reform {
        /// Proposed ring generation.
        vid: u64,
    },
    /// A member's recovery report.
    ReformReport {
        /// Generation this report answers.
        vid: u64,
        /// Sequenced messages the reporter holds (delivered or not).
        known: Vec<(u64, ProcessId, PayloadRef)>,
    },
    /// The reformer commits the new ring. Boxed: this rare, fat variant
    /// (two vectors) must not widen the hot event enum past the cache-line
    /// budget.
    NewRing(Box<NewRingData>),
    /// An outsider asks a member to sponsor its (fault-free) join.
    JoinRequest,
    /// Ring bootstrap information for a joiner.
    RingInfo {
        /// Generation.
        vid: u64,
        /// The ring including the joiner.
        ring: Vec<ProcessId>,
        /// First sequence number the joiner will see.
        next_deliver: u64,
    },

    // -- ops --
    /// Broadcast `payload` in total order.
    Abcast(PayloadRef),
    /// Ask to join the ring via process 0.
    Join,

    // -- outputs --
    /// An ordered delivery.
    Deliver {
        /// Global sequence number.
        seq: u64,
        /// Originating process.
        origin: ProcessId,
        /// Payload handle (resolve via [`TokenSim::resolve`]).
        payload: PayloadRef,
    },
    /// A ring (view) installation.
    RingInstalled {
        /// Generation.
        vid: u64,
        /// Members in token order.
        ring: Vec<ProcessId>,
    },
}

// Events are moved through every scheduler slot and dispatch; boxing the
// reformation-time fat variants keeps the enum inside one cache line.
const _: () = assert!(
    std::mem::size_of::<TokenEvent>() <= 64,
    "TokenEvent outgrew one cache line; box the offending variant"
);

/// The payload of a [`TokenEvent::NewRing`] commit.
#[derive(Clone, Debug)]
pub struct NewRingData {
    /// New generation.
    pub vid: u64,
    /// The surviving ring, in token order.
    pub ring: Vec<ProcessId>,
    /// Recovery set: all known sequenced messages.
    pub recovery: Vec<(u64, ProcessId, PayloadRef)>,
    /// Sequence numbering continues from here.
    pub next_seq: u64,
}

impl Event for TokenEvent {
    fn kind(&self) -> &'static str {
        match self {
            TokenEvent::Token { .. } => "token/token",
            TokenEvent::Data { .. } => "token/data",
            TokenEvent::Reform { .. } => "token/reform",
            TokenEvent::ReformReport { .. } => "token/reform-report",
            TokenEvent::NewRing { .. } => "token/new-ring",
            TokenEvent::JoinRequest => "token/join-request",
            TokenEvent::RingInfo { .. } => "token/ring-info",
            TokenEvent::Abcast(_) => "op/abcast",
            TokenEvent::Join => "op/join",
            TokenEvent::Deliver { .. } => "out/deliver",
            TokenEvent::RingInstalled { .. } => "out/ring",
        }
    }

    fn wire_size(&self) -> usize {
        match self {
            TokenEvent::Token { .. } => 24,
            TokenEvent::Data { payload, .. } => 32 + payload.len(),
            TokenEvent::Reform { .. } => 16,
            TokenEvent::ReformReport { known, .. } => {
                24 + known.iter().map(|(_, _, p)| 16 + p.len()).sum::<usize>()
            }
            TokenEvent::NewRing(nr) => {
                24 + nr
                    .recovery
                    .iter()
                    .map(|(_, _, p)| 16 + p.len())
                    .sum::<usize>()
            }
            TokenEvent::JoinRequest => 16,
            TokenEvent::RingInfo { ring, .. } => 24 + 4 * ring.len(),
            _ => 64,
        }
    }
}

/// One process of the token-ring stack.
pub struct TokenStack {
    me: ProcessId,
    config: TokenConfig,
    vid: u64,
    ring: Vec<ProcessId>,
    member: bool,
    /// Outbound queue, stamped when we hold the token.
    outbox: VecDeque<(PayloadRef, Option<ProcessId>)>,
    /// Sequenced messages by seq (delivered or buffered).
    known: BTreeMap<u64, (ProcessId, PayloadRef, Option<ProcessId>)>,
    next_deliver: u64,
    last_token_seen: Time,
    /// Reformer state.
    reforming: Option<(u64, Time)>,
    reports: BTreeMap<ProcessId, Vec<(u64, ProcessId, PayloadRef)>>,
    /// Pending sponsor duties: joiners to announce.
    sponsor_queue: VecDeque<ProcessId>,
    holding_token: bool,
}

impl TokenStack {
    /// Creates a stack; founding members pass the ring, joiners `None`.
    pub fn new(me: ProcessId, ring: Option<Vec<ProcessId>>, config: TokenConfig) -> Self {
        let (ring, member) = match ring {
            Some(mut r) => {
                r.sort_unstable();
                let m = r.contains(&me);
                (r, m)
            }
            None => (Vec::new(), false),
        };
        TokenStack {
            me,
            config,
            vid: 0,
            ring,
            member,
            outbox: VecDeque::new(),
            known: BTreeMap::new(),
            next_deliver: 0,
            last_token_seen: Time::ZERO,
            reforming: None,
            reports: BTreeMap::new(),
            sponsor_queue: VecDeque::new(),
            holding_token: false,
        }
    }

    fn successor(&self) -> Option<ProcessId> {
        let idx = self.ring.iter().position(|&p| p == self.me)?;
        Some(self.ring[(idx + 1) % self.ring.len()])
    }

    fn broadcast(&self, ev: TokenEvent, ctx: &mut Context<'_, TokenEvent>) {
        // One broadcast envelope instead of a per-peer clone loop.
        ctx.send_to_all(
            self.ring.iter().copied().filter(|&p| p != self.me),
            "token",
            ev,
        );
    }

    /// Token in hand: stamp and broadcast everything queued, pass it on.
    fn work_token(&mut self, vid: u64, mut next_seq: u64, ctx: &mut Context<'_, TokenEvent>) {
        if vid != self.vid || !self.member {
            return; // stale token from a previous ring generation
        }
        self.last_token_seen = ctx.now();
        self.holding_token = true;
        while let Some((payload, joiner)) = self.outbox.pop_front() {
            let seq = next_seq;
            next_seq += 1;
            let data = TokenEvent::Data {
                seq,
                origin: self.me,
                payload,
                joiner,
            };
            self.broadcast(data, ctx);
            self.accept_data(seq, self.me, payload, joiner, ctx);
        }
        while let Some(j) = self.sponsor_queue.pop_front() {
            let seq = next_seq;
            next_seq += 1;
            let data = TokenEvent::Data {
                seq,
                origin: self.me,
                payload: PayloadRef::EMPTY,
                joiner: Some(j),
            };
            self.broadcast(data, ctx);
            self.accept_data(seq, self.me, PayloadRef::EMPTY, Some(j), ctx);
        }
        self.holding_token = false;
        if let Some(next) = self.successor() {
            if next == self.me {
                // Singleton ring: hold the token by re-arming the timer.
                return;
            }
            ctx.send(next, "token", TokenEvent::Token { vid, next_seq });
        }
    }

    fn accept_data(
        &mut self,
        seq: u64,
        origin: ProcessId,
        payload: PayloadRef,
        joiner: Option<ProcessId>,
        ctx: &mut Context<'_, TokenEvent>,
    ) {
        self.known.entry(seq).or_insert((origin, payload, joiner));
        self.try_deliver(ctx);
    }

    fn try_deliver(&mut self, ctx: &mut Context<'_, TokenEvent>) {
        if !self.member {
            return;
        }
        while let Some(&(origin, payload, joiner)) = self.known.get(&self.next_deliver) {
            let seq = self.next_deliver;
            self.next_deliver += 1;
            if let Some(j) = joiner {
                // RMP fault-free membership: the join is a totally ordered
                // message; everyone extends the ring at the same point.
                if !self.ring.contains(&j) {
                    self.ring.push(j);
                    self.ring.sort_unstable();
                    self.vid += 1;
                    ctx.output(TokenEvent::RingInstalled {
                        vid: self.vid,
                        ring: self.ring.clone(),
                    });
                    if origin == self.me {
                        ctx.send(
                            j,
                            "token",
                            TokenEvent::RingInfo {
                                vid: self.vid,
                                ring: self.ring.clone(),
                                next_deliver: self.next_deliver,
                            },
                        );
                    }
                }
            } else {
                ctx.output(TokenEvent::Deliver {
                    seq,
                    origin,
                    payload,
                });
            }
        }
    }

    fn start_reformation(&mut self, ctx: &mut Context<'_, TokenEvent>) {
        let vid = self.vid + 1;
        self.reforming = Some((vid, ctx.now() + self.config.reform_timeout));
        self.reports.clear();
        self.reports.insert(self.me, self.known_list());
        self.broadcast(TokenEvent::Reform { vid }, ctx);
    }

    fn known_list(&self) -> Vec<(u64, ProcessId, PayloadRef)> {
        self.known
            .iter()
            .filter(|(_, (_, _, j))| j.is_none())
            .map(|(&s, &(o, p, _))| (s, o, p))
            .collect()
    }

    fn finish_reformation(&mut self, ctx: &mut Context<'_, TokenEvent>) {
        let Some((vid, _)) = self.reforming.take() else {
            return;
        };
        let ring: Vec<ProcessId> = {
            let mut r: Vec<ProcessId> = self.reports.keys().copied().collect();
            r.sort_unstable();
            r
        };
        // Recovery: union of all known sequenced messages.
        let mut recovery: BTreeMap<u64, (ProcessId, PayloadRef)> = BTreeMap::new();
        for report in self.reports.values() {
            for &(s, o, p) in report {
                recovery.entry(s).or_insert((o, p));
            }
        }
        let next_seq = recovery.keys().next_back().map_or(0, |s| s + 1);
        let recovery: Vec<(u64, ProcessId, PayloadRef)> =
            recovery.into_iter().map(|(s, (o, p))| (s, o, p)).collect();
        let ev = TokenEvent::NewRing(Box::new(NewRingData {
            vid,
            ring: ring.clone(),
            recovery: recovery.clone(),
            next_seq,
        }));
        ctx.send_to_all(ring.iter().copied().filter(|&p| p != self.me), "token", ev);
        self.install_ring(vid, ring, recovery, next_seq, ctx);
    }

    fn install_ring(
        &mut self,
        vid: u64,
        ring: Vec<ProcessId>,
        recovery: Vec<(u64, ProcessId, PayloadRef)>,
        next_seq: u64,
        ctx: &mut Context<'_, TokenEvent>,
    ) {
        for (s, o, p) in recovery {
            self.known.entry(s).or_insert((o, p, None));
        }
        // Gaps left by crashed holders are skipped: delivery resumes at the
        // first recovered sequence at or above the old cursor.
        let resume = self.known.keys().copied().find(|&s| s >= self.next_deliver);
        if let Some(r) = resume {
            self.next_deliver = self.next_deliver.max(r.min(next_seq));
            // Skip unfillable gaps (sequence numbers nobody reported).
            while !self.known.contains_key(&self.next_deliver) && self.next_deliver < next_seq {
                self.next_deliver += 1;
            }
        } else {
            self.next_deliver = next_seq;
        }
        self.vid = vid;
        self.ring = ring.clone();
        self.member = ring.contains(&self.me);
        self.reforming = None;
        self.last_token_seen = ctx.now();
        self.try_deliver(ctx);
        ctx.output(TokenEvent::RingInstalled {
            vid,
            ring: ring.clone(),
        });
        // The reformer (lowest id) re-injects the token.
        if self.member && ring.first() == Some(&self.me) {
            self.work_token(vid, next_seq, ctx);
        }
    }
}

impl Component<TokenEvent> for TokenStack {
    fn name(&self) -> &'static str {
        "token"
    }

    fn on_start(&mut self, ctx: &mut Context<'_, TokenEvent>) {
        self.last_token_seen = ctx.now();
        ctx.set_timer(self.config.hold);
        if self.member && self.ring.first() == Some(&self.me) {
            // The lowest-id member creates the token.
            self.work_token(0, 0, ctx);
        }
        if self.member {
            ctx.output(TokenEvent::RingInstalled {
                vid: 0,
                ring: self.ring.clone(),
            });
        }
    }

    fn on_event(&mut self, event: TokenEvent, ctx: &mut Context<'_, TokenEvent>) {
        match event {
            TokenEvent::Abcast(payload) => self.outbox.push_back((payload, None)),
            TokenEvent::Join if !self.member => {
                ctx.send(ProcessId::new(0), "token", TokenEvent::JoinRequest);
            }
            _ => {}
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        event: TokenEvent,
        ctx: &mut Context<'_, TokenEvent>,
    ) {
        match event {
            TokenEvent::Token { vid, next_seq } => self.work_token(vid, next_seq, ctx),
            TokenEvent::Data {
                seq,
                origin,
                payload,
                joiner,
            } => {
                self.last_token_seen = ctx.now(); // data implies a live ring
                self.accept_data(seq, origin, payload, joiner, ctx)
            }
            TokenEvent::Reform { vid } if vid > self.vid && self.member => {
                ctx.send(
                    from,
                    "token",
                    TokenEvent::ReformReport {
                        vid,
                        known: self.known_list(),
                    },
                );
                self.last_token_seen = ctx.now(); // reformation under way
            }
            TokenEvent::ReformReport { vid, known } => {
                if let Some((rvid, _)) = self.reforming {
                    if vid == rvid {
                        self.reports.insert(from, known);
                        let everyone: HashSet<ProcessId> = self.ring.iter().copied().collect();
                        if self.reports.len() == everyone.len() {
                            self.finish_reformation(ctx);
                        }
                    }
                }
            }
            TokenEvent::NewRing(nr) if nr.vid > self.vid => {
                self.install_ring(nr.vid, nr.ring, nr.recovery, nr.next_seq, ctx);
            }
            TokenEvent::JoinRequest if self.member => {
                self.sponsor_queue.push_back(from);
            }
            TokenEvent::RingInfo {
                vid,
                ring,
                next_deliver,
            } if !self.member => {
                self.vid = vid;
                self.ring = ring.clone();
                self.member = true;
                self.next_deliver = next_deliver;
                ctx.output(TokenEvent::RingInstalled { vid, ring });
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _timer: TimerId, ctx: &mut Context<'_, TokenEvent>) {
        ctx.set_timer(self.config.hold);
        if !self.member {
            return;
        }
        let now = ctx.now();
        if let Some((_, deadline)) = self.reforming {
            if now >= deadline {
                self.finish_reformation(ctx);
            }
            return;
        }
        // Token-loss detection: the Totem membership trigger.
        if now.since(self.last_token_seen) > self.config.token_timeout {
            let unsuspected_lowest = self.ring.first().copied();
            // The lowest member starts reformation; if the lowest crashed,
            // everyone times out and the lowest *survivor*'s probe wins (the
            // vid guard makes the protocols converge).
            if unsuspected_lowest == Some(self.me)
                || self
                    .ring
                    .iter()
                    .take_while(|&&p| p != self.me)
                    .all(|_| now.since(self.last_token_seen) > self.config.token_timeout)
            {
                self.start_reformation(ctx);
            }
        }
    }
}

/// Simulation harness for token-ring groups.
pub struct TokenSim {
    world: SimWorld<TokenEvent>,
    /// Payload arena: interned at injection, handles everywhere below.
    arena: SharedArena,
    n: usize,
}

impl TokenSim {
    /// Creates a ring of `n` members on a loss-free LAN, mirroring
    /// `gcs_core::GroupSim::new`.
    pub fn new(n: usize, config: TokenConfig, seed: u64) -> Self {
        Self::with_sim(n, 0, config, SimConfig::lan(seed))
    }

    /// Creates `n` ring members plus `joiners` processes that start outside
    /// the ring (activate them with [`join_at`](Self::join_at)).
    pub fn with_joiners(n: usize, joiners: usize, config: TokenConfig, seed: u64) -> Self {
        Self::with_sim(n, joiners, config, SimConfig::lan(seed))
    }

    /// Full control over the simulation configuration (link model, trace
    /// sink, seed).
    pub fn with_sim(n: usize, joiners: usize, config: TokenConfig, sim: SimConfig) -> Self {
        let ring: Vec<ProcessId> = (0..n as u32).map(ProcessId::new).collect();
        let mut world = SimWorld::new(sim);
        for _ in 0..n {
            let r = ring.clone();
            world.add_node(|id| {
                Process::builder(id)
                    .with(TokenStack::new(id, Some(r), config))
                    .build()
            });
        }
        for _ in 0..joiners {
            world.add_node(|id| {
                Process::builder(id)
                    .with(TokenStack::new(id, None, config))
                    .build()
            });
        }
        TokenSim {
            world,
            arena: SharedArena::new(),
            n: n + joiners,
        }
    }

    /// Number of processes (ring members + joiners).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the group has no processes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Schedules an atomic broadcast (the payload is interned in the sim's
    /// arena; the ring moves handles).
    pub fn abcast_at(&mut self, t: Time, p: ProcessId, payload: impl Into<Bytes>) {
        let payload = self.arena.intern(payload.into());
        self.abcast_ref_at(t, p, payload);
    }

    /// Schedules an atomic broadcast of an already-interned payload handle.
    pub fn abcast_ref_at(&mut self, t: Time, p: ProcessId, payload: PayloadRef) {
        self.world
            .inject_at(t, p, "token", TokenEvent::Abcast(payload));
    }

    /// The payload arena backing this sim's message plane.
    pub fn arena(&self) -> &SharedArena {
        &self.arena
    }

    /// Resolves a delivered payload handle to its bytes.
    pub fn resolve(&self, payload: PayloadRef) -> Bytes {
        self.arena.get(payload)
    }

    /// Schedules an RMP-style fault-free join.
    pub fn join_at(&mut self, t: Time, p: ProcessId) {
        self.world.inject_at(t, p, "token", TokenEvent::Join);
    }

    /// Crashes `p` at `t`.
    pub fn crash_at(&mut self, t: Time, p: ProcessId) {
        self.world.crash_at(t, p);
    }

    /// Runs until `t`.
    pub fn run_until(&mut self, t: Time) {
        self.world.run_until(t);
    }

    /// Runs until the event queue drains or `limit`; returns `true` only if
    /// the system quiesced. A live ring re-arms its hold timer forever, so
    /// this returns `false` unless every process has crashed.
    pub fn run_to_quiescence(&mut self, limit: Time) -> bool {
        self.world.run_to_quiescence(limit)
    }

    /// Direct access to the underlying simulation world.
    pub fn world(&self) -> &SimWorld<TokenEvent> {
        &self.world
    }

    /// Underlying world.
    pub fn world_mut(&mut self) -> &mut SimWorld<TokenEvent> {
        &mut self.world
    }

    /// Liveness flags per process.
    pub fn alive_flags(&self) -> Vec<bool> {
        self.world.alive_flags()
    }

    /// The delivery trace.
    pub fn trace(&self) -> &Trace<TokenEvent> {
        self.world.trace()
    }

    /// Simulation metrics.
    pub fn metrics(&self) -> &Metrics {
        self.world.metrics()
    }

    /// Per-process delivered payload sequences.
    pub fn delivered_payloads(&self) -> Vec<Vec<Vec<u8>>> {
        self.world.trace().per_proc(self.n, |e| match e {
            TokenEvent::Deliver { payload, .. } => Some(self.arena.get(*payload).to_vec()),
            _ => None,
        })
    }

    /// Per-process installed rings.
    pub fn rings(&self) -> Vec<Vec<(u64, Vec<ProcessId>)>> {
        self.world.trace().per_proc(self.n, |e| match e {
            TokenEvent::RingInstalled { vid, ring } => Some((*vid, ring.clone())),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_sim::{check_no_duplicates, check_prefix_consistency};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn token_orders_messages_from_all_senders() {
        let mut sim = TokenSim::new(3, TokenConfig::default(), 1);
        for i in 0..12u32 {
            sim.abcast_at(
                Time::from_millis(1 + (i / 3) as u64),
                p(i % 3),
                vec![i as u8],
            );
        }
        sim.run_until(Time::from_secs(1));
        let seqs = sim.delivered_payloads();
        for s in &seqs {
            assert_eq!(s.len(), 12, "everything delivered: {seqs:?}");
        }
        check_prefix_consistency(&seqs).expect("token total order");
        check_no_duplicates(&seqs).expect("no duplicates");
    }

    #[test]
    fn token_loss_triggers_reformation_and_recovery() {
        let mut sim = TokenSim::new(3, TokenConfig::default(), 2);
        sim.abcast_at(Time::from_millis(1), p(1), b"pre".to_vec());
        sim.crash_at(Time::from_millis(5), p(0));
        sim.abcast_at(Time::from_millis(200), p(2), b"post".to_vec());
        sim.run_until(Time::from_secs(2));
        let rings = sim.rings();
        for i in 1..3 {
            let (_, ring) = rings[i].last().expect("reformation happened");
            assert_eq!(ring, &vec![p(1), p(2)], "p{i} sees the reformed ring");
        }
        let seqs = sim.delivered_payloads();
        assert!(
            seqs[1].contains(&b"post".to_vec()),
            "ordering resumed: {seqs:?}"
        );
        assert_eq!(seqs[1], seqs[2]);
    }

    #[test]
    fn rmp_join_rides_the_total_order() {
        let mut sim = TokenSim::with_joiners(3, 1, TokenConfig::default(), 3);
        sim.join_at(Time::from_millis(5), p(3));
        sim.abcast_at(Time::from_millis(100), p(1), b"hello".to_vec());
        sim.run_until(Time::from_secs(1));
        let rings = sim.rings();
        for i in 0..4 {
            let (_, ring) = rings[i].last().expect("ring installed");
            assert!(ring.contains(&p(3)), "p{i} sees the joiner");
        }
        // The joiner receives post-join traffic.
        let seqs = sim.delivered_payloads();
        assert!(seqs[3].contains(&b"hello".to_vec()));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sim = TokenSim::new(3, TokenConfig::default(), seed);
            for i in 0..6u32 {
                sim.abcast_at(Time::from_millis(1), p(i % 3), vec![i as u8]);
            }
            sim.run_until(Time::from_millis(500));
            (sim.delivered_payloads(), sim.metrics().total_sent())
        };
        assert_eq!(run(4), run(4));
    }
}
