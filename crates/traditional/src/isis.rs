//! The Isis-style stack (Figs 1–2): Membership+FD → View Synchrony (flush)
//! → fixed-sequencer Atomic Broadcast.
//!
//! Structural properties reproduced faithfully (they are what the paper's
//! Section 4 measures the new architecture against):
//!
//! * **Perfect-failure-detector emulation**: any suspicion leads to
//!   exclusion; a wrongly excluded process is *killed* and must re-join with
//!   a full state transfer (§4.3).
//! * **Sending view delivery**: during a view change, senders are blocked
//!   from the flush start until the new view is installed (§4.4); the stack
//!   emits [`IsisEvent::Blocked`] markers so experiments can measure the
//!   window.
//! * **Two ordering protocols**: the sequencer orders application messages
//!   in the steady state, and the flush protocol re-solves ordering for
//!   in-flight messages at every view change (§4.1).
//!
//! Like the original Isis, the stack assumes reliable FIFO links (the
//! paper-era systems ran on such a substrate); traditional-baseline
//! experiments therefore run on a loss-free simulated LAN.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use bytes::Bytes;
use gcs_kernel::{
    Component, Context, Event, PayloadRef, Process, ProcessId, SharedArena, Time, TimeDelta,
    TimerId,
};
use gcs_sim::{Metrics, SimConfig, SimWorld, Trace};

/// Message identity within the Isis stack.
pub type IsisMsgId = (ProcessId, u64);

/// Configuration of an Isis-style process.
#[derive(Clone, Copy, Debug)]
pub struct IsisConfig {
    /// Heartbeat period.
    pub heartbeat_interval: TimeDelta,
    /// Failure-detection timeout — in the traditional architecture this is
    /// also the *exclusion* timeout (suspicion ⇒ exclusion).
    pub fd_timeout: TimeDelta,
    /// Application state transferred on (re-)join, in bytes (§4.3).
    pub state_size: usize,
    /// Whether a killed (wrongly excluded) process automatically re-joins.
    pub auto_rejoin: bool,
}

impl Default for IsisConfig {
    fn default() -> Self {
        IsisConfig {
            heartbeat_interval: TimeDelta::from_millis(5),
            fd_timeout: TimeDelta::from_millis(100),
            state_size: 0,
            auto_rejoin: true,
        }
    }
}

/// Wire + local events of the Isis stack.
#[derive(Clone, Debug)]
pub enum IsisEvent {
    // -- wire --
    /// Failure-detection heartbeat.
    Heartbeat,
    /// Application data diffused to the group (awaiting sequencing).
    Data {
        /// Message identity.
        id: IsisMsgId,
        /// Payload handle (interned in the simulation arena — flush
        /// reports, re-orders and re-deliveries all share one allocation).
        payload: PayloadRef,
    },
    /// Sequencer's ordering decision: `id` is the `seq`-th message of the
    /// view.
    Order {
        /// View the ordering belongs to.
        vid: u64,
        /// Position in the view's delivery order.
        seq: u64,
        /// The ordered message.
        id: IsisMsgId,
    },
    /// Coordinator starts a view change (flush begins; senders block).
    ViewProposal {
        /// Proposed view number.
        vid: u64,
        /// Proposed membership.
        members: Vec<ProcessId>,
    },
    /// A member's unstable messages for the flush.
    FlushReport {
        /// The proposed view this report answers.
        vid: u64,
        /// Messages not yet delivered at the reporter (id, payload handle,
        /// and the sequencer position if one was assigned).
        unstable: Vec<(IsisMsgId, PayloadRef, Option<u64>)>,
    },
    /// Coordinator commits the new view with the agreed flush deliveries.
    /// Boxed: this rare, fat variant (two vectors) must not widen the hot
    /// event enum past the cache-line budget.
    NewView(Box<NewViewData>),
    /// A process (re-)requests membership.
    JoinRequest,
    /// State transfer to a (re-)joining process.
    StateTransfer {
        /// Size stands in for real state (§4.3's costly transfer).
        state: Bytes,
    },

    // -- application ops --
    /// Atomically broadcast `payload` (blocked while a flush is running —
    /// sending view delivery).
    Abcast(PayloadRef),
    /// Ask to join via the current coordinator.
    Join,

    // -- outputs --
    /// An ordered delivery.
    Deliver {
        /// Message identity.
        id: IsisMsgId,
        /// Payload handle (resolve via [`IsisSim::resolve`]).
        payload: PayloadRef,
        /// View in which the delivery happened.
        vid: u64,
    },
    /// A new view was installed.
    ViewInstalled {
        /// View number.
        vid: u64,
        /// Membership (head = sequencer).
        members: Vec<ProcessId>,
    },
    /// Send-blocking marker: `true` when the flush blocks senders, `false`
    /// when the new view unblocks them (measured by experiment E4).
    Blocked(bool),
    /// This process discovered it was excluded: Isis semantics — it is
    /// killed (and will re-join if configured).
    Killed,
    /// Re-join completed (state transfer received).
    Rejoined,
}

// Events are moved through every scheduler slot and dispatch; boxing the
// reformation-time fat variants keeps the enum inside one cache line.
const _: () = assert!(
    std::mem::size_of::<IsisEvent>() <= 64,
    "IsisEvent outgrew one cache line; box the offending variant"
);

/// The payload of an [`IsisEvent::NewView`] commit.
#[derive(Clone, Debug)]
pub struct NewViewData {
    /// The new view number.
    pub vid: u64,
    /// The new membership (head = sequencer).
    pub members: Vec<ProcessId>,
    /// Messages to deliver before installing the view, in agreed order.
    pub deliver_first: Vec<(IsisMsgId, PayloadRef)>,
}

impl Event for IsisEvent {
    fn kind(&self) -> &'static str {
        match self {
            IsisEvent::Heartbeat => "isis/heartbeat",
            IsisEvent::Data { .. } => "isis/data",
            IsisEvent::Order { .. } => "isis/order",
            IsisEvent::ViewProposal { .. } => "isis/view-proposal",
            IsisEvent::FlushReport { .. } => "isis/flush-report",
            IsisEvent::NewView { .. } => "isis/new-view",
            IsisEvent::JoinRequest => "isis/join-request",
            IsisEvent::StateTransfer { .. } => "isis/state-transfer",
            IsisEvent::Abcast(_) => "op/abcast",
            IsisEvent::Join => "op/join",
            IsisEvent::Deliver { .. } => "out/deliver",
            IsisEvent::ViewInstalled { .. } => "out/view",
            IsisEvent::Blocked(_) => "out/blocked",
            IsisEvent::Killed => "out/killed",
            IsisEvent::Rejoined => "out/rejoined",
        }
    }

    fn wire_size(&self) -> usize {
        match self {
            IsisEvent::Heartbeat => 16,
            IsisEvent::Data { payload, .. } => 28 + payload.len(),
            IsisEvent::Order { .. } => 36,
            IsisEvent::ViewProposal { members, .. } => 16 + 4 * members.len(),
            IsisEvent::FlushReport { unstable, .. } => {
                16 + unstable.iter().map(|(_, p, _)| 24 + p.len()).sum::<usize>()
            }
            IsisEvent::NewView(nv) => {
                16 + 4 * nv.members.len()
                    + nv.deliver_first
                        .iter()
                        .map(|(_, p)| 16 + p.len())
                        .sum::<usize>()
            }
            IsisEvent::JoinRequest => 16,
            IsisEvent::StateTransfer { state } => 16 + state.len(),
            _ => 64,
        }
    }
}

#[derive(Debug, PartialEq)]
enum Mode {
    /// Normal operation.
    Steady,
    /// Flush in progress (senders blocked).
    Flushing,
    /// Excluded and killed; awaiting re-join (if configured).
    Dead,
}

/// The monolithic Isis-style stack as one component (the paper calls these
/// systems *monolithic* — the composition is internal).
pub struct IsisStack {
    me: ProcessId,
    config: IsisConfig,
    /// Current view.
    vid: u64,
    members: Vec<ProcessId>,
    member: bool,
    mode: Mode,
    /// FD state (integrated with membership — the traditional coupling).
    /// Indexed by raw process id: heartbeats arrive constantly, so this is
    /// a dense table rather than a hash map.
    last_heard: Vec<Option<Time>>,
    /// Sender side: next per-process message number.
    next_msg: u64,
    /// Sequencer side: next order number in this view.
    next_order: u64,
    /// Receiver side: messages awaiting their order, and orders awaiting
    /// their message.
    unordered: BTreeMap<IsisMsgId, PayloadRef>,
    orders: BTreeMap<u64, IsisMsgId>,
    next_deliver: u64,
    delivered: HashSet<IsisMsgId>,
    /// Abcasts issued while blocked (sending view delivery queues them).
    send_queue: VecDeque<PayloadRef>,
    /// Coordinator flush state.
    flush_vid: u64,
    flush_members: Vec<ProcessId>,
    flush_reports: BTreeMap<ProcessId, Vec<(IsisMsgId, PayloadRef, Option<u64>)>>,
    /// Joins waiting for the next view change (coordinator side).
    pending_joins: BTreeSet<ProcessId>,
    started_at: Time,
}

impl IsisStack {
    /// Creates a stack; founding members pass the initial membership,
    /// late joiners pass `None`.
    pub fn new(me: ProcessId, initial: Option<Vec<ProcessId>>, config: IsisConfig) -> Self {
        let (members, member) = match initial {
            Some(m) => {
                let is_member = m.contains(&me);
                (m, is_member)
            }
            None => (Vec::new(), false),
        };
        IsisStack {
            me,
            config,
            vid: 0,
            members,
            member,
            mode: Mode::Steady,
            last_heard: Vec::new(),
            next_msg: 0,
            next_order: 0,
            unordered: BTreeMap::new(),
            orders: BTreeMap::new(),
            next_deliver: 0,
            delivered: HashSet::new(),
            send_queue: VecDeque::new(),
            flush_vid: 0,
            flush_members: Vec::new(),
            flush_reports: BTreeMap::new(),
            pending_joins: BTreeSet::new(),
            started_at: Time::ZERO,
        }
    }

    fn sequencer(&self) -> Option<ProcessId> {
        self.members.first().copied()
    }

    /// The coordinator is the smallest member this process does not suspect.
    fn coordinator(&self, now: Time) -> Option<ProcessId> {
        self.members
            .iter()
            .copied()
            .find(|&p| p == self.me || !self.suspects(p, now))
    }

    fn suspects(&self, p: ProcessId, now: Time) -> bool {
        let last = self
            .last_heard
            .get(p.index())
            .copied()
            .flatten()
            .unwrap_or(self.started_at);
        now.since(last) > self.config.fd_timeout
    }

    fn note_heard(&mut self, p: ProcessId, now: Time) {
        let idx = p.index();
        if idx >= self.last_heard.len() {
            self.last_heard.resize(idx + 1, None);
        }
        self.last_heard[idx] = Some(now);
    }

    fn others(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.members.iter().copied().filter(move |&p| p != self.me)
    }

    fn broadcast(&self, ev: IsisEvent, ctx: &mut Context<'_, IsisEvent>) {
        // One broadcast envelope instead of a per-peer clone loop.
        ctx.send_to_all(self.others(), "isis", ev);
    }

    fn do_abcast(&mut self, payload: PayloadRef, ctx: &mut Context<'_, IsisEvent>) {
        let id = (self.me, self.next_msg);
        self.next_msg += 1;
        let data = IsisEvent::Data { id, payload };
        self.broadcast(data, ctx);
        self.accept_data(id, payload, ctx);
    }

    fn accept_data(
        &mut self,
        id: IsisMsgId,
        payload: PayloadRef,
        ctx: &mut Context<'_, IsisEvent>,
    ) {
        if self.delivered.contains(&id) || self.unordered.contains_key(&id) {
            return;
        }
        self.unordered.insert(id, payload);
        // Fixed sequencer: the view head assigns the order.
        if self.member && self.mode == Mode::Steady && self.sequencer() == Some(self.me) {
            let seq = self.next_order;
            self.next_order += 1;
            let order = IsisEvent::Order {
                vid: self.vid,
                seq,
                id,
            };
            self.broadcast(order.clone(), ctx);
            self.on_order(self.vid, seq, id, ctx);
        }
        self.try_deliver(ctx);
    }

    fn on_order(&mut self, vid: u64, seq: u64, id: IsisMsgId, ctx: &mut Context<'_, IsisEvent>) {
        if vid != self.vid {
            return; // stale view: the flush re-orders in-flight messages
        }
        self.orders.insert(seq, id);
        self.try_deliver(ctx);
    }

    fn try_deliver(&mut self, ctx: &mut Context<'_, IsisEvent>) {
        if !self.member || self.mode == Mode::Dead {
            return;
        }
        while let Some(&id) = self.orders.get(&self.next_deliver) {
            let Some(payload) = self.unordered.remove(&id) else {
                break; // order known, data still in flight
            };
            self.orders.remove(&self.next_deliver);
            self.next_deliver += 1;
            self.delivered.insert(id);
            ctx.output(IsisEvent::Deliver {
                id,
                payload,
                vid: self.vid,
            });
        }
    }

    // -- view changes (membership + view synchrony) -------------------------

    /// Coordinator: start a flush towards a new membership.
    ///
    /// Primary-partition rule: a successor view must contain a majority of
    /// the current one (a minority partition blocks rather than forming its
    /// own view — Isis §2.1.1).
    fn start_view_change(&mut self, new_members: Vec<ProcessId>, ctx: &mut Context<'_, IsisEvent>) {
        if new_members == self.members && self.pending_joins.is_empty() {
            return;
        }
        let survivors = new_members
            .iter()
            .filter(|p| self.members.contains(p))
            .count();
        if survivors < self.members.len() / 2 + 1 {
            return; // minority: wait, do not split the brain
        }
        self.mode = Mode::Flushing;
        ctx.output(IsisEvent::Blocked(true));
        self.flush_vid = self.vid + 1;
        self.flush_members = new_members.clone();
        self.flush_reports.clear();
        let proposal = IsisEvent::ViewProposal {
            vid: self.flush_vid,
            members: new_members.clone(),
        };
        // Survivors of the current view participate in the flush.
        self.broadcast(proposal, ctx);
        // Our own report.
        let report = self.local_unstable();
        self.flush_reports.insert(self.me, report);
        self.maybe_commit_view(ctx);
    }

    fn local_unstable(&self) -> Vec<(IsisMsgId, PayloadRef, Option<u64>)> {
        let seq_of: HashMap<IsisMsgId, u64> = self.orders.iter().map(|(&s, &id)| (id, s)).collect();
        self.unordered
            .iter()
            .map(|(&id, &p)| (id, p, seq_of.get(&id).copied()))
            .collect()
    }

    fn on_view_proposal(
        &mut self,
        from: ProcessId,
        vid: u64,
        members: Vec<ProcessId>,
        ctx: &mut Context<'_, IsisEvent>,
    ) {
        if vid <= self.vid || !self.member {
            return;
        }
        if self.mode != Mode::Flushing {
            self.mode = Mode::Flushing;
            ctx.output(IsisEvent::Blocked(true));
        }
        let _ = members;
        let report = IsisEvent::FlushReport {
            vid,
            unstable: self.local_unstable(),
        };
        ctx.send(from, "isis", report);
    }

    fn on_flush_report(
        &mut self,
        from: ProcessId,
        vid: u64,
        unstable: Vec<(IsisMsgId, PayloadRef, Option<u64>)>,
        ctx: &mut Context<'_, IsisEvent>,
    ) {
        if vid != self.flush_vid || self.mode != Mode::Flushing {
            return;
        }
        self.flush_reports.insert(from, unstable);
        self.maybe_commit_view(ctx);
    }

    /// Coordinator: once every surviving proposed member reported, compute
    /// the agreed flush deliveries and commit the view.
    fn maybe_commit_view(&mut self, ctx: &mut Context<'_, IsisEvent>) {
        if self.mode != Mode::Flushing || self.flush_members.is_empty() {
            return;
        }
        let waiting_on: Vec<ProcessId> = self
            .flush_members
            .iter()
            .copied()
            .filter(|p| self.members.contains(p) && !self.flush_reports.contains_key(p))
            .collect();
        if !waiting_on.is_empty() {
            return;
        }
        // Agreed order for in-flight messages: sequencer positions first,
        // then unsequenced by id (view synchrony: same set, same order).
        let mut sequenced: BTreeMap<u64, (IsisMsgId, PayloadRef)> = BTreeMap::new();
        let mut unsequenced: BTreeMap<IsisMsgId, PayloadRef> = BTreeMap::new();
        for report in self.flush_reports.values() {
            for &(id, payload, seq) in report {
                match seq {
                    Some(s) => {
                        sequenced.insert(s, (id, payload));
                    }
                    None => {
                        unsequenced.insert(id, payload);
                    }
                }
            }
        }
        let mut deliver_first: Vec<(IsisMsgId, PayloadRef)> = sequenced.into_values().collect();
        for (id, p) in unsequenced {
            if !deliver_first.iter().any(|(i, _)| *i == id) {
                deliver_first.push((id, p));
            }
        }
        let new_view = IsisEvent::NewView(Box::new(NewViewData {
            vid: self.flush_vid,
            members: self.flush_members.clone(),
            deliver_first: deliver_first.clone(),
        }));
        // Tell survivors and joiners alike.
        let mut targets: BTreeSet<ProcessId> = self
            .members
            .iter()
            .chain(self.flush_members.iter())
            .copied()
            .collect();
        targets.remove(&self.me);
        ctx.send_to_all(targets, "isis", new_view);
        // State transfer to joiners (the §4.3 cost).
        for &j in self.pending_joins.clone().iter() {
            if self.flush_members.contains(&j) {
                ctx.send(
                    j,
                    "isis",
                    IsisEvent::StateTransfer {
                        state: Bytes::from(vec![0u8; self.config.state_size]),
                    },
                );
            }
        }
        self.pending_joins.clear();
        self.install_view(
            self.flush_vid,
            self.flush_members.clone(),
            deliver_first,
            ctx,
        );
    }

    fn install_view(
        &mut self,
        vid: u64,
        members: Vec<ProcessId>,
        deliver_first: Vec<(IsisMsgId, PayloadRef)>,
        ctx: &mut Context<'_, IsisEvent>,
    ) {
        // Deliver the flush set (view synchrony), skipping what we delivered.
        for (id, payload) in deliver_first {
            if self.delivered.insert(id) {
                self.unordered.remove(&id);
                ctx.output(IsisEvent::Deliver {
                    id,
                    payload,
                    vid: self.vid,
                });
            }
        }
        if !members.contains(&self.me) {
            // Wrongly excluded (or removed): Isis kills the process (§4.3).
            self.mode = Mode::Dead;
            self.member = false;
            ctx.output(IsisEvent::Killed);
            if self.config.auto_rejoin {
                if let Some(&coord) = members.first() {
                    ctx.send(coord, "isis", IsisEvent::JoinRequest);
                }
            }
            return;
        }
        self.vid = vid;
        self.members = members.clone();
        self.member = true;
        self.mode = Mode::Steady;
        self.unordered.clear();
        self.orders.clear();
        self.next_order = 0;
        self.next_deliver = 0;
        // Fresh FD horizon for the new view.
        let now = ctx.now();
        for &m in &members {
            self.note_heard(m, now);
        }
        ctx.output(IsisEvent::ViewInstalled { vid, members });
        ctx.output(IsisEvent::Blocked(false));
        // Sending view delivery: queued sends go out in the new view.
        let queued: Vec<PayloadRef> = self.send_queue.drain(..).collect();
        for payload in queued {
            self.do_abcast(payload, ctx);
        }
    }
}

impl Component<IsisEvent> for IsisStack {
    fn name(&self) -> &'static str {
        "isis"
    }

    fn on_start(&mut self, ctx: &mut Context<'_, IsisEvent>) {
        self.started_at = ctx.now();
        ctx.set_timer(self.config.heartbeat_interval);
    }

    fn on_event(&mut self, event: IsisEvent, ctx: &mut Context<'_, IsisEvent>) {
        match event {
            IsisEvent::Abcast(payload) => {
                if !self.member || self.mode != Mode::Steady {
                    // Sending view delivery: block (queue) during a flush.
                    self.send_queue.push_back(payload);
                } else {
                    self.do_abcast(payload, ctx);
                }
            }
            IsisEvent::Join => {
                // Contact the lowest-id process we know of.
                if let Some(&coord) = self.members.first().filter(|&&c| c != self.me) {
                    ctx.send(coord, "isis", IsisEvent::JoinRequest);
                } else {
                    ctx.send(ProcessId::new(0), "isis", IsisEvent::JoinRequest);
                }
            }
            _ => {}
        }
    }

    fn on_message(&mut self, from: ProcessId, event: IsisEvent, ctx: &mut Context<'_, IsisEvent>) {
        if self.mode == Mode::Dead {
            // A killed process only listens for its re-admission.
            match event {
                IsisEvent::NewView(nv) if nv.members.contains(&self.me) => {
                    self.delivered.clear();
                    self.install_view(nv.vid, nv.members, nv.deliver_first, ctx);
                }
                IsisEvent::StateTransfer { .. } => {
                    ctx.output(IsisEvent::Rejoined);
                }
                _ => {}
            }
            return;
        }
        match event {
            IsisEvent::Heartbeat => {
                self.note_heard(from, ctx.now());
                // A heartbeat from a process outside our view means it holds
                // a stale view (it was excluded while unreachable): notify it
                // so it learns its exclusion (and gets killed, Isis-style).
                if self.member
                    && !self.members.contains(&from)
                    && !self.pending_joins.contains(&from)
                    && self.coordinator(ctx.now()) == Some(self.me)
                {
                    ctx.send(
                        from,
                        "isis",
                        IsisEvent::NewView(Box::new(NewViewData {
                            vid: self.vid,
                            members: self.members.clone(),
                            deliver_first: Vec::new(),
                        })),
                    );
                }
            }
            IsisEvent::Data { id, payload } => self.accept_data(id, payload, ctx),
            IsisEvent::Order { vid, seq, id } => self.on_order(vid, seq, id, ctx),
            IsisEvent::ViewProposal { vid, members } => {
                self.on_view_proposal(from, vid, members, ctx)
            }
            IsisEvent::FlushReport { vid, unstable } => {
                self.on_flush_report(from, vid, unstable, ctx)
            }
            IsisEvent::NewView(nv) if nv.vid > self.vid => {
                self.install_view(nv.vid, nv.members, nv.deliver_first, ctx);
            }
            IsisEvent::JoinRequest => {
                self.pending_joins.insert(from);
                if self.member && self.coordinator(ctx.now()) == Some(self.me) {
                    let mut m = self.members.clone();
                    if !m.contains(&from) {
                        m.push(from);
                    }
                    self.start_view_change(m, ctx);
                }
            }
            IsisEvent::StateTransfer { .. } => ctx.output(IsisEvent::Rejoined),
            _ => {}
        }
    }

    fn on_timer(&mut self, _timer: TimerId, ctx: &mut Context<'_, IsisEvent>) {
        ctx.set_timer(self.config.heartbeat_interval);
        if !self.member || self.mode == Mode::Dead {
            return;
        }
        let now = ctx.now();
        ctx.send_to_all(self.others(), "isis", IsisEvent::Heartbeat);
        // The traditional coupling: suspicion IS exclusion. The coordinator
        // (lowest unsuspected member) reacts to any suspicion by starting a
        // view change that expels the suspects.
        if self.mode == Mode::Steady && self.coordinator(now) == Some(self.me) {
            let survivors: Vec<ProcessId> = self
                .members
                .iter()
                .copied()
                .filter(|&p| p == self.me || !self.suspects(p, now))
                .collect();
            if survivors.len() != self.members.len() || !self.pending_joins.is_empty() {
                let mut next = survivors;
                for &j in &self.pending_joins {
                    if !next.contains(&j) {
                        next.push(j);
                    }
                }
                self.start_view_change(next, ctx);
            }
        }
    }
}

/// Simulation harness for groups running the Isis-style stack; mirrors
/// `gcs_core::GroupSim` so experiments can swap architectures.
pub struct IsisSim {
    world: SimWorld<IsisEvent>,
    /// Payload arena: interned at injection, handles everywhere below.
    arena: SharedArena,
    n: usize,
}

impl IsisSim {
    /// Creates a group of `n` founding members on a loss-free LAN (the
    /// substrate Isis assumed), mirroring `gcs_core::GroupSim::new`.
    pub fn new(n: usize, config: IsisConfig, seed: u64) -> Self {
        Self::with_sim(n, 0, config, SimConfig::lan(seed))
    }

    /// Creates `n` founding members plus `joiners` processes that start
    /// outside the group (activate them with [`join_at`](Self::join_at)).
    pub fn with_joiners(n: usize, joiners: usize, config: IsisConfig, seed: u64) -> Self {
        Self::with_sim(n, joiners, config, SimConfig::lan(seed))
    }

    /// Full control over the simulation configuration (link model, trace
    /// sink, seed). Note the stack assumes reliable FIFO links; lossy
    /// topologies model conditions the original systems did not run on.
    pub fn with_sim(n: usize, joiners: usize, config: IsisConfig, sim: SimConfig) -> Self {
        let members: Vec<ProcessId> = (0..n as u32).map(ProcessId::new).collect();
        let mut world = SimWorld::new(sim);
        for _ in 0..n {
            let m = members.clone();
            world.add_node(|id| {
                Process::builder(id)
                    .with(IsisStack::new(id, Some(m), config))
                    .build()
            });
        }
        for _ in 0..joiners {
            world.add_node(|id| {
                Process::builder(id)
                    .with(IsisStack::new(id, None, config))
                    .build()
            });
        }
        IsisSim {
            world,
            arena: SharedArena::new(),
            n: n + joiners,
        }
    }

    /// Number of processes (members + joiners).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the group has no processes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Schedules an atomic broadcast (the payload is interned in the sim's
    /// arena; the stack moves handles).
    pub fn abcast_at(&mut self, t: Time, p: ProcessId, payload: impl Into<Bytes>) {
        let payload = self.arena.intern(payload.into());
        self.abcast_ref_at(t, p, payload);
    }

    /// Schedules an atomic broadcast of an already-interned payload handle.
    pub fn abcast_ref_at(&mut self, t: Time, p: ProcessId, payload: PayloadRef) {
        self.world
            .inject_at(t, p, "isis", IsisEvent::Abcast(payload));
    }

    /// The payload arena backing this sim's message plane.
    pub fn arena(&self) -> &SharedArena {
        &self.arena
    }

    /// Resolves a delivered payload handle to its bytes.
    pub fn resolve(&self, payload: PayloadRef) -> Bytes {
        self.arena.get(payload)
    }

    /// Schedules a join request by an outsider (or killed process).
    pub fn join_at(&mut self, t: Time, p: ProcessId) {
        self.world.inject_at(t, p, "isis", IsisEvent::Join);
    }

    /// Crashes `p` at `t`.
    pub fn crash_at(&mut self, t: Time, p: ProcessId) {
        self.world.crash_at(t, p);
    }

    /// Runs until virtual time `t`.
    pub fn run_until(&mut self, t: Time) {
        self.world.run_until(t);
    }

    /// Runs until the event queue drains or `limit`; returns `true` only if
    /// the system quiesced. A live Isis group re-arms its heartbeat timer
    /// forever, so this returns `false` unless every process has crashed.
    pub fn run_to_quiescence(&mut self, limit: Time) -> bool {
        self.world.run_to_quiescence(limit)
    }

    /// Direct access to the underlying simulation world.
    pub fn world(&self) -> &SimWorld<IsisEvent> {
        &self.world
    }

    /// Underlying world (fault injection, metrics).
    pub fn world_mut(&mut self) -> &mut SimWorld<IsisEvent> {
        &mut self.world
    }

    /// Liveness flags per process.
    pub fn alive_flags(&self) -> Vec<bool> {
        self.world.alive_flags()
    }

    /// The delivery trace.
    pub fn trace(&self) -> &Trace<IsisEvent> {
        self.world.trace()
    }

    /// Simulation metrics.
    pub fn metrics(&self) -> &Metrics {
        self.world.metrics()
    }

    /// Per-process delivered payload sequences.
    pub fn delivered_payloads(&self) -> Vec<Vec<Vec<u8>>> {
        self.world.trace().per_proc(self.n, |e| match e {
            IsisEvent::Deliver { payload, .. } => Some(self.arena.get(*payload).to_vec()),
            _ => None,
        })
    }

    /// Per-process installed views `(vid, members)`.
    pub fn views(&self) -> Vec<Vec<(u64, Vec<ProcessId>)>> {
        self.world.trace().per_proc(self.n, |e| match e {
            IsisEvent::ViewInstalled { vid, members } => Some((*vid, members.clone())),
            _ => None,
        })
    }

    /// Send-blocking windows per process: `(start, end)` pairs (E4).
    pub fn blocked_windows(&self, p: ProcessId) -> Vec<(Time, Time)> {
        let mut windows = Vec::new();
        let mut open: Option<Time> = None;
        for e in self.world.trace().of_proc(p) {
            match e.event {
                IsisEvent::Blocked(true) => open = open.or(Some(e.time)),
                IsisEvent::Blocked(false) => {
                    if let Some(s) = open.take() {
                        windows.push((s, e.time));
                    }
                }
                _ => {}
            }
        }
        windows
    }

    /// Times at which each process was killed / rejoined (E3).
    pub fn kill_and_rejoin_times(&self, p: ProcessId) -> (Option<Time>, Option<Time>) {
        let mut killed = None;
        let mut rejoined = None;
        for e in self.world.trace().of_proc(p) {
            match e.event {
                IsisEvent::Killed if killed.is_none() => killed = Some(e.time),
                IsisEvent::Rejoined if rejoined.is_none() => rejoined = Some(e.time),
                _ => {}
            }
        }
        (killed, rejoined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_sim::{check_no_duplicates, check_prefix_consistency};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn failure_free_total_order() {
        let mut sim = IsisSim::new(3, IsisConfig::default(), 1);
        for i in 0..10u32 {
            sim.abcast_at(Time::from_millis(1 + i as u64), p(i % 3), vec![i as u8]);
        }
        sim.run_until(Time::from_secs(1));
        let seqs = sim.delivered_payloads();
        for s in &seqs {
            assert_eq!(s.len(), 10);
        }
        check_prefix_consistency(&seqs).expect("sequencer total order");
        check_no_duplicates(&seqs).expect("no duplicates");
    }

    #[test]
    fn sequencer_crash_triggers_exclusion_view_change() {
        let mut sim = IsisSim::new(3, IsisConfig::default(), 2);
        sim.abcast_at(Time::from_millis(1), p(1), b"before".to_vec());
        sim.crash_at(Time::from_millis(20), p(0)); // p0 is the sequencer
        sim.abcast_at(Time::from_millis(300), p(1), b"after".to_vec());
        sim.run_until(Time::from_secs(1));
        let views = sim.views();
        // Survivors installed a view without p0; new sequencer is p1.
        for i in 1..3 {
            let (vid, members) = views[i].last().expect("view change");
            assert_eq!(*vid, 1);
            assert_eq!(members, &vec![p(1), p(2)]);
        }
        let seqs = sim.delivered_payloads();
        assert!(seqs[1].contains(&b"after".to_vec()));
        assert_eq!(seqs[1], seqs[2]);
    }

    #[test]
    fn flush_blocks_senders_sending_view_delivery() {
        let mut sim = IsisSim::with_joiners(3, 1, IsisConfig::default(), 3);
        sim.join_at(Time::from_millis(10), p(3));
        sim.run_until(Time::from_secs(1));
        // The coordinator (p0) blocked during the flush.
        let windows = sim.blocked_windows(p(0));
        assert_eq!(windows.len(), 1, "one view change, one blocking window");
        let (s, e) = windows[0];
        assert!(e > s, "non-empty blocking window");
        // The joiner is in the final view everywhere.
        for i in 0..3 {
            let (_, members) = sim.views()[i].last().expect("view").clone();
            assert!(members.contains(&p(3)));
        }
    }

    #[test]
    fn abcast_during_flush_is_queued_not_lost() {
        let mut sim = IsisSim::with_joiners(3, 1, IsisConfig::default(), 4);
        sim.join_at(Time::from_millis(10), p(3));
        // Send while the flush is (likely) in progress.
        sim.abcast_at(Time::from_millis(12), p(1), b"queued".to_vec());
        sim.run_until(Time::from_secs(1));
        let seqs = sim.delivered_payloads();
        for i in 0..3 {
            assert!(
                seqs[i].contains(&b"queued".to_vec()),
                "p{i} delivers the queued send"
            );
        }
    }

    #[test]
    fn wrong_suspicion_kills_and_rejoins_with_state_transfer() {
        let mut config = IsisConfig::default();
        config.state_size = 64 * 1024;
        let mut sim = IsisSim::new(3, config, 5);
        // p2 is unreachable for a while — alive, but suspected: the
        // traditional architecture excludes it (perfect-FD emulation), it is
        // killed, and must re-join with a full state transfer (§4.3).
        sim.world_mut()
            .partition_at(Time::from_millis(50), vec![vec![p(0), p(1)], vec![p(2)]]);
        sim.world_mut().heal_at(Time::from_millis(400));
        sim.run_until(Time::from_secs(3));
        let (killed, rejoined) = sim.kill_and_rejoin_times(p(2));
        let k = killed.expect("p2 was wrongly excluded and killed");
        let r = rejoined.expect("p2 re-joined after the heal");
        assert!(r > k);
        // State transfer cost was paid.
        assert!(sim.metrics().sent_of_kind("isis/state-transfer") >= 1);
        // And the final view contains all three processes again.
        let (_, members) = sim.views()[0].last().expect("views installed").clone();
        assert_eq!(members.len(), 3);
    }

    #[test]
    fn minority_partition_does_not_split_the_brain() {
        let mut sim = IsisSim::new(3, IsisConfig::default(), 8);
        // Everyone is isolated from everyone: no majority exists, so no new
        // view may form (primary-partition rule).
        sim.world_mut().partition_at(
            Time::from_millis(50),
            vec![vec![p(0)], vec![p(1)], vec![p(2)]],
        );
        sim.run_until(Time::from_secs(1));
        for i in 0..3 {
            assert!(
                sim.views()[i].is_empty(),
                "p{i} must not install a singleton view"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sim = IsisSim::new(3, IsisConfig::default(), seed);
            for i in 0..5u32 {
                sim.abcast_at(Time::from_millis(1 + i as u64), p(i % 3), vec![i as u8]);
            }
            sim.run_until(Time::from_secs(1));
            (sim.delivered_payloads(), sim.metrics().total_sent())
        };
        assert_eq!(run(9), run(9));
    }
}
